//! A tour of the post-pass reorganizer (paper §4.2.1): the Figure 4
//! fragment through every optimization level, then the Table 11
//! cumulative improvements on the paper's benchmark set.
//!
//! ```text
//! cargo run --release --example reorganizer_tour
//! ```

use mips_analysis::{figures, table11};

fn main() {
    println!("{}", figures::figure4());
    println!("{}", table11::measure());
    println!(
        "Every level is semantically checked: see tests/reorg_property.rs\n\
         (random programs execute identically at all four levels, with the\n\
         hazard checker proving the software interlocks hold)."
    );
}
