//! The systems story of paper §3, as a runnable demo: a miniature
//! operating system written in MIPS assembly — resident dispatch code at
//! physical address zero, a demand-paging fault handler driving the
//! off-chip map unit, an interrupt handler querying the external
//! prioritization logic, and trap-based system calls — hosting a user
//! program that touches unmapped pages while a device interrupts it.
//!
//! ```text
//! cargo run --example os_demand_paging
//! ```

use mips::asm::assemble;
use mips::core::Reg;
use mips::sim::machine::{CONSOLE_ADDR, INTCTRL_ADDR, MAPUNIT_ADDR};
use mips::sim::{Machine, MachineConfig, PageMap};

fn main() {
    let source = format!(
        "
        ; ---- resident dispatch (physical address 0, the paper's ROM) ----
        ; 'The standard dispatch routine … saves the surprise register and
        ; a small number of the general purpose registers' (§3.3); kernel
        ; counters live in low physical memory.
        dispatch:
            st r1,@80              ; save the registers the kernel uses
            st r2,@81
            st r3,@82
            st r4,@83
            st r5,@84
            rsp surprise,r1
            srl r1,#8,r2
            and r2,#15,r2          ; exception cause code
            beq r2,#3,pagefault
            nop
            beq r2,#1,interrupt
            nop
            beq r2,#4,syscall
            nop
            halt                   ; unknown cause: stop

        pagefault:
            lim #{mapu},r3
            ld 0(r3),r4            ; faulting mapped address
            nop
            srl r4,#12,r5          ; virtual page number
            st r5,0(r3)            ; select page
            st r5,1(r3)            ; map it (identity frame)
            ld @90,r5              ; count page faults at @90
            nop
            add r5,#1,r5
            st r5,@90
            bra resume
            nop

        interrupt:
            lim #{intc},r3
            ld 0(r3),r4            ; which device? (id + 1)
            nop
            sub r4,#1,r4
            st r4,0(r3)            ; acknowledge it
            ld @91,r5              ; count interrupts at @91
            nop
            add r5,#1,r5
            st r5,@91
            bra resume
            nop

        syscall:
            ; trap #1: print the user's r1 on the console peripheral
            ; (counted at @92)
            lim #{console},r3
            ld @80,r4          ; the user's saved r1
            ld @92,r5
            mvi #48,r2         ; ord('0')
            add r4,r2,r4       ; tiny itoa: single digits only
            st r4,0(r3)        ; write to the console device
            add r5,#1,r5
            st r5,@92
            bra resume
            nop

        resume:
            ld @80,r1              ; restore user registers
            ld @81,r2
            ld @82,r3
            ld @83,r4
            ld @84,r5
            nop                    ; cover the last load's delay
            rfe

        ; ---- user program ----
        user:
            rsp surprise,r1
            or r1,#4,r1            ; enable interrupts
            wsp r1,surprise
            mvi #0,r2              ; loop counter
            mvi #0,r6              ; checksum
        loop:
            ; touch a fresh page each iteration: 0x5000, 0x6000, ...
            add r2,#5,r3
            sll r3,#12,r3
            st r2,(r3)             ; demand-paged store
            ld (r3),r4             ; read it back
            nop
            add r6,r4,r6
            add r4,#0,r1           ; syscall argument
            trap #1                ; monitor call: print r1
            add r2,#1,r2
            bne r2,#6,loop
            nop
            halt
        ",
        mapu = MAPUNIT_ADDR,
        intc = INTCTRL_ADDR,
        console = CONSOLE_ADDR
    );

    let program = assemble(&source).expect("assembles");
    let mut machine = Machine::with_config(
        program,
        MachineConfig {
            native_traps: false, // traps go through the dispatch code
            ..MachineConfig::default()
        },
    );
    machine.attach_page_map(PageMap::new());
    let console = machine.attach_console();
    let ctrl = machine.attach_int_ctrl();
    machine.surprise_mut().set_map_enable(true);

    let user = machine.program().symbol("user").unwrap();
    machine.jump_to(user);

    // Let a device interrupt the user program a few times.
    let mut raised = 0;
    loop {
        if machine.profile().instructions.is_multiple_of(97) && raised < 3 {
            ctrl.borrow_mut().raise(2);
            raised += 1;
        }
        match machine.step() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    let printed = String::from_utf8_lossy(&console.borrow()).into_owned();
    println!("console output           = {printed:?}");
    let faults = machine.mem().peek(90);
    let interrupts = machine.mem().peek(91);
    let syscalls = machine.mem().peek(92);
    println!("user loop checksum    r6 = {}", machine.reg(Reg::R6));
    println!("page faults serviced     = {faults}");
    println!("interrupts serviced      = {interrupts}");
    println!("system calls serviced    = {syscalls}");
    println!(
        "exceptions dispatched    = {}",
        machine.profile().exceptions
    );
    println!("---\n{}", machine.profile());
    assert_eq!(machine.reg(Reg::R6), 1 + 2 + 3 + 4 + 5);
    assert_eq!(faults, 6, "one fault per fresh page");
    assert_eq!(syscalls, 6, "one syscall per iteration");
    assert!(interrupts >= 1, "the device got served");
    assert_eq!(printed, "012345", "the syscall printed each loop index");
    println!("demand paging, interrupts, system calls, and console I/O all serviced by MIPS code.");
}
