//! The paper's condition-code argument, live: compiles
//! `Found := (Rec = Key) or (I = 13)` under every architectural support
//! level (Figures 1–3) and prints the code shapes plus the Table 5/6
//! strategy costs.
//!
//! ```text
//! cargo run --release --example boolean_strategies
//! ```

use mips_analysis::{bool_cost, booleans, figures};

fn main() {
    println!("{}", figures::figure1());
    println!("{}", figures::figure2());
    println!("{}", figures::figure3());

    println!("{}", bool_cost::table5());

    let stats = booleans::analyze_corpus();
    println!("{stats}");
    let t6 = bool_cost::table6(
        stats.operators_per_compound().max(1.0),
        stats.jump_pct() / 100.0,
    );
    println!("{t6}");
}
