//! The word-addressing study of paper §4.1: the same text-processing
//! workload compiled for the word-addressed MIPS (software byte handling
//! via `xc`/`ic` and byte pointers) and for the byte-addressed variant,
//! with the measured access costs and the Table 9/10 composition.
//!
//! ```text
//! cargo run --release --example byte_vs_word
//! ```

use mips_analysis::{byte_cost, refs};
use mips_hll::MachineTarget;

fn main() {
    let text_corpus: Vec<&str> = mips_workloads::corpus()
        .iter()
        .filter(|w| w.text_heavy)
        .map(|w| w.name)
        .collect();
    println!("text corpus: {text_corpus:?}\n");

    // Dynamic reference mixes under each allocation regime.
    let word_mix = refs::measure(MachineTarget::Word, Some(&text_corpus));
    let byte_mix = refs::measure(MachineTarget::Byte, Some(&text_corpus));
    println!("{word_mix}");
    println!("{byte_mix}");

    // Per-operation cycle costs, measured from generated code.
    let t9 = byte_cost::table9();
    println!("{t9}");

    // The composition: who wins?
    let t10 = byte_cost::table10(&t9, &word_mix, &byte_mix);
    println!("{t10}");

    let (lo, hi) = t10.penalty_word_alloc();
    if lo > 0.0 {
        println!("→ word addressing wins by {lo:.1}–{hi:.1}% on this mix, as the paper argues.");
    } else {
        println!("→ byte addressing won on this mix — an interesting deviation!");
    }
}
