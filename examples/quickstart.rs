//! Quickstart: the whole hardware/software co-design pipeline in one
//! page — compile a Pascal-like program to instruction pieces, let the
//! reorganizer impose the pipeline interlocks in software, and run it on
//! the five-stage MIPS simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mips::hll::{compile_mips, CodegenOptions};
use mips::reorg::{reorganize, ReorgOptions};
use mips::sim::Machine;

const PROGRAM: &str = "
program quickstart;
var total, i: integer;

function square(x: integer): integer;
begin
  square := x * x
end;

begin
  total := 0;
  for i := 1 to 10 do
    total := total + square(i);
  writeln('sum of squares 1..10 = ', total)
end.
";

fn main() {
    // 1. Compile: Pasqal → unscheduled instruction pieces (one per line,
    //    no pipeline awareness — exactly what the paper's Portable C
    //    Compiler port produced).
    let linear = compile_mips(PROGRAM, &CodegenOptions::standard()).expect("compiles");
    println!("compiler emitted {} unscheduled pieces", linear.op_count());

    // 2. Reorganize: software-imposed interlocks. Compare the no-op-padded
    //    baseline with the fully scheduled/packed/delay-filled program.
    let naive = reorganize(&linear, ReorgOptions::NONE).expect("naive lowering");
    let full = reorganize(&linear, ReorgOptions::FULL).expect("reorganized");
    println!(
        "static words: {} naive → {} reorganized ({} no-ops eliminated, {} packed pairs, {} delay slots filled)",
        naive.program.len(),
        full.program.len(),
        naive.stats.nops - full.stats.nops,
        full.stats.packed,
        full.stats.delay_filled_move + full.stats.delay_filled_hoist + full.stats.delay_filled_dup,
    );

    // 3. Simulate on the no-interlock five-stage machine.
    let mut machine = Machine::new(full.program);
    machine.run().expect("runs");
    print!("{}", machine.output_string());
    println!("---\n{}", machine.profile());
}
