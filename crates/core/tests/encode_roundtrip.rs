//! Property test: every well-formed instruction encodes and decodes back
//! to itself, and distinct instructions get distinct encodings.

use mips_core::encode::{decode, encode};
use mips_core::{
    AluOp, AluPiece, CallPiece, CmpBranchPiece, Cond, Instr, JumpIndPiece, JumpPiece, Label,
    MemMode, MemPiece, MviPiece, Operand, Reg, SetCondPiece, SpecialOp, SpecialReg, Target,
    TrapPiece, Width, WordAddr,
};
use mips_qc::{Qc, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.usize(0..16)).unwrap()
}

fn arb_operand(rng: &mut Rng) -> Operand {
    if rng.bool() {
        Operand::Reg(arb_reg(rng))
    } else {
        Operand::Small(rng.u8(0..16))
    }
}

fn arb_cond(rng: &mut Rng) -> Cond {
    Cond::from_code(rng.u8(0..16)).unwrap()
}

fn arb_alu_op(rng: &mut Rng) -> AluOp {
    AluOp::from_code(rng.u8(0..AluOp::ALL.len() as u8)).unwrap()
}

fn arb_alu(rng: &mut Rng) -> AluPiece {
    AluPiece {
        op: arb_alu_op(rng),
        a: arb_operand(rng),
        b: arb_operand(rng),
        dst: arb_reg(rng),
    }
}

fn arb_mode(rng: &mut Rng) -> MemMode {
    match rng.u8(0..4) {
        0 => MemMode::Absolute(WordAddr::new(rng.u32(0..1 << 24))),
        1 => MemMode::Based {
            base: arb_reg(rng),
            disp: rng.i32(-32768..32768),
        },
        2 => MemMode::BasedIndexed {
            base: arb_reg(rng),
            index: arb_reg(rng),
        },
        _ => MemMode::BaseShifted {
            base: arb_reg(rng),
            shift: rng.u8(1..6),
        },
    }
}

fn arb_width(rng: &mut Rng) -> Width {
    if rng.bool() {
        Width::Word
    } else {
        Width::Byte
    }
}

fn arb_mem(rng: &mut Rng) -> MemPiece {
    match rng.u8(0..3) {
        0 => MemPiece::Load {
            mode: arb_mode(rng),
            dst: arb_reg(rng),
            width: arb_width(rng),
        },
        1 => MemPiece::Store {
            mode: arb_mode(rng),
            src: arb_reg(rng),
            width: arb_width(rng),
        },
        _ => MemPiece::LoadImm {
            value: rng.u32(0..1 << 24),
            dst: arb_reg(rng),
        },
    }
}

fn arb_target(rng: &mut Rng) -> Target {
    if rng.bool() {
        Target::Abs(rng.u32(0..1 << 25))
    } else {
        Target::Label(Label::new(rng.u32(0..1 << 25)))
    }
}

fn arb_special(rng: &mut Rng) -> SpecialReg {
    SpecialReg::from_code(rng.u8(0..SpecialReg::ALL.len() as u8)).unwrap()
}

fn arb_instr(rng: &mut Rng) -> Instr {
    match rng.u8(0..13) {
        0 => Instr::Op {
            alu: if rng.bool() { Some(arb_alu(rng)) } else { None },
            mem: if rng.bool() { Some(arb_mem(rng)) } else { None },
        },
        1 => Instr::SetCond(SetCondPiece {
            cond: arb_cond(rng),
            a: arb_operand(rng),
            b: arb_operand(rng),
            dst: arb_reg(rng),
        }),
        2 => Instr::Mvi(MviPiece {
            imm: rng.u32(0..256) as u8,
            dst: arb_reg(rng),
        }),
        3 => Instr::CmpBranch(CmpBranchPiece {
            cond: arb_cond(rng),
            a: arb_operand(rng),
            b: arb_operand(rng),
            target: arb_target(rng),
        }),
        4 => Instr::Jump(JumpPiece {
            target: arb_target(rng),
        }),
        5 => Instr::Call(CallPiece {
            target: arb_target(rng),
            link: arb_reg(rng),
        }),
        6 => Instr::Lea {
            target: arb_target(rng),
            dst: arb_reg(rng),
        },
        7 => Instr::JumpInd(JumpIndPiece {
            base: arb_reg(rng),
            disp: rng.i32(-32768..32768),
        }),
        8 => Instr::Trap(TrapPiece {
            code: rng.u32(0..4096) as u16,
        }),
        9 => Instr::Special(SpecialOp::Read {
            sr: arb_special(rng),
            dst: arb_reg(rng),
        }),
        10 => Instr::Special(SpecialOp::Write {
            sr: arb_special(rng),
            src: arb_operand(rng),
        }),
        11 => Instr::Special(SpecialOp::Rfe),
        _ => Instr::Halt,
    }
}

#[test]
fn encode_decode_round_trip() {
    Qc::new("encode_decode_round_trip").cases(2048).run(|rng| {
        let i = arb_instr(rng);
        let word = encode(&i);
        let back = decode(word).expect("well-formed instruction must decode");
        assert_eq!(back, i);
    });
}

#[test]
fn encoding_is_injective() {
    Qc::new("encoding_is_injective").cases(2048).run(|rng| {
        let a = arb_instr(rng);
        let b = arb_instr(rng);
        if a != b {
            assert_ne!(encode(&a), encode(&b), "{a} vs {b}");
        }
    });
}

#[test]
fn decode_never_panics() {
    // Arbitrary bit patterns either decode to something or error; they
    // must never panic. (Re-encoding a decoded value need not round-trip
    // bit-for-bit because unused high bits are ignored.)
    Qc::new("decode_never_panics").cases(4096).run(|rng| {
        let _ = decode(rng.next_u64());
    });
}
