//! Property test: every well-formed instruction encodes and decodes back
//! to itself, and distinct instructions get distinct encodings.

use mips_core::encode::{decode, encode};
use mips_core::{
    AluOp, AluPiece, CallPiece, CmpBranchPiece, Cond, Instr, JumpIndPiece, JumpPiece, Label,
    MemMode, MemPiece, MviPiece, Operand, Reg, SetCondPiece, SpecialOp, SpecialReg, Target,
    TrapPiece, Width, WordAddr,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (0u8..=15).prop_map(Operand::Small),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(|c| Cond::from_code(c).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0u8..AluOp::ALL.len() as u8).prop_map(|c| AluOp::from_code(c).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluPiece> {
    (arb_alu_op(), arb_operand(), arb_operand(), arb_reg())
        .prop_map(|(op, a, b, dst)| AluPiece { op, a, b, dst })
}

fn arb_mode() -> impl Strategy<Value = MemMode> {
    prop_oneof![
        (0u32..(1 << 24)).prop_map(|a| MemMode::Absolute(WordAddr::new(a))),
        (arb_reg(), -32768i32..=32767).prop_map(|(base, disp)| MemMode::Based { base, disp }),
        (arb_reg(), arb_reg()).prop_map(|(base, index)| MemMode::BasedIndexed { base, index }),
        (arb_reg(), 1u8..=5).prop_map(|(base, shift)| MemMode::BaseShifted { base, shift }),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::Word), Just(Width::Byte)]
}

fn arb_mem() -> impl Strategy<Value = MemPiece> {
    prop_oneof![
        (arb_mode(), arb_reg(), arb_width())
            .prop_map(|(mode, dst, width)| MemPiece::Load { mode, dst, width }),
        (arb_mode(), arb_reg(), arb_width())
            .prop_map(|(mode, src, width)| MemPiece::Store { mode, src, width }),
        (0u32..(1 << 24), arb_reg()).prop_map(|(value, dst)| MemPiece::LoadImm { value, dst }),
    ]
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        (0u32..(1 << 25)).prop_map(Target::Abs),
        (0u32..(1 << 25)).prop_map(|i| Target::Label(Label::new(i))),
    ]
}

fn arb_special() -> impl Strategy<Value = SpecialReg> {
    (0u8..SpecialReg::ALL.len() as u8).prop_map(|c| SpecialReg::from_code(c).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (proptest::option::of(arb_alu()), proptest::option::of(arb_mem()))
            .prop_map(|(alu, mem)| Instr::Op { alu, mem }),
        (arb_cond(), arb_operand(), arb_operand(), arb_reg())
            .prop_map(|(cond, a, b, dst)| Instr::SetCond(SetCondPiece { cond, a, b, dst })),
        (any::<u8>(), arb_reg()).prop_map(|(imm, dst)| Instr::Mvi(MviPiece { imm, dst })),
        (arb_cond(), arb_operand(), arb_operand(), arb_target())
            .prop_map(|(cond, a, b, target)| Instr::CmpBranch(CmpBranchPiece { cond, a, b, target })),
        arb_target().prop_map(|target| Instr::Jump(JumpPiece { target })),
        (arb_target(), arb_reg()).prop_map(|(target, link)| Instr::Call(CallPiece { target, link })),
        (arb_target(), arb_reg()).prop_map(|(target, dst)| Instr::Lea { target, dst }),
        (arb_reg(), -32768i32..=32767)
            .prop_map(|(base, disp)| Instr::JumpInd(JumpIndPiece { base, disp })),
        (0u16..4096).prop_map(|code| Instr::Trap(TrapPiece { code })),
        (arb_special(), arb_reg())
            .prop_map(|(sr, dst)| Instr::Special(SpecialOp::Read { sr, dst })),
        (arb_special(), arb_operand())
            .prop_map(|(sr, src)| Instr::Special(SpecialOp::Write { sr, src })),
        Just(Instr::Special(SpecialOp::Rfe)),
        Just(Instr::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(i in arb_instr()) {
        let word = encode(&i);
        let back = decode(word).expect("well-formed instruction must decode");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn encoding_is_injective(a in arb_instr(), b in arb_instr()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }

    #[test]
    fn decode_never_panics(bits in any::<u64>()) {
        // Arbitrary bit patterns either decode to something or error; they
        // must never panic. (Re-encoding a decoded value need not round-trip
        // bit-for-bit because unused high bits are ignored.)
        let _ = decode(bits);
    }
}
