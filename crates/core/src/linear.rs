//! Unscheduled *linear code* — the code generator's output and the
//! reorganizer's input.
//!
//! "The current scheme provides the reorganization as a post-processing of
//! the code generator's output" (paper §4.2.1). Code generators (the
//! `mips-hll` backends, the assembler) emit one piece per [`UnschedOp`]
//! with no pipeline awareness; the reorganizer in `mips-reorg` then
//! schedules, packs, and fills branch-delay slots (or inserts no-ops).
//!
//! Each op may carry [`OpMeta`]:
//!
//! * a [`RefClass`] describing the source-level data reference (byte or
//!   word, character or not) — the raw material of the paper's Tables 7–8;
//! * *dead register* hints — Figure 4's transformation is legal only
//!   because "r2 is 'dead' outside of the section shown", so the compiler
//!   tells the reorganizer which registers die at block ends;
//! * a *no-touch* flag — "the front end of the compiler is able to handle
//!   delayed branches better than the reorganizer; in this case it emits a
//!   pseudo-op which tells the reorganizer that this sequence is not to be
//!   touched."

use crate::instr::Instr;
use crate::program::Label;
use std::fmt;

/// Source-level classification of a data reference, used by the dynamic
/// profiler to reproduce the reference-pattern tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefClass {
    /// True when the *source datum* is byte-sized (a character or packed
    /// boolean), regardless of the machine access width used to reach it.
    pub byte_sized: bool,
    /// True when the datum is character data (Tables 7–8 split character
    /// references out separately).
    pub character: bool,
}

impl RefClass {
    /// A 32-bit, non-character datum.
    pub const WORD: RefClass = RefClass {
        byte_sized: false,
        character: false,
    };
    /// A byte-sized character datum.
    pub const CHAR_BYTE: RefClass = RefClass {
        byte_sized: true,
        character: true,
    };
    /// A character datum allocated in a full word.
    pub const CHAR_WORD: RefClass = RefClass {
        byte_sized: false,
        character: true,
    };
    /// A byte-sized non-character datum (packed boolean).
    pub const BYTE: RefClass = RefClass {
        byte_sized: true,
        character: false,
    };
}

/// Scheduling metadata attached to an unscheduled op.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpMeta {
    /// Data-reference classification (memory ops only).
    pub refclass: Option<RefClass>,
    /// Registers known dead after this op executes (scheduling hints for
    /// delayed-branch filling).
    pub dead_after: Vec<crate::reg::Reg>,
    /// When set, the reorganizer must leave this op exactly where it is
    /// relative to its neighbours (the paper's protective pseudo-op).
    pub no_touch: bool,
}

/// One unscheduled operation: a single-piece instruction plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnschedOp {
    /// The instruction. Never a packed pair — packing is the reorganizer's
    /// job — and never a no-op.
    pub instr: Instr,
    /// Scheduling metadata.
    pub meta: OpMeta,
}

impl UnschedOp {
    /// Wraps an instruction with empty metadata.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is already a packed pair or a no-op: linear code
    /// is made of single pieces.
    pub fn new(instr: Instr) -> UnschedOp {
        assert!(
            !instr.is_packed_pair(),
            "linear code must be unpacked: {instr}"
        );
        assert!(!instr.is_nop(), "linear code never contains no-ops");
        UnschedOp {
            instr,
            meta: OpMeta::default(),
        }
    }

    /// Attaches a data-reference classification.
    pub fn with_refclass(mut self, rc: RefClass) -> UnschedOp {
        self.meta.refclass = Some(rc);
        self
    }

    /// Marks registers dead after this op.
    pub fn with_dead(mut self, regs: &[crate::reg::Reg]) -> UnschedOp {
        self.meta.dead_after.extend_from_slice(regs);
        self
    }

    /// Protects the op from reordering.
    pub fn no_touch(mut self) -> UnschedOp {
        self.meta.no_touch = true;
        self
    }
}

impl fmt::Display for UnschedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.instr)
    }
}

/// An element of linear code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A label definition.
    Label(Label),
    /// An operation.
    Op(UnschedOp),
    /// A named entry point (procedure) at this position.
    Symbol(String),
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Label(l) => write!(f, "{l}:"),
            Item::Op(o) => write!(f, "        {o}"),
            Item::Symbol(s) => write!(f, "{s}::"),
        }
    }
}

/// A whole unscheduled compilation unit.
///
/// # Example
///
/// ```
/// use mips_core::{AluOp, AluPiece, Instr, LinearCode, Operand, Reg};
///
/// let mut lc = LinearCode::new();
/// lc.op(Instr::alu(AluPiece::new(AluOp::Add, Reg::R1.into(), Operand::Small(1), Reg::R1)));
/// lc.push(mips_core::Item::Op(
///     mips_core::UnschedOp::new(Instr::Halt),
/// ));
/// assert_eq!(lc.op_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearCode {
    items: Vec<Item>,
    next_label: u32,
}

impl LinearCode {
    /// Creates empty linear code.
    pub fn new() -> LinearCode {
        LinearCode::default()
    }

    /// The items in order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Consumes the unit, returning its items.
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }

    /// Appends an item.
    pub fn push(&mut self, item: Item) {
        if let Item::Label(l) = item {
            if l.id() >= self.next_label {
                self.next_label = l.id() + 1;
            }
        }
        self.items.push(item);
    }

    /// Appends a bare op (no metadata).
    pub fn op(&mut self, instr: Instr) {
        self.push(Item::Op(UnschedOp::new(instr)));
    }

    /// Appends an op with metadata.
    pub fn op_meta(&mut self, op: UnschedOp) {
        self.push(Item::Op(op));
    }

    /// Allocates a fresh label unique within this unit.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label::new(self.next_label);
        self.next_label += 1;
        l
    }

    /// Defines a label at the current position.
    pub fn define(&mut self, l: Label) {
        self.push(Item::Label(l));
    }

    /// Defines a named entry point at the current position.
    pub fn symbol(&mut self, name: impl Into<String>) {
        self.push(Item::Symbol(name.into()));
    }

    /// Appends all items of `other`, assuming label spaces are already
    /// disjoint (the compiler allocates labels from one counter).
    pub fn append(&mut self, other: LinearCode) {
        for it in other.items {
            self.push(it);
        }
    }

    /// Number of operations (excludes labels/symbols).
    pub fn op_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Op(_)))
            .count()
    }

    /// Mutable access to the most recently pushed op (used by assemblers
    /// to attach trailing metadata directives).
    pub fn last_op_mut(&mut self) -> Option<&mut UnschedOp> {
        self.items.iter_mut().rev().find_map(|i| match i {
            Item::Op(o) => Some(o),
            _ => None,
        })
    }

    /// Iterates over just the ops.
    pub fn ops(&self) -> impl Iterator<Item = &UnschedOp> {
        self.items.iter().filter_map(|i| match i {
            Item::Op(o) => Some(o),
            _ => None,
        })
    }
}

impl fmt::Display for LinearCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for it in &self.items {
            writeln!(f, "{it}")?;
        }
        Ok(())
    }
}

impl FromIterator<Item> for LinearCode {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> LinearCode {
        let mut lc = LinearCode::new();
        for it in iter {
            lc.push(it);
        }
        lc
    }
}

impl Extend<Item> for LinearCode {
    fn extend<T: IntoIterator<Item = Item>>(&mut self, iter: T) {
        for it in iter {
            self.push(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piece::{AluOp, AluPiece, MemMode, MemPiece};
    use crate::{Operand, Reg};

    fn some_alu() -> Instr {
        Instr::alu(AluPiece::new(
            AluOp::Add,
            Reg::R1.into(),
            Operand::Small(1),
            Reg::R1,
        ))
    }

    #[test]
    #[should_panic(expected = "unpacked")]
    fn packed_ops_rejected() {
        let packed = Instr::Op {
            alu: Some(AluPiece::new(
                AluOp::Add,
                Reg::R1.into(),
                Operand::Small(1),
                Reg::R1,
            )),
            mem: Some(MemPiece::load(
                MemMode::Based {
                    base: Reg::SP,
                    disp: 0,
                },
                Reg::R2,
            )),
        };
        let _ = UnschedOp::new(packed);
    }

    #[test]
    #[should_panic(expected = "no-ops")]
    fn nops_rejected() {
        let _ = UnschedOp::new(Instr::NOP);
    }

    #[test]
    fn metadata_builders() {
        let op = UnschedOp::new(some_alu())
            .with_refclass(RefClass::CHAR_WORD)
            .with_dead(&[Reg::R2])
            .no_touch();
        assert_eq!(op.meta.refclass, Some(RefClass::CHAR_WORD));
        assert_eq!(op.meta.dead_after, vec![Reg::R2]);
        assert!(op.meta.no_touch);
    }

    #[test]
    fn fresh_labels_avoid_pushed_ones() {
        let mut lc = LinearCode::new();
        lc.define(Label::new(5));
        let l = lc.fresh_label();
        assert_eq!(l.id(), 6);
    }

    #[test]
    fn append_and_counts() {
        let mut a = LinearCode::new();
        a.symbol("main");
        a.op(some_alu());
        let mut b = LinearCode::new();
        b.op(some_alu());
        a.append(b);
        assert_eq!(a.op_count(), 2);
        assert_eq!(a.ops().count(), 2);
        assert_eq!(a.items().len(), 3);
        let shown = a.to_string();
        assert!(shown.contains("main::"));
        assert!(shown.contains("add r1,#1,r1"));
    }
}
