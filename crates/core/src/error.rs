//! Error types for decoding and label resolution.

use crate::program::Label;
use std::error::Error;
use std::fmt;

/// An instruction word failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown major opcode.
    BadOpcode(u8),
    /// Unknown ALU operation code.
    BadAluOp(u8),
    /// Unknown addressing-mode code.
    BadMemMode(u8),
    /// Unknown special-register code.
    BadSpecialReg(u8),
    /// A field holds an out-of-range value (e.g. base-shift amount 0).
    BadField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(c) => write!(f, "unknown opcode {c:#x}"),
            DecodeError::BadAluOp(c) => write!(f, "unknown alu operation {c:#x}"),
            DecodeError::BadMemMode(c) => write!(f, "unknown addressing mode {c:#x}"),
            DecodeError::BadSpecialReg(c) => write!(f, "unknown special register {c:#x}"),
            DecodeError::BadField(what) => write!(f, "field out of range: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Program assembly failed to resolve a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(Label),
    /// A label was defined more than once.
    DuplicateLabel(Label),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            ResolveError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
        }
    }
}

impl Error for ResolveError {}
