//! Resolved programs and the label-resolving builder.

use crate::error::ResolveError;
use crate::instr::{Instr, Target};
use std::collections::HashMap;
use std::fmt;

/// A symbolic code label (compiler- or assembler-generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

impl Label {
    /// Creates a label with the given id.
    pub fn new(id: u32) -> Label {
        Label(id)
    }

    /// The label's numeric id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A fully resolved instruction sequence, ready to execute.
///
/// Instruction addresses are indices into the sequence (the simulator's
/// instruction memory is word-per-instruction). All branch targets are
/// [`Target::Abs`].
///
/// # Example
///
/// ```
/// use mips_core::{Instr, Label, ProgramBuilder, Target};
/// use mips_core::piece::JumpPiece;
///
/// let mut b = ProgramBuilder::new();
/// let top = b.fresh_label();
/// b.define(top).unwrap();
/// b.push(Instr::NOP);
/// b.push(Instr::Jump(JumpPiece { target: Target::Label(top) }));
/// b.push(Instr::NOP); // branch delay slot
/// let p = b.finish().unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p[1].target(), Some(Target::Abs(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    /// Named entry points (procedure name → instruction address).
    symbols: HashMap<String, u32>,
}

impl Program {
    /// Wraps a resolved instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics if any instruction still carries an unresolved label target;
    /// use [`ProgramBuilder`] to resolve labels.
    pub fn new(instrs: Vec<Instr>) -> Program {
        for (i, ins) in instrs.iter().enumerate() {
            if let Some(Target::Label(l)) = ins.target() {
                panic!("instruction {i} has unresolved label {l}");
            }
        }
        Program {
            instrs,
            symbols: HashMap::new(),
        }
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instruction words — the *static instruction count* that
    /// Table 11 reports.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `addr`, if in range.
    pub fn fetch(&self, addr: u32) -> Option<&Instr> {
        self.instrs.get(addr as usize)
    }

    /// Registers a named entry point.
    pub fn define_symbol(&mut self, name: impl Into<String>, addr: u32) {
        self.symbols.insert(name.into(), addr);
    }

    /// Looks up a named entry point.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols, for listings.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Number of no-op instruction words (the quantity the reorganizer
    /// minimizes).
    pub fn nop_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_nop()).count()
    }

    /// Number of packed pairs (two pieces in one word).
    pub fn packed_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_packed_pair()).count()
    }

    /// Addresses whose code location escapes into data — everywhere an
    /// indirect jump could land. Conservatively: every [`Instr::Lea`]
    /// target, every named symbol, and every call's return point (the
    /// word after the call's delay shadow, where the callee's `jmpi`
    /// resumes). Sorted and deduplicated.
    pub fn address_taken(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.symbols.values().copied().collect();
        for (i, ins) in self.instrs.iter().enumerate() {
            match ins {
                Instr::Lea { target, .. } => {
                    if let Some(a) = target.abs() {
                        v.push(a);
                    }
                }
                Instr::Call(_) => {
                    v.push(i as u32 + 1 + crate::delay::BRANCH_DELAY);
                }
                _ => {}
            }
        }
        v.sort_unstable();
        v.dedup();
        v.retain(|&a| (a as usize) < self.instrs.len());
        v
    }

    /// Static entry points: address 0 (the reset/exception vector) plus
    /// every named symbol. Sorted and deduplicated.
    pub fn entry_points(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.symbols.values().copied().collect();
        if !self.instrs.is_empty() {
            v.push(0);
        }
        v.sort_unstable();
        v.dedup();
        v.retain(|&a| (a as usize) < self.instrs.len());
        v
    }

    /// A human-readable listing with addresses.
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut rev: HashMap<u32, &str> = HashMap::new();
        for (n, a) in self.symbols() {
            rev.insert(a, n);
        }
        let mut s = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            if let Some(n) = rev.get(&(i as u32)) {
                let _ = writeln!(s, "{n}:");
            }
            let _ = writeln!(s, "{i:6}  {ins}");
        }
        s
    }
}

impl std::ops::Index<usize> for Program {
    type Output = Instr;
    fn index(&self, i: usize) -> &Instr {
        &self.instrs[i]
    }
}

/// Builds a [`Program`], resolving labels to absolute addresses.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    defs: HashMap<Label, u32>,
    next_label: u32,
    symbols: HashMap<String, u32>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates a fresh, undefined label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label::new(self.next_label);
        self.next_label += 1;
        l
    }

    /// Defines `label` at the current address.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::DuplicateLabel`] if already defined.
    pub fn define(&mut self, label: Label) -> Result<(), ResolveError> {
        if label.id() >= self.next_label {
            self.next_label = label.id() + 1;
        }
        if self.defs.insert(label, self.instrs.len() as u32).is_some() {
            return Err(ResolveError::DuplicateLabel(label));
        }
        Ok(())
    }

    /// Current instruction address (where the next push lands).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Appends an instruction (targets may be labels).
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Registers a named entry point at the current address.
    pub fn define_symbol(&mut self, name: impl Into<String>) {
        self.symbols.insert(name.into(), self.here());
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::UndefinedLabel`] if a branch references an
    /// undefined label.
    pub fn finish(self) -> Result<Program, ResolveError> {
        let mut out = Vec::with_capacity(self.instrs.len());
        for ins in self.instrs {
            let resolved = match ins.target() {
                Some(Target::Label(l)) => {
                    let addr = *self.defs.get(&l).ok_or(ResolveError::UndefinedLabel(l))?;
                    ins.with_target(Target::Abs(addr))
                }
                _ => ins,
            };
            out.push(resolved);
        }
        Ok(Program {
            instrs: out,
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piece::{CmpBranchPiece, JumpPiece};
    use crate::{Cond, Reg};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let back = b.fresh_label();
        let fwd = b.fresh_label();
        b.define(back).unwrap();
        b.push(Instr::CmpBranch(CmpBranchPiece::new(
            Cond::Eq,
            Reg::R1.into(),
            Reg::R2.into(),
            Target::Label(fwd),
        )));
        b.push(Instr::NOP);
        b.push(Instr::Jump(JumpPiece {
            target: Target::Label(back),
        }));
        b.push(Instr::NOP);
        b.define(fwd).unwrap();
        b.push(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p[0].target(), Some(Target::Abs(4)));
        assert_eq!(p[2].target(), Some(Target::Abs(0)));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label();
        b.push(Instr::Jump(JumpPiece {
            target: Target::Label(l),
        }));
        assert_eq!(b.finish().unwrap_err(), ResolveError::UndefinedLabel(l));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label();
        b.define(l).unwrap();
        assert_eq!(b.define(l).unwrap_err(), ResolveError::DuplicateLabel(l));
    }

    #[test]
    fn symbols_and_counters() {
        let mut b = ProgramBuilder::new();
        b.define_symbol("main");
        b.push(Instr::NOP);
        b.push(Instr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.symbol("main"), Some(0));
        assert_eq!(p.symbol("other"), None);
        assert_eq!(p.nop_count(), 1);
        assert_eq!(p.packed_count(), 0);
        assert!(p.listing().contains("main:"));
        assert!(p.fetch(2).is_none());
    }

    #[test]
    #[should_panic(expected = "unresolved label")]
    fn program_new_rejects_labels() {
        let _ = Program::new(vec![Instr::Jump(JumpPiece {
            target: Target::Label(Label::new(0)),
        })]);
    }

    #[test]
    fn external_labels_dont_collide_with_fresh() {
        let mut b = ProgramBuilder::new();
        b.define(Label::new(10)).unwrap();
        let l = b.fresh_label();
        assert_eq!(l.id(), 11);
    }
}
