//! The sixteen comparison conditions.
//!
//! MIPS "supports conditional control flow breaks using a compare and
//! branch instruction with one of 16 possible comparisons. The 16
//! comparisons include both signed and unsigned arithmetic" (paper
//! §2.3.1), and the *Set Conditionally* instruction uses "the same 16
//! comparisons found in conditional branches" (§2.3.2).
//!
//! The paper does not enumerate the sixteen; we use the natural closure of
//! the relations it names: the six signed orderings, the four strict /
//! non-strict unsigned orderings (equality is sign-agnostic), constant
//! true/false, two mask tests (useful for flag words without a carry bit),
//! and two sign-bit tests. Each condition has a [negation](Cond::negate)
//! within the set, which the code generators rely on.

use std::fmt;

/// A comparison condition for compare-and-branch and *Set Conditionally*.
///
/// # Example
///
/// ```
/// use mips_core::Cond;
/// assert!(Cond::Ltu.eval(1, u32::MAX));      // unsigned: 1 < 0xffffffff
/// assert!(!Cond::Lt.eval(1, u32::MAX));      // signed:   1 > -1
/// assert_eq!(Cond::Lt.negate(), Cond::Ge);
/// assert_eq!(Cond::Lt.swap(), Cond::Gt);     // a < b  ⇔  b > a
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Never true (a canonical no-op branch).
    Never = 0,
    /// Always true (an unconditional branch expressed as a comparison).
    Always = 1,
    /// Equal.
    Eq = 2,
    /// Not equal.
    Ne = 3,
    /// Signed less-than.
    Lt = 4,
    /// Signed less-or-equal.
    Le = 5,
    /// Signed greater-than.
    Gt = 6,
    /// Signed greater-or-equal.
    Ge = 7,
    /// Unsigned less-than.
    Ltu = 8,
    /// Unsigned less-or-equal.
    Leu = 9,
    /// Unsigned greater-than.
    Gtu = 10,
    /// Unsigned greater-or-equal.
    Geu = 11,
    /// `a & b == 0` — all masked bits clear.
    MaskZero = 12,
    /// `a & b != 0` — some masked bit set.
    MaskNonZero = 13,
    /// Sign bit of `a` set (ignores `b`).
    Neg = 14,
    /// Sign bit of `a` clear (ignores `b`).
    NotNeg = 15,
}

impl Cond {
    /// All sixteen conditions in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Never,
        Cond::Always,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Ltu,
        Cond::Leu,
        Cond::Gtu,
        Cond::Geu,
        Cond::MaskZero,
        Cond::MaskNonZero,
        Cond::Neg,
        Cond::NotNeg,
    ];

    /// The condition's 4-bit encoding.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit condition code.
    #[inline]
    pub fn from_code(c: u8) -> Option<Cond> {
        Cond::ALL.get(c as usize).copied()
    }

    /// Evaluates the comparison on two 32-bit register values.
    ///
    /// Signed comparisons reinterpret the bits as two's-complement `i32`.
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            Cond::Never => false,
            Cond::Always => true,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
            Cond::Ge => sa >= sb,
            Cond::Ltu => a < b,
            Cond::Leu => a <= b,
            Cond::Gtu => a > b,
            Cond::Geu => a >= b,
            Cond::MaskZero => a & b == 0,
            Cond::MaskNonZero => a & b != 0,
            Cond::Neg => sa < 0,
            Cond::NotNeg => sa >= 0,
        }
    }

    /// The logical negation, which is always another member of the set —
    /// compilers use this to invert branches without extra instructions.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Never => Cond::Always,
            Cond::Always => Cond::Never,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
            Cond::Leu => Cond::Gtu,
            Cond::Gtu => Cond::Leu,
            Cond::MaskZero => Cond::MaskNonZero,
            Cond::MaskNonZero => Cond::MaskZero,
            Cond::Neg => Cond::NotNeg,
            Cond::NotNeg => Cond::Neg,
        }
    }

    /// The condition with its operands exchanged: `a ⟐ b ⇔ b ⟐.swap() a`.
    ///
    /// `Neg`/`NotNeg` inspect only the first operand and are returned
    /// unchanged; callers must not swap operands of those.
    pub fn swap(self) -> Cond {
        match self {
            Cond::Lt => Cond::Gt,
            Cond::Gt => Cond::Lt,
            Cond::Le => Cond::Ge,
            Cond::Ge => Cond::Le,
            Cond::Ltu => Cond::Gtu,
            Cond::Gtu => Cond::Ltu,
            Cond::Leu => Cond::Geu,
            Cond::Geu => Cond::Leu,
            other => other,
        }
    }

    /// Whether the condition is symmetric in its operands.
    pub fn is_symmetric(self) -> bool {
        matches!(
            self,
            Cond::Never | Cond::Always | Cond::Eq | Cond::Ne | Cond::MaskZero | Cond::MaskNonZero
        )
    }

    /// The assembler mnemonic suffix (`beq`, `bltu`, `seq`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Never => "nev",
            Cond::Always => "alw",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Leu => "leu",
            Cond::Gtu => "gtu",
            Cond::Geu => "geu",
            Cond::MaskZero => "mz",
            Cond::MaskNonZero => "mnz",
            Cond::Neg => "neg",
            Cond::NotNeg => "nneg",
        }
    }

    /// Parses a mnemonic suffix produced by [`Cond::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Cond> {
        Cond::ALL.iter().copied().find(|c| c.mnemonic() == s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_sixteen() {
        assert_eq!(Cond::ALL.len(), 16);
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(c.code() as usize, i);
            assert_eq!(Cond::from_code(i as u8), Some(*c));
        }
        assert_eq!(Cond::from_code(16), None);
    }

    #[test]
    fn negate_is_involution_and_complements_eval() {
        let samples = [
            (0u32, 0u32),
            (1, 2),
            (2, 1),
            (u32::MAX, 0),
            (0, u32::MAX),
            (0x8000_0000, 0x7fff_ffff),
            (5, 5),
            (0xf0, 0x0f),
        ];
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for &(a, b) in &samples {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c} on {a},{b}");
            }
        }
    }

    #[test]
    fn swap_exchanges_operands() {
        let samples = [(1u32, 2u32), (2, 1), (7, 7), (u32::MAX, 1)];
        for c in Cond::ALL {
            if matches!(c, Cond::Neg | Cond::NotNeg) {
                continue; // unary in the first operand
            }
            for &(a, b) in &samples {
                assert_eq!(c.eval(a, b), c.swap().eval(b, a), "{c} on {a},{b}");
            }
        }
    }

    #[test]
    fn symmetric_conditions_really_are() {
        let samples = [(1u32, 2u32), (3, 3), (u32::MAX, 0)];
        for c in Cond::ALL.iter().copied().filter(|c| c.is_symmetric()) {
            for &(a, b) in &samples {
                assert_eq!(c.eval(a, b), c.eval(b, a));
            }
        }
    }

    #[test]
    fn signed_vs_unsigned() {
        assert!(Cond::Lt.eval(u32::MAX, 0)); // -1 < 0
        assert!(!Cond::Ltu.eval(u32::MAX, 0));
        assert!(Cond::Gtu.eval(u32::MAX, 0));
        assert!(Cond::Ge.eval(0, u32::MAX));
    }

    #[test]
    fn mask_and_sign_tests() {
        assert!(Cond::MaskZero.eval(0b1100, 0b0011));
        assert!(Cond::MaskNonZero.eval(0b1100, 0b0100));
        assert!(Cond::Neg.eval(0x8000_0000, 12345));
        assert!(Cond::NotNeg.eval(0x7fff_ffff, 0));
    }

    #[test]
    fn mnemonic_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_mnemonic(c.mnemonic()), Some(c));
        }
        assert_eq!(Cond::from_mnemonic("zz"), None);
    }
}
