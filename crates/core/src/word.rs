//! Words, word addresses, and byte pointers.
//!
//! MIPS is a **word-addressed** machine (paper §4.1): memory is an array
//! of 32-bit words and a virtual address names a word, not a byte. The
//! word address space is 24 bits — 16 million words — the top eight bits
//! of a 32-bit virtual address are consumed by the on-chip segmentation
//! unit (process-id insertion, see `mips-sim`).
//!
//! Byte data is reached through *byte pointers*: a 32-bit value whose high
//! 30 bits are a word address and whose low two bits select a byte within
//! the word (paper §4.1, "the high order 30 bits contain a word address").
//! [`ByteAddr`] models exactly that split.

use std::fmt;

/// Bits in a word address (16M words).
pub const ADDR_BITS: u32 = 24;
/// Number of addressable words: 2^24.
pub const MEM_WORDS: u32 = 1 << ADDR_BITS;
/// Bytes per machine word.
pub const WORD_BYTES: u32 = 4;

/// A word address: names one 32-bit word of memory.
///
/// Only the low [`ADDR_BITS`] bits are significant; constructors mask the
/// rest so arithmetic naturally wraps within the 16M-word space.
///
/// # Example
///
/// ```
/// use mips_core::WordAddr;
/// let a = WordAddr::new(0x00_1234);
/// assert_eq!(a.offset(1).value(), 0x00_1235);
/// assert_eq!(a.to_string(), "@001234");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(u32);

impl WordAddr {
    /// Creates a word address, masking to the 24-bit address space.
    #[inline]
    pub fn new(a: u32) -> WordAddr {
        WordAddr(a & (MEM_WORDS - 1))
    }

    /// The numeric word address.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The address `self + delta` words, wrapping within the address space.
    #[inline]
    pub fn offset(self, delta: i32) -> WordAddr {
        WordAddr::new(self.0.wrapping_add(delta as u32))
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:06x}", self.0)
    }
}

impl From<WordAddr> for u32 {
    fn from(a: WordAddr) -> u32 {
        a.value()
    }
}

/// A byte pointer: word address in the high 30 bits, byte-in-word in the
/// low 2 bits.
///
/// This is the software representation used with the *extract byte* /
/// *insert byte* instructions; the equivalent of a `load byte` is
///
/// ```text
/// ld  (r0>>2),r1    ; word containing the byte
/// xc  r0,r1,r1      ; extract byte selected by r0's low 2 bits
/// ```
///
/// # Example
///
/// ```
/// use mips_core::{ByteAddr, WordAddr};
/// let p = ByteAddr::new(WordAddr::new(10), 3);
/// assert_eq!(p.word().value(), 10);
/// assert_eq!(p.byte_in_word(), 3);
/// assert_eq!(p.offset(1).word().value(), 11);
/// assert_eq!(p.offset(1).byte_in_word(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteAddr(u32);

impl ByteAddr {
    /// Creates a byte pointer from a word address and a byte index `0..4`.
    ///
    /// # Panics
    ///
    /// Panics if `byte >= 4`.
    #[inline]
    pub fn new(word: WordAddr, byte: u32) -> ByteAddr {
        assert!(byte < WORD_BYTES, "byte index {byte} out of range");
        ByteAddr((word.value() << 2) | byte)
    }

    /// Reinterprets a raw 32-bit register value as a byte pointer.
    #[inline]
    pub fn from_raw(v: u32) -> ByteAddr {
        ByteAddr(v & ((MEM_WORDS << 2) - 1))
    }

    /// The raw 32-bit representation (what lives in a register).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The word containing the addressed byte (the pointer shifted right
    /// by two, exactly what `ld (r0>>2)` computes).
    #[inline]
    pub fn word(self) -> WordAddr {
        WordAddr::new(self.0 >> 2)
    }

    /// Which byte within the word, `0..4`. Byte 0 is the least significant
    /// byte of the word.
    #[inline]
    pub fn byte_in_word(self) -> u32 {
        self.0 & 3
    }

    /// The pointer advanced by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: i32) -> ByteAddr {
        ByteAddr::from_raw(self.0.wrapping_add(delta as u32))
    }
}

impl fmt::Display for ByteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:06x}.{}", self.word().value(), self.byte_in_word())
    }
}

/// Extracts byte `sel & 3` from `word` (the `xc` ALU operation's data
/// path). Byte 0 is the least significant byte.
#[inline]
pub fn extract_byte(word: u32, sel: u32) -> u32 {
    (word >> ((sel & 3) * 8)) & 0xff
}

/// Replaces byte `sel & 3` of `word` with the low byte of `src` (the `ic`
/// ALU operation's data path).
#[inline]
pub fn insert_byte(word: u32, sel: u32, src: u32) -> u32 {
    let sh = (sel & 3) * 8;
    (word & !(0xffu32 << sh)) | ((src & 0xff) << sh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_addr_masks_to_24_bits() {
        assert_eq!(WordAddr::new(0xff00_0001).value(), 0x00_0001);
        assert_eq!(WordAddr::new(MEM_WORDS).value(), 0);
    }

    #[test]
    fn word_addr_offset_wraps() {
        let top = WordAddr::new(MEM_WORDS - 1);
        assert_eq!(top.offset(1).value(), 0);
        assert_eq!(WordAddr::new(0).offset(-1).value(), MEM_WORDS - 1);
    }

    #[test]
    fn byte_addr_split() {
        let p = ByteAddr::new(WordAddr::new(0x123), 2);
        assert_eq!(p.raw(), (0x123 << 2) | 2);
        assert_eq!(p.word().value(), 0x123);
        assert_eq!(p.byte_in_word(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn byte_addr_rejects_bad_byte() {
        let _ = ByteAddr::new(WordAddr::new(0), 4);
    }

    #[test]
    fn byte_stepping_crosses_words() {
        let mut p = ByteAddr::new(WordAddr::new(7), 0);
        for i in 0..8 {
            assert_eq!(p.word().value(), 7 + i / 4);
            assert_eq!(p.byte_in_word(), i % 4);
            p = p.offset(1);
        }
    }

    #[test]
    fn extract_and_insert_are_inverse() {
        let w = 0x4433_2211u32;
        assert_eq!(extract_byte(w, 0), 0x11);
        assert_eq!(extract_byte(w, 1), 0x22);
        assert_eq!(extract_byte(w, 2), 0x33);
        assert_eq!(extract_byte(w, 3), 0x44);
        for sel in 0..4 {
            let b = extract_byte(w, sel);
            assert_eq!(insert_byte(w, sel, b), w);
        }
        assert_eq!(insert_byte(0, 2, 0xAB), 0x00AB_0000);
        // Only the low byte of the source participates.
        assert_eq!(insert_byte(0, 0, 0xFFFF_FFAB), 0x0000_00AB);
    }
}
