//! Instruction words.
//!
//! A MIPS instruction word is either a *packed* operate word holding up to
//! one ALU piece and one load/store piece, or a full-word instruction
//! (branch, call, trap, …). Every instruction executes in exactly five
//! pipe stages and one issue slot; "memory cycles are allocated to
//! instructions, just as ALU or register access resources" (paper §3.1),
//! so an operate word without a memory piece leaves its data-memory cycle
//! *free* for DMA or cache write-backs.

use crate::piece::CallPiece;
use crate::piece::{
    AluPiece, CmpBranchPiece, JumpIndPiece, JumpPiece, MemPiece, MviPiece, Operand, SetCondPiece,
    TrapPiece,
};
use crate::program::Label;
use crate::reg::Reg;
use std::fmt;

/// A branch/call target: a symbolic label before resolution, an absolute
/// instruction index afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Unresolved symbolic label (linear code, assembler output).
    Label(Label),
    /// Resolved absolute instruction address.
    Abs(u32),
}

impl Target {
    /// The absolute address, if resolved.
    pub fn abs(self) -> Option<u32> {
        match self {
            Target::Abs(a) => Some(a),
            Target::Label(_) => None,
        }
    }

    /// The label, if unresolved.
    pub fn label(self) -> Option<Label> {
        match self {
            Target::Label(l) => Some(l),
            Target::Abs(_) => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Abs(a) => write!(f, "{a}"),
        }
    }
}

/// The processor's special registers.
///
/// All of the "miscellaneous state of the processor is encapsulated into a
/// single *surprise register*" (paper §3.2); the remaining entries are the
/// on-chip segmentation registers, the byte-insert selector, and the three
/// exception return addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpecialReg {
    /// The surprise register: privilege levels, enable bits, exception
    /// cause fields. Supervisor-only.
    Surprise = 0,
    /// Byte selector for the insert-byte operation. User-accessible.
    Lo = 1,
    /// On-chip segmentation: the process identifier inserted into the top
    /// address bits. Supervisor-only.
    Pid = 2,
    /// Number of address bits masked for PID insertion (the `n` of §3.1).
    /// Supervisor-only.
    PidBits = 3,
    /// End of the valid low half of the process address space (exclusive).
    /// Supervisor-only.
    LowLimit = 4,
    /// Start of the valid high half of the process address space.
    /// Supervisor-only.
    HighBase = 5,
    /// First saved exception return address (the offending instruction).
    Ret0 = 6,
    /// Second saved return address (its successor).
    Ret1 = 7,
    /// Third saved return address (the pending branch target; needed for
    /// returns into indirect-jump shadows, §3.3). Supervisor-only.
    Ret2 = 8,
}

impl SpecialReg {
    /// All special registers in encoding order.
    pub const ALL: [SpecialReg; 9] = [
        SpecialReg::Surprise,
        SpecialReg::Lo,
        SpecialReg::Pid,
        SpecialReg::PidBits,
        SpecialReg::LowLimit,
        SpecialReg::HighBase,
        SpecialReg::Ret0,
        SpecialReg::Ret1,
        SpecialReg::Ret2,
    ];

    /// 4-bit encoding.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a code produced by [`SpecialReg::code`].
    pub fn from_code(c: u8) -> Option<SpecialReg> {
        SpecialReg::ALL.get(c as usize).copied()
    }

    /// Whether access requires supervisor privilege. "The only
    /// instructions that require supervisor privilege are those that read
    /// and write the surprise register and the on-chip segmentation
    /// registers" (§3.2); `lo` is plain user data-path state.
    pub fn privileged(self) -> bool {
        !matches!(self, SpecialReg::Lo)
    }

    /// Assembler name.
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::Surprise => "surprise",
            SpecialReg::Lo => "lo",
            SpecialReg::Pid => "pid",
            SpecialReg::PidBits => "pidbits",
            SpecialReg::LowLimit => "lowlimit",
            SpecialReg::HighBase => "highbase",
            SpecialReg::Ret0 => "ret0",
            SpecialReg::Ret1 => "ret1",
            SpecialReg::Ret2 => "ret2",
        }
    }

    /// Parses a name produced by [`SpecialReg::name`].
    pub fn from_name(s: &str) -> Option<SpecialReg> {
        SpecialReg::ALL.iter().copied().find(|r| r.name() == s)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Special-register moves and the return-from-exception primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialOp {
    /// `dst := special`.
    Read {
        /// Source special register.
        sr: SpecialReg,
        /// Destination general register.
        dst: Reg,
    },
    /// `special := src`.
    Write {
        /// Destination special register.
        sr: SpecialReg,
        /// Source operand.
        src: Operand,
    },
    /// Return from exception: restores the previous privilege/mapping
    /// state from the surprise register and resumes at the three saved
    /// return addresses `ret0, ret1, ret2` (paper §3.3). Models the
    /// MIPS return sequence as one primitive; see DESIGN.md.
    Rfe,
}

impl fmt::Display for SpecialOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecialOp::Read { sr, dst } => write!(f, "rsp {sr},{dst}"),
            SpecialOp::Write { sr, src } => write!(f, "wsp {src},{sr}"),
            SpecialOp::Rfe => write!(f, "rfe"),
        }
    }
}

/// One 32-bit instruction word.
///
/// # Example
///
/// ```
/// use mips_core::{AluOp, AluPiece, Instr, MemMode, MemPiece, Operand, Reg};
///
/// // A packed word: an ALU piece and a store piece issued together.
/// let packed = Instr::Op {
///     alu: Some(AluPiece::new(AluOp::Add, Reg::R4.into(), Operand::Small(1), Reg::R4)),
///     mem: Some(MemPiece::store(MemMode::Based { base: Reg::SP, disp: 2 }, Reg::R2)),
/// };
/// assert!(packed.is_packed_pair());
/// assert_eq!(packed.to_string(), "add r4,#1,r4 ; st r2,2(r14)");
/// assert_eq!(Instr::NOP.to_string(), "no-op");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Operate word: up to one ALU piece and one memory piece. With both
    /// pieces absent this is the canonical no-op.
    ///
    /// Packed-pair semantics: both pieces read the register state from
    /// *before* the instruction; writes must go to distinct registers. If
    /// the memory reference faults, the ALU piece's register write is
    /// suppressed so the instruction can restart (paper §3.3).
    Op {
        /// Optional ALU piece.
        alu: Option<AluPiece>,
        /// Optional load/store piece.
        mem: Option<MemPiece>,
    },
    /// *Set Conditionally*.
    SetCond(SetCondPiece),
    /// Move 8-bit immediate.
    Mvi(MviPiece),
    /// Compare-and-branch (delay 1).
    CmpBranch(CmpBranchPiece),
    /// Unconditional direct jump (delay 1).
    Jump(JumpPiece),
    /// Direct call with link (delay 1).
    Call(CallPiece),
    /// Indirect jump (delay 2).
    JumpInd(JumpIndPiece),
    /// Load the address of a code label into a register (the linker-style
    /// relocation a jump table needs; resolved with the program's labels).
    Lea {
        /// The code location whose address is loaded.
        target: Target,
        /// Destination register.
        dst: Reg,
    },
    /// Software trap.
    Trap(TrapPiece),
    /// Special-register operation / return-from-exception.
    Special(SpecialOp),
    /// Stop the simulation (a simulator convenience, not real hardware;
    /// real programs end with `trap`).
    Halt,
}

impl Instr {
    /// The canonical no-op (an operate word with no pieces).
    pub const NOP: Instr = Instr::Op {
        alu: None,
        mem: None,
    };

    /// An operate word holding a single ALU piece.
    pub fn alu(p: AluPiece) -> Instr {
        Instr::Op {
            alu: Some(p),
            mem: None,
        }
    }

    /// An operate word holding a single memory piece.
    pub fn mem(p: MemPiece) -> Instr {
        Instr::Op {
            alu: None,
            mem: Some(p),
        }
    }

    /// True for the no-op.
    pub fn is_nop(&self) -> bool {
        matches!(
            self,
            Instr::Op {
                alu: None,
                mem: None
            }
        )
    }

    /// True when both an ALU and a memory piece are packed together.
    pub fn is_packed_pair(&self) -> bool {
        matches!(
            self,
            Instr::Op {
                alu: Some(_),
                mem: Some(_)
            }
        )
    }

    /// The number of delay slots following this instruction
    /// (see [`crate::delay`]).
    pub fn branch_delay(&self) -> u32 {
        match self {
            Instr::CmpBranch(_) | Instr::Jump(_) | Instr::Call(_) => crate::delay::BRANCH_DELAY,
            Instr::JumpInd(_) => crate::delay::INDIRECT_DELAY,
            _ => 0,
        }
    }

    /// Destination register of a *delayed* load piece: the register that
    /// is architecturally stale for [`crate::delay::LOAD_DELAY`] slot(s)
    /// after this instruction issues. `None` for stores, long immediates
    /// (which forward like ALU results), and non-memory instructions.
    pub fn delayed_load_dst(&self) -> Option<Reg> {
        match self {
            Instr::Op { mem: Some(m), .. } if m.is_delayed_load() => m.writes(),
            _ => None,
        }
    }

    /// Whether this instruction transfers control with delay slots — the
    /// class the reorganizer must keep out of other transfers' shadows.
    pub fn is_delayed_transfer(&self) -> bool {
        self.branch_delay() > 0
    }

    /// Whether straight-line execution can continue past this instruction
    /// (and past its delay shadow, for transfers): true for ordinary
    /// instructions, conditional branches (fall-through path), calls
    /// (return path re-enters after the shadow), and traps (native
    /// services resume at the next word). False for unconditional jumps,
    /// indirect jumps, `rfe`, and `halt`.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instr::Jump(_) | Instr::JumpInd(_) | Instr::Special(SpecialOp::Rfe) | Instr::Halt
        )
    }

    /// Whether this instruction is a control-flow break (branch, jump,
    /// call, indirect jump, trap, rfe, halt).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::CmpBranch(_)
                | Instr::Jump(_)
                | Instr::Call(_)
                | Instr::JumpInd(_)
                | Instr::Trap(_)
                | Instr::Special(SpecialOp::Rfe)
                | Instr::Halt
        )
    }

    /// The branch target (or loaded address), if the instruction has one.
    pub fn target(&self) -> Option<Target> {
        match self {
            Instr::CmpBranch(p) => Some(p.target),
            Instr::Jump(p) => Some(p.target),
            Instr::Call(p) => Some(p.target),
            Instr::Lea { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Replaces the branch target (no-op for targetless instructions).
    pub fn with_target(mut self, t: Target) -> Instr {
        match &mut self {
            Instr::CmpBranch(p) => p.target = t,
            Instr::Jump(p) => p.target = t,
            Instr::Call(p) => p.target = t,
            Instr::Lea { target, .. } => *target = t,
            _ => {}
        }
        self
    }

    /// Whether the instruction makes a data-memory reference.
    pub fn references_memory(&self) -> bool {
        matches!(self, Instr::Op { mem: Some(m), .. } if m.references_memory())
    }

    /// General registers read by the instruction (deduplicated).
    pub fn reads(&self) -> Vec<Reg> {
        fn push(v: &mut Vec<Reg>, r: Reg) {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        let mut v = Vec::new();
        match self {
            Instr::Op { alu, mem } => {
                if let Some(a) = alu {
                    // ic reads its destination word too (read-modify-write
                    // of the word register is expressed as b operand by
                    // convention in codegen; the data path reads only a,b).
                    for r in a.reads() {
                        push(&mut v, r);
                    }
                }
                if let Some(m) = mem {
                    for r in m.reads() {
                        push(&mut v, r);
                    }
                }
            }
            Instr::SetCond(p) => {
                for r in p.reads() {
                    push(&mut v, r);
                }
            }
            Instr::Mvi(_) => {}
            Instr::CmpBranch(p) => {
                for r in p.reads() {
                    push(&mut v, r);
                }
            }
            Instr::Jump(_) => {}
            Instr::Call(_) => {}
            Instr::JumpInd(p) => push(&mut v, p.base),
            Instr::Lea { .. } => {}
            Instr::Trap(_) => {}
            Instr::Special(SpecialOp::Write { src, .. }) => {
                if let Some(r) = src.reg() {
                    push(&mut v, r);
                }
            }
            Instr::Special(_) => {}
            Instr::Halt => {}
        }
        v
    }

    /// General registers written by the instruction.
    pub fn writes(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        match self {
            Instr::Op { alu, mem } => {
                if let Some(a) = alu {
                    v.push(a.dst);
                }
                if let Some(m) = mem {
                    if let Some(d) = m.writes() {
                        if !v.contains(&d) {
                            v.push(d);
                        }
                    }
                }
            }
            Instr::SetCond(p) => v.push(p.dst),
            Instr::Mvi(p) => v.push(p.dst),
            Instr::Call(p) => v.push(p.link),
            Instr::Lea { dst, .. } => v.push(*dst),
            Instr::Special(SpecialOp::Read { dst, .. }) => v.push(*dst),
            _ => {}
        }
        v
    }

    /// Validates piece field ranges and packed-pair legality (distinct
    /// destination registers, both pieces fit the packed form).
    pub fn is_valid(&self) -> bool {
        match self {
            Instr::Op {
                alu: Some(a),
                mem: Some(m),
            } => {
                if !m.is_valid() || !m.fits_packed() {
                    return false;
                }
                match m.writes() {
                    Some(d) => d != a.dst,
                    None => true,
                }
            }
            Instr::Op { mem: Some(m), .. } => m.is_valid(),
            _ => true,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Op {
                alu: None,
                mem: None,
            } => write!(f, "no-op"),
            Instr::Op {
                alu: Some(a),
                mem: None,
            } => write!(f, "{a}"),
            Instr::Op {
                alu: None,
                mem: Some(m),
            } => write!(f, "{m}"),
            Instr::Op {
                alu: Some(a),
                mem: Some(m),
            } => write!(f, "{a} ; {m}"),
            Instr::SetCond(p) => write!(f, "{p}"),
            Instr::Mvi(p) => write!(f, "{p}"),
            Instr::CmpBranch(p) => write!(f, "{p}"),
            Instr::Jump(p) => write!(f, "{p}"),
            Instr::Call(p) => write!(f, "{p}"),
            Instr::JumpInd(p) => write!(f, "{p}"),
            Instr::Trap(p) => write!(f, "{p}"),
            Instr::Lea { target, dst } => write!(f, "lea {target},{dst}"),
            Instr::Special(p) => write!(f, "{p}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::piece::{AluOp, MemMode};

    fn add_r1_r2_r3() -> AluPiece {
        AluPiece::new(AluOp::Add, Reg::R1.into(), Reg::R2.into(), Reg::R3)
    }

    fn ld_sp2_r0() -> MemPiece {
        MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: 2,
            },
            Reg::R0,
        )
    }

    #[test]
    fn nop_properties() {
        assert!(Instr::NOP.is_nop());
        assert!(!Instr::NOP.is_packed_pair());
        assert!(Instr::NOP.reads().is_empty());
        assert!(Instr::NOP.writes().is_empty());
        assert!(!Instr::NOP.references_memory());
        assert!(Instr::NOP.is_valid());
    }

    #[test]
    fn packed_pair_reads_and_writes() {
        let i = Instr::Op {
            alu: Some(add_r1_r2_r3()),
            mem: Some(ld_sp2_r0()),
        };
        assert!(i.is_packed_pair());
        assert_eq!(i.reads(), vec![Reg::R1, Reg::R2, Reg::SP]);
        assert_eq!(i.writes(), vec![Reg::R3, Reg::R0]);
        assert!(i.references_memory());
        assert!(i.is_valid());
    }

    #[test]
    fn packed_pair_same_dst_is_invalid() {
        let i = Instr::Op {
            alu: Some(AluPiece::new(
                AluOp::Add,
                Reg::R1.into(),
                Reg::R2.into(),
                Reg::R0,
            )),
            mem: Some(ld_sp2_r0()),
        };
        assert!(!i.is_valid());
    }

    #[test]
    fn packed_pair_with_long_disp_is_invalid() {
        let i = Instr::Op {
            alu: Some(add_r1_r2_r3()),
            mem: Some(MemPiece::load(
                MemMode::Based {
                    base: Reg::SP,
                    disp: 5000,
                },
                Reg::R0,
            )),
        };
        assert!(!i.is_valid());
        // Unpacked, the 16-bit displacement is fine.
        let j = Instr::mem(MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: 5000,
            },
            Reg::R0,
        ));
        assert!(j.is_valid());
    }

    #[test]
    fn branch_delays() {
        let b = Instr::CmpBranch(CmpBranchPiece::new(
            Cond::Eq,
            Reg::R1.into(),
            Reg::R2.into(),
            Target::Abs(10),
        ));
        assert_eq!(b.branch_delay(), 1);
        let j = Instr::JumpInd(JumpIndPiece {
            base: Reg::RA,
            disp: 0,
        });
        assert_eq!(j.branch_delay(), 2);
        assert_eq!(Instr::NOP.branch_delay(), 0);
        assert!(b.is_control());
        assert!(!Instr::NOP.is_control());
    }

    #[test]
    fn target_replacement() {
        let b = Instr::Jump(JumpPiece {
            target: Target::Label(Label::new(3)),
        });
        let b2 = b.with_target(Target::Abs(77));
        assert_eq!(b2.target(), Some(Target::Abs(77)));
        // with_target on a targetless instruction is a no-op
        assert_eq!(Instr::NOP.with_target(Target::Abs(1)), Instr::NOP);
    }

    #[test]
    fn call_writes_link() {
        let c = Instr::Call(CallPiece {
            target: Target::Abs(5),
            link: Reg::RA,
        });
        assert_eq!(c.writes(), vec![Reg::RA]);
        assert_eq!(c.branch_delay(), 1);
    }

    #[test]
    fn special_reg_codes_and_privilege() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_code(sr.code()), Some(sr));
            assert_eq!(SpecialReg::from_name(sr.name()), Some(sr));
        }
        assert!(SpecialReg::Surprise.privileged());
        assert!(!SpecialReg::Lo.privileged());
        assert!(SpecialReg::Pid.privileged());
    }

    #[test]
    fn long_immediate_not_packable() {
        let i = Instr::Op {
            alu: Some(add_r1_r2_r3()),
            mem: Some(MemPiece::LoadImm {
                value: 0x10000,
                dst: Reg::R5,
            }),
        };
        assert!(!i.is_valid());
    }
}
