//! Pipeline delay constants — the contract between the hardware (which
//! has **no interlocks**) and the reorganizer (which must respect these
//! numbers or insert no-ops).
//!
//! "The MIPS architecture employs the approach outlined here: there are no
//! hardware interlocks" (paper §4.2.1). The constraints software must
//! enforce are:
//!
//! * **Load delay** — the instruction immediately after a load sees the
//!   destination register's *old* value ([`LOAD_DELAY`] = 1 slot).
//! * **Branch delay** — "All branches in MIPS are delayed branches with a
//!   single instruction delay" ([`BRANCH_DELAY`] = 1): the sequence for a
//!   taken branch at `i` is `i, i+1, target`.
//! * **Indirect-jump delay** — indirect jumps "have a branch delay of
//!   two" ([`INDIRECT_DELAY`] = 2, paper §3.3), which is why the exception
//!   machinery saves *three* return addresses.
//!
//! ALU results, by contrast, are forwarded: an ALU or set-conditionally
//! result is visible to the very next instruction.

/// Number of instructions after a load that still observe the destination
/// register's old value.
pub const LOAD_DELAY: u32 = 1;

/// Delay slots after direct branches, jumps, and calls.
pub const BRANCH_DELAY: u32 = 1;

/// Delay slots after indirect jumps.
pub const INDIRECT_DELAY: u32 = 2;

/// Number of pipe stages; "all instructions execute in exactly five pipe
/// stages" (paper §3.2).
pub const PIPE_STAGES: u32 = 5;

/// Number of return addresses the exception machinery saves — enough to
/// restart inside the shadow of an indirect jump ([`INDIRECT_DELAY`] + 1).
pub const SAVED_RETURN_ADDRESSES: u32 = INDIRECT_DELAY + 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_addresses_cover_indirect_shadow() {
        // Spelled as a runtime check of the module's invariants; the
        // values are constants by design.
        assert_eq!(SAVED_RETURN_ADDRESSES, INDIRECT_DELAY + 1);
        assert_eq!(SAVED_RETURN_ADDRESSES, 3);
    }
}
