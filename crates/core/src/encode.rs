//! Binary encoding of instruction words.
//!
//! The physical Stanford MIPS packed its pieces into 32-bit words with
//! highly irregular field layouts; this reproduction uses a regular 64-bit
//! *serialization* of the same architectural content (one encoded word per
//! instruction slot). Static instruction counts — the quantity the paper's
//! Table 11 measures — count instruction slots, which is unaffected. See
//! DESIGN.md ("Architecture decisions").
//!
//! Every instruction encodes to one `u64` and decodes back exactly
//! ([`encode`] / [`decode`] round-trip, property-tested in
//! `tests/encode_roundtrip.rs`).

use crate::cond::Cond;
use crate::error::DecodeError;
use crate::instr::{Instr, SpecialOp, SpecialReg, Target};
use crate::piece::{
    AluOp, AluPiece, CallPiece, CmpBranchPiece, JumpIndPiece, JumpPiece, MemMode, MemPiece,
    MviPiece, Operand, SetCondPiece, TrapPiece, Width,
};
use crate::program::Label;
use crate::reg::Reg;
use crate::word::WordAddr;

/// Little-endian bit accumulator.
#[derive(Debug, Default)]
struct BitWriter {
    bits: u64,
    pos: u32,
}

impl BitWriter {
    fn put(&mut self, n: u32, v: u64) {
        debug_assert!(n == 64 || v < (1u64 << n), "value {v} overflows {n} bits");
        debug_assert!(self.pos + n <= 64, "encoding overflows 64 bits");
        self.bits |= v << self.pos;
        self.pos += n;
    }
}

/// Little-endian bit extractor.
#[derive(Debug)]
struct BitReader {
    bits: u64,
    pos: u32,
}

impl BitReader {
    fn new(bits: u64) -> BitReader {
        BitReader { bits, pos: 0 }
    }

    fn take(&mut self, n: u32) -> u64 {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let v = (self.bits >> self.pos) & mask;
        self.pos += n;
        v
    }
}

// Major opcodes.
const OPC_OP: u64 = 0;
const OPC_SETCOND: u64 = 1;
const OPC_MVI: u64 = 2;
const OPC_CMPBRANCH: u64 = 3;
const OPC_JUMP: u64 = 4;
const OPC_CALL: u64 = 5;
const OPC_JUMPIND: u64 = 6;
const OPC_TRAP: u64 = 7;
const OPC_SPECIAL_READ: u64 = 8;
const OPC_SPECIAL_WRITE: u64 = 9;
const OPC_RFE: u64 = 10;
const OPC_HALT: u64 = 11;
const OPC_LEA: u64 = 12;

fn put_operand(w: &mut BitWriter, o: Operand) {
    match o {
        Operand::Reg(r) => {
            w.put(1, 0);
            w.put(4, r.index() as u64);
        }
        Operand::Small(v) => {
            w.put(1, 1);
            w.put(4, v as u64);
        }
    }
}

fn take_operand(r: &mut BitReader) -> Operand {
    let is_const = r.take(1) == 1;
    let v = r.take(4) as u8;
    if is_const {
        Operand::Small(v)
    } else {
        Operand::Reg(Reg::from_index(v as usize).expect("4-bit index"))
    }
}

fn put_reg(w: &mut BitWriter, r: Reg) {
    w.put(4, r.index() as u64);
}

fn take_reg(r: &mut BitReader) -> Reg {
    Reg::from_index(r.take(4) as usize).expect("4-bit index")
}

fn put_alu(w: &mut BitWriter, p: &AluPiece) {
    w.put(5, p.op.code() as u64);
    put_operand(w, p.a);
    put_operand(w, p.b);
    put_reg(w, p.dst);
}

fn take_alu(r: &mut BitReader) -> Result<AluPiece, DecodeError> {
    let code = r.take(5) as u8;
    let op = AluOp::from_code(code).ok_or(DecodeError::BadAluOp(code))?;
    let a = take_operand(r);
    let b = take_operand(r);
    let dst = take_reg(r);
    Ok(AluPiece { op, a, b, dst })
}

fn put_mode(w: &mut BitWriter, m: &MemMode) {
    match *m {
        MemMode::Absolute(a) => {
            w.put(2, 0);
            w.put(24, a.value() as u64);
        }
        MemMode::Based { base, disp } => {
            w.put(2, 1);
            put_reg(w, base);
            w.put(16, (disp as i16) as u16 as u64);
        }
        MemMode::BasedIndexed { base, index } => {
            w.put(2, 2);
            put_reg(w, base);
            put_reg(w, index);
        }
        MemMode::BaseShifted { base, shift } => {
            w.put(2, 3);
            put_reg(w, base);
            w.put(3, shift as u64);
        }
    }
}

fn take_mode(r: &mut BitReader) -> Result<MemMode, DecodeError> {
    match r.take(2) {
        0 => Ok(MemMode::Absolute(WordAddr::new(r.take(24) as u32))),
        1 => {
            let base = take_reg(r);
            let disp = r.take(16) as u16 as i16 as i32;
            Ok(MemMode::Based { base, disp })
        }
        2 => {
            let base = take_reg(r);
            let index = take_reg(r);
            Ok(MemMode::BasedIndexed { base, index })
        }
        3 => {
            let base = take_reg(r);
            let shift = r.take(3) as u8;
            if shift == 0 || shift > MemMode::SHIFT_MAX {
                return Err(DecodeError::BadField("base shift amount"));
            }
            Ok(MemMode::BaseShifted { base, shift })
        }
        _ => unreachable!("2-bit tag"),
    }
}

fn put_width(w: &mut BitWriter, wd: Width) {
    w.put(1, matches!(wd, Width::Byte) as u64);
}

fn take_width(r: &mut BitReader) -> Width {
    if r.take(1) == 1 {
        Width::Byte
    } else {
        Width::Word
    }
}

fn put_mem(w: &mut BitWriter, m: &MemPiece) {
    match m {
        MemPiece::Load { mode, dst, width } => {
            w.put(2, 0);
            put_width(w, *width);
            put_reg(w, *dst);
            put_mode(w, mode);
        }
        MemPiece::Store { mode, src, width } => {
            w.put(2, 1);
            put_width(w, *width);
            put_reg(w, *src);
            put_mode(w, mode);
        }
        MemPiece::LoadImm { value, dst } => {
            w.put(2, 2);
            put_reg(w, *dst);
            w.put(24, *value as u64);
        }
    }
}

fn take_mem(r: &mut BitReader) -> Result<MemPiece, DecodeError> {
    match r.take(2) {
        0 => {
            let width = take_width(r);
            let dst = take_reg(r);
            let mode = take_mode(r)?;
            Ok(MemPiece::Load { mode, dst, width })
        }
        1 => {
            let width = take_width(r);
            let src = take_reg(r);
            let mode = take_mode(r)?;
            Ok(MemPiece::Store { mode, src, width })
        }
        2 => {
            let dst = take_reg(r);
            let value = r.take(24) as u32;
            Ok(MemPiece::LoadImm { value, dst })
        }
        t => Err(DecodeError::BadMemMode(t as u8)),
    }
}

fn put_target(w: &mut BitWriter, t: Target) {
    match t {
        Target::Abs(a) => {
            w.put(1, 0);
            w.put(25, a as u64 & ((1 << 25) - 1));
        }
        Target::Label(l) => {
            w.put(1, 1);
            w.put(25, l.id() as u64 & ((1 << 25) - 1));
        }
    }
}

fn take_target(r: &mut BitReader) -> Target {
    if r.take(1) == 1 {
        Target::Label(Label::new(r.take(25) as u32))
    } else {
        Target::Abs(r.take(25) as u32)
    }
}

fn put_cond(w: &mut BitWriter, c: Cond) {
    w.put(4, c.code() as u64);
}

fn take_cond(r: &mut BitReader) -> Cond {
    Cond::from_code(r.take(4) as u8).expect("4-bit condition")
}

/// Encodes one instruction to its binary word.
///
/// # Example
///
/// ```
/// use mips_core::{encode, Instr};
/// let w = encode::encode(&Instr::Halt);
/// assert_eq!(encode::decode(w).unwrap(), Instr::Halt);
/// ```
pub fn encode(i: &Instr) -> u64 {
    let mut w = BitWriter::default();
    match i {
        Instr::Op { alu, mem } => {
            w.put(6, OPC_OP);
            w.put(1, alu.is_some() as u64);
            w.put(1, mem.is_some() as u64);
            if let Some(a) = alu {
                put_alu(&mut w, a);
            }
            if let Some(m) = mem {
                put_mem(&mut w, m);
            }
        }
        Instr::SetCond(p) => {
            w.put(6, OPC_SETCOND);
            put_cond(&mut w, p.cond);
            put_operand(&mut w, p.a);
            put_operand(&mut w, p.b);
            put_reg(&mut w, p.dst);
        }
        Instr::Mvi(p) => {
            w.put(6, OPC_MVI);
            w.put(8, p.imm as u64);
            put_reg(&mut w, p.dst);
        }
        Instr::CmpBranch(p) => {
            w.put(6, OPC_CMPBRANCH);
            put_cond(&mut w, p.cond);
            put_operand(&mut w, p.a);
            put_operand(&mut w, p.b);
            put_target(&mut w, p.target);
        }
        Instr::Jump(p) => {
            w.put(6, OPC_JUMP);
            put_target(&mut w, p.target);
        }
        Instr::Call(p) => {
            w.put(6, OPC_CALL);
            put_reg(&mut w, p.link);
            put_target(&mut w, p.target);
        }
        Instr::JumpInd(p) => {
            w.put(6, OPC_JUMPIND);
            put_reg(&mut w, p.base);
            w.put(16, (p.disp as i16) as u16 as u64);
        }
        Instr::Trap(p) => {
            w.put(6, OPC_TRAP);
            w.put(12, p.code as u64);
        }
        Instr::Special(SpecialOp::Read { sr, dst }) => {
            w.put(6, OPC_SPECIAL_READ);
            w.put(4, sr.code() as u64);
            put_reg(&mut w, *dst);
        }
        Instr::Special(SpecialOp::Write { sr, src }) => {
            w.put(6, OPC_SPECIAL_WRITE);
            w.put(4, sr.code() as u64);
            put_operand(&mut w, *src);
        }
        Instr::Special(SpecialOp::Rfe) => w.put(6, OPC_RFE),
        Instr::Lea { target, dst } => {
            w.put(6, OPC_LEA);
            put_reg(&mut w, *dst);
            put_target(&mut w, *target);
        }
        Instr::Halt => w.put(6, OPC_HALT),
    }
    w.bits
}

/// Decodes a binary word back to an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes or out-of-range fields.
pub fn decode(bits: u64) -> Result<Instr, DecodeError> {
    let mut r = BitReader::new(bits);
    match r.take(6) {
        OPC_OP => {
            let has_alu = r.take(1) == 1;
            let has_mem = r.take(1) == 1;
            let alu = if has_alu {
                Some(take_alu(&mut r)?)
            } else {
                None
            };
            let mem = if has_mem {
                Some(take_mem(&mut r)?)
            } else {
                None
            };
            Ok(Instr::Op { alu, mem })
        }
        OPC_SETCOND => {
            let cond = take_cond(&mut r);
            let a = take_operand(&mut r);
            let b = take_operand(&mut r);
            let dst = take_reg(&mut r);
            Ok(Instr::SetCond(SetCondPiece { cond, a, b, dst }))
        }
        OPC_MVI => {
            let imm = r.take(8) as u8;
            let dst = take_reg(&mut r);
            Ok(Instr::Mvi(MviPiece { imm, dst }))
        }
        OPC_CMPBRANCH => {
            let cond = take_cond(&mut r);
            let a = take_operand(&mut r);
            let b = take_operand(&mut r);
            let target = take_target(&mut r);
            Ok(Instr::CmpBranch(CmpBranchPiece { cond, a, b, target }))
        }
        OPC_JUMP => Ok(Instr::Jump(JumpPiece {
            target: take_target(&mut r),
        })),
        OPC_CALL => {
            let link = take_reg(&mut r);
            let target = take_target(&mut r);
            Ok(Instr::Call(CallPiece { target, link }))
        }
        OPC_JUMPIND => {
            let base = take_reg(&mut r);
            let disp = r.take(16) as u16 as i16 as i32;
            Ok(Instr::JumpInd(JumpIndPiece { base, disp }))
        }
        OPC_TRAP => {
            let code = r.take(12) as u16;
            Ok(Instr::Trap(TrapPiece { code }))
        }
        OPC_SPECIAL_READ => {
            let c = r.take(4) as u8;
            let sr = SpecialReg::from_code(c).ok_or(DecodeError::BadSpecialReg(c))?;
            let dst = take_reg(&mut r);
            Ok(Instr::Special(SpecialOp::Read { sr, dst }))
        }
        OPC_SPECIAL_WRITE => {
            let c = r.take(4) as u8;
            let sr = SpecialReg::from_code(c).ok_or(DecodeError::BadSpecialReg(c))?;
            let src = take_operand(&mut r);
            Ok(Instr::Special(SpecialOp::Write { sr, src }))
        }
        OPC_RFE => Ok(Instr::Special(SpecialOp::Rfe)),
        OPC_LEA => {
            let dst = take_reg(&mut r);
            let target = take_target(&mut r);
            Ok(Instr::Lea { target, dst })
        }
        OPC_HALT => Ok(Instr::Halt),
        other => Err(DecodeError::BadOpcode(other as u8)),
    }
}

/// Encodes a whole instruction sequence.
pub fn encode_all(instrs: &[Instr]) -> Vec<u64> {
    instrs.iter().map(encode).collect()
}

/// Decodes a whole instruction sequence.
///
/// # Errors
///
/// Fails on the first word that does not decode.
pub fn decode_all(words: &[u64]) -> Result<Vec<Instr>, DecodeError> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Instr> {
        vec![
            Instr::NOP,
            Instr::alu(AluPiece::new(
                AluOp::Rsub,
                Operand::Small(1),
                Reg::R0.into(),
                Reg::R2,
            )),
            Instr::mem(MemPiece::load(
                MemMode::Based {
                    base: Reg::SP,
                    disp: -32768,
                },
                Reg::R0,
            )),
            Instr::mem(MemPiece::store(
                MemMode::BaseShifted {
                    base: Reg::R0,
                    shift: 2,
                },
                Reg::R2,
            )),
            Instr::mem(MemPiece::LoadImm {
                value: MemPiece::LONG_IMM_MAX,
                dst: Reg::R9,
            }),
            Instr::Op {
                alu: Some(AluPiece::new(
                    AluOp::Ic,
                    Reg::R3.into(),
                    Reg::R2.into(),
                    Reg::R2,
                )),
                mem: Some(MemPiece::load(
                    MemMode::BasedIndexed {
                        base: Reg::R1,
                        index: Reg::R4,
                    },
                    Reg::R5,
                )),
            },
            Instr::SetCond(SetCondPiece::new(
                Cond::Leu,
                Reg::R1.into(),
                Operand::Small(13),
                Reg::R2,
            )),
            Instr::Mvi(MviPiece {
                imm: 255,
                dst: Reg::R15,
            }),
            Instr::CmpBranch(CmpBranchPiece::new(
                Cond::Gt,
                Reg::R0.into(),
                Operand::Small(1),
                Target::Abs(123456),
            )),
            Instr::CmpBranch(CmpBranchPiece::new(
                Cond::Ne,
                Reg::R0.into(),
                Reg::R1.into(),
                Target::Label(Label::new(42)),
            )),
            Instr::Jump(JumpPiece {
                target: Target::Abs(0),
            }),
            Instr::Call(CallPiece {
                target: Target::Abs(777),
                link: Reg::RA,
            }),
            Instr::JumpInd(JumpIndPiece {
                base: Reg::RA,
                disp: -1,
            }),
            Instr::Trap(TrapPiece { code: 4095 }),
            Instr::Special(SpecialOp::Read {
                sr: SpecialReg::Surprise,
                dst: Reg::R1,
            }),
            Instr::Special(SpecialOp::Write {
                sr: SpecialReg::Lo,
                src: Reg::R0.into(),
            }),
            Instr::Special(SpecialOp::Rfe),
            Instr::Halt,
        ]
    }

    #[test]
    fn round_trip_samples() {
        for i in samples() {
            let w = encode(&i);
            let back = decode(w).unwrap_or_else(|e| panic!("decode {i}: {e}"));
            assert_eq!(back, i, "round trip of {i}");
        }
    }

    #[test]
    fn encode_all_round_trips() {
        let s = samples();
        let words = encode_all(&s);
        assert_eq!(decode_all(&words).unwrap(), s);
    }

    #[test]
    fn distinct_instructions_encode_distinctly() {
        let s = samples();
        let words = encode_all(&s);
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                assert_ne!(words[i], words[j], "{} vs {}", s[i], s[j]);
            }
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(63), Err(DecodeError::BadOpcode(63)));
    }

    #[test]
    fn bad_shift_rejected() {
        // Hand-build a load with BaseShifted shift=0.
        let mut w = BitWriter::default();
        w.put(6, OPC_OP);
        w.put(1, 0); // no alu
        w.put(1, 1); // mem
        w.put(2, 0); // load
        w.put(1, 0); // word
        w.put(4, 0); // dst r0
        w.put(2, 3); // BaseShifted
        w.put(4, 1); // base r1
        w.put(3, 0); // shift 0 — invalid
        assert_eq!(
            decode(w.bits),
            Err(DecodeError::BadField("base shift amount"))
        );
    }

    #[test]
    fn negative_displacement_round_trips() {
        for disp in [-32768, -1, 0, 1, 32767] {
            let i = Instr::mem(MemPiece::load(
                MemMode::Based {
                    base: Reg::R7,
                    disp,
                },
                Reg::R1,
            ));
            assert_eq!(decode(encode(&i)).unwrap(), i, "disp {disp}");
        }
    }
}

/// Magic number of the binary program image format.
pub const IMAGE_MAGIC: u64 = 0x4d49_5053_3139_3832; // "MIPS1982"

/// Serializes a resolved program to a binary image: magic, instruction
/// count, encoded instructions, then the symbol table (count, then
/// length-prefixed names with addresses).
///
/// # Example
///
/// ```
/// use mips_core::encode::{decode_program, encode_program};
/// use mips_core::{Instr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.define_symbol("main");
/// b.push(Instr::NOP);
/// b.push(Instr::Halt);
/// let p = b.finish().unwrap();
/// let image = encode_program(&p);
/// let back = decode_program(&image).unwrap();
/// assert_eq!(back.len(), 2);
/// assert_eq!(back.symbol("main"), Some(0));
/// ```
pub fn encode_program(p: &crate::Program) -> Vec<u64> {
    let mut out = vec![IMAGE_MAGIC, p.len() as u64];
    out.extend(p.instrs().iter().map(encode));
    let mut symbols: Vec<(&str, u32)> = p.symbols().collect();
    symbols.sort_unstable();
    out.push(symbols.len() as u64);
    for (name, addr) in symbols {
        let bytes = name.as_bytes();
        out.push(((bytes.len() as u64) << 32) | addr as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            out.push(u64::from_le_bytes(w));
        }
    }
    out
}

/// Deserializes a binary image produced by [`encode_program`].
///
/// # Errors
///
/// Returns [`DecodeError::BadField`] on a malformed image, or the inner
/// [`DecodeError`] of a bad instruction word.
pub fn decode_program(image: &[u64]) -> Result<crate::Program, DecodeError> {
    let bad = || DecodeError::BadField("program image structure");
    if image.len() < 2 || image[0] != IMAGE_MAGIC {
        return Err(DecodeError::BadField("program image magic"));
    }
    let n = image[1] as usize;
    let instrs_end = 2usize.checked_add(n).ok_or_else(bad)?;
    if image.len() < instrs_end + 1 {
        return Err(bad());
    }
    let instrs = decode_all(&image[2..instrs_end])?;
    let mut p = crate::Program::new(instrs);
    let nsyms = image[instrs_end] as usize;
    let mut pos = instrs_end + 1;
    for _ in 0..nsyms {
        let header = *image.get(pos).ok_or_else(bad)?;
        pos += 1;
        let len = (header >> 32) as usize;
        let addr = header as u32;
        let words = len.div_ceil(8);
        let mut bytes = Vec::with_capacity(len);
        for k in 0..words {
            let w = image.get(pos + k).ok_or_else(bad)?;
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        pos += words;
        bytes.truncate(len);
        let name =
            String::from_utf8(bytes).map_err(|_| DecodeError::BadField("symbol name encoding"))?;
        p.define_symbol(name, addr);
    }
    Ok(p)
}

#[cfg(test)]
mod image_tests {
    use super::*;
    use crate::{Instr, MviPiece, ProgramBuilder, Reg};

    fn sample_program() -> crate::Program {
        let mut b = ProgramBuilder::new();
        b.define_symbol("entry");
        b.push(Instr::Mvi(MviPiece {
            imm: 42,
            dst: Reg::R1,
        }));
        b.define_symbol("a_longer_symbol_name_spanning_words");
        b.push(Instr::Halt);
        b.finish().unwrap()
    }

    #[test]
    fn image_round_trip_with_symbols() {
        let p = sample_program();
        let img = encode_program(&p);
        let back = decode_program(&img).unwrap();
        assert_eq!(back.instrs(), p.instrs());
        assert_eq!(back.symbol("entry"), Some(0));
        assert_eq!(back.symbol("a_longer_symbol_name_spanning_words"), Some(1));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode_program(&[0, 0]).is_err());
        assert!(decode_program(&[]).is_err());
    }

    #[test]
    fn truncated_image_rejected() {
        let img = encode_program(&sample_program());
        for cut in 1..img.len() {
            assert!(
                decode_program(&img[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
