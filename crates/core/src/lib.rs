//! # mips-core — the Stanford MIPS instruction-set model
//!
//! This crate is the primary contribution of the reproduction: a faithful
//! model of the MIPS (Microprocessor without Interlocked Pipe Stages)
//! instruction set described in *Hennessy, Jouppi, Baskett, Gross, Gill,
//! Przybylski — "Hardware/Software Tradeoffs for Increased Performance"*
//! (ASPLOS 1982).
//!
//! The architectural choices the paper argues for are all visible in the
//! types of this crate:
//!
//! * **No condition codes.** Conditional control flow uses
//!   [`CmpBranchPiece`] (compare-and-branch with one of [`Cond`]'s sixteen
//!   comparisons) and boolean values are produced with [`SetCondPiece`]
//!   (*Set Conditionally*). There is no flags register anywhere in the
//!   machine state.
//! * **Word addressing.** Memory is addressed in 32-bit words
//!   ([`WordAddr`], 24-bit word address space = 16M words). Byte data is
//!   handled in software with the *insert byte* / *extract byte* ALU
//!   operations ([`AluOp::Xc`], [`AluOp::Ic`]) and the *base shifted*
//!   load/store mode ([`MemMode::BaseShifted`]).
//! * **Instruction pieces.** An instruction word holds an optional ALU
//!   piece and an optional load/store piece ([`Instr::Op`]); the post-pass
//!   reorganizer (crate `mips-reorg`) packs pieces into words.
//! * **Software-imposed interlocks.** The ISA defines a one-instruction
//!   load delay, a one-instruction branch delay, and a two-instruction
//!   delay for indirect jumps ([`delay`]); the hardware never stalls.
//! * **Orthogonal small immediates.** Every operand field can hold a
//!   four-bit constant ([`Operand::Small`]) and [`Instr::Mvi`] loads an
//!   eight-bit constant; *reverse operators* ([`AluOp::Rsub`],
//!   [`AluOp::Rsra`], …) make small negative constants expressible without
//!   sign extension hardware.
//!
//! The crate also provides a binary encoding ([`encode`]) with a full
//! decode round-trip, the unscheduled *linear code* form emitted by
//! compilers and consumed by the reorganizer ([`linear`]), and resolved,
//! runnable [`Program`]s.
//!
//! ## Example
//!
//! ```
//! use mips_core::{AluOp, AluPiece, Cond, Instr, Operand, Reg};
//!
//! // r2 := 1 - r0   (a reverse-subtract: constant minus register)
//! let rsub = Instr::alu(AluPiece::new(
//!     AluOp::Rsub,
//!     Operand::Reg(Reg::R0),
//!     Operand::small(1).unwrap(),
//!     Reg::R2,
//! ));
//! assert_eq!(rsub.to_string(), "rsub r0,#1,r2");
//!
//! // Compare-and-branch: one instruction, no condition code involved.
//! let word = mips_core::encode::encode(&rsub);
//! assert_eq!(mips_core::encode::decode(word).unwrap(), rsub);
//! assert!(Cond::Lt.eval(3, 5));
//! ```

pub mod cond;
pub mod delay;
pub mod encode;
pub mod error;
pub mod instr;
pub mod linear;
pub mod piece;
pub mod program;
pub mod reg;
pub mod word;

pub use cond::Cond;
pub use error::{DecodeError, ResolveError};
pub use instr::{Instr, SpecialOp, SpecialReg, Target};
pub use linear::{Item, LinearCode, OpMeta, RefClass, UnschedOp};
pub use piece::{
    AluOp, AluPiece, CallPiece, CmpBranchPiece, JumpIndPiece, JumpPiece, MemMode, MemPiece,
    MviPiece, Operand, Piece, SetCondPiece, TrapPiece, Width,
};
pub use program::{Label, Program, ProgramBuilder};
pub use reg::Reg;
pub use word::{ByteAddr, WordAddr, ADDR_BITS, MEM_WORDS, WORD_BYTES};
