//! Instruction pieces.
//!
//! "An instruction can consist of a load or store piece and an ALU piece"
//! (paper §3.3). Pieces are the unit the compiler emits and the
//! reorganizer schedules; the reorganizer then *packs* compatible pieces
//! into single instruction words ([`crate::Instr::Op`]).
//!
//! Operand fields are orthogonal: anywhere a source register may appear, a
//! four-bit constant `0..=15` may appear instead ([`Operand::Small`]),
//! which the paper's Table 1 shows covers ≈70% of constants in real
//! programs. Negative constants are expressed with *reverse operators*
//! ([`AluOp::Rsub`], the reverse shifts) rather than sign-extension
//! hardware.

use crate::cond::Cond;
use crate::instr::Target;
use crate::reg::Reg;
use crate::word::{self, WordAddr};
use std::fmt;

/// A source operand: a register or a four-bit immediate constant.
///
/// # Example
///
/// ```
/// use mips_core::{Operand, Reg};
/// assert_eq!(Operand::small(15), Some(Operand::Small(15)));
/// assert_eq!(Operand::small(16), None);
/// assert_eq!(Operand::Reg(Reg::R7).to_string(), "r7");
/// assert_eq!(Operand::Small(3).to_string(), "#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A four-bit constant in the range `0..=15`, stored in place of a
    /// register field.
    Small(u8),
}

impl Operand {
    /// Largest value representable by a small-constant operand.
    pub const SMALL_MAX: u8 = 15;

    /// Creates a small-constant operand, or `None` if `v > 15`.
    #[inline]
    pub fn small(v: u8) -> Option<Operand> {
        (v <= Self::SMALL_MAX).then_some(Operand::Small(v))
    }

    /// The register read by this operand, if any.
    #[inline]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Small(_) => None,
        }
    }

    /// True if the operand is an immediate constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Small(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Small(v) => write!(f, "#{v}"),
        }
    }
}

/// ALU operations.
///
/// Notable members:
///
/// * [`AluOp::Rsub`] / [`AluOp::Rsll`] / [`AluOp::Rsrl`] / [`AluOp::Rsra`]
///   — the *reverse operators* (paper §2.2): `rsub` computes `b - a`,
///   letting `1 - r0` and `r0 - 1` both use the four-bit constant `1`
///   without a sign bit.
/// * [`AluOp::Xc`] / [`AluOp::Ic`] — *extract byte* and *insert byte*
///   (paper §4.1), the software byte-addressing support.
/// * [`AluOp::Mul`], [`AluOp::Div`], [`AluOp::Rem`] — modeled as
///   single-cycle operations. The physical Stanford MIPS used multiply /
///   divide *steps* to keep every instruction at one cycle; collapsing the
///   step sequence changes only absolute cycle counts, not any of the
///   paper's comparisons (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// `dst = a + b` (signed overflow detectable).
    Add = 0,
    /// `dst = a - b` (signed overflow detectable).
    Sub = 1,
    /// Reverse subtract: `dst = b - a`.
    Rsub = 2,
    /// Bitwise and.
    And = 3,
    /// Bitwise or.
    Or = 4,
    /// Bitwise exclusive-or.
    Xor = 5,
    /// And-not (bit clear): `dst = a & !b`.
    Bic = 6,
    /// Logical shift left: `dst = a << (b & 31)`.
    Sll = 7,
    /// Logical shift right: `dst = a >> (b & 31)`.
    Srl = 8,
    /// Arithmetic shift right.
    Sra = 9,
    /// Reverse shift left: `dst = b << (a & 31)`.
    Rsll = 10,
    /// Reverse logical shift right: `dst = b >> (a & 31)`.
    Rsrl = 11,
    /// Reverse arithmetic shift right.
    Rsra = 12,
    /// Extract byte: `dst = (b >> 8*(a & 3)) & 0xff` — `a` is a byte
    /// pointer whose low two bits select the byte.
    Xc = 13,
    /// Insert byte: `dst = b` with byte `LO & 3` replaced by the low byte
    /// of `a`. The byte selector lives in the special register `lo`
    /// (paper: "for insert the byte pointer must be moved to a special
    /// register").
    Ic = 14,
    /// `dst = a * b` (low 32 bits; signed overflow detectable).
    Mul = 15,
    /// Signed division `dst = a / b`; division by zero is an arithmetic
    /// exception in the simulator.
    Div = 16,
    /// Signed remainder.
    Rem = 17,
}

impl AluOp {
    /// All operations in encoding order.
    pub const ALL: [AluOp; 18] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Rsub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Bic,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Rsll,
        AluOp::Rsrl,
        AluOp::Rsra,
        AluOp::Xc,
        AluOp::Ic,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
    ];

    /// 5-bit encoding.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes an opcode produced by [`AluOp::code`].
    pub fn from_code(c: u8) -> Option<AluOp> {
        AluOp::ALL.get(c as usize).copied()
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Rsub => "rsub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Bic => "bic",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Rsll => "rsll",
            AluOp::Rsrl => "rsrl",
            AluOp::Rsra => "rsra",
            AluOp::Xc => "xc",
            AluOp::Ic => "ic",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }

    /// Parses a mnemonic produced by [`AluOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<AluOp> {
        AluOp::ALL.iter().copied().find(|o| o.mnemonic() == s)
    }

    /// Whether the operation reads the `lo` byte-selector special register.
    #[inline]
    pub fn reads_lo(self) -> bool {
        matches!(self, AluOp::Ic)
    }

    /// Evaluates the operation's data path.
    ///
    /// Returns the 32-bit result and an overflow/arithmetic-error flag
    /// (signed overflow for add/sub/mul; divide-by-zero for div/rem — in
    /// which case the result is 0).
    pub fn eval(self, a: u32, b: u32, lo: u32) -> (u32, bool) {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            AluOp::Add => {
                let (r, o) = sa.overflowing_add(sb);
                (r as u32, o)
            }
            AluOp::Sub => {
                let (r, o) = sa.overflowing_sub(sb);
                (r as u32, o)
            }
            AluOp::Rsub => {
                let (r, o) = sb.overflowing_sub(sa);
                (r as u32, o)
            }
            AluOp::And => (a & b, false),
            AluOp::Or => (a | b, false),
            AluOp::Xor => (a ^ b, false),
            AluOp::Bic => (a & !b, false),
            AluOp::Sll => (a << (b & 31), false),
            AluOp::Srl => (a >> (b & 31), false),
            AluOp::Sra => ((sa >> (b & 31)) as u32, false),
            AluOp::Rsll => (b << (a & 31), false),
            AluOp::Rsrl => (b >> (a & 31), false),
            AluOp::Rsra => ((sb >> (a & 31)) as u32, false),
            AluOp::Xc => (word::extract_byte(b, a), false),
            AluOp::Ic => (word::insert_byte(b, lo, a), false),
            AluOp::Mul => {
                let (r, o) = sa.overflowing_mul(sb);
                (r as u32, o)
            }
            AluOp::Div => {
                if sb == 0 || (sa == i32::MIN && sb == -1) {
                    (0, true)
                } else {
                    ((sa / sb) as u32, false)
                }
            }
            AluOp::Rem => {
                if sb == 0 || (sa == i32::MIN && sb == -1) {
                    (0, true)
                } else {
                    ((sa % sb) as u32, false)
                }
            }
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An ALU piece: `dst = a op b`.
///
/// # Example
///
/// ```
/// use mips_core::{AluOp, AluPiece, Operand, Reg};
/// let p = AluPiece::new(AluOp::Add, Reg::R1.into(), Operand::Small(4), Reg::R2);
/// assert_eq!(p.to_string(), "add r1,#4,r2");
/// assert_eq!(p.reads(), vec![Reg::R1]);
/// assert_eq!(p.dst, Reg::R2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AluPiece {
    /// The operation.
    pub op: AluOp,
    /// First source operand.
    pub a: Operand,
    /// Second source operand.
    pub b: Operand,
    /// Destination register.
    pub dst: Reg,
}

impl AluPiece {
    /// Creates an ALU piece.
    pub fn new(op: AluOp, a: Operand, b: Operand, dst: Reg) -> AluPiece {
        AluPiece { op, a, b, dst }
    }

    /// Registers read by the piece (duplicates removed; excludes `lo`).
    pub fn reads(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        if let Some(r) = self.a.reg() {
            v.push(r);
        }
        if let Some(r) = self.b.reg() {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        v
    }
}

impl fmt::Display for AluPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {},{},{}", self.op, self.a, self.b, self.dst)
    }
}

/// Access width for the byte-addressed machine variant of §4.1.
///
/// The baseline word-addressed MIPS only ever uses [`Width::Word`];
/// executing a [`Width::Byte`] access on it is an illegal-instruction
/// exception. The byte-addressed variant (built for the Table 9/10 study)
/// accepts both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Width {
    /// A 32-bit word access.
    #[default]
    Word,
    /// An 8-bit byte access (byte-addressed variant only).
    Byte,
}

/// The addressing modes of load and store pieces (paper §2.2: "long
/// immediate, absolute, displacement(base), (base index), and base shifted
/// by n").
///
/// Long immediate is a [`MemPiece::LoadImm`], not a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemMode {
    /// A 24-bit absolute address.
    Absolute(WordAddr),
    /// `disp(base)`: base register plus signed displacement.
    Based {
        /// Base register.
        base: Reg,
        /// Signed word displacement.
        disp: i32,
    },
    /// `(base,index)`: sum of two registers.
    BasedIndexed {
        /// Base register.
        base: Reg,
        /// Index register.
        index: Reg,
    },
    /// `(base>>n)`: the base register shifted right by `n`, `1..=5` — used
    /// to turn a pointer to a packed `2^(5-n)`-bit object into the word
    /// address holding it (`n = 2` for bytes).
    BaseShifted {
        /// Base register (a packed-object pointer).
        base: Reg,
        /// Right-shift amount, `1..=5`.
        shift: u8,
    },
}

impl MemMode {
    /// Displacement range representable when the piece is *packed* with an
    /// ALU piece into one instruction word.
    pub const PACKED_DISP_MIN: i32 = -128;
    /// See [`MemMode::PACKED_DISP_MIN`].
    pub const PACKED_DISP_MAX: i32 = 127;
    /// Displacement range of a full-word (unpacked) load/store.
    pub const DISP_MIN: i32 = -(1 << 15);
    /// See [`MemMode::DISP_MIN`].
    pub const DISP_MAX: i32 = (1 << 15) - 1;
    /// Maximum base-shift amount.
    pub const SHIFT_MAX: u8 = 5;

    /// Registers read to form the address.
    pub fn reads(&self) -> Vec<Reg> {
        match *self {
            MemMode::Absolute(_) => vec![],
            MemMode::Based { base, .. } => vec![base],
            MemMode::BasedIndexed { base, index } => {
                if base == index {
                    vec![base]
                } else {
                    vec![base, index]
                }
            }
            MemMode::BaseShifted { base, .. } => vec![base],
        }
    }

    /// Computes the effective address given a register-read function.
    pub fn effective(&self, read: impl Fn(Reg) -> u32) -> u32 {
        match *self {
            MemMode::Absolute(a) => a.value(),
            MemMode::Based { base, disp } => read(base).wrapping_add(disp as u32),
            MemMode::BasedIndexed { base, index } => read(base).wrapping_add(read(index)),
            MemMode::BaseShifted { base, shift } => read(base) >> (shift & 31),
        }
    }

    /// Whether this mode fits in the packed (half-word) form, which has a
    /// short displacement field.
    pub fn fits_packed(&self) -> bool {
        match *self {
            MemMode::Based { disp, .. } => {
                (Self::PACKED_DISP_MIN..=Self::PACKED_DISP_MAX).contains(&disp)
            }
            // Absolute addresses need the long field: not packable.
            MemMode::Absolute(_) => false,
            MemMode::BasedIndexed { .. } | MemMode::BaseShifted { .. } => true,
        }
    }

    /// Validates field ranges (displacement, shift amount).
    pub fn is_valid(&self) -> bool {
        match *self {
            MemMode::Based { disp, .. } => (Self::DISP_MIN..=Self::DISP_MAX).contains(&disp),
            MemMode::BaseShifted { shift, .. } => (1..=Self::SHIFT_MAX).contains(&shift),
            _ => true,
        }
    }
}

impl fmt::Display for MemMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemMode::Absolute(a) => write!(f, "{a}"),
            MemMode::Based { base, disp } => write!(f, "{disp}({base})"),
            MemMode::BasedIndexed { base, index } => write!(f, "({base},{index})"),
            MemMode::BaseShifted { base, shift } => write!(f, "({base}>>{shift})"),
        }
    }
}

/// A load/store piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPiece {
    /// Load from memory into `dst`. The loaded value is subject to the
    /// one-instruction load delay ([`crate::delay::LOAD_DELAY`]).
    Load {
        /// Addressing mode.
        mode: MemMode,
        /// Destination register.
        dst: Reg,
        /// Access width (word unless on the byte-addressed variant).
        width: Width,
    },
    /// Store `src` to memory.
    Store {
        /// Addressing mode.
        mode: MemMode,
        /// Source register.
        src: Reg,
        /// Access width.
        width: Width,
    },
    /// *Long immediate*: load a 24-bit constant into `dst`. Uses the
    /// load-piece slot but makes no memory reference (so the data-memory
    /// cycle stays free).
    LoadImm {
        /// The constant, `0 .. 2^24`.
        value: u32,
        /// Destination register.
        dst: Reg,
    },
}

impl MemPiece {
    /// Largest long-immediate constant (24 bits).
    pub const LONG_IMM_MAX: u32 = (1 << 24) - 1;

    /// Convenience constructor for a word load.
    pub fn load(mode: MemMode, dst: Reg) -> MemPiece {
        MemPiece::Load {
            mode,
            dst,
            width: Width::Word,
        }
    }

    /// Convenience constructor for a word store.
    pub fn store(mode: MemMode, src: Reg) -> MemPiece {
        MemPiece::Store {
            mode,
            src,
            width: Width::Word,
        }
    }

    /// Registers read by the piece.
    pub fn reads(&self) -> Vec<Reg> {
        match self {
            MemPiece::Load { mode, .. } => mode.reads(),
            MemPiece::Store { mode, src, .. } => {
                let mut v = mode.reads();
                if !v.contains(src) {
                    v.push(*src);
                }
                v
            }
            MemPiece::LoadImm { .. } => vec![],
        }
    }

    /// The register written (loads only).
    pub fn writes(&self) -> Option<Reg> {
        match self {
            MemPiece::Load { dst, .. } | MemPiece::LoadImm { dst, .. } => Some(*dst),
            MemPiece::Store { .. } => None,
        }
    }

    /// Whether the piece makes a data-memory reference (long immediates do
    /// not — their memory cycle stays free).
    pub fn references_memory(&self) -> bool {
        !matches!(self, MemPiece::LoadImm { .. })
    }

    /// True if the loaded value arrives with the load delay (i.e. the
    /// piece is a real load; long immediates behave like ALU results).
    pub fn is_delayed_load(&self) -> bool {
        matches!(self, MemPiece::Load { .. })
    }

    /// Whether the piece may occupy the packed (half-word) form.
    pub fn fits_packed(&self) -> bool {
        match self {
            MemPiece::Load { mode, .. } | MemPiece::Store { mode, .. } => mode.fits_packed(),
            MemPiece::LoadImm { .. } => false,
        }
    }

    /// Field-range validity.
    pub fn is_valid(&self) -> bool {
        match self {
            MemPiece::Load { mode, .. } | MemPiece::Store { mode, .. } => mode.is_valid(),
            MemPiece::LoadImm { value, .. } => *value <= Self::LONG_IMM_MAX,
        }
    }
}

impl fmt::Display for MemPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemPiece::Load { mode, dst, width } => match width {
                Width::Word => write!(f, "ld {mode},{dst}"),
                Width::Byte => write!(f, "ldb {mode},{dst}"),
            },
            MemPiece::Store { mode, src, width } => match width {
                Width::Word => write!(f, "st {src},{mode}"),
                Width::Byte => write!(f, "stb {src},{mode}"),
            },
            MemPiece::LoadImm { value, dst } => write!(f, "lim #{value},{dst}"),
        }
    }
}

/// A generic piece: the unit of scheduling before packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Piece {
    /// An ALU piece.
    Alu(AluPiece),
    /// A load/store piece.
    Mem(MemPiece),
}

impl fmt::Display for Piece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Piece::Alu(p) => write!(f, "{p}"),
            Piece::Mem(p) => write!(f, "{p}"),
        }
    }
}

/// *Set Conditionally* (paper §2.3.2): performs one of the sixteen
/// comparisons and sets `dst` to one or zero. This is MIPS's replacement
/// for condition-code + conditional-set sequences; boolean expressions
/// compile to straight-line code with no branches (Figure 3).
///
/// # Example
///
/// ```
/// use mips_core::{Cond, Operand, Reg, SetCondPiece};
/// let s = SetCondPiece::new(Cond::Eq, Reg::R1.into(), Operand::Small(13), Reg::R2);
/// assert_eq!(s.to_string(), "seq r1,#13,r2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetCondPiece {
    /// The comparison.
    pub cond: Cond,
    /// First comparand.
    pub a: Operand,
    /// Second comparand.
    pub b: Operand,
    /// Register set to 0 or 1.
    pub dst: Reg,
}

impl SetCondPiece {
    /// Creates a *Set Conditionally* piece.
    pub fn new(cond: Cond, a: Operand, b: Operand, dst: Reg) -> SetCondPiece {
        SetCondPiece { cond, a, b, dst }
    }

    /// Registers read.
    pub fn reads(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        if let Some(r) = self.a.reg() {
            v.push(r);
        }
        if let Some(r) = self.b.reg() {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        v
    }
}

impl fmt::Display for SetCondPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{} {},{},{}", self.cond, self.a, self.b, self.dst)
    }
}

/// Move-immediate: loads an 8-bit constant (paper §2.2: "a move immediate
/// instruction will load an 8-bit constant into any register"; Table 1
/// shows this covers all but ≈5% of constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MviPiece {
    /// The 8-bit constant.
    pub imm: u8,
    /// Destination register.
    pub dst: Reg,
}

impl fmt::Display for MviPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mvi #{},{}", self.imm, self.dst)
    }
}

/// Compare-and-branch (paper §2.3.1): the single-instruction conditional
/// control-flow break. "In MIPS all instructions, including the compare
/// and branch instructions, take the same amount of execution time. Thus,
/// the comparison is to some extent free."
///
/// The branch is *delayed*: the next sequential instruction always
/// executes ([`crate::delay::BRANCH_DELAY`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmpBranchPiece {
    /// The comparison.
    pub cond: Cond,
    /// First comparand.
    pub a: Operand,
    /// Second comparand.
    pub b: Operand,
    /// Branch target.
    pub target: Target,
}

impl CmpBranchPiece {
    /// Creates a compare-and-branch.
    pub fn new(cond: Cond, a: Operand, b: Operand, target: Target) -> CmpBranchPiece {
        CmpBranchPiece { cond, a, b, target }
    }

    /// Registers read.
    pub fn reads(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        if let Some(r) = self.a.reg() {
            v.push(r);
        }
        if let Some(r) = self.b.reg() {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        v
    }
}

impl fmt::Display for CmpBranchPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{} {},{},{}", self.cond, self.a, self.b, self.target)
    }
}

/// Unconditional direct jump (delayed by one instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JumpPiece {
    /// Jump target.
    pub target: Target,
}

impl fmt::Display for JumpPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bra {}", self.target)
    }
}

/// Direct call: jumps to `target`, writing the return address (the
/// instruction after the delay slot) into `link`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallPiece {
    /// Call target.
    pub target: Target,
    /// Register receiving the return address.
    pub link: Reg,
}

impl fmt::Display for CallPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call {},{}", self.target, self.link)
    }
}

/// Indirect jump through a register (plus displacement), with a
/// **two**-instruction branch delay (paper §3.3: "indirect jumps, which
/// have a branch delay of two"). Used for returns, jump tables, and the
/// exception dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JumpIndPiece {
    /// Register holding the target instruction address.
    pub base: Reg,
    /// Signed displacement added to the register.
    pub disp: i32,
}

impl fmt::Display for JumpIndPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp == 0 {
            write!(f, "jmpi ({})", self.base)
        } else {
            write!(f, "jmpi {}({})", self.disp, self.base)
        }
    }
}

/// Software trap with a 12-bit code ("allowing 4096 different monitor
/// calls", paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrapPiece {
    /// Trap code, `0..4096`.
    pub code: u16,
}

impl TrapPiece {
    /// Number of distinct trap codes.
    pub const CODES: u16 = 1 << 12;

    /// Creates a trap piece; returns `None` when the code exceeds 12 bits.
    pub fn new(code: u16) -> Option<TrapPiece> {
        (code < Self::CODES).then_some(TrapPiece { code })
    }
}

impl fmt::Display for TrapPiece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap #{}", self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_small_range() {
        assert!(Operand::small(0).is_some());
        assert!(Operand::small(15).is_some());
        assert!(Operand::small(16).is_none());
        assert!(Operand::Small(9).is_const());
        assert_eq!(Operand::Reg(Reg::R4).reg(), Some(Reg::R4));
    }

    #[test]
    fn alu_op_codes_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
            assert_eq!(AluOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(AluOp::from_code(31), None);
    }

    #[test]
    fn reverse_subtract() {
        // rsub a,b → b - a: "1 - r0" with the constant in the a field.
        assert_eq!(AluOp::Rsub.eval(1, 10, 0), (9, false));
        assert_eq!(AluOp::Sub.eval(10, 1, 0), (9, false));
    }

    #[test]
    fn reverse_shifts() {
        assert_eq!(AluOp::Rsll.eval(2, 3, 0), (12, false));
        assert_eq!(AluOp::Sll.eval(3, 2, 0), (12, false));
        assert_eq!(AluOp::Rsra.eval(1, 0x8000_0000, 0), (0xC000_0000, false));
    }

    #[test]
    fn add_overflow_flag() {
        assert_eq!(AluOp::Add.eval(i32::MAX as u32, 1, 0), (0x8000_0000, true));
        assert_eq!(AluOp::Sub.eval(i32::MIN as u32, 1, 0), (0x7fff_ffff, true));
        assert_eq!(AluOp::Add.eval(1, 2, 0), (3, false));
    }

    #[test]
    fn divide_by_zero_flags() {
        assert_eq!(AluOp::Div.eval(5, 0, 0), (0, true));
        assert_eq!(AluOp::Rem.eval(5, 0, 0), (0, true));
        assert_eq!(AluOp::Div.eval(i32::MIN as u32, -1i32 as u32, 0), (0, true));
        assert_eq!(AluOp::Div.eval(7, 2, 0), (3, false));
        assert_eq!(AluOp::Rem.eval(7, 2, 0), (1, false));
        assert_eq!(AluOp::Div.eval(-7i32 as u32, 2, 0), (-3i32 as u32, false));
    }

    #[test]
    fn byte_ops_use_lo_for_insert_only() {
        // xc: selector is the first operand.
        assert_eq!(AluOp::Xc.eval(2, 0x4433_2211, 99), (0x33, false));
        // ic: selector is the lo special register.
        assert_eq!(AluOp::Ic.eval(0xAB, 0x4433_2211, 1), (0x4433_AB11, false));
        assert!(AluOp::Ic.reads_lo());
        assert!(!AluOp::Xc.reads_lo());
    }

    #[test]
    fn alu_piece_reads_dedups() {
        let p = AluPiece::new(AluOp::Add, Reg::R3.into(), Reg::R3.into(), Reg::R4);
        assert_eq!(p.reads(), vec![Reg::R3]);
        let q = AluPiece::new(AluOp::Add, Operand::Small(1), Operand::Small(2), Reg::R4);
        assert!(q.reads().is_empty());
    }

    #[test]
    fn mem_mode_effective_addresses() {
        let read = |r: Reg| match r {
            Reg::R1 => 100u32,
            Reg::R2 => 7,
            _ => 0,
        };
        assert_eq!(MemMode::Absolute(WordAddr::new(42)).effective(read), 42);
        assert_eq!(
            MemMode::Based {
                base: Reg::R1,
                disp: -4
            }
            .effective(read),
            96
        );
        assert_eq!(
            MemMode::BasedIndexed {
                base: Reg::R1,
                index: Reg::R2
            }
            .effective(read),
            107
        );
        assert_eq!(
            MemMode::BaseShifted {
                base: Reg::R1,
                shift: 2
            }
            .effective(read),
            25
        );
    }

    #[test]
    fn mem_mode_packing_rules() {
        assert!(MemMode::Based {
            base: Reg::R1,
            disp: 127
        }
        .fits_packed());
        assert!(!MemMode::Based {
            base: Reg::R1,
            disp: 128
        }
        .fits_packed());
        assert!(!MemMode::Absolute(WordAddr::new(0)).fits_packed());
        assert!(MemMode::BaseShifted {
            base: Reg::R1,
            shift: 2
        }
        .fits_packed());
    }

    #[test]
    fn mem_piece_reads_writes() {
        let ld = MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: 2,
            },
            Reg::R0,
        );
        assert_eq!(ld.reads(), vec![Reg::SP]);
        assert_eq!(ld.writes(), Some(Reg::R0));
        assert!(ld.references_memory());
        assert!(ld.is_delayed_load());

        let st = MemPiece::store(
            MemMode::BasedIndexed {
                base: Reg::R1,
                index: Reg::R2,
            },
            Reg::R2,
        );
        assert_eq!(st.reads(), vec![Reg::R1, Reg::R2]);
        assert_eq!(st.writes(), None);

        let li = MemPiece::LoadImm {
            value: 0x123456,
            dst: Reg::R5,
        };
        assert!(!li.references_memory());
        assert!(!li.is_delayed_load());
        assert!(li.is_valid());
        assert!(!MemPiece::LoadImm {
            value: 1 << 24,
            dst: Reg::R5
        }
        .is_valid());
    }

    #[test]
    fn display_matches_paper_style() {
        let ld = MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: 2,
            },
            Reg::R0,
        );
        assert_eq!(ld.to_string(), "ld 2(r14),r0");
        let xb = MemPiece::load(
            MemMode::BaseShifted {
                base: Reg::R0,
                shift: 2,
            },
            Reg::R1,
        );
        assert_eq!(xb.to_string(), "ld (r0>>2),r1");
        let tr = TrapPiece::new(17).unwrap();
        assert_eq!(tr.to_string(), "trap #17");
    }

    #[test]
    fn trap_code_range() {
        assert!(TrapPiece::new(4095).is_some());
        assert!(TrapPiece::new(4096).is_none());
    }
}
