//! General-purpose registers.
//!
//! The Stanford MIPS processor has sixteen 32-bit general-purpose
//! registers. Unlike later MIPS-company architectures, `r0` is an ordinary
//! register (it is not hardwired to zero); small constants come from the
//! four-bit immediate operand fields instead ([`crate::Operand::Small`]).

use std::fmt;

/// One of the sixteen general-purpose registers `r0`–`r15`.
///
/// Software conventions used by the `mips-hll` code generator (the
/// hardware attaches no meaning to any register):
///
/// | register | convention |
/// |---|---|
/// | `r13` | frame pointer (`fp`) |
/// | `r14` | stack pointer (`sp`) |
/// | `r15` | link register for calls (`ra`) |
///
/// # Example
///
/// ```
/// use mips_core::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::from_index(3), Some(Reg::R3));
/// assert_eq!(Reg::R14.to_string(), "r14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// Number of general-purpose registers in the machine.
    pub const COUNT: usize = 16;

    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Software-convention frame pointer.
    pub const FP: Reg = Reg::R13;
    /// Software-convention stack pointer.
    pub const SP: Reg = Reg::R14;
    /// Software-convention link (return-address) register.
    pub const RA: Reg = Reg::R15;

    /// The register's index, `0..16`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from an index.
    ///
    /// Returns `None` when `i >= 16`.
    #[inline]
    pub fn from_index(i: usize) -> Option<Reg> {
        Reg::ALL.get(i).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..Reg::COUNT {
            let r = Reg::from_index(i).expect("index in range");
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R15.to_string(), "r15");
    }

    #[test]
    fn conventions_are_distinct() {
        assert_ne!(Reg::FP, Reg::SP);
        assert_ne!(Reg::SP, Reg::RA);
        assert_ne!(Reg::FP, Reg::RA);
    }

    #[test]
    fn all_is_complete_and_ordered() {
        assert_eq!(Reg::ALL.len(), Reg::COUNT);
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
