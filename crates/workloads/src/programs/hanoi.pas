program hanoi;
{ Towers of Hanoi — deep recursion with tiny frames. }
var moves: integer;

procedure solve(n, from, onto, via: integer);
begin
  if n > 0 then
  begin
    solve(n - 1, from, via, onto);
    moves := moves + 1;
    solve(n - 1, via, onto, from)
  end
end;

begin
  moves := 0;
  solve(12, 1, 3, 2);
  writeln(moves)
end.
