program dispatch;
{ A tiny stack-machine interpreter: opcode dispatch through a case
  statement (which the MIPS compiler turns into a jump table reached via
  the two-delay-slot indirect jump — the idiom of the paper's exception
  dispatch). The most compiler-like of workloads. }
const codecap = 120;
      ophalt = 0;
      oppush = 1;   { operand follows }
      opadd = 2;
      opsub = 3;
      opmul = 4;
      opdup = 5;
      opswap = 6;
      opneg = 7;
      opprint = 8;
      opjnz = 9;    { target follows; pops condition }

var code: array [0..119] of integer;
    stack: array [0..31] of integer;
    pc, sp, n, steps: integer;
    running: boolean;

procedure emit(v: integer);
begin
  code[n] := v;
  n := n + 1
end;

procedure build;
var i, loopstart: integer;
begin
  n := 0;
  { sum of squares 1..9, computed the hard way }
  emit(oppush); emit(0);        { acc }
  for i := 1 to 9 do
  begin
    emit(oppush); emit(i);
    emit(opdup);
    emit(opmul);
    emit(opadd)
  end;
  emit(opprint);
  { a count-down loop: prints 5 4 3 2 1 }
  emit(oppush); emit(5);
  loopstart := n;
  emit(opdup);
  emit(opprint);
  emit(oppush); emit(1);
  emit(opswap);                 { [v,1] -> [1,v] }
  emit(opsub);                  { 1 - v }
  emit(opneg);                  { v - 1 }
  emit(opdup);
  emit(opjnz); emit(loopstart);
  emit(ophalt)
end;

procedure step;
var op, a, b: integer;
begin
  op := code[pc];
  pc := pc + 1;
  case op of
    ophalt:
      running := false;
    oppush:
      begin
        stack[sp] := code[pc];
        pc := pc + 1;
        sp := sp + 1
      end;
    opadd:
      begin
        sp := sp - 1;
        stack[sp - 1] := stack[sp - 1] + stack[sp]
      end;
    opsub:
      begin
        sp := sp - 1;
        stack[sp - 1] := stack[sp - 1] - stack[sp]
      end;
    opmul:
      begin
        sp := sp - 1;
        stack[sp - 1] := stack[sp - 1] * stack[sp]
      end;
    opdup:
      begin
        stack[sp] := stack[sp - 1];
        sp := sp + 1
      end;
    opswap:
      begin
        a := stack[sp - 1];
        b := stack[sp - 2];
        stack[sp - 1] := b;
        stack[sp - 2] := a
      end;
    opneg:
      stack[sp - 1] := -stack[sp - 1];
    opprint:
      begin
        sp := sp - 1;
        write(stack[sp], ' ')
      end;
    opjnz:
      begin
        a := code[pc];
        pc := pc + 1;
        sp := sp - 1;
        if stack[sp] <> 0 then pc := a
      end
  else
    running := false
  end;
  steps := steps + 1
end;

begin
  build;
  pc := 0; sp := 0; steps := 0;
  running := true;
  while running and (steps < 10000) do step;
  writeln('steps=', steps, ' depth=', sp, ' cap=', codecap)
end.
