program validate;
{ Record validation with compound boolean conditions — the
  multi-operator boolean expressions of the paper's Table 4
  (average 1.66 operators per expression). }
const nrec = 60;
var day, month, year, kind: array [1..60] of integer;
    code: array [1..60] of char;
    i, good, bad, leap, special: integer;
    ok, found: boolean;
    rec, key: integer;

procedure fill;
var i: integer;
begin
  for i := 1 to nrec do
  begin
    day[i] := (i * 11) mod 35;
    month[i] := (i * 7) mod 15;
    year[i] := 1900 + (i * 13) mod 130;
    kind[i] := i mod 5;
    code[i] := chr(ord('A') + (i * 3) mod 30)
  end
end;

function isleap(y: integer): boolean;
begin
  isleap := ((y mod 4 = 0) and (y mod 100 <> 0)) or (y mod 400 = 0)
end;

begin
  fill;
  good := 0; bad := 0; leap := 0; special := 0;
  for i := 1 to nrec do
  begin
    ok := (day[i] >= 1) and (day[i] <= 31)
      and (month[i] >= 1) and (month[i] <= 12);
    if ok and (year[i] >= 1901) and (year[i] <= 2000) then
      good := good + 1
    else
      bad := bad + 1;
    if isleap(year[i]) then leap := leap + 1;
    if ((code[i] >= 'A') and (code[i] <= 'Z'))
       or (kind[i] = 0) or (kind[i] = 4) then
      special := special + 1
  end;
  rec := 5; key := 5; i := 13;
  found := (rec = key) or (i = 13);
  while found and (rec < 8) and (key < 9) do
  begin
    rec := rec + 1;
    key := key + 1;
    found := (rec <> key) or ((rec > 0) and (key mod 2 = 1))
  end;
  writeln(good, ' ', bad, ' ', leap, ' ', special, ' ', rec, ' ', key)
end.
