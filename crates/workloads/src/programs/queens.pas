program queens;
{ Eight queens, counting all solutions — boolean-expression and
  recursion heavy. }
var cols: array [1..8] of boolean;
    diag1: array [2..16] of boolean;
    diag2: array [0..14] of boolean;  { (r - c) + 7 in 0..14 }
    solutions: integer;

procedure place(row: integer);
var c: integer;
begin
  if row > 8 then
    solutions := solutions + 1
  else
    for c := 1 to 8 do
      if cols[c] and diag1[row + c] and diag2[row - c + 7] then
      begin
        cols[c] := false;
        diag1[row + c] := false;
        diag2[row - c + 7] := false;
        place(row + 1);
        cols[c] := true;
        diag1[row + c] := true;
        diag2[row - c + 7] := true
      end
end;

var i: integer;

begin
  for i := 1 to 8 do cols[i] := true;
  for i := 2 to 16 do diag1[i] := true;
  for i := 0 to 14 do diag2[i] := true;
  solutions := 0;
  place(1);
  writeln(solutions)
end.
