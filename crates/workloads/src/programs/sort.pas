program sortbench;
{ Recursive quicksort plus an insertion-sort finish — compare- and
  branch-heavy integer work. }
const n = 200;
var a: array [1..200] of integer;
    i, seed, checksum: integer;
    ordered: boolean;

function nextrand: integer;
begin
  seed := (seed * 137 + 41) mod 10007;
  nextrand := seed
end;

procedure quick(lo, hi: integer);
var i, j, pivot, t: integer;
begin
  if lo < hi then
  begin
    pivot := a[(lo + hi) div 2];
    i := lo;
    j := hi;
    repeat
      while a[i] < pivot do i := i + 1;
      while a[j] > pivot do j := j - 1;
      if i <= j then
      begin
        t := a[i]; a[i] := a[j]; a[j] := t;
        i := i + 1;
        j := j - 1
      end
    until i > j;
    quick(lo, j);
    quick(i, hi)
  end
end;

begin
  seed := 7;
  for i := 1 to n do a[i] := nextrand;
  quick(1, n);
  ordered := true;
  checksum := 0;
  for i := 1 to n do
  begin
    checksum := (checksum + a[i] * i) mod 100003;
    if i > 1 then
      if a[i] < a[i - 1] then ordered := false
  end;
  if ordered then write('sorted ') else write('broken ');
  writeln(checksum)
end.
