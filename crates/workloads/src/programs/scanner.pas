program scanner;
{ A miniature lexical scanner over a synthetic source buffer — the
  compiler-like, text-heavy workload class of the paper's corpus
  ("compilers and VLSI design aid software; the programs are reasonably
  involved with text handling"). Counts identifiers, numbers, operators
  and skips blanks and comments. }
const buflen = 400;
var buf: packed array [0..399] of char;
    len, pos: integer;
    idents, numbers, operators, comments: integer;
    ch: char;

procedure emit(c: char);
begin
  if len < buflen then
  begin
    buf[len] := c;
    len := len + 1
  end
end;

procedure emitword(n: integer);
var i: integer;
begin
  for i := 1 to n do emit(chr(ord('a') + (i * 3) mod 26));
  emit(' ')
end;

procedure emitnum(v: integer);
begin
  while v > 0 do
  begin
    emit(chr(ord('0') + v mod 10));
    v := v div 10
  end;
  emit(' ')
end;

procedure fill;
var i: integer;
begin
  len := 0;
  for i := 1 to 8 do
  begin
    emitword(3 + i mod 5);
    emitnum(i * 137);
    emit('+');
    emit(' ');
    emitword(2 + i mod 3);
    if i mod 3 = 0 then
    begin
      emit('{');
      emitword(4);
      emit('}')
    end;
    emit(':');
    emit('=');
    emit(' ')
  end
end;

function isletter(c: char): boolean;
begin
  isletter := (c >= 'a') and (c <= 'z')
end;

function isdigit(c: char): boolean;
begin
  isdigit := (c >= '0') and (c <= '9')
end;

begin
  fill;
  idents := 0; numbers := 0; operators := 0; comments := 0;
  pos := 0;
  while pos < len do
  begin
    ch := buf[pos];
    if ch = ' ' then
      pos := pos + 1
    else if isletter(ch) then
    begin
      idents := idents + 1;
      while (pos < len) and isletter(buf[pos]) do pos := pos + 1
    end
    else if isdigit(ch) then
    begin
      numbers := numbers + 1;
      while (pos < len) and isdigit(buf[pos]) do pos := pos + 1
    end
    else if ch = '{' then
    begin
      comments := comments + 1;
      while (pos < len) and (buf[pos] <> '}') do pos := pos + 1;
      pos := pos + 1
    end
    else
    begin
      operators := operators + 1;
      pos := pos + 1
    end
  end;
  writeln(idents, ' ', numbers, ' ', operators, ' ', comments)
end.
