program strings;
{ String copying, comparing, and searching over packed character
  arrays — the byte-operation workload behind Tables 7-10. }
const cap = 120;
var a, b, pat: packed array [0..119] of char;
    la, lpat, i, hits, cmps: integer;

procedure build;
var i: integer;
begin
  la := 96;
  for i := 0 to la - 1 do
    a[i] := chr(ord('a') + (i * 5 + i div 7) mod 26);
  lpat := 3;
  pat[0] := a[17];
  pat[1] := a[18];
  pat[2] := a[19]
end;

procedure copystr;
var i: integer;
begin
  for i := 0 to la - 1 do b[i] := a[i]
end;

function equalstr: boolean;
var i: integer;
    ok: boolean;
begin
  ok := true;
  i := 0;
  while ok and (i < la) do
  begin
    if a[i] <> b[i] then ok := false;
    i := i + 1
  end;
  equalstr := ok
end;

function search: integer;
var i, j, found: integer;
    match: boolean;
begin
  found := 0;
  hits := 0;
  for i := 0 to la - lpat do
  begin
    match := true;
    j := 0;
    while match and (j < lpat) do
    begin
      cmps := cmps + 1;
      if a[i + j] <> pat[j] then match := false;
      j := j + 1
    end;
    if match then
    begin
      hits := hits + 1;
      if found = 0 then found := i + 1
    end
  end;
  search := found
end;

begin
  cmps := 0;
  build;
  copystr;
  if equalstr then write('eq ') else write('ne ');
  i := search;
  writeln(i, ' ', hits, ' ', cmps, ' ', cap)
end.
