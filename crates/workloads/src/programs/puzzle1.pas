program puzzle1;
{ Baskett's Puzzle benchmark, "pointer" version: the "Puzzle 1" input of
  the paper's Table 11. The piece membership table is a flat vector
  walked with computed offsets (the Pascal rendition of the pointer-
  chasing C variant). }
const size = 511;
      classmax = 3;
      typemax = 12;
      d = 8;
      psize = 6655; { (typemax+1)*(size+1) - 1 }

var piececount: array [0..classmax] of integer;
    pclass: array [0..typemax] of integer;
    piecemax: array [0..typemax] of integer;
    puzzle: array [0..size] of boolean;
    pflat: array [0..psize] of boolean;
    pbase: array [0..typemax] of integer;
    n, kount, m: integer;

function fit(i, j: integer): boolean;
var pp, last, off: integer;
    ok: boolean;
begin
  ok := true;
  pp := pbase[i];
  last := pbase[i] + piecemax[i];
  off := j - pbase[i];
  while ok and (pp <= last) do
  begin
    if pflat[pp] then
      if puzzle[pp + off] then ok := false;
    pp := pp + 1
  end;
  fit := ok
end;

function place(i, j: integer): integer;
var pp, last, off, k, r: integer;
begin
  pp := pbase[i];
  last := pbase[i] + piecemax[i];
  off := j - pbase[i];
  while pp <= last do
  begin
    if pflat[pp] then puzzle[pp + off] := true;
    pp := pp + 1
  end;
  piececount[pclass[i]] := piececount[pclass[i]] - 1;
  r := 0;
  k := j;
  while (r = 0) and (k <= size) do
  begin
    if not puzzle[k] then r := k;
    k := k + 1
  end;
  place := r
end;

procedure removep(i, j: integer);
var pp, last, off: integer;
begin
  pp := pbase[i];
  last := pbase[i] + piecemax[i];
  off := j - pbase[i];
  while pp <= last do
  begin
    if pflat[pp] then puzzle[pp + off] := false;
    pp := pp + 1
  end;
  piececount[pclass[i]] := piececount[pclass[i]] + 1
end;

function trial(j: integer): boolean;
var i, k: integer;
    won: boolean;
begin
  kount := kount + 1;
  won := false;
  i := 0;
  while (not won) and (i <= typemax) do
  begin
    if piececount[pclass[i]] <> 0 then
      if fit(i, j) then
      begin
        k := place(i, j);
        if trial(k) or (k = 0) then
          won := true
        else
          removep(i, j)
      end;
    i := i + 1
  end;
  trial := won
end;

procedure definepiece(index, cls, x, y, z: integer);
var i, j, k: integer;
begin
  for i := 0 to x do
    for j := 0 to y do
      for k := 0 to z do
        pflat[pbase[index] + i + d * (j + d * k)] := true;
  pclass[index] := cls;
  piecemax[index] := x + d * (y + d * z)
end;

var i, j, k: integer;

begin
  for i := 0 to typemax do pbase[i] := i * (size + 1);
  for m := 0 to size do puzzle[m] := true;
  for i := 1 to 5 do
    for j := 1 to 5 do
      for k := 1 to 5 do
        puzzle[i + d * (j + d * k)] := false;
  for m := 0 to psize do pflat[m] := false;

  definepiece(0, 0, 3, 1, 0);
  definepiece(1, 0, 1, 0, 3);
  definepiece(2, 0, 0, 3, 1);
  definepiece(3, 0, 1, 3, 0);
  definepiece(4, 0, 3, 0, 1);
  definepiece(5, 0, 0, 1, 3);
  definepiece(6, 1, 2, 0, 0);
  definepiece(7, 1, 0, 2, 0);
  definepiece(8, 1, 0, 0, 2);
  definepiece(9, 2, 1, 1, 0);
  definepiece(10, 2, 1, 0, 1);
  definepiece(11, 2, 0, 1, 1);
  definepiece(12, 3, 1, 1, 1);

  piececount[0] := 13;
  piececount[1] := 3;
  piececount[2] := 1;
  piececount[3] := 1;

  m := 1 + d * (1 + d);
  kount := 0;
  if fit(0, m) then
    n := place(0, m)
  else
    writeln('error 1');
  if trial(n) then
    writeln('success in ', kount, ' trials')
  else
    writeln('failure in ', kount, ' trials')
end.
