program wordcount;
{ Counts characters, words, and lines in a synthetic text buffer —
  classic character-at-a-time processing (paper §4.1: "many of the
  operations that deal with characters concern copying and comparing
  strings"). }
const buflen = 600;
var text: packed array [0..599] of char;
    n, i, chars, words, lines: integer;
    inword: boolean;
    c: char;

procedure build;
var i, w, k: integer;
begin
  n := 0;
  for i := 1 to 12 do
  begin
    for w := 1 to 1 + i mod 4 do
    begin
      for k := 0 to 2 + (i + w) mod 4 do
        if n < buflen then
        begin
          text[n] := chr(ord('a') + (i + w + k) mod 26);
          n := n + 1
        end;
      if n < buflen then
      begin
        text[n] := ' ';
        n := n + 1
      end
    end;
    if n < buflen then
    begin
      text[n] := chr(10);
      n := n + 1
    end
  end
end;

begin
  build;
  chars := 0; words := 0; lines := 0;
  inword := false;
  for i := 0 to n - 1 do
  begin
    c := text[i];
    chars := chars + 1;
    if c = chr(10) then lines := lines + 1;
    if (c = ' ') or (c = chr(10)) then
      inword := false
    else if not inword then
    begin
      inword := true;
      words := words + 1
    end
  end;
  writeln(chars, ' ', words, ' ', lines)
end.
