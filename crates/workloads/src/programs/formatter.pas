program formatter;
{ A tiny text formatter: re-flows a synthetic paragraph to a fixed line
  width, right-padding with blanks — heavy character movement between
  packed buffers (the paper's text-handling workload class). }
const srccap = 300;
      width = 24;
var src: packed array [0..299] of char;
    line: packed array [0..23] of char;
    n, pos, col, linesout, padded: integer;

procedure build;
var i, w, k: integer;
begin
  n := 0;
  for i := 1 to 14 do
  begin
    for w := 0 to 2 + (i * 3) mod 5 do
      if n < srccap then
      begin
        src[n] := chr(ord('a') + (i + w) mod 26);
        n := n + 1
      end;
    if n < srccap then
    begin
      src[n] := ' ';
      n := n + 1
    end
  end
end;

procedure flushline;
var i: integer;
begin
  while col < width do
  begin
    line[col] := ' ';
    col := col + 1;
    padded := padded + 1
  end;
  for i := 0 to width - 1 do write(line[i]);
  writeln;
  linesout := linesout + 1;
  col := 0
end;

function wordlen(start: integer): integer;
var k: integer;
begin
  k := start;
  while (k < n) and (src[k] <> ' ') do k := k + 1;
  wordlen := k - start
end;

var i, wl: integer;

begin
  build;
  col := 0; linesout := 0; padded := 0;
  pos := 0;
  while pos < n do
  begin
    if src[pos] = ' ' then
      pos := pos + 1
    else
    begin
      wl := wordlen(pos);
      if (col + wl >= width) and (col > 0) then flushline;
      if col > 0 then
      begin
        line[col] := ' ';
        col := col + 1
      end;
      for i := 0 to wl - 1 do
        if col < width then
        begin
          line[col] := src[pos + i];
          col := col + 1
        end;
      pos := pos + wl
    end
  end;
  if col > 0 then flushline;
  writeln(linesout, ' ', padded)
end.
