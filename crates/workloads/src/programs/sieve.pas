program sieve;
{ Sieve of Eratosthenes over a packed boolean array. }
const limit = 1000;
var composite: packed array [2..1000] of boolean;
    i, j, count, last: integer;

begin
  for i := 2 to limit do composite[i] := false;
  i := 2;
  while i * i <= limit do
  begin
    if not composite[i] then
    begin
      j := i * i;
      while j <= limit do
      begin
        composite[j] := true;
        j := j + i
      end
    end;
    i := i + 1
  end;
  count := 0;
  last := 0;
  for i := 2 to limit do
    if not composite[i] then
    begin
      count := count + 1;
      last := i
    end;
  writeln(count, ' ', last)
end.
