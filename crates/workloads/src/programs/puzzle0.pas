program puzzle0;
{ Baskett's Puzzle benchmark ("an informal compute bound benchmark,
  widely circulated and run"), subscripted-array version: the "Puzzle 0"
  input of the paper's Table 11. Packs thirteen pieces into a 5x5x5 cube
  embedded in an 8x8x8 space. }
const size = 511;
      classmax = 3;
      typemax = 12;
      d = 8;

var piececount: array [0..classmax] of integer;
    pclass: array [0..typemax] of integer;
    piecemax: array [0..typemax] of integer;
    puzzle: array [0..size] of boolean;
    p: array [0..typemax] of array [0..size] of boolean;
    n, kount, m: integer;

function fit(i, j: integer): boolean;
var k: integer;
    ok: boolean;
begin
  ok := true;
  k := 0;
  while ok and (k <= piecemax[i]) do
  begin
    if p[i][k] then
      if puzzle[j + k] then ok := false;
    k := k + 1
  end;
  fit := ok
end;

function place(i, j: integer): integer;
var k, r: integer;
begin
  for k := 0 to piecemax[i] do
    if p[i][k] then puzzle[j + k] := true;
  piececount[pclass[i]] := piececount[pclass[i]] - 1;
  r := 0;
  k := j;
  while (r = 0) and (k <= size) do
  begin
    if not puzzle[k] then r := k;
    k := k + 1
  end;
  place := r
end;

procedure removep(i, j: integer);
var k: integer;
begin
  for k := 0 to piecemax[i] do
    if p[i][k] then puzzle[j + k] := false;
  piececount[pclass[i]] := piececount[pclass[i]] + 1
end;

function trial(j: integer): boolean;
var i, k: integer;
    won: boolean;
begin
  kount := kount + 1;
  won := false;
  i := 0;
  while (not won) and (i <= typemax) do
  begin
    if piececount[pclass[i]] <> 0 then
      if fit(i, j) then
      begin
        k := place(i, j);
        if trial(k) or (k = 0) then
          won := true
        else
          removep(i, j)
      end;
    i := i + 1
  end;
  trial := won
end;

procedure definepiece(index, cls, x, y, z: integer);
var i, j, k: integer;
begin
  for i := 0 to x do
    for j := 0 to y do
      for k := 0 to z do
        p[index][i + d * (j + d * k)] := true;
  pclass[index] := cls;
  piecemax[index] := x + d * (y + d * z)
end;

var i, j, k: integer;

begin
  for m := 0 to size do puzzle[m] := true;
  for i := 1 to 5 do
    for j := 1 to 5 do
      for k := 1 to 5 do
        puzzle[i + d * (j + d * k)] := false;
  for i := 0 to typemax do
    for m := 0 to size do
      p[i][m] := false;

  definepiece(0, 0, 3, 1, 0);
  definepiece(1, 0, 1, 0, 3);
  definepiece(2, 0, 0, 3, 1);
  definepiece(3, 0, 1, 3, 0);
  definepiece(4, 0, 3, 0, 1);
  definepiece(5, 0, 0, 1, 3);
  definepiece(6, 1, 2, 0, 0);
  definepiece(7, 1, 0, 2, 0);
  definepiece(8, 1, 0, 0, 2);
  definepiece(9, 2, 1, 1, 0);
  definepiece(10, 2, 1, 0, 1);
  definepiece(11, 2, 0, 1, 1);
  definepiece(12, 3, 1, 1, 1);

  piececount[0] := 13;
  piececount[1] := 3;
  piececount[2] := 1;
  piececount[3] := 1;

  m := 1 + d * (1 + d);
  kount := 0;
  if fit(0, m) then
    n := place(0, m)
  else
    writeln('error 1');
  if trial(n) then
    writeln('success in ', kount, ' trials')
  else
    writeln('failure in ', kount, ' trials')
end.
