program matmul;
{ Small integer matrix multiply — array-indexing and multiply-add
  intensive. }
const n = 12;
var a, b, c: array [0..11] of array [0..11] of integer;
    i, j, k, s, trace: integer;

begin
  for i := 0 to n - 1 do
    for j := 0 to n - 1 do
    begin
      a[i][j] := (i + 2 * j) mod 9 - 4;
      b[i][j] := (3 * i - j) mod 7 + 1
    end;
  for i := 0 to n - 1 do
    for j := 0 to n - 1 do
    begin
      s := 0;
      for k := 0 to n - 1 do
        s := s + a[i][k] * b[k][j];
      c[i][j] := s
    end;
  trace := 0;
  for i := 0 to n - 1 do
    trace := trace + c[i][i];
  writeln(trace)
end.
