program fibbonacci;
{ The Fibonacci program of the paper's Table 11. }
var result: integer;

function fib(n: integer): integer;
begin
  if n < 2 then
    fib := n
  else
    fib := fib(n - 1) + fib(n - 2)
end;

begin
  result := fib(16);
  writeln('fib(16)=', result)
end.
