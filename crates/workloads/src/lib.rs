//! # mips-workloads — the benchmark corpus
//!
//! The paper's measurements come from "a collection of Pascal programs
//! including compilers, optimizers, and VLSI design aid software; the
//! programs are reasonably involved with text handling, and little or no
//! compute intensive (e.g., floating point) tasks are included" (§4.1),
//! plus the Table 11 inputs: "an implementation of computing Fibbonacci
//! numbers and two implementations of the Puzzle benchmark".
//!
//! This crate is the stand-in corpus: eleven Pasqal programs spanning the
//! same mix — the exact Table 11 workloads (Fibonacci, Puzzle 0
//! subscripted, Puzzle 1 pointer-style) and a text-heavy/compiler-like
//! set (scanner, word count, string operations, formatter) alongside
//! integer kernels (sort, queens, matmul, hanoi, sieve).
//!
//! ## Example
//!
//! ```
//! use mips_workloads::{corpus, get};
//! assert!(corpus().len() >= 11);
//! let fib = get("fib").unwrap();
//! let out = mips_hll::run_program(fib.source).unwrap();
//! assert_eq!(out, "fib(16)=987\n");
//! ```

/// One corpus program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name.
    pub name: &'static str,
    /// Pasqal source.
    pub source: &'static str,
    /// Part of the text-handling/compiler-like class (drives the
    /// character-data mix of Tables 7–8).
    pub text_heavy: bool,
    /// One of the paper's Table 11 inputs.
    pub table11: bool,
}

/// The corpus, in canonical order.
pub fn corpus() -> &'static [Workload] {
    &[
        Workload {
            name: "fib",
            source: include_str!("programs/fib.pas"),
            text_heavy: false,
            table11: true,
        },
        Workload {
            name: "puzzle0",
            source: include_str!("programs/puzzle0.pas"),
            text_heavy: false,
            table11: true,
        },
        Workload {
            name: "puzzle1",
            source: include_str!("programs/puzzle1.pas"),
            text_heavy: false,
            table11: true,
        },
        Workload {
            name: "scanner",
            source: include_str!("programs/scanner.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "wordcount",
            source: include_str!("programs/wordcount.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "strings",
            source: include_str!("programs/strings.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "formatter",
            source: include_str!("programs/formatter.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "dispatch",
            source: include_str!("programs/dispatch.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "validate",
            source: include_str!("programs/validate.pas"),
            text_heavy: true,
            table11: false,
        },
        Workload {
            name: "sort",
            source: include_str!("programs/sort.pas"),
            text_heavy: false,
            table11: false,
        },
        Workload {
            name: "queens",
            source: include_str!("programs/queens.pas"),
            text_heavy: false,
            table11: false,
        },
        Workload {
            name: "matmul",
            source: include_str!("programs/matmul.pas"),
            text_heavy: false,
            table11: false,
        },
        Workload {
            name: "hanoi",
            source: include_str!("programs/hanoi.pas"),
            text_heavy: false,
            table11: false,
        },
        Workload {
            name: "sieve",
            source: include_str!("programs/sieve.pas"),
            text_heavy: false,
            table11: false,
        },
    ]
}

/// Looks up a workload by name.
pub fn get(name: &str) -> Option<&'static Workload> {
    corpus().iter().find(|w| w.name == name)
}

/// The Table 11 inputs in the paper's column order.
pub fn table11() -> Vec<&'static Workload> {
    ["fib", "puzzle0", "puzzle1"]
        .iter()
        .map(|n| get(n).expect("table 11 workload"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_complete_and_named_uniquely() {
        let c = corpus();
        assert!(c.len() >= 12);
        let mut names: Vec<_> = c.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
        assert!(c.iter().filter(|w| w.text_heavy).count() >= 4);
    }

    #[test]
    fn table11_order() {
        let t = table11();
        assert_eq!(t[0].name, "fib");
        assert_eq!(t[1].name, "puzzle0");
        assert_eq!(t[2].name, "puzzle1");
    }

    #[test]
    fn every_program_compiles() {
        for w in corpus() {
            mips_hll::front_end(w.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
        }
    }

    #[test]
    fn interpreter_outputs_are_sane() {
        for w in corpus() {
            let out = mips_hll::run_program(w.source)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(!out.is_empty(), "{} produced no output", w.name);
        }
    }

    #[test]
    fn fib_value() {
        assert_eq!(
            mips_hll::run_program(get("fib").unwrap().source).unwrap(),
            "fib(16)=987\n"
        );
    }

    #[test]
    fn puzzle_solves_and_variants_agree() {
        let p0 = mips_hll::run_program(get("puzzle0").unwrap().source).unwrap();
        let p1 = mips_hll::run_program(get("puzzle1").unwrap().source).unwrap();
        assert!(p0.contains("success"), "{p0}");
        assert_eq!(p0, p1, "subscripted and pointer versions must agree");
    }

    #[test]
    fn queens_finds_92() {
        assert_eq!(
            mips_hll::run_program(get("queens").unwrap().source).unwrap(),
            "92\n"
        );
    }

    #[test]
    fn sieve_counts_primes_below_1000() {
        assert_eq!(
            mips_hll::run_program(get("sieve").unwrap().source).unwrap(),
            "168 997\n"
        );
    }

    #[test]
    fn hanoi_moves() {
        assert_eq!(
            mips_hll::run_program(get("hanoi").unwrap().source).unwrap(),
            "4095\n"
        );
    }
}
