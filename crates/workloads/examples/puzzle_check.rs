//! One-shot correctness check of the Puzzle workloads (slow; run in
//! release): interpreter vs full MIPS pipeline.
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::Machine;

fn main() {
    for name in ["puzzle0", "puzzle1"] {
        let w = mips_workloads::get(name).unwrap();
        let t0 = std::time::Instant::now();
        let want = mips_hll::run_program(w.source).unwrap();
        println!("{name} interp: {want:?} in {:?}", t0.elapsed());
        let lc = mips_hll::compile_mips(w.source, &mips_hll::CodegenOptions::standard()).unwrap();
        let out = reorganize(&lc, ReorgOptions::FULL).unwrap();
        let t0 = std::time::Instant::now();
        let mut m = Machine::new(out.program);
        m.run().unwrap();
        println!(
            "{name} mips:   {:?} in {:?} ({} instrs)",
            m.output_string(),
            t0.elapsed(),
            m.profile().instructions
        );
        assert_eq!(m.output_string(), want);
    }
    println!("puzzle variants verified");
}
