//! # mips-ccm — the condition-code baseline machines
//!
//! The paper's case against condition codes (§2.3) is comparative: MIPS's
//! compare-and-branch / *Set Conditionally* design is measured against
//! "conventional" machines in which conditional control flow communicates
//! through a flags register set as a side effect of other instructions.
//!
//! This crate provides that baseline: a small two-address register machine
//! with a four-flag condition code (N, Z, V, C) whose *policy* is
//! parametric, covering the axes of the paper's Table 2:
//!
//! * **what sets the codes** — arithmetic operations only (S/360-style) or
//!   every move as well (VAX-style);
//! * **conditional set** — whether an M68000-style `scc` (set a register
//!   from the condition code) exists.
//!
//! It also carries the paper's §2.3.2 cost weights ("register operations
//! take time 1, compares take time 2, and branches take time 4") and the
//! Table 3 *compares saved* analysis: how many explicit compare
//! instructions could be elided because the condition code already held
//! the needed result.
//!
//! ## Example
//!
//! ```
//! use mips_ccm::{CcInstr, CcMachine, CcOperand, CcPolicy, CcProgramBuilder, CcCond};
//!
//! let mut b = CcProgramBuilder::new();
//! b.push(CcInstr::MoveImm { imm: 5, dst: 0 });
//! b.push(CcInstr::Compare { a: 0, b: CcOperand::Imm(5) });
//! b.push(CcInstr::CondSet { cond: CcCond::Eq, dst: 1 });
//! b.push(CcInstr::Halt);
//! let p = b.finish().unwrap();
//!
//! let mut m = CcMachine::new(p, CcPolicy::M68000);
//! m.run().unwrap();
//! assert_eq!(m.reg(1), 1);
//! ```

mod cost;
mod isa;
mod machine;
mod policy;
mod savings;

pub use cost::CostWeights;
pub use isa::{
    CcAddr, CcAluOp, CcBase, CcCond, CcInstr, CcLabel, CcOperand, CcProgram, CcProgramBuilder,
    CcReg, CcResolveError, CcTarget, CC_FP, CC_REGS, CC_SP,
};
pub use machine::{CcMachine, CcRunError, CcStats, Flags};
pub use policy::CcPolicy;
pub use savings::{analyze_savings, SavingsReport};
