//! Condition-code policies — the rows of the paper's Table 2.

use std::fmt;

/// How a machine's condition codes behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcPolicy {
    /// Human-readable name for tables.
    pub name: &'static str,
    /// Moves (loads, stores, register moves, immediates) set N and Z —
    /// the VAX discipline ("the VAX sets the condition code on all move
    /// operations").
    pub set_on_moves: bool,
    /// The machine has a conditional-set instruction (M68000 `scc`).
    pub has_cond_set: bool,
}

impl CcPolicy {
    /// S/360-style: operations set the codes, moves do not, no
    /// conditional set.
    pub const S360: CcPolicy = CcPolicy {
        name: "360-style (set on operations)",
        set_on_moves: false,
        has_cond_set: false,
    };

    /// VAX-style: operations *and* moves set the codes, no conditional
    /// set.
    pub const VAX: CcPolicy = CcPolicy {
        name: "VAX-style (set on operations and moves)",
        set_on_moves: true,
        has_cond_set: false,
    };

    /// M68000-style: operations and moves set the codes, conditional set
    /// available.
    pub const M68000: CcPolicy = CcPolicy {
        name: "M68000-style (conditional set)",
        set_on_moves: true,
        has_cond_set: true,
    };

    /// The baseline policies used across the analysis crate.
    pub const ALL: [CcPolicy; 3] = [CcPolicy::S360, CcPolicy::VAX, CcPolicy::M68000];
}

impl fmt::Display for CcPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_are_distinct() {
        // Pairwise distinct along at least one axis.
        for (i, a) in CcPolicy::ALL.iter().enumerate() {
            for b in &CcPolicy::ALL[i + 1..] {
                assert!(
                    a.set_on_moves != b.set_on_moves || a.has_cond_set != b.has_cond_set,
                    "{a} vs {b}"
                );
            }
        }
    }
}
