//! The paper's instruction cost weights.
//!
//! Table 6 is computed "assuming that register operations take time 1,
//! compares take time 2, and branches take time 4" (§2.3.2). Memory moves
//! are charged as register operations (weight 1), matching the paper's
//! instruction-count framing.

use crate::isa::{CcInstr, CcProgram};

/// Per-class instruction costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostWeights {
    /// Register operations, moves, conditional sets.
    pub reg_op: u64,
    /// Explicit compare instructions.
    pub compare: u64,
    /// Branches, calls, returns (taken or not — the paper's weight models
    /// the pipeline disruption cost of a branch instruction).
    pub branch: u64,
}

impl CostWeights {
    /// The paper's weights: 1 / 2 / 4.
    pub const PAPER: CostWeights = CostWeights {
        reg_op: 1,
        compare: 2,
        branch: 4,
    };

    /// The weighted cost of one instruction.
    pub fn of(&self, i: &CcInstr) -> u64 {
        if matches!(i, CcInstr::Compare { .. }) {
            self.compare
        } else if i.is_branch() {
            self.branch
        } else if matches!(i, CcInstr::Halt) {
            0
        } else {
            self.reg_op
        }
    }

    /// The static weighted cost of a whole program.
    pub fn static_cost(&self, p: &CcProgram) -> u64 {
        p.instrs().iter().map(|i| self.of(i)).sum()
    }
}

impl Default for CostWeights {
    fn default() -> CostWeights {
        CostWeights::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CcAluOp, CcCond, CcOperand, CcProgramBuilder, CcTarget};

    #[test]
    fn weights_match_paper() {
        let w = CostWeights::PAPER;
        assert_eq!(
            w.of(&CcInstr::Alu {
                op: CcAluOp::Add,
                src: CcOperand::Imm(1),
                dst: 0
            }),
            1
        );
        assert_eq!(
            w.of(&CcInstr::Compare {
                a: 0,
                b: CcOperand::Imm(0)
            }),
            2
        );
        assert_eq!(
            w.of(&CcInstr::CondBranch {
                cond: CcCond::Eq,
                target: CcTarget::Abs(0)
            }),
            4
        );
        assert_eq!(
            w.of(&CcInstr::CondSet {
                cond: CcCond::Eq,
                dst: 0
            }),
            1
        );
        assert_eq!(w.of(&CcInstr::MoveImm { imm: 0, dst: 0 }), 1);
    }

    #[test]
    fn static_cost_sums() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::MoveImm { imm: 1, dst: 0 }); // 1
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(1),
        }); // 2
        b.push(CcInstr::Branch {
            target: CcTarget::Abs(3),
        }); // 4
        b.push(CcInstr::Halt); // 0
        let p = b.finish().unwrap();
        assert_eq!(CostWeights::PAPER.static_cost(&p), 7);
    }
}
