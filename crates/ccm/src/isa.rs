//! The baseline machine's instruction set: a conventional two-address
//! register machine with eight general registers, a frame/stack
//! discipline, and condition-code-mediated control flow.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A register number, `0..8`. By software convention `r6` is the frame
/// pointer and `r7` the stack pointer.
pub type CcReg = u8;

/// Number of general registers.
pub const CC_REGS: usize = 8;
/// Frame-pointer convention.
pub const CC_FP: CcReg = 6;
/// Stack-pointer convention.
pub const CC_SP: CcReg = 7;

/// A code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CcLabel(pub u32);

impl fmt::Display for CcLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Base of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcBase {
    /// Absolute (global) address.
    Abs(u32),
    /// Register-relative (frame/stack/pointer).
    Reg(CcReg),
}

/// A memory address: base + displacement + optional index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CcAddr {
    /// The base.
    pub base: CcBase,
    /// Word displacement.
    pub disp: i32,
    /// Optional index register (added as a word index).
    pub index: Option<CcReg>,
}

impl CcAddr {
    /// An absolute address.
    pub fn abs(a: u32) -> CcAddr {
        CcAddr {
            base: CcBase::Abs(a),
            disp: 0,
            index: None,
        }
    }

    /// Frame-relative.
    pub fn fp(disp: i32) -> CcAddr {
        CcAddr {
            base: CcBase::Reg(CC_FP),
            disp,
            index: None,
        }
    }

    /// Adds an index register.
    pub fn indexed(mut self, r: CcReg) -> CcAddr {
        self.index = Some(r);
        self
    }
}

impl fmt::Display for CcAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            CcBase::Abs(a) => write!(f, "@{a}")?,
            CcBase::Reg(r) => write!(f, "{}(r{r})", self.disp)?,
        }
        if let CcBase::Abs(_) = self.base {
            if self.disp != 0 {
                write!(f, "+{}", self.disp)?;
            }
        }
        if let Some(x) = self.index {
            write!(f, "[r{x}]")?;
        }
        Ok(())
    }
}

/// A source operand for ALU/compare instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcOperand {
    /// A register.
    Reg(CcReg),
    /// An immediate.
    Imm(i32),
}

impl fmt::Display for CcOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcOperand::Reg(r) => write!(f, "r{r}"),
            CcOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Two-address ALU operations: `dst := dst op src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Negate (`dst := -dst`; ignores src).
    Neg,
    /// Logical not on booleans (`dst := 1 - dst`; ignores src).
    NotB,
}

impl fmt::Display for CcAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CcAluOp::Add => "add",
            CcAluOp::Sub => "sub",
            CcAluOp::Mul => "mul",
            CcAluOp::Div => "div",
            CcAluOp::Rem => "rem",
            CcAluOp::And => "and",
            CcAluOp::Or => "or",
            CcAluOp::Xor => "xor",
            CcAluOp::Shl => "shl",
            CcAluOp::Shr => "shr",
            CcAluOp::Neg => "neg",
            CcAluOp::NotB => "notb",
        };
        f.write_str(s)
    }
}

/// Branch conditions decoded from the N/Z/V flags (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcCond {
    /// Equal (Z).
    Eq,
    /// Not equal (!Z).
    Ne,
    /// Signed less-than (N ⊕ V).
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CcCond {
    /// The negated condition.
    pub fn negate(self) -> CcCond {
        match self {
            CcCond::Eq => CcCond::Ne,
            CcCond::Ne => CcCond::Eq,
            CcCond::Lt => CcCond::Ge,
            CcCond::Ge => CcCond::Lt,
            CcCond::Le => CcCond::Gt,
            CcCond::Gt => CcCond::Le,
        }
    }

    /// Mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CcCond::Eq => "eq",
            CcCond::Ne => "ne",
            CcCond::Lt => "lt",
            CcCond::Le => "le",
            CcCond::Gt => "gt",
            CcCond::Ge => "ge",
        }
    }
}

impl fmt::Display for CcCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A baseline-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcInstr {
    /// `dst := mem[addr]` (a move: sets N/Z under the VAX policy).
    Load {
        /// Source address.
        addr: CcAddr,
        /// Destination register.
        dst: CcReg,
    },
    /// `mem[addr] := src` (a move).
    Store {
        /// Source register.
        src: CcReg,
        /// Destination address.
        addr: CcAddr,
    },
    /// `dst := imm` (a move).
    MoveImm {
        /// The immediate.
        imm: i32,
        /// Destination register.
        dst: CcReg,
    },
    /// `dst := src` (a move).
    MoveReg {
        /// Source register.
        src: CcReg,
        /// Destination register.
        dst: CcReg,
    },
    /// `dst := dst op src` (an operation: always sets the codes).
    Alu {
        /// The operation.
        op: CcAluOp,
        /// Source operand.
        src: CcOperand,
        /// Destination register.
        dst: CcReg,
    },
    /// Explicit compare: codes := flags of `a - b`.
    Compare {
        /// Left comparand.
        a: CcReg,
        /// Right comparand.
        b: CcOperand,
    },
    /// Conditional branch on the codes.
    CondBranch {
        /// Condition.
        cond: CcCond,
        /// Target.
        target: CcTarget,
    },
    /// Unconditional branch.
    Branch {
        /// Target.
        target: CcTarget,
    },
    /// Conditional set (M68000 `scc`): `dst := cond ? 1 : 0`. Only legal
    /// when the policy has it.
    CondSet {
        /// Condition.
        cond: CcCond,
        /// Destination register.
        dst: CcReg,
    },
    /// Push a register on the stack.
    Push {
        /// Source register.
        src: CcReg,
    },
    /// Pop the stack into a register.
    Pop {
        /// Destination register.
        dst: CcReg,
    },
    /// Call a procedure (return address on an internal stack — this is
    /// the "conventional" machine; no delay slots, no visible pipeline).
    Call {
        /// Entry point.
        target: CcTarget,
    },
    /// Return from a call.
    Ret,
    /// Write the low byte of `r0` to the output stream.
    PutC,
    /// Write `r0` as signed decimal to the output stream.
    PutInt,
    /// Stop.
    Halt,
}

/// A branch target (label pre-resolution, absolute after).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcTarget {
    /// Unresolved label.
    Label(CcLabel),
    /// Absolute instruction index.
    Abs(u32),
}

impl fmt::Display for CcTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcTarget::Label(l) => write!(f, "{l}"),
            CcTarget::Abs(a) => write!(f, "{a}"),
        }
    }
}

impl CcInstr {
    /// Whether this instruction is a *move* in the paper's sense (loads,
    /// stores, register and immediate moves).
    pub fn is_move(&self) -> bool {
        matches!(
            self,
            CcInstr::Load { .. }
                | CcInstr::Store { .. }
                | CcInstr::MoveImm { .. }
                | CcInstr::MoveReg { .. }
        )
    }

    /// Whether this instruction is an *operation* (always sets the codes).
    pub fn is_operation(&self) -> bool {
        matches!(self, CcInstr::Alu { .. })
    }

    /// Whether this is any kind of branch (for the cost model's weight 4).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            CcInstr::CondBranch { .. }
                | CcInstr::Branch { .. }
                | CcInstr::Call { .. }
                | CcInstr::Ret
        )
    }

    /// Registers read by the instruction.
    pub fn reads(&self) -> Vec<CcReg> {
        let mut v = Vec::new();
        let addr_regs = |a: &CcAddr, v: &mut Vec<CcReg>| {
            if let CcBase::Reg(r) = a.base {
                v.push(r);
            }
            if let Some(x) = a.index {
                v.push(x);
            }
        };
        match self {
            CcInstr::Load { addr, .. } => addr_regs(addr, &mut v),
            CcInstr::Store { src, addr } => {
                v.push(*src);
                addr_regs(addr, &mut v);
            }
            CcInstr::MoveReg { src, .. } => v.push(*src),
            CcInstr::Alu { src, dst, .. } => {
                v.push(*dst);
                if let CcOperand::Reg(r) = src {
                    v.push(*r);
                }
            }
            CcInstr::Compare { a, b } => {
                v.push(*a);
                if let CcOperand::Reg(r) = b {
                    v.push(*r);
                }
            }
            CcInstr::Push { src } => v.push(*src),
            CcInstr::PutC | CcInstr::PutInt => v.push(0),
            _ => {}
        }
        v
    }

    /// The register written, if any.
    pub fn writes(&self) -> Option<CcReg> {
        match self {
            CcInstr::Load { dst, .. }
            | CcInstr::MoveImm { dst, .. }
            | CcInstr::MoveReg { dst, .. }
            | CcInstr::Alu { dst, .. }
            | CcInstr::CondSet { dst, .. }
            | CcInstr::Pop { dst } => Some(*dst),
            _ => None,
        }
    }

    /// The register whose value the instruction leaves in the condition
    /// codes when it sets them (`None` for compares, which reflect a
    /// difference, and for non-setting instructions).
    pub fn cc_result_reg(&self) -> Option<CcReg> {
        match self {
            CcInstr::Alu { dst, .. } => Some(*dst),
            CcInstr::Load { dst, .. } => Some(*dst),
            CcInstr::MoveImm { dst, .. } => Some(*dst),
            CcInstr::MoveReg { dst, .. } => Some(*dst),
            CcInstr::Store { src, .. } => Some(*src),
            _ => None,
        }
    }
}

impl fmt::Display for CcInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcInstr::Load { addr, dst } => write!(f, "ld {addr},r{dst}"),
            CcInstr::Store { src, addr } => write!(f, "st r{src},{addr}"),
            CcInstr::MoveImm { imm, dst } => write!(f, "mov #{imm},r{dst}"),
            CcInstr::MoveReg { src, dst } => write!(f, "mov r{src},r{dst}"),
            CcInstr::Alu { op, src, dst } => write!(f, "{op} {src},r{dst}"),
            CcInstr::Compare { a, b } => write!(f, "cmp r{a},{b}"),
            CcInstr::CondBranch { cond, target } => write!(f, "b{cond} {target}"),
            CcInstr::Branch { target } => write!(f, "bra {target}"),
            CcInstr::CondSet { cond, dst } => write!(f, "s{cond} r{dst}"),
            CcInstr::Push { src } => write!(f, "push r{src}"),
            CcInstr::Pop { dst } => write!(f, "pop r{dst}"),
            CcInstr::Call { target } => write!(f, "call {target}"),
            CcInstr::Ret => write!(f, "ret"),
            CcInstr::PutC => write!(f, "putc"),
            CcInstr::PutInt => write!(f, "putint"),
            CcInstr::Halt => write!(f, "halt"),
        }
    }
}

/// Label-resolution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcResolveError {
    /// A referenced label was never defined.
    Undefined(CcLabel),
    /// A label was defined twice.
    Duplicate(CcLabel),
}

impl fmt::Display for CcResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcResolveError::Undefined(l) => write!(f, "undefined label {l}"),
            CcResolveError::Duplicate(l) => write!(f, "duplicate label {l}"),
        }
    }
}

impl Error for CcResolveError {}

/// A resolved baseline-machine program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CcProgram {
    instrs: Vec<CcInstr>,
    symbols: HashMap<String, u32>,
}

impl CcProgram {
    /// The instructions.
    pub fn instrs(&self) -> &[CcInstr] {
        &self.instrs
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Looks up a named entry point.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// A printable listing.
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut rev: HashMap<u32, &str> = HashMap::new();
        for (n, a) in &self.symbols {
            rev.insert(*a, n);
        }
        let mut s = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            if let Some(n) = rev.get(&(i as u32)) {
                let _ = writeln!(s, "{n}:");
            }
            let _ = writeln!(s, "{i:6}  {ins}");
        }
        s
    }
}

/// Builds a [`CcProgram`], resolving labels.
#[derive(Debug, Default)]
pub struct CcProgramBuilder {
    instrs: Vec<CcInstr>,
    defs: HashMap<CcLabel, u32>,
    next: u32,
    symbols: HashMap<String, u32>,
}

impl CcProgramBuilder {
    /// An empty builder.
    pub fn new() -> CcProgramBuilder {
        CcProgramBuilder::default()
    }

    /// A fresh label.
    pub fn fresh_label(&mut self) -> CcLabel {
        let l = CcLabel(self.next);
        self.next += 1;
        l
    }

    /// Defines `l` at the current address.
    ///
    /// # Errors
    ///
    /// [`CcResolveError::Duplicate`] when already defined.
    pub fn define(&mut self, l: CcLabel) -> Result<(), CcResolveError> {
        if l.0 >= self.next {
            self.next = l.0 + 1;
        }
        if self.defs.insert(l, self.instrs.len() as u32).is_some() {
            return Err(CcResolveError::Duplicate(l));
        }
        Ok(())
    }

    /// Current address.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: CcInstr) {
        self.instrs.push(i);
    }

    /// Names the current address.
    pub fn define_symbol(&mut self, name: impl Into<String>) {
        self.symbols.insert(name.into(), self.here());
    }

    /// Resolves and produces the program.
    ///
    /// # Errors
    ///
    /// [`CcResolveError::Undefined`] for dangling labels.
    pub fn finish(self) -> Result<CcProgram, CcResolveError> {
        let resolve = |t: CcTarget| -> Result<CcTarget, CcResolveError> {
            match t {
                CcTarget::Label(l) => self
                    .defs
                    .get(&l)
                    .map(|&a| CcTarget::Abs(a))
                    .ok_or(CcResolveError::Undefined(l)),
                abs => Ok(abs),
            }
        };
        let mut out = Vec::with_capacity(self.instrs.len());
        for i in self.instrs.iter() {
            let r = match *i {
                CcInstr::CondBranch { cond, target } => CcInstr::CondBranch {
                    cond,
                    target: resolve(target)?,
                },
                CcInstr::Branch { target } => CcInstr::Branch {
                    target: resolve(target)?,
                },
                CcInstr::Call { target } => CcInstr::Call {
                    target: resolve(target)?,
                },
                other => other,
            };
            out.push(r);
        }
        Ok(CcProgram {
            instrs: out,
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        let mut b = CcProgramBuilder::new();
        let l = b.fresh_label();
        b.push(CcInstr::Branch {
            target: CcTarget::Label(l),
        });
        b.define(l).unwrap();
        b.push(CcInstr::Halt);
        let p = b.finish().unwrap();
        assert_eq!(
            p.instrs()[0],
            CcInstr::Branch {
                target: CcTarget::Abs(1)
            }
        );
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = CcProgramBuilder::new();
        let l = b.fresh_label();
        b.push(CcInstr::Call {
            target: CcTarget::Label(l),
        });
        assert_eq!(b.finish().unwrap_err(), CcResolveError::Undefined(l));
    }

    #[test]
    fn move_and_operation_classification() {
        assert!(CcInstr::MoveImm { imm: 1, dst: 0 }.is_move());
        assert!(CcInstr::Load {
            addr: CcAddr::abs(0),
            dst: 0
        }
        .is_move());
        assert!(!CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0)
        }
        .is_move());
        assert!(CcInstr::Alu {
            op: CcAluOp::Add,
            src: CcOperand::Imm(1),
            dst: 0
        }
        .is_operation());
    }

    #[test]
    fn cc_result_reg_tracks_value() {
        assert_eq!(
            CcInstr::Alu {
                op: CcAluOp::Sub,
                src: CcOperand::Reg(1),
                dst: 2
            }
            .cc_result_reg(),
            Some(2)
        );
        assert_eq!(
            CcInstr::Store {
                src: 3,
                addr: CcAddr::abs(0)
            }
            .cc_result_reg(),
            Some(3)
        );
        assert_eq!(
            CcInstr::Compare {
                a: 0,
                b: CcOperand::Imm(1)
            }
            .cc_result_reg(),
            None
        );
    }

    #[test]
    fn display_round() {
        let i = CcInstr::CondBranch {
            cond: CcCond::Le,
            target: CcTarget::Abs(7),
        };
        assert_eq!(i.to_string(), "ble 7");
        assert_eq!(CcAddr::fp(-2).indexed(3).to_string(), "-2(r6)[r3]");
    }

    #[test]
    fn cond_negate() {
        for c in [
            CcCond::Eq,
            CcCond::Ne,
            CcCond::Lt,
            CcCond::Le,
            CcCond::Gt,
            CcCond::Ge,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }
}
