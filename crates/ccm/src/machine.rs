//! The baseline-machine simulator.
//!
//! A conventional sequential machine: no delay slots, no visible pipeline
//! — exactly the programming model the paper's "machines with condition
//! codes" present to their compilers. Costs are charged per the paper's
//! weights so dynamic comparisons against MIPS code are possible.

use crate::cost::CostWeights;
use crate::isa::{
    CcAddr, CcAluOp, CcBase, CcCond, CcInstr, CcOperand, CcProgram, CcReg, CcTarget, CC_REGS, CC_SP,
};
use crate::policy::CcPolicy;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The condition-code flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Overflow.
    pub v: bool,
    /// Carry (borrow on subtract).
    pub c: bool,
}

impl Flags {
    /// Flags from a plain value (what a move leaves behind: N and Z; V
    /// and C cleared, as on the M68000's MOVE).
    pub fn of_value(v: i32) -> Flags {
        Flags {
            n: v < 0,
            z: v == 0,
            v: false,
            c: false,
        }
    }

    /// Flags of the subtraction `a - b` (what compare leaves behind).
    pub fn of_sub(a: i32, b: i32) -> Flags {
        let (r, ovf) = a.overflowing_sub(b);
        Flags {
            n: r < 0,
            z: r == 0,
            v: ovf,
            c: (a as u32) < (b as u32),
        }
    }

    /// Evaluates a signed branch condition.
    pub fn cond(&self, c: CcCond) -> bool {
        match c {
            CcCond::Eq => self.z,
            CcCond::Ne => !self.z,
            CcCond::Lt => self.n != self.v,
            CcCond::Ge => self.n == self.v,
            CcCond::Le => self.z || (self.n != self.v),
            CcCond::Gt => !self.z && (self.n == self.v),
        }
    }
}

/// Dynamic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Weighted dynamic cost under the attached [`CostWeights`].
    pub cost: u64,
    /// Branch instructions executed (conditional + unconditional +
    /// call/ret).
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken: u64,
    /// Compares executed.
    pub compares: u64,
    /// Moves executed.
    pub moves: u64,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcRunError {
    /// PC left the program.
    PcOutOfRange(u32),
    /// Step budget exhausted.
    StepLimit(u64),
    /// Return without a call.
    EmptyCallStack,
    /// `scc` executed under a policy without conditional set.
    CondSetUnavailable,
    /// Division by zero.
    DivideByZero(u32),
}

impl fmt::Display for CcRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcRunError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            CcRunError::StepLimit(l) => write!(f, "step limit {l} exhausted"),
            CcRunError::EmptyCallStack => write!(f, "return with empty call stack"),
            CcRunError::CondSetUnavailable => {
                write!(f, "conditional set not available under this policy")
            }
            CcRunError::DivideByZero(pc) => write!(f, "divide by zero at {pc}"),
        }
    }
}

impl Error for CcRunError {}

/// The baseline machine.
pub struct CcMachine {
    program: CcProgram,
    policy: CcPolicy,
    weights: CostWeights,
    regs: [i32; CC_REGS],
    flags: Flags,
    pc: u32,
    mem: HashMap<u32, i32>,
    call_stack: Vec<u32>,
    halted: bool,
    stats: CcStats,
    output: Vec<u8>,
    step_limit: u64,
}

impl fmt::Debug for CcMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcMachine")
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("policy", &self.policy.name)
            .finish()
    }
}

/// Default stack top (word address).
pub const CC_STACK_TOP: i32 = 0x0070_0000;

impl CcMachine {
    /// Creates a machine over `program` with the given condition-code
    /// policy and the paper's cost weights.
    pub fn new(program: CcProgram, policy: CcPolicy) -> CcMachine {
        let mut m = CcMachine {
            program,
            policy,
            weights: CostWeights::PAPER,
            regs: [0; CC_REGS],
            flags: Flags::default(),
            pc: 0,
            mem: HashMap::new(),
            call_stack: Vec::new(),
            halted: false,
            stats: CcStats::default(),
            output: Vec::new(),
            step_limit: 200_000_000,
        };
        m.regs[CC_SP as usize] = CC_STACK_TOP;
        m
    }

    /// Replaces the cost weights.
    pub fn set_weights(&mut self, w: CostWeights) {
        self.weights = w;
    }

    /// Reads a register.
    pub fn reg(&self, r: CcReg) -> i32 {
        self.regs[r as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: CcReg, v: i32) {
        self.regs[r as usize] = v;
    }

    /// The flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The loaded program.
    pub fn program(&self) -> &CcProgram {
        &self.program
    }

    /// Reads memory (zero default).
    pub fn peek(&self, a: u32) -> i32 {
        self.mem.get(&a).copied().unwrap_or(0)
    }

    /// Writes memory.
    pub fn poke(&mut self, a: u32, v: i32) {
        self.mem.insert(a, v);
    }

    /// Statistics so far.
    pub fn stats(&self) -> CcStats {
        self.stats
    }

    /// Output bytes.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Jumps to an address (clears nothing — conventional machine).
    pub fn jump_to(&mut self, pc: u32) {
        self.pc = pc;
        self.halted = false;
    }

    fn ea(&self, a: &CcAddr) -> u32 {
        let base = match a.base {
            CcBase::Abs(x) => x as i64,
            CcBase::Reg(r) => self.regs[r as usize] as i64,
        };
        let idx = a.index.map_or(0, |r| self.regs[r as usize] as i64);
        (base + a.disp as i64 + idx) as u32
    }

    fn operand(&self, o: CcOperand) -> i32 {
        match o {
            CcOperand::Reg(r) => self.regs[r as usize],
            CcOperand::Imm(v) => v,
        }
    }

    fn set_cc_value(&mut self, v: i32) {
        self.flags = Flags::of_value(v);
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// See [`CcRunError`].
    pub fn step(&mut self) -> Result<bool, CcRunError> {
        if self.halted {
            return Ok(false);
        }
        if self.stats.instructions >= self.step_limit {
            return Err(CcRunError::StepLimit(self.step_limit));
        }
        let Some(&i) = self.program.instrs().get(self.pc as usize) else {
            return Err(CcRunError::PcOutOfRange(self.pc));
        };
        self.stats.instructions += 1;
        self.stats.cost += self.weights.of(&i);
        let mut next = self.pc + 1;
        match i {
            CcInstr::Load { addr, dst } => {
                self.stats.moves += 1;
                let v = self.peek(self.ea(&addr));
                self.regs[dst as usize] = v;
                if self.policy.set_on_moves {
                    self.set_cc_value(v);
                }
            }
            CcInstr::Store { src, addr } => {
                self.stats.moves += 1;
                let v = self.regs[src as usize];
                let a = self.ea(&addr);
                self.poke(a, v);
                if self.policy.set_on_moves {
                    self.set_cc_value(v);
                }
            }
            CcInstr::MoveImm { imm, dst } => {
                self.stats.moves += 1;
                self.regs[dst as usize] = imm;
                if self.policy.set_on_moves {
                    self.set_cc_value(imm);
                }
            }
            CcInstr::MoveReg { src, dst } => {
                self.stats.moves += 1;
                let v = self.regs[src as usize];
                self.regs[dst as usize] = v;
                if self.policy.set_on_moves {
                    self.set_cc_value(v);
                }
            }
            CcInstr::Alu { op, src, dst } => {
                let a = self.regs[dst as usize];
                let b = self.operand(src);
                let (r, ovf) = match op {
                    CcAluOp::Add => a.overflowing_add(b),
                    CcAluOp::Sub => a.overflowing_sub(b),
                    CcAluOp::Mul => a.overflowing_mul(b),
                    CcAluOp::Div => {
                        if b == 0 {
                            return Err(CcRunError::DivideByZero(self.pc));
                        }
                        a.overflowing_div(b)
                    }
                    CcAluOp::Rem => {
                        if b == 0 {
                            return Err(CcRunError::DivideByZero(self.pc));
                        }
                        a.overflowing_rem(b)
                    }
                    CcAluOp::And => (a & b, false),
                    CcAluOp::Or => (a | b, false),
                    CcAluOp::Xor => (a ^ b, false),
                    CcAluOp::Shl => (a.wrapping_shl(b as u32 & 31), false),
                    CcAluOp::Shr => (a.wrapping_shr(b as u32 & 31), false),
                    CcAluOp::Neg => a.overflowing_neg(),
                    CcAluOp::NotB => (1 - a, false),
                };
                self.regs[dst as usize] = r;
                self.flags = Flags {
                    n: r < 0,
                    z: r == 0,
                    v: ovf,
                    c: false,
                };
            }
            CcInstr::Compare { a, b } => {
                self.stats.compares += 1;
                self.flags = Flags::of_sub(self.regs[a as usize], self.operand(b));
            }
            CcInstr::CondBranch { cond, target } => {
                self.stats.branches += 1;
                if self.flags.cond(cond) {
                    self.stats.taken += 1;
                    next = self.resolve(target);
                }
            }
            CcInstr::Branch { target } => {
                self.stats.branches += 1;
                self.stats.taken += 1;
                next = self.resolve(target);
            }
            CcInstr::CondSet { cond, dst } => {
                if !self.policy.has_cond_set {
                    return Err(CcRunError::CondSetUnavailable);
                }
                self.regs[dst as usize] = self.flags.cond(cond) as i32;
            }
            CcInstr::Push { src } => {
                self.regs[CC_SP as usize] -= 1;
                let a = self.regs[CC_SP as usize] as u32;
                let v = self.regs[src as usize];
                self.poke(a, v);
            }
            CcInstr::Pop { dst } => {
                let a = self.regs[CC_SP as usize] as u32;
                let v = self.peek(a);
                self.regs[CC_SP as usize] += 1;
                self.regs[dst as usize] = v;
            }
            CcInstr::Call { target } => {
                self.stats.branches += 1;
                self.call_stack.push(next);
                next = self.resolve(target);
            }
            CcInstr::Ret => {
                self.stats.branches += 1;
                next = self.call_stack.pop().ok_or(CcRunError::EmptyCallStack)?;
            }
            CcInstr::PutC => self.output.push(self.regs[0] as u8),
            CcInstr::PutInt => self
                .output
                .extend_from_slice(self.regs[0].to_string().as_bytes()),
            CcInstr::Halt => {
                self.halted = true;
                return Ok(false);
            }
        }
        self.pc = next;
        Ok(true)
    }

    fn resolve(&self, t: CcTarget) -> u32 {
        match t {
            CcTarget::Abs(a) => a,
            CcTarget::Label(l) => panic!("unresolved label {l} at run time"),
        }
    }

    /// Runs to halt.
    ///
    /// # Errors
    ///
    /// Propagates [`CcRunError`] from [`CcMachine::step`].
    pub fn run(&mut self) -> Result<(), CcRunError> {
        while self.step()? {}
        Ok(())
    }

    /// Calls a named procedure: result convention is `r0`.
    ///
    /// # Errors
    ///
    /// Simulation errors.
    ///
    /// # Panics
    ///
    /// If the symbol is undefined.
    pub fn run_fn(&mut self, name: &str, args: &[i32]) -> Result<i32, CcRunError> {
        let entry = self
            .program
            .symbol(name)
            .unwrap_or_else(|| panic!("undefined symbol {name}"));
        // Arguments are pushed right-to-left; a synthetic frame is built
        // by the callee's prologue.
        for &a in args.iter().rev() {
            self.regs[CC_SP as usize] -= 1;
            let sp = self.regs[CC_SP as usize] as u32;
            self.poke(sp, a);
        }
        // Return lands on a Halt sentinel: push a pc beyond the program,
        // catch the return manually.
        self.call_stack.push(u32::MAX);
        self.pc = entry;
        self.halted = false;
        loop {
            if self.pc == u32::MAX {
                break;
            }
            if !self.step()? {
                break;
            }
        }
        // Pop the arguments.
        self.regs[CC_SP as usize] += args.len() as i32;
        Ok(self.regs[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::CcProgramBuilder;

    fn program(is: Vec<CcInstr>) -> CcProgram {
        let mut b = CcProgramBuilder::new();
        for i in is {
            b.push(i);
        }
        b.finish().unwrap()
    }

    #[test]
    fn flags_of_sub_signed_cases() {
        assert!(Flags::of_sub(1, 2).cond(CcCond::Lt));
        assert!(Flags::of_sub(2, 1).cond(CcCond::Gt));
        assert!(Flags::of_sub(2, 2).cond(CcCond::Eq));
        assert!(Flags::of_sub(2, 2).cond(CcCond::Le));
        // Overflow case: i32::MIN - 1 overflows; signed compare must still
        // be "less than".
        assert!(Flags::of_sub(i32::MIN, 1).cond(CcCond::Lt));
        assert!(Flags::of_sub(i32::MAX, -1).cond(CcCond::Gt));
    }

    #[test]
    fn alu_and_compare_flow() {
        let p = program(vec![
            CcInstr::MoveImm { imm: 10, dst: 0 },
            CcInstr::Alu {
                op: CcAluOp::Sub,
                src: CcOperand::Imm(10),
                dst: 0,
            },
            CcInstr::CondBranch {
                cond: CcCond::Eq,
                target: CcTarget::Abs(4),
            },
            CcInstr::MoveImm { imm: 99, dst: 1 },
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        m.run().unwrap();
        assert_eq!(m.reg(1), 0, "branch on operation-set Z must be taken");
        assert_eq!(m.stats().branches, 1);
        assert_eq!(m.stats().taken, 1);
    }

    #[test]
    fn moves_set_cc_only_under_vax_policy() {
        let code = vec![
            CcInstr::MoveImm { imm: 7, dst: 0 },
            CcInstr::Alu {
                op: CcAluOp::Sub,
                src: CcOperand::Imm(7),
                dst: 0,
            }, // Z set
            CcInstr::MoveImm { imm: 5, dst: 1 }, // VAX: clears Z; 360: leaves Z
            CcInstr::CondBranch {
                cond: CcCond::Eq,
                target: CcTarget::Abs(5),
            },
            CcInstr::MoveImm { imm: 1, dst: 2 },
            CcInstr::Halt,
        ];
        let mut m360 = CcMachine::new(program(code.clone()), CcPolicy::S360);
        m360.run().unwrap();
        assert_eq!(m360.reg(2), 0, "360: move left Z intact, branch taken");

        let mut mvax = CcMachine::new(program(code), CcPolicy::VAX);
        mvax.run().unwrap();
        assert_eq!(mvax.reg(2), 1, "VAX: move of 5 cleared Z");
    }

    #[test]
    fn cond_set_requires_policy() {
        let p = program(vec![
            CcInstr::Compare {
                a: 0,
                b: CcOperand::Imm(0),
            },
            CcInstr::CondSet {
                cond: CcCond::Eq,
                dst: 1,
            },
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p.clone(), CcPolicy::VAX);
        assert_eq!(m.run(), Err(CcRunError::CondSetUnavailable));
        let mut m = CcMachine::new(p, CcPolicy::M68000);
        m.run().unwrap();
        assert_eq!(m.reg(1), 1);
    }

    #[test]
    fn push_pop_and_memory() {
        let p = program(vec![
            CcInstr::MoveImm { imm: 42, dst: 0 },
            CcInstr::Push { src: 0 },
            CcInstr::MoveImm { imm: 0, dst: 0 },
            CcInstr::Pop { dst: 1 },
            CcInstr::Store {
                src: 1,
                addr: CcAddr::abs(100),
            },
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::VAX);
        m.run().unwrap();
        assert_eq!(m.reg(1), 42);
        assert_eq!(m.peek(100), 42);
        assert_eq!(m.reg(CC_SP), CC_STACK_TOP);
    }

    #[test]
    fn call_and_ret() {
        let p = program(vec![
            CcInstr::Call {
                target: CcTarget::Abs(3),
            },
            CcInstr::MoveImm { imm: 9, dst: 1 },
            CcInstr::Halt,
            CcInstr::MoveImm { imm: 5, dst: 0 },
            CcInstr::Ret,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        m.run().unwrap();
        assert_eq!(m.reg(0), 5);
        assert_eq!(m.reg(1), 9);
    }

    #[test]
    fn indexed_addressing() {
        let p = program(vec![
            CcInstr::MoveImm { imm: 3, dst: 2 },
            CcInstr::Load {
                addr: CcAddr::abs(200).indexed(2),
                dst: 0,
            },
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        m.poke(203, 77);
        m.run().unwrap();
        assert_eq!(m.reg(0), 77);
    }

    #[test]
    fn cost_accounting_uses_weights() {
        let p = program(vec![
            CcInstr::MoveImm { imm: 1, dst: 0 }, // 1
            CcInstr::Compare {
                a: 0,
                b: CcOperand::Imm(1),
            }, // 2
            CcInstr::CondBranch {
                cond: CcCond::Ne,
                target: CcTarget::Abs(0),
            }, // 4 (not taken)
            CcInstr::Halt,                       // 0
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        m.run().unwrap();
        assert_eq!(m.stats().cost, 7);
        assert_eq!(m.stats().compares, 1);
        assert_eq!(m.stats().moves, 1);
    }

    #[test]
    fn output_services() {
        let p = program(vec![
            CcInstr::MoveImm {
                imm: 'x' as i32,
                dst: 0,
            },
            CcInstr::PutC,
            CcInstr::MoveImm { imm: -7, dst: 0 },
            CcInstr::PutInt,
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        m.run().unwrap();
        assert_eq!(m.output_string(), "x-7");
    }

    #[test]
    fn divide_by_zero_reported() {
        let p = program(vec![
            CcInstr::MoveImm { imm: 1, dst: 0 },
            CcInstr::Alu {
                op: CcAluOp::Div,
                src: CcOperand::Imm(0),
                dst: 0,
            },
            CcInstr::Halt,
        ]);
        let mut m = CcMachine::new(p, CcPolicy::S360);
        assert_eq!(m.run(), Err(CcRunError::DivideByZero(1)));
    }
}
