//! The Table 3 analysis: how many explicit compares could condition codes
//! actually eliminate?
//!
//! A compare is *saved* by condition codes when the value it tests against
//! zero is exactly the value whose flags the immediately preceding
//! instruction already left in the condition code — i.e. the compare is a
//! pure re-derivation of live flags. The paper measured this over compiled
//! Pascal programs and found the savings "so small as to be essentially
//! useless" (≈1.1% when operations set the codes, ≈2.1% when moves set
//! them too).

use crate::isa::{CcInstr, CcOperand, CcProgram, CcTarget};
use std::collections::HashSet;

/// The result of the savings analysis, following the paper's Table 3
/// accounting: a compare whose flags come from a *move* only counts as a
/// net saving when the moved value is reused afterwards — otherwise the
/// move existed "only to set the condition code" and merely relabels the
/// compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SavingsReport {
    /// Explicit compare instructions in the program.
    pub total_compares: u64,
    /// Compares saved when only operations set the codes (360 policy).
    pub saved_ops_only: u64,
    /// Gross compares saved when operations and moves set the codes
    /// (the paper's "set by operators and moves" row).
    pub gross_ops_and_moves: u64,
    /// Of those, enabled by a move whose only purpose was setting the
    /// codes (the paper's "moves used only to set condition code" row —
    /// excluded from net savings).
    pub moves_only_for_cc: u64,
}

impl SavingsReport {
    /// Net compares saved under the ops-and-moves policy (the paper's
    /// "total compares saved by condition codes").
    pub fn net_saved(&self) -> u64 {
        self.gross_ops_and_moves - self.moves_only_for_cc
    }

    /// Savings percentage under the ops-only policy.
    pub fn pct_ops_only(&self) -> f64 {
        percentage(self.saved_ops_only, self.total_compares)
    }

    /// Net savings percentage under the ops-and-moves policy.
    pub fn pct_ops_and_moves(&self) -> f64 {
        percentage(self.net_saved(), self.total_compares)
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Computes basic-block leader positions: branch/call targets and
/// fall-through successors of control transfers.
fn leaders(p: &CcProgram) -> HashSet<usize> {
    let mut l = HashSet::new();
    l.insert(0);
    for (i, ins) in p.instrs().iter().enumerate() {
        match ins {
            CcInstr::CondBranch { target, .. }
            | CcInstr::Branch { target }
            | CcInstr::Call { target } => {
                if let CcTarget::Abs(t) = target {
                    l.insert(*t as usize);
                }
                l.insert(i + 1);
            }
            CcInstr::Ret | CcInstr::Halt => {
                l.insert(i + 1);
            }
            _ => {}
        }
    }
    l
}

/// Runs the Table 3 analysis over a compiled program.
pub fn analyze_savings(p: &CcProgram) -> SavingsReport {
    let leaders = leaders(p);
    let mut r = SavingsReport::default();
    let instrs = p.instrs();
    for (i, ins) in instrs.iter().enumerate() {
        let CcInstr::Compare { a, b } = ins else {
            continue;
        };
        r.total_compares += 1;
        // Only zero-compares can reuse result flags.
        if *b != CcOperand::Imm(0) {
            continue;
        }
        // Must have a same-block predecessor.
        if i == 0 || leaders.contains(&i) {
            continue;
        }
        let prev = &instrs[i - 1];
        if prev.cc_result_reg() != Some(*a) {
            continue;
        }
        if prev.is_operation() {
            r.saved_ops_only += 1;
            r.gross_ops_and_moves += 1;
        } else if prev.is_move() {
            r.gross_ops_and_moves += 1;
            // Does the moved value get reused (beyond this compare)? If
            // not, the move existed only to set the codes.
            if !value_reused(instrs, &leaders, i, *a) {
                r.moves_only_for_cc += 1;
            }
        }
    }
    r
}

/// Scans forward from the compare at `i` within its basic block: is the
/// register `r` read again before being overwritten?
fn value_reused(
    instrs: &[CcInstr],
    leaders: &HashSet<usize>,
    i: usize,
    r: crate::isa::CcReg,
) -> bool {
    for (k, ins) in instrs.iter().enumerate().skip(i + 1) {
        if leaders.contains(&k) {
            return false;
        }
        if ins.reads().contains(&r) {
            return true;
        }
        if ins.writes() == Some(r) {
            return false;
        }
        if matches!(
            ins,
            CcInstr::CondBranch { .. }
                | CcInstr::Branch { .. }
                | CcInstr::Call { .. }
                | CcInstr::Ret
                | CcInstr::Halt
        ) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CcAddr, CcAluOp, CcCond, CcProgramBuilder};

    #[test]
    fn op_result_compare_is_saved() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::Alu {
            op: CcAluOp::Sub,
            src: CcOperand::Imm(1),
            dst: 0,
        });
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0),
        });
        b.push(CcInstr::CondBranch {
            cond: CcCond::Eq,
            target: CcTarget::Abs(4),
        });
        b.push(CcInstr::Halt);
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.total_compares, 1);
        assert_eq!(r.saved_ops_only, 1);
        assert_eq!(r.gross_ops_and_moves, 1);
        assert_eq!(r.moves_only_for_cc, 0);
        assert!((r.pct_ops_only() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn move_result_compare_saved_only_with_moves_policy() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::Load {
            addr: CcAddr::abs(10),
            dst: 0,
        });
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0),
        });
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.saved_ops_only, 0);
        assert_eq!(r.gross_ops_and_moves, 1);
        assert_eq!(r.moves_only_for_cc, 1, "dead after the test: move-only");
        assert_eq!(r.net_saved(), 0);
    }

    #[test]
    fn reused_move_counts_as_net_saving() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::Load {
            addr: CcAddr::abs(10),
            dst: 0,
        });
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0),
        });
        // The loaded value is used again: the move was real work.
        b.push(CcInstr::Alu {
            op: CcAluOp::Add,
            src: CcOperand::Reg(0),
            dst: 1,
        });
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.gross_ops_and_moves, 1);
        assert_eq!(r.moves_only_for_cc, 0);
        assert_eq!(r.net_saved(), 1);
    }

    #[test]
    fn nonzero_compare_never_saved() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::Alu {
            op: CcAluOp::Sub,
            src: CcOperand::Imm(1),
            dst: 0,
        });
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(13),
        });
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.total_compares, 1);
        assert_eq!(r.gross_ops_and_moves, 0);
    }

    #[test]
    fn block_boundary_blocks_saving() {
        // The compare is a branch target: flags unknown on entry.
        let mut b = CcProgramBuilder::new();
        let l = b.fresh_label();
        b.push(CcInstr::Alu {
            op: CcAluOp::Sub,
            src: CcOperand::Imm(1),
            dst: 0,
        });
        b.define(l).unwrap();
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0),
        });
        b.push(CcInstr::CondBranch {
            cond: CcCond::Ne,
            target: CcTarget::Label(l),
        });
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.total_compares, 1);
        assert_eq!(r.gross_ops_and_moves, 0);
    }

    #[test]
    fn wrong_register_blocks_saving() {
        let mut b = CcProgramBuilder::new();
        b.push(CcInstr::Alu {
            op: CcAluOp::Sub,
            src: CcOperand::Imm(1),
            dst: 3,
        });
        b.push(CcInstr::Compare {
            a: 0,
            b: CcOperand::Imm(0),
        });
        b.push(CcInstr::Halt);
        let r = analyze_savings(&b.finish().unwrap());
        assert_eq!(r.gross_ops_and_moves, 0);
    }
}
