//! A minimal, dependency-free stand-in for the slice of the Criterion
//! API the bench targets use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, throughput reporting).
//!
//! Each benchmark warms up briefly, then runs timed batches for a fixed
//! wall-clock budget and reports the median per-iteration time. The
//! numbers are indicative, not statistically rigorous — good enough to
//! catch order-of-magnitude regressions in CI logs without an external
//! crates dependency.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Top-level driver (Criterion's entry object).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        println!("group {name}");
        Group { throughput: None }
    }
}

/// Throughput annotation: per-iteration element count.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier helper (Criterion's `BenchmarkId`).
#[derive(Debug)]
pub struct BenchmarkId;

impl BenchmarkId {
    /// An id built from a single parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> String {
        p.to_string()
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct Group {
    throughput: Option<u64>,
}

impl Group {
    /// Sets the per-iteration element count for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        let Throughput::Elements(n) = t;
        self.throughput = Some(n);
    }

    /// Accepted for API compatibility; the harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.to_string(), self.throughput);
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&id.to_string(), self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing for one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    per_iter_ns: Vec<u128>,
}

impl Bencher {
    /// Times the closure: warm-up, then batched measurement until the
    /// budget is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        // Batch size aiming for ~10 batches within the budget.
        let per_iter = warm_start.elapsed().as_nanos() / warm_iters.max(1) as u128;
        let batch = (MEASURE_BUDGET.as_nanos() / 10 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.per_iter_ns
                .push(t0.elapsed().as_nanos() / batch as u128);
        }
    }

    fn report(&mut self, id: &str, throughput: Option<u64>) {
        if self.per_iter_ns.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        self.per_iter_ns.sort_unstable();
        let median = self.per_iter_ns[self.per_iter_ns.len() / 2];
        match throughput {
            Some(elems) if median > 0 => {
                let per_sec = elems as f64 * 1e9 / median as f64;
                println!("  {id}: {median} ns/iter ({per_sec:.0} elem/s)");
            }
            _ => println!("  {id}: {median} ns/iter"),
        }
    }
}

/// Declares the benchmark list (Criterion macro shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Declares the bench `main` (Criterion macro shape).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
