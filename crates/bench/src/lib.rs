//! # mips-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the **`tables` binary** (`cargo run --release -p mips-bench --bin
//!   tables`) regenerates every table and figure of the paper, printing
//!   measured values next to the published ones;
//! * the **Criterion benches** (`cargo bench`) measure the reproduction's
//!   own machinery (simulator throughput, reorganizer and compiler speed)
//!   and re-run the per-table experiments under Criterion timing.
//!
//! The helpers here are shared between the two.

pub mod harness;
pub mod throughput;

use mips_hll::{compile_mips, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, Profile};

/// Compiles a workload with the standard configuration and reorganizes
/// it at full optimization.
///
/// # Panics
///
/// Panics if the source does not compile (corpus sources always do).
pub fn build(source: &str) -> mips_reorg::ReorgOutput {
    let lc = compile_mips(source, &CodegenOptions::standard()).expect("corpus compiles");
    reorganize(&lc, ReorgOptions::FULL).expect("reorganizes")
}

/// Runs a built program to completion and returns its profile.
///
/// # Panics
///
/// Panics on simulation errors.
pub fn run(out: &mips_reorg::ReorgOutput) -> Profile {
    let mut m = Machine::new(out.program.clone());
    m.set_refclass_map(out.refclass.clone());
    m.run().expect("runs");
    m.profile().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_run_a_workload() {
        let w = mips_workloads::get("fib").unwrap();
        let out = build(w.source);
        let p = run(&out);
        assert!(p.instructions > 1000);
    }
}
