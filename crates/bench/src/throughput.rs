//! Host-throughput measurement: simulated instructions per host second
//! on each engine, per workload, plus the fast-engine speedup and its
//! geometric mean.
//!
//! Two consumers:
//!
//! * the `tables` binary's `throughput` section renders the table and
//!   writes `BENCH_throughput.json` (schema below);
//! * the `bench_gate` binary re-measures and compares the **speedup
//!   ratio** against a checked-in baseline artifact, failing CI on a
//!   regression. The gate compares ratios rather than absolute MIPS
//!   because the ratio divides out most of the host-speed variance
//!   between CI machines.
//!
//! The JSON schema is pinned by tests: field names, order, and number
//! formatting are part of the contract (`schema` identifies revisions).
//! Serialization is deterministic — byte-identical output for equal
//! measured values.

use mips_sim::{Engine, Machine};
use std::fmt;
use std::time::Instant;

/// Gate tolerance: the measured geomean speedup may fall at most this
/// fraction below the baseline's before CI fails.
pub const GATE_TOLERANCE: f64 = 0.10;

/// One workload's timing on both engines.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadThroughput {
    /// Corpus name.
    pub name: String,
    /// Simulated instructions executed (identical on both engines — a
    /// divergence is a conformance bug and `measure` panics).
    pub instructions: u64,
    /// Host nanoseconds for the reference interpreter run.
    pub reference_ns: u64,
    /// Host nanoseconds for the fast-engine run.
    pub fast_ns: u64,
    /// Instructions the fast engine retired under a block certificate
    /// (per-instruction safety checks statically elided).
    pub cert_elided: u64,
}

impl WorkloadThroughput {
    /// Simulated million-instructions-per-second, reference engine.
    pub fn reference_mips(&self) -> f64 {
        self.instructions as f64 * 1e3 / self.reference_ns.max(1) as f64
    }

    /// Simulated million-instructions-per-second, fast engine.
    pub fn fast_mips(&self) -> f64 {
        self.instructions as f64 * 1e3 / self.fast_ns.max(1) as f64
    }

    /// Fast-engine speedup over the reference interpreter.
    pub fn speedup(&self) -> f64 {
        self.reference_ns.max(1) as f64 / self.fast_ns.max(1) as f64
    }

    /// Fraction of retired instructions executed under a certificate.
    pub fn cert_elision(&self) -> f64 {
        self.cert_elided as f64 / self.instructions.max(1) as f64
    }
}

/// A full throughput run over the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    pub workloads: Vec<WorkloadThroughput>,
}

impl ThroughputReport {
    /// Geometric mean of the per-workload speedups.
    pub fn geomean_speedup(&self) -> f64 {
        if self.workloads.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.workloads.iter().map(|w| w.speedup().ln()).sum();
        (log_sum / self.workloads.len() as f64).exp()
    }

    /// Serializes to the pinned `mips-bench/throughput/v2` schema
    /// (`v2` added the certificate-elision columns).
    /// Deterministic: equal reports produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mips-bench/throughput/v2\",\n");
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            s.push_str(&format!("      \"instructions\": {},\n", w.instructions));
            s.push_str(&format!("      \"reference_ns\": {},\n", w.reference_ns));
            s.push_str(&format!("      \"fast_ns\": {},\n", w.fast_ns));
            s.push_str(&format!("      \"cert_elided\": {},\n", w.cert_elided));
            s.push_str(&format!(
                "      \"cert_elision\": {:.4},\n",
                w.cert_elision()
            ));
            s.push_str(&format!("      \"speedup\": {:.4}\n", w.speedup()));
            s.push_str(if i + 1 == self.workloads.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"geomean_speedup\": {:.4}\n",
            self.geomean_speedup()
        ));
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>10} {:>10} {:>8} {:>7}",
            "workload", "instrs", "ref MIPS", "fast MIPS", "speedup", "elide%"
        )?;
        for w in &self.workloads {
            writeln!(
                f,
                "{:<12} {:>12} {:>10.1} {:>10.1} {:>7.2}x {:>6.1}%",
                w.name,
                w.instructions,
                w.reference_mips(),
                w.fast_mips(),
                w.speedup(),
                w.cert_elision() * 100.0
            )?;
        }
        write!(f, "geometric-mean speedup: {:.2}x", self.geomean_speedup())
    }
}

/// Timing repetitions per engine per workload; the minimum is kept.
/// Host scheduling noise only ever *adds* time, so min-of-N converges
/// on the true cost and keeps the gate ratio stable across runs.
const TIMING_REPS: u32 = 5;

/// Runs a built workload to completion on one engine `TIMING_REPS`
/// times, returning the last machine and the fastest wall time.
fn timed_run(out: &mips_reorg::ReorgOutput, engine: Engine) -> (Machine, u64) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..TIMING_REPS {
        let mut m = Machine::new(out.program.clone());
        m.set_refclass_map(out.refclass.clone());
        m.set_engine(engine);
        let t = Instant::now();
        m.run().expect("corpus workloads run clean");
        best = best.min(t.elapsed().as_nanos() as u64);
        last = Some(m);
    }
    (last.expect("at least one rep"), best)
}

/// Measures the whole corpus on both engines.
///
/// Doubles as a full-run conformance anchor: the two engines must
/// agree on final profile and output for every workload.
///
/// # Panics
///
/// Panics if a workload fails to run or the engines diverge.
pub fn measure() -> ThroughputReport {
    let workloads = mips_workloads::corpus()
        .iter()
        .map(|w| {
            let out = crate::build(w.source);
            let (ref_m, reference_ns) = timed_run(&out, Engine::Reference);
            let (fast_m, fast_ns) = timed_run(&out, Engine::Fast);
            assert_eq!(
                fast_m.profile(),
                ref_m.profile(),
                "{}: engine profiles diverge",
                w.name
            );
            assert_eq!(
                fast_m.output(),
                ref_m.output(),
                "{}: engine outputs diverge",
                w.name
            );
            WorkloadThroughput {
                name: w.name.to_string(),
                instructions: fast_m.profile().instructions,
                reference_ns,
                fast_ns,
                cert_elided: fast_m.cert_elided(),
            }
        })
        .collect();
    ThroughputReport { workloads }
}

/// Extracts the `geomean_speedup` field from a `v2` artifact.
///
/// # Errors
///
/// A message naming what is missing or malformed.
pub fn parse_geomean(json: &str) -> Result<f64, String> {
    if !json.contains("\"schema\": \"mips-bench/throughput/v2\"") {
        return Err("not a mips-bench/throughput/v2 artifact".into());
    }
    let key = "\"geomean_speedup\":";
    let at = json
        .find(key)
        .ok_or_else(|| "missing geomean_speedup field".to_string())?;
    let rest = json[at + key.len()..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()
        .unwrap_or("");
    rest.trim()
        .parse::<f64>()
        .map_err(|e| format!("malformed geomean_speedup {rest:?}: {e}"))
}

/// Gate verdict: how the current speedup compares to the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateVerdict {
    pub baseline: f64,
    pub current: f64,
    /// Smallest acceptable current speedup:
    /// `max(baseline * (1 - tolerance), 1.0)` — a fast path slower
    /// than the reference interpreter is a regression no matter what
    /// the baseline says.
    pub floor: f64,
    pub pass: bool,
}

impl fmt::Display for GateVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "geomean speedup {:.2}x vs baseline {:.2}x (floor {:.2}x): {}",
            self.current,
            self.baseline,
            self.floor,
            if self.pass { "PASS" } else { "REGRESSION" }
        )
    }
}

/// Compares two artifacts' geomean speedups.
///
/// # Errors
///
/// A message if either artifact fails to parse.
pub fn gate(
    baseline_json: &str,
    current_json: &str,
    tolerance: f64,
) -> Result<GateVerdict, String> {
    let baseline = parse_geomean(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let current = parse_geomean(current_json).map_err(|e| format!("current: {e}"))?;
    let floor = (baseline * (1.0 - tolerance)).max(1.0);
    Ok(GateVerdict {
        baseline,
        current,
        floor,
        pass: current >= floor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThroughputReport {
        ThroughputReport {
            workloads: vec![
                WorkloadThroughput {
                    name: "fib".into(),
                    instructions: 78_262,
                    reference_ns: 4_000_000,
                    fast_ns: 1_000_000,
                    cert_elided: 39_131,
                },
                WorkloadThroughput {
                    name: "sort".into(),
                    instructions: 1_000_000,
                    reference_ns: 9_000_000,
                    fast_ns: 4_000_000,
                    cert_elided: 250_000,
                },
            ],
        }
    }

    #[test]
    fn geomean_is_the_geometric_mean() {
        let r = sample();
        assert!((r.geomean_speedup() - (4.0f64 * 2.25).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips_through_the_gate_parser() {
        let json = sample().to_json();
        let g = parse_geomean(&json).unwrap();
        assert!((g - sample().geomean_speedup()).abs() < 1e-3);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let base = sample().to_json();
        // Identical artifact: pass.
        assert!(gate(&base, &base, GATE_TOLERANCE).unwrap().pass);
        // 30% slower than baseline: regression.
        let slow = ThroughputReport {
            workloads: sample()
                .workloads
                .into_iter()
                .map(|w| WorkloadThroughput {
                    fast_ns: w.fast_ns * 10 / 7,
                    ..w
                })
                .collect(),
        };
        assert!(!gate(&base, &slow.to_json(), GATE_TOLERANCE).unwrap().pass);
        // Parse errors are errors, not verdicts.
        assert!(gate(&base, "{}", GATE_TOLERANCE).is_err());
    }

    #[test]
    fn the_floor_is_never_below_parity() {
        // Baseline claims 0.8x (slower than reference); the floor must
        // still demand parity from the current run.
        let mut r = sample();
        for w in &mut r.workloads {
            w.fast_ns = w.reference_ns * 5 / 4;
        }
        let v = gate(&r.to_json(), &r.to_json(), GATE_TOLERANCE).unwrap();
        assert_eq!(v.floor, 1.0);
        assert!(!v.pass);
    }
}
