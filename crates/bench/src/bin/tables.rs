//! Regenerates every table and figure of *Hardware/Software Tradeoffs for
//! Increased Performance* (ASPLOS 1982), printing measured values next to
//! the paper's published numbers.
//!
//! ```text
//! cargo run --release -p mips-bench --bin tables            # everything
//! cargo run --release -p mips-bench --bin tables table11    # one experiment
//! ```
//!
//! Experiments: `table1` … `table11`, `figure1` … `figure4`, `free`,
//! `wordwise`, `regalloc`, `systems`, `chaos`, `recovery`,
//! `failover` (the kill-anyone distributed campaign: WAL + leader
//! election under node kills drawn over the whole run), `throughput`
//! (which also writes the `BENCH_throughput.json` artifact the CI
//! regression gate compares against), and `fleet` (which writes
//! `BENCH_fleet.json`, the fleet scaling artifact its own gate
//! compares against).

use mips_analysis as analysis;
use mips_hll::MachineTarget;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    let t0 = Instant::now();

    if want("table1") {
        section("Table 1");
        println!("{}", analysis::constants::analyze_corpus());
    }
    if want("table2") {
        section("Table 2");
        println!("{}", analysis::taxonomy::Taxonomy);
    }
    if want("table3") {
        section("Table 3");
        println!("{}", analysis::cc_usage::analyze_corpus());
    }

    let bool_stats = analysis::booleans::analyze_corpus();
    if want("table4") {
        section("Table 4");
        println!("{bool_stats}");
    }
    if want("table5") {
        section("Table 5");
        println!("{}", analysis::bool_cost::table5());
    }
    if want("table6") {
        section("Table 6");
        let t6 = analysis::bool_cost::table6(
            bool_stats.operators_per_compound().max(1.0),
            bool_stats.jump_pct() / 100.0,
        );
        println!("{t6}");
    }

    if want("table7") || want("table8") || want("table9") || want("table10") {
        let word = analysis::refs::measure(MachineTarget::Word, None);
        let byte = analysis::refs::measure(MachineTarget::Byte, None);
        if want("table7") {
            section("Table 7");
            println!("{word}");
        }
        if want("table8") {
            section("Table 8");
            println!("{byte}");
        }
        let t9 = analysis::byte_cost::table9();
        if want("table9") {
            section("Table 9");
            println!("{t9}");
        }
        if want("table10") {
            section("Table 10");
            println!("{}", analysis::byte_cost::table10(&t9, &word, &byte));
        }
    }

    if want("table11") {
        section("Table 11");
        println!("{}", analysis::table11::measure());
    }

    if want("figure1") {
        section("Figure 1");
        println!("{}", analysis::figures::figure1());
    }
    if want("figure2") {
        section("Figure 2");
        println!("{}", analysis::figures::figure2());
    }
    if want("figure3") {
        section("Figure 3");
        println!("{}", analysis::figures::figure3());
    }
    if want("figure4") {
        section("Figure 4");
        println!("{}", analysis::figures::figure4());
    }

    if want("wordwise") {
        section("Word-at-a-time string processing (§4.1)");
        println!("{}", analysis::word_at_a_time::measure());
    }

    if want("regalloc") {
        section("Register allocation payoff (§2.2)");
        println!(
            "{}",
            analysis::regalloc::sweep(&[
                "sort",
                "queens",
                "strings",
                "formatter",
                "sieve",
                "matmul"
            ])
        );
    }

    if want("systems") {
        section("Systems overhead under mips-os (§3.1/§3.3)");
        systems_table();
    }

    if want("chaos") {
        section("Fault survival under mips-os (chaos campaign)");
        chaos_table();
    }

    if want("recovery") {
        section("Fault recovery under supervision (chaos campaign, checkpoint/restart)");
        recovery_table();
    }

    if want("failover") {
        section("Kill-anyone failover (guest WAL + leader election, unrestricted kill window)");
        failover_table();
    }

    if want("free") {
        section("Free memory cycles (§3.1)");
        let names: Vec<&str> = mips_workloads::corpus().iter().map(|w| w.name).collect();
        println!("{}", analysis::free_cycles::measure(&names));
    }

    if want("throughput") {
        section("Host throughput: fast engine vs reference interpreter");
        let report = mips_bench::throughput::measure();
        println!("{report}");
        let path = "BENCH_throughput.json";
        std::fs::write(path, report.to_json()).expect("write throughput artifact");
        println!("[wrote {path}]");
    }

    if want("fleet") {
        section("Fleet serving: scaling curve and measured throughput");
        let bench = mips_serve::measure_fleet(mips_serve::BENCH_SEED, mips_serve::BENCH_JOBS, 0);
        println!("{bench}");
        let path = "BENCH_fleet.json";
        std::fs::write(path, bench.to_json()).expect("write fleet artifact");
        println!("[wrote {path}]");
    }

    eprintln!("[tables: completed in {:?}]", t0.elapsed());
}

/// Per-workload systems overhead: each corpus program runs alone under
/// the `mips-os` kernel (demand-paged, segmented, preempted) and the
/// kernel-mode cycles are attributed to their sections. The overhead
/// column is the price of multiprogramming relative to bare metal.
fn systems_table() {
    use mips_os::{Kernel, ProcStatus};
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "workload", "user", "save/rst", "dispatch", "syscall", "tick", "sched", "paging", "ovhd%"
    );
    for w in mips_workloads::corpus() {
        let built = mips_bench::build(w.source);
        let mut k = Kernel::boot();
        k.spawn(w.name, built.program).expect("spawns");
        let r = k.run_until_idle().expect("runs under the kernel");
        assert!(
            matches!(r.procs[0].status, ProcStatus::Exited(_)),
            "{} exits under the kernel",
            w.name
        );
        let c = r.cost;
        println!(
            "{:<12} {:>10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>8.2}",
            w.name,
            c.user,
            c.save_restore,
            c.dispatch,
            c.syscall,
            c.tick,
            c.sched,
            c.paging,
            c.overhead_percent()
        );
    }
}

/// Per-fault-kind survival: a fixed-seed `mips-chaos` campaign over
/// multiprogrammed workload sets, reporting how each injected fault
/// class resolved — masked, isolated to its victim, detected by the
/// hardened kernel, or escaped (always zero; an escape is a bug).
fn chaos_table() {
    let report = mips_chaos::run_campaign(&mips_chaos::CampaignConfig {
        seed: 0xA5,
        cases: 60,
        max_faults: 3,
        ..mips_chaos::CampaignConfig::default()
    });
    println!("{report}");
    assert!(report.clean(), "chaos campaign must not have escapes");
}

/// The same fixed-seed campaign, supervised: detected kills roll the
/// victim back to its last checkpoint and replay. The survival table
/// shows how many previously-detected cases now finish byte-identical
/// to baseline (`recovered`), and what stays honestly detected
/// (deterministic wedges, quarantined victims).
fn recovery_table() {
    let cfg = mips_chaos::CampaignConfig {
        seed: 0xA5,
        cases: 60,
        max_faults: 3,
        ..mips_chaos::CampaignConfig::default()
    };
    let plain = mips_chaos::run_campaign(&cfg);
    let rec = mips_chaos::run_campaign(&mips_chaos::CampaignConfig {
        recover: true,
        ..cfg
    });
    println!("{rec}");
    let (p, r) = (plain.summary(), rec.summary());
    println!(
        "recovery reclassified {} of {} detected cases ({} still detected)",
        r.recovered, p.detected, r.detected
    );
    assert!(rec.clean(), "recovery campaign must not have escapes");
    assert!(
        r.recovered * 4 >= p.detected,
        "fewer than a quarter of detected cases recovered"
    );
}

/// The pinned failover campaign: three symmetric members with a
/// durable write-ahead log and bully-style elections, under the full
/// distributed fault taxonomy with kills — the sitting leader
/// included — drawn uniformly over the *entire* run. The table shows
/// the per-node survival counts plus the election/kill aggregates;
/// the asserts are the same floors CI holds the pinned artifact to.
fn failover_table() {
    let report = mips_chaos::run_net_campaign_threaded(
        &mips_chaos::NetCampaignConfig {
            failover: true,
            ..mips_chaos::NetCampaignConfig::default()
        },
        0,
    );
    println!("{report}");
    assert!(report.clean(), "failover campaign must not have escapes");
    assert!(
        mips_chaos::kills_all_recovered(&report),
        "every kill case must grade `recovered`"
    );
}

fn section(name: &str) {
    println!("{}", "=".repeat(72));
    println!("== {name}");
    println!("{}", "=".repeat(72));
}
