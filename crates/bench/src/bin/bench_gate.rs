//! CI throughput regression gate.
//!
//! ```text
//! bench_gate BASELINE.json            # measure now, compare, write CURRENT next to it
//! bench_gate --compare BASE CURRENT   # pure file comparison, no measurement
//! ```
//!
//! Compares the **geomean fast-engine speedup** (a mostly
//! host-independent ratio) against the checked-in baseline artifact.
//!
//! Exit codes: `0` pass, `1` regression, `2` usage or parse error.

use mips_bench::throughput::{self, GATE_TOLERANCE};
use std::process::ExitCode;

const USAGE: &str =
    "usage: bench_gate BASELINE.json | bench_gate --compare BASELINE.json CURRENT.json";

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn verdict(baseline: &str, current: &str) -> ExitCode {
    match throughput::gate(baseline, current, GATE_TOLERANCE) {
        Ok(v) => {
            println!("{v}");
            if v.pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, base, current] if flag == "--compare" => {
            let (b, c) = match (read(base), read(current)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            verdict(&b, &c)
        }
        [base] if base != "--compare" => {
            let b = match read(base) {
                Ok(b) => b,
                Err(e) => return e,
            };
            let report = throughput::measure();
            println!("{report}");
            verdict(&b, &report.to_json())
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
