//! Reorganizer speed (the paper: "since the code reorganization process
//! is part of every compilation, we must concentrate on solutions which
//! have acceptable run-time performance") and per-level output quality.

use mips_bench::harness::{BenchmarkId, Criterion};
use mips_bench::{criterion_group, criterion_main};
use mips_hll::{compile_mips, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};

fn reorg_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorg_speed");
    for name in ["fib", "puzzle0", "puzzle1", "scanner"] {
        let w = mips_workloads::get(name).unwrap();
        let lc = compile_mips(w.source, &CodegenOptions::standard()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &lc, |b, lc| {
            b.iter(|| reorganize(lc, ReorgOptions::FULL).unwrap().stats)
        });
    }
    g.finish();
}

fn reorg_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorg_levels");
    let w = mips_workloads::get("puzzle0").unwrap();
    let lc = compile_mips(w.source, &CodegenOptions::standard()).unwrap();
    for (name, opts) in ReorgOptions::LEVELS {
        g.bench_function(name.replace(' ', "_"), |b| {
            b.iter(|| reorganize(&lc, opts).unwrap().stats)
        });
    }
    g.finish();
}

criterion_group!(benches, reorg_speed, reorg_levels);
criterion_main!(benches);
