//! Simulator throughput: instructions per second executing the corpus
//! kernels on the five-stage-machine model, plus the pipeline-feature
//! overheads (hazard checking, byte addressing).

use mips_bench::build;
use mips_bench::harness::{BenchmarkId, Criterion, Throughput};
use mips_bench::{criterion_group, criterion_main};
use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, MachineConfig};

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    for name in ["fib", "sieve", "queens", "matmul", "strings"] {
        let w = mips_workloads::get(name).unwrap();
        let out = build(w.source);
        // Instruction count for throughput units.
        let mut probe = Machine::new(out.program.clone());
        probe.run().unwrap();
        g.throughput(Throughput::Elements(probe.profile().instructions));
        g.bench_with_input(BenchmarkId::from_parameter(name), &out, |b, out| {
            b.iter(|| {
                let mut m = Machine::new(out.program.clone());
                m.run().unwrap();
                m.profile().instructions
            })
        });
    }
    g.finish();
}

fn sim_feature_overheads(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_features");
    let w = mips_workloads::get("sieve").unwrap();
    let out = build(w.source);
    g.bench_function("baseline", |b| {
        b.iter(|| {
            let mut m = Machine::new(out.program.clone());
            m.run().unwrap();
        })
    });
    g.bench_function("hazard_checking", |b| {
        b.iter(|| {
            let mut m = Machine::with_config(
                out.program.clone(),
                MachineConfig {
                    check_hazards: true,
                    ..MachineConfig::default()
                },
            );
            m.run().unwrap();
        })
    });
    let cg = CodegenOptions {
        target: MachineTarget::Byte,
        ..CodegenOptions::standard()
    };
    let lc = compile_mips(w.source, &cg).unwrap();
    let bout = reorganize(&lc, ReorgOptions::FULL).unwrap();
    g.bench_function("byte_addressed", |b| {
        b.iter(|| {
            let mut m = Machine::with_config(
                bout.program.clone(),
                MachineConfig {
                    byte_addressed: true,
                    ..MachineConfig::default()
                },
            );
            m.run().unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, sim_throughput, sim_feature_overheads);
criterion_main!(benches);
