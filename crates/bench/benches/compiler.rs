//! Compiler pipeline speed: front end, MIPS backend, CC backend, and
//! instruction encode/decode.

use mips_bench::harness::{BenchmarkId, Criterion};
use mips_bench::{criterion_group, criterion_main};
use mips_core::encode::{decode, encode};
use mips_hll::{compile_cc, compile_mips, CcGenOptions, CodegenOptions};

fn front_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("front_end");
    for name in ["fib", "puzzle0", "scanner"] {
        let w = mips_workloads::get(name).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &w.source, |b, src| {
            b.iter(|| mips_hll::front_end(src).unwrap())
        });
    }
    g.finish();
}

fn backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("backends");
    let w = mips_workloads::get("puzzle0").unwrap();
    g.bench_function("mips", |b| {
        b.iter(|| compile_mips(w.source, &CodegenOptions::standard()).unwrap())
    });
    g.bench_function("cc", |b| {
        b.iter(|| compile_cc(w.source, &CcGenOptions::default()).unwrap())
    });
    g.finish();
}

fn encoding(c: &mut Criterion) {
    let w = mips_workloads::get("puzzle0").unwrap();
    let out = mips_bench::build(w.source);
    let words: Vec<u64> = out.program.instrs().iter().map(encode).collect();
    let mut g = c.benchmark_group("encoding");
    g.bench_function("encode_program", |b| {
        b.iter(|| {
            out.program
                .instrs()
                .iter()
                .map(encode)
                .fold(0u64, |a, w| a ^ w)
        })
    });
    g.bench_function("decode_program", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|&w| decode(w).unwrap())
                .filter(|i| i.is_nop())
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, front_end, backends, encoding);
criterion_main!(benches);
