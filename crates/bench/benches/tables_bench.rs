//! One Criterion benchmark per paper experiment: times each table's full
//! regeneration (the `tables` binary prints the values; this tracks how
//! long each experiment takes).

use mips_analysis as analysis;
use mips_bench::harness::Criterion;
use mips_bench::{criterion_group, criterion_main};
use mips_hll::MachineTarget;

fn per_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_constants", |b| {
        b.iter(analysis::constants::analyze_corpus)
    });
    g.bench_function("table3_cc_savings", |b| {
        b.iter(analysis::cc_usage::analyze_corpus)
    });
    g.bench_function("table4_booleans", |b| {
        b.iter(analysis::booleans::analyze_corpus)
    });
    g.bench_function("table5_strategies", |b| b.iter(analysis::bool_cost::table5));
    g.bench_function("table9_byte_costs", |b| b.iter(analysis::byte_cost::table9));
    g.bench_function("table11_reorg_levels", |b| {
        b.iter(analysis::table11::measure)
    });
    let fast: &[&str] = &["scanner", "wordcount", "strings", "formatter", "sieve"];
    g.bench_function("table7_refs_word", |b| {
        b.iter(|| analysis::refs::measure(MachineTarget::Word, Some(fast)))
    });
    g.bench_function("table8_refs_byte", |b| {
        b.iter(|| analysis::refs::measure(MachineTarget::Byte, Some(fast)))
    });
    g.bench_function("figure4_reorg", |b| b.iter(analysis::figures::figure4));
    g.finish();
}

criterion_group!(benches, per_table);
criterion_main!(benches);
