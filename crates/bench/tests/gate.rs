//! The throughput artifact schema and the CI gate's exit-code contract.
//!
//! `BENCH_throughput.json` is a checked-in baseline that CI diffs
//! against, so its *serialization* is part of the interface: field
//! names, field order, and number formatting are pinned byte-for-byte
//! here. The `bench_gate` binary's exit codes are likewise contractual
//! (CI branches on them): `0` pass, `1` regression, `2` usage/parse
//! error — one test per code.

use mips_bench::throughput::{ThroughputReport, WorkloadThroughput};
use std::process::Command;

fn sample(fast_ns: u64) -> ThroughputReport {
    ThroughputReport {
        workloads: vec![
            WorkloadThroughput {
                name: "fib".into(),
                instructions: 78_262,
                reference_ns: 4_000_000,
                fast_ns,
                cert_elided: 39_131,
            },
            WorkloadThroughput {
                name: "sort".into(),
                instructions: 1_000_000,
                reference_ns: 9_000_000,
                fast_ns: fast_ns * 4,
                cert_elided: 250_000,
            },
        ],
    }
}

/// The exact serialized form, byte for byte. A diff here is a schema
/// change: bump the `schema` string and regenerate the baseline.
#[test]
fn json_schema_is_pinned_byte_for_byte() {
    let expected = "\
{
  \"schema\": \"mips-bench/throughput/v2\",
  \"workloads\": [
    {
      \"name\": \"fib\",
      \"instructions\": 78262,
      \"reference_ns\": 4000000,
      \"fast_ns\": 1000000,
      \"cert_elided\": 39131,
      \"cert_elision\": 0.5000,
      \"speedup\": 4.0000
    },
    {
      \"name\": \"sort\",
      \"instructions\": 1000000,
      \"reference_ns\": 9000000,
      \"fast_ns\": 4000000,
      \"cert_elided\": 250000,
      \"cert_elision\": 0.2500,
      \"speedup\": 2.2500
    }
  ],
  \"geomean_speedup\": 3.0000
}
";
    assert_eq!(sample(1_000_000).to_json(), expected);
}

/// Serialization is deterministic: equal reports, identical bytes.
#[test]
fn equal_reports_serialize_identically() {
    assert_eq!(sample(1_000_000).to_json(), sample(1_000_000).to_json());
}

/// The checked-in repository baseline parses under the current schema
/// and claims the acceptance-floor speedup.
#[test]
fn repository_baseline_is_valid_and_fast() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = std::fs::read_to_string(path).expect("checked-in BENCH_throughput.json");
    let g = mips_bench::throughput::parse_geomean(&json).expect("baseline parses");
    assert!(g >= 2.0, "baseline geomean speedup {g} below the 2x floor");
}

fn run_gate(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(args)
        .output()
        .expect("bench_gate spawns");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("mips_gate_{}_{name}", std::process::id()));
    std::fs::write(&p, contents).unwrap();
    p
}

#[test]
fn exit_0_when_within_tolerance() {
    let base = write_tmp("pass_base.json", &sample(1_000_000).to_json());
    // 5% slower: inside the 10% tolerance band.
    let cur = write_tmp("pass_cur.json", &sample(1_050_000).to_json());
    let (code, stdout, _) = run_gate(&["--compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stdout: {stdout}");
    assert!(stdout.contains("PASS"), "stdout: {stdout}");
}

#[test]
fn exit_1_on_regression() {
    let base = write_tmp("reg_base.json", &sample(1_000_000).to_json());
    // 30% slower: past the tolerance band.
    let cur = write_tmp("reg_cur.json", &sample(1_430_000).to_json());
    let (code, stdout, _) = run_gate(&["--compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stdout: {stdout}");
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
}

#[test]
fn exit_2_on_usage_and_parse_errors() {
    // No arguments: usage.
    let (code, _, stderr) = run_gate(&[]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("usage"), "stderr: {stderr}");
    // Unreadable file: parse/read error.
    let (code, _, _) = run_gate(&["--compare", "/nonexistent.json", "/nonexistent.json"]);
    assert_eq!(code, Some(2));
    // Readable but not a v2 artifact.
    let base = write_tmp("bad_base.json", &sample(1_000_000).to_json());
    let bad = write_tmp("bad_cur.json", "{\"schema\": \"something-else\"}\n");
    let (code, _, stderr) = run_gate(&["--compare", base.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
}
