//! Multiprogramming on the simulated MIPS machine in a dozen lines:
//! compile three workloads, spawn each as an isolated user process, and
//! let the kernel time-slice them with demand paging turned on.
//!
//! ```text
//! cargo run --release -p mips-os --example multiprogram
//! ```

use mips_hll::{compile_mips, CodegenOptions};
use mips_os::{Kernel, KernelConfig};
use mips_reorg::{reorganize, ReorgOptions};

fn main() {
    let mut kernel = Kernel::with_config(KernelConfig {
        time_slice: 2_000, // short slices so the interleaving is visible
        ..KernelConfig::default()
    });

    for name in ["fib", "hanoi", "sieve"] {
        let w = mips_workloads::get(name).expect("corpus workload");
        let lc = compile_mips(w.source, &CodegenOptions::standard()).expect("compiles");
        let out = reorganize(&lc, ReorgOptions::FULL).expect("reorganizes");
        kernel.spawn(name, out.program).expect("spawns");
    }

    let report = kernel.run_until_idle().expect("runs to completion");

    for p in &report.procs {
        println!("── pid {} ({}) — {:?}", p.pid, p.name, p.status);
        println!("{}", String::from_utf8_lossy(&p.output));
    }

    // How finely the three outputs interleaved on the shared console.
    let mut runs = 0u32;
    let mut last = 0;
    for &(pid, _) in &report.console {
        if pid != last {
            runs += 1;
            last = pid;
        }
    }
    println!(
        "── console: {} bytes in {} writer runs",
        report.console.len(),
        runs
    );
    println!("── counters: {:?}", report.counters);

    let c = report.cost;
    println!("── systems cost (instructions)");
    println!("   user         {:>10}", c.user);
    println!("   save/restore {:>10}", c.save_restore);
    println!("   dispatch     {:>10}", c.dispatch);
    println!("   syscall      {:>10}", c.syscall);
    println!("   tick         {:>10}", c.tick);
    println!("   sched        {:>10}", c.sched);
    println!("   paging       {:>10}", c.paging);
    println!("   overhead     {:>9.2}%", c.overhead_percent());
}
