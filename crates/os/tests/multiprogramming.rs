//! The acceptance bar for the systems layer: every compiled workload
//! runs as an isolated user process under the kernel — demand-paged,
//! segmented, preempted — and produces byte-identical output to its
//! bare-metal run; several workloads share the machine concurrently
//! without interference.

use mips_hll::{compile_mips, CodegenOptions};
use mips_os::{Kernel, KernelConfig, ProcStatus};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::Machine;

/// Compiles and reorganizes a workload exactly as the bench harness
/// does for bare metal.
fn build(source: &str) -> mips_core::Program {
    let lc = compile_mips(source, &CodegenOptions::standard()).expect("corpus compiles");
    reorganize(&lc, ReorgOptions::FULL)
        .expect("reorganizes")
        .program
}

/// Bare-metal reference: native traps, no kernel.
fn standalone_output(program: mips_core::Program) -> Vec<u8> {
    let mut m = Machine::new(program);
    m.run().expect("bare-metal run");
    m.output().to_vec()
}

#[test]
fn every_workload_is_byte_identical_under_the_kernel() {
    for w in mips_workloads::corpus() {
        let program = build(w.source);
        let expected = standalone_output(program.clone());

        let mut k = Kernel::boot();
        k.spawn(w.name, program).unwrap();
        let report = k.run_until_idle().unwrap();
        let p = &report.procs[0];
        assert!(
            matches!(p.status, ProcStatus::Exited(_)),
            "{} exits cleanly, got {:?}",
            w.name,
            p.status
        );
        assert_eq!(
            p.output, expected,
            "{}: output under the kernel differs from bare metal",
            w.name
        );
        assert!(
            report.counters.faults > 0,
            "{}: demand paging saw no faults",
            w.name
        );
        assert!(report.cost.user > 0 && report.cost.save_restore > 0);
    }
}

#[test]
fn three_workloads_time_slice_concurrently_without_interference() {
    let names = ["fib", "hanoi", "sieve"];
    let programs: Vec<_> = names
        .iter()
        .map(|n| build(mips_workloads::get(n).unwrap().source))
        .collect();
    let expected: Vec<_> = programs
        .iter()
        .map(|p| standalone_output(p.clone()))
        .collect();

    let mut k = Kernel::with_config(KernelConfig {
        time_slice: 2_000, // short slices force heavy interleaving
        ..KernelConfig::default()
    });
    for (n, p) in names.iter().zip(&programs) {
        k.spawn(n, p.clone()).unwrap();
    }
    let report = k.run_until_idle().unwrap();

    for ((p, want), n) in report.procs.iter().zip(&expected).zip(&names) {
        assert!(matches!(p.status, ProcStatus::Exited(_)), "{n} exits");
        assert_eq!(&p.output, want, "{n}: interference under multiprogramming");
    }
    assert!(
        report.counters.ticks > 10,
        "expected real preemption, got {} ticks",
        report.counters.ticks
    );
    assert!(
        report.counters.switches > names.len() as u64,
        "processes were not actually interleaved"
    );
    // The global console stream interleaves writers: more than one pid
    // must appear before the first process finishes.
    let writers: std::collections::BTreeSet<u32> =
        report.console.iter().map(|&(pid, _)| pid).collect();
    assert_eq!(writers.len(), names.len(), "all processes wrote output");
}

#[test]
fn multiprogram_runs_are_deterministic() {
    let run = || {
        let mut k = Kernel::with_config(KernelConfig {
            time_slice: 2_000,
            ..KernelConfig::default()
        });
        for n in ["fib", "hanoi", "sieve"] {
            k.spawn(n, build(mips_workloads::get(n).unwrap().source))
                .unwrap();
        }
        k.run_until_idle().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.console, b.console, "tick arrival must be deterministic");
}

#[test]
fn a_full_house_of_processes_all_exit() {
    let src = "
    start:
        trap #5          ; r1 := pid
        mvi #48,r2
        add r1,r2,r1     ; pid as an ASCII digit
        trap #1
        trap #0
    ";
    let p = mips_asm::assemble(src).unwrap();
    let mut k = Kernel::boot();
    for i in 0..8 {
        k.spawn(&format!("p{i}"), p.clone()).unwrap();
    }
    let report = k.run_until_idle().unwrap();
    assert_eq!(report.procs.len(), 8);
    for (i, p) in report.procs.iter().enumerate() {
        assert!(matches!(p.status, ProcStatus::Exited(_)));
        // Each process sees its own pid through getpid: isolation of
        // the identity syscall across all eight address spaces.
        assert_eq!(p.output, format!("{}", i + 1).as_bytes());
    }
}
