//! Syscall ABI, fault isolation, and the paging policy, exercised by
//! hand-written user programs (assembled with `mips-asm`), plus the
//! static-verification gate on the kernel itself.

use mips_asm::assemble;
use mips_core::Program;
use mips_os::{kernel_program, Kernel, KernelConfig, ProcStatus, KERNEL_SRC};
use mips_sim::Cause;

fn run_one(src: &str, cfg: KernelConfig) -> (mips_os::RunReport, ProcStatus, Vec<u8>) {
    let p = assemble(src).unwrap();
    let mut k = Kernel::with_config(cfg);
    k.spawn("t", p).unwrap();
    let r = k.run_until_idle().unwrap();
    let status = r.procs[0].status;
    let out = r.procs[0].output.clone();
    (r, status, out)
}

/// The kernel must satisfy its own static verifier: zero errors, zero
/// warnings. (Privileged-instruction notes are expected — it *is* the
/// kernel.)
#[test]
fn kernel_passes_mips_verify_clean() {
    let report = mips_verify::verify(&kernel_program());
    let errors: Vec<_> = report.errors().collect();
    assert!(errors.is_empty(), "kernel verify errors: {errors:?}");
    let warnings: Vec<_> = report.warnings().collect();
    assert!(warnings.is_empty(), "kernel verify warnings: {warnings:?}");
}

/// `mips-lint --strict` over the checked-in source agrees with the
/// in-process verifier (the CI gate runs the binary form).
#[test]
fn kernel_source_lints_strict() {
    let report = mips_verify::verify_source(KERNEL_SRC).unwrap();
    assert!(!report.has_errors());
    assert_eq!(report.warnings().count(), 0);
}

#[test]
fn getpid_and_exit_status() {
    let src = "
    start:
        trap #5          ; r1 := pid
        mvi #48,r2
        add r1,r2,r1
        trap #1          ; print it
        mvi #7,r1
        trap #0          ; exit(7)
        halt
    ";
    let (_, status, out) = run_one(src, KernelConfig::default());
    assert_eq!(status, ProcStatus::Exited(7));
    assert_eq!(out, b"1");
}

#[test]
fn brk_returns_the_previous_break() {
    let src = "
    start:
        lim #16384,r1
        trap #4          ; r1 := old break (the initial one)
        trap #2          ; print it
        mvi #10,r1
        trap #1
        mvi #0,r1
        trap #4          ; r1 := the break we just set
        trap #2
        mvi #0,r1
        trap #0
        halt
    ";
    let (_, status, out) = run_one(src, KernelConfig::default());
    assert_eq!(status, ProcStatus::Exited(0));
    assert_eq!(
        out,
        format!("{}\n16384", mips_os::layout::INITIAL_BRK).as_bytes()
    );
}

#[test]
fn time_advances_across_a_busy_loop() {
    let src = "
    start:
        trap #6          ; r1 := ticks now
        mov r1,r2
        lim #3000,r4
    loop:
        sub r4,#1,r4
        bne r4,#0,loop
        nop
        trap #6
        sub r1,r2,r1     ; elapsed ticks
        trap #2
        mvi #0,r1
        trap #0
        halt
    ";
    let (_, status, out) = run_one(
        src,
        KernelConfig {
            time_slice: 1_000,
            ..KernelConfig::default()
        },
    );
    assert_eq!(status, ProcStatus::Exited(0));
    let elapsed: i64 = String::from_utf8(out).unwrap().parse().unwrap();
    assert!(elapsed >= 3, "a ~9000-instruction loop spans ticks of 1000");
}

#[test]
fn yield_round_robins_exactly() {
    // Three processes each print their letter three times, yielding in
    // between: the global stream must be a strict round-robin.
    let src = |c: u8| {
        format!(
            "
    start:
        mvi #3,r4
    loop:
        mvi #{c},r1
        trap #1
        trap #3          ; yield
        sub r4,#1,r4
        bne r4,#0,loop
        nop
        trap #0
        halt
    "
        )
    };
    let mut k = Kernel::with_config(KernelConfig {
        time_slice: 100_000, // no timer interference: pure yields
        ..KernelConfig::default()
    });
    for c in [b'A', b'B', b'C'] {
        k.spawn(&format!("{}", c as char), assemble(&src(c)).unwrap())
            .unwrap();
    }
    let r = k.run_until_idle().unwrap();
    let stream: Vec<u8> = r.console.iter().map(|&(_, b)| b).collect();
    assert_eq!(stream, b"ABCABCABC");
    assert!(r.counters.syscalls >= 9 + 9); // putc + yield per letter
}

#[test]
fn a_wild_pointer_kills_only_the_offender() {
    let wild = "
    start:
        lim #16777215,r2
        add r2,#1,r2     ; 2^24: inside the segmentation gap
        ld 0(r2),r3      ; fatal
        nop
        trap #0
        halt
    ";
    let good = "
    start:
        mvi #71,r1       ; 'G'
        trap #1
        mvi #0,r1
        trap #0
        halt
    ";
    let mut k = Kernel::boot();
    k.spawn("wild", assemble(wild).unwrap()).unwrap();
    k.spawn("good", assemble(good).unwrap()).unwrap();
    let r = k.run_until_idle().unwrap();
    assert_eq!(r.procs[0].status, ProcStatus::Killed(Cause::PageFault));
    assert_eq!(r.procs[1].status, ProcStatus::Exited(0));
    assert_eq!(r.procs[1].output, b"G");
}

#[test]
fn privileged_instructions_kill_the_process() {
    let src = "
    start:
        rsp ret0,r1      ; supervisor-only: the hardware faults
        trap #0
        halt
    ";
    let (_, status, _) = run_one(src, KernelConfig::default());
    assert_eq!(status, ProcStatus::Killed(Cause::Privilege));
}

#[test]
fn second_chance_paging_evicts_and_soft_faults() {
    // Touch pages 1,2,3,4 then re-touch 2 each round, with only three
    // frames: page 4's fault sweeps (unmaps) the resident set and
    // evicts; the re-touch of page 2 is then a soft fault — still in
    // the frame table, just unmapped by the sweep.
    let src = "
    start:
        lim #4096,r2
        lim #8192,r3
        lim #12288,r4
        lim #16384,r5
        mvi #5,r6
    loop:
        ld 0(r2),r7
        ld 0(r3),r7
        ld 0(r4),r7
        ld 0(r5),r7
        ld 0(r3),r7
        sub r6,#1,r6
        bne r6,#0,loop
        nop
        mvi #75,r1       ; 'K'
        trap #1
        mvi #0,r1
        trap #0
        halt
    ";
    let (r, status, out) = run_one(
        src,
        KernelConfig {
            frames: 3,
            ..KernelConfig::default()
        },
    );
    assert_eq!(status, ProcStatus::Exited(0));
    assert_eq!(out, b"K");
    assert!(r.counters.faults > 4, "hard faults: {:?}", r.counters);
    assert!(r.counters.evictions > 0, "evictions: {:?}", r.counters);
    assert!(r.counters.soft_faults > 0, "soft faults: {:?}", r.counters);
    assert!(r.cost.paging > 0);
}

#[test]
fn putint_handles_negative_values_and_zero() {
    let src = "
    start:
        mvi #0,r1
        trap #2
        mvi #10,r1
        trap #1
        mvi #0,r1
        sub r1,#1,r1     ; -1
        lim #123456,r2
        mul r1,r2,r1     ; -123456
        trap #2
        mvi #10,r1
        trap #1
        mvi #0,r1
        trap #0
        halt
    ";
    let (_, status, out) = run_one(src, KernelConfig::default());
    assert_eq!(status, ProcStatus::Exited(0));
    assert_eq!(out, b"0\n-123456\n");
}

/// Processes writing to the same virtual addresses do not see each
/// other's data: pid insertion separates the spaces.
#[test]
fn address_spaces_are_disjoint() {
    // Each process stores its pid at virtual word 0x1000, spins long
    // enough to be preempted several times, then prints what it reads
    // back.
    let src = "
    start:
        trap #5          ; r1 := pid
        lim #4096,r2
        st r1,0(r2)
        lim #20000,r4
    loop:
        sub r4,#1,r4
        bne r4,#0,loop
        nop
        ld 0(r2),r1
        nop
        trap #2          ; print the word at 0x1000
        trap #0
        halt
    ";
    let p: Program = assemble(src).unwrap();
    let mut k = Kernel::with_config(KernelConfig {
        time_slice: 3_000,
        ..KernelConfig::default()
    });
    for i in 0..4 {
        k.spawn(&format!("p{i}"), p.clone()).unwrap();
    }
    let r = k.run_until_idle().unwrap();
    assert!(r.counters.ticks > 0, "slices were long enough to preempt");
    for (i, p) in r.procs.iter().enumerate() {
        assert_eq!(
            p.output,
            format!("{}", i + 1).as_bytes(),
            "process {} read another's store",
            i + 1
        );
    }
}
