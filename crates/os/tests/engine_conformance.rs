//! The fast execution engine under multiprogramming: a kernel run with
//! [`Engine::Fast`] must produce a [`RunReport`] *equal* to the
//! reference run — same per-process outputs and statuses, same kernel
//! counters, same instruction total, same systems-cost attribution,
//! same console interleaving, same watchdog kills. The fast path bursts
//! through user-mode stretches and falls back to per-step execution in
//! kernel text, so this equality exercises the burst/step seam at every
//! timer slice, syscall, and page fault.

use mips_hll::{compile_mips, CodegenOptions};
use mips_os::{Engine, Kernel, KernelConfig, ProcStatus, RunReport};
use mips_reorg::{reorganize, ReorgOptions};

fn build(source: &str) -> mips_core::Program {
    let lc = compile_mips(source, &CodegenOptions::standard()).expect("corpus compiles");
    reorganize(&lc, ReorgOptions::FULL)
        .expect("reorganizes")
        .program
}

fn run(config: KernelConfig, names: &[&str]) -> RunReport {
    let mut k = Kernel::with_config(config);
    for n in names {
        k.spawn(n, build(mips_workloads::get(n).unwrap().source))
            .unwrap();
    }
    k.run_until_idle().unwrap()
}

fn assert_reports_equal(config: KernelConfig, names: &[&str], what: &str) {
    let fast = run(
        KernelConfig {
            engine: Engine::Fast,
            ..config.clone()
        },
        names,
    );
    let reference = run(
        KernelConfig {
            engine: Engine::Reference,
            ..config
        },
        names,
    );
    assert_eq!(fast.procs, reference.procs, "{what}: per-process reports");
    assert_eq!(fast.counters, reference.counters, "{what}: counters");
    assert_eq!(fast.cost, reference.cost, "{what}: systems cost");
    assert_eq!(
        fast.instructions, reference.instructions,
        "{what}: instructions"
    );
    assert_eq!(fast.console, reference.console, "{what}: console stream");
    assert_eq!(fast, reference, "{what}: full report");
}

/// Three time-sliced workloads: the burst/step seam crosses a timer
/// dispatch every slice, and the report must not show it.
#[test]
fn time_sliced_multiprogramming_reports_identically() {
    assert_reports_equal(
        KernelConfig {
            time_slice: 2_000,
            ..KernelConfig::default()
        },
        &["fib", "hanoi", "sieve"],
        "three-way slice",
    );
}

/// Tight frames force eviction traffic; the paging path is all kernel
/// text (per-step on both engines) but entered from user bursts.
#[test]
fn demand_paging_pressure_reports_identically() {
    assert_reports_equal(
        KernelConfig {
            time_slice: 5_000,
            frames: 8,
            ..KernelConfig::default()
        },
        &["sort", "strings"],
        "paging pressure",
    );
}

/// The watchdog budget caps every user burst: the kill must land on
/// the same instruction boundary on both engines.
#[test]
fn watchdog_kill_lands_on_the_same_boundary() {
    let config = KernelConfig {
        time_slice: 2_000,
        watchdog: Some(40_000),
        ..KernelConfig::default()
    };
    let fast = run(
        KernelConfig {
            engine: Engine::Fast,
            ..config.clone()
        },
        &["hanoi", "fib"],
    );
    let reference = run(
        KernelConfig {
            engine: Engine::Reference,
            ..config
        },
        &["hanoi", "fib"],
    );
    assert_eq!(fast.watchdog_kills, reference.watchdog_kills);
    assert!(
        !fast.watchdog_kills.is_empty(),
        "budget chosen to trip the watchdog"
    );
    assert!(fast
        .procs
        .iter()
        .any(|p| matches!(p.status, ProcStatus::Killed(_))));
    assert_eq!(fast, reference, "watchdog: full report");
}
