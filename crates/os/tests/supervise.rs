//! Supervised checkpoint/restart: detected faults become recovered
//! runs. The hardening suite proved kills are *contained*; this suite
//! proves they are *survivable* — a transiently-faulted process rolls
//! back to its checkpoint and finishes with byte-identical output, a
//! deterministically-wedged one is quarantined after its restart
//! budget, and the whole machinery reports identically on either
//! engine.

use mips_asm::assemble;
use mips_os::supervise::RecoveryEvent;
use mips_os::{
    layout, Engine, Kernel, KernelConfig, ProcStatus, RestartPolicy, RunReport, SupervisorConfig,
};
use mips_sim::Cause;

/// A worker that prints `count` consecutive letters starting at
/// `first`, burning a short delay loop between prints so timer
/// preemptions (and therefore checkpoints) land mid-run.
fn worker(first: u8, count: u32) -> mips_core::Program {
    assemble(&format!(
        "
 mvi #0,r4          ; printed so far
 mvi #{count},r5
 mvi #200,r7        ; delay iterations per letter
outer:
 mvi #0,r6
delay:
 add r6,#1,r6
 bne r6,r7,delay
 nop
 mvi #{first},r1
 add r1,r4,r1
 trap #1            ; putchar
 add r4,#1,r4
 bne r4,r5,outer
 nop
 mvi #0,r1
 trap #0            ; exit
 halt"
    ))
    .unwrap()
}

/// A process that never finishes (and never syscalls).
fn spinner() -> mips_core::Program {
    assemble("spin:\n bra spin\n nop\n halt").unwrap()
}

fn supervised(checkpoint_every: u64) -> Option<SupervisorConfig> {
    Some(SupervisorConfig {
        checkpoint_every,
        policy: RestartPolicy {
            max_restarts: 3,
            backoff: 500,
            max_panic_rollbacks: 2,
        },
    })
}

fn config(supervisor: Option<SupervisorConfig>) -> KernelConfig {
    KernelConfig {
        time_slice: 2_000,
        supervisor,
        ..KernelConfig::default()
    }
}

fn spawn_workers(k: &mut Kernel) {
    k.spawn("alpha", worker(b'A', 8)).unwrap();
    k.spawn("nums", worker(b'0', 8)).unwrap();
}

fn baseline() -> RunReport {
    let mut k = Kernel::with_config(config(None));
    spawn_workers(&mut k);
    k.run_until_idle().unwrap()
}

#[test]
fn supervision_without_faults_changes_nothing() {
    let base = baseline();
    let mut k = Kernel::with_config(config(supervised(1_000)));
    spawn_workers(&mut k);
    let sup = k.run_until_idle().unwrap();
    assert_eq!(sup.console, base.console);
    assert_eq!(sup.counters, base.counters);
    assert_eq!(sup.instructions, base.instructions);
    assert!(sup.recoveries.is_empty());
    assert!(sup.quarantined.is_empty());
    assert_eq!(sup.cost.recovery, 0);
    // Other buckets match the unsupervised run exactly.
    assert_eq!(sup.cost, base.cost);
}

#[test]
fn transient_fault_is_recovered_with_byte_identical_output() {
    let base = baseline();
    let mut k = Kernel::with_config(config(supervised(1_000)));
    spawn_workers(&mut k);
    let mut armed = true;
    let report = k
        .run_with_hook(|m| {
            if armed && !m.surprise().supervisor() && m.profile().instructions > 8_000 {
                armed = false;
                m.raise_exception(Cause::Illegal, 0x123).unwrap();
            }
        })
        .unwrap();
    assert!(!armed, "fault fired");
    assert!(report.panic.is_none());
    assert!(
        report
            .recoveries
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Restart { .. })),
        "the kill was rolled back: {:?}",
        report.recoveries
    );
    assert!(report.quarantined.is_empty());
    assert!(report.cost.recovery > 0, "discarded work is attributed");
    for (got, want) in report.procs.iter().zip(base.procs.iter()) {
        assert_eq!(got.status, ProcStatus::Exited(0), "{} recovered", got.name);
        assert_eq!(
            got.output, want.output,
            "{} output byte-identical",
            got.name
        );
    }
}

#[test]
fn fault_on_the_first_post_restore_instruction_quarantines() {
    // Kill pid 1 on its very first user-mode instruction, every time
    // it is scheduled — including immediately after each restore. The
    // supervisor must burn its restart budget without a host panic and
    // quarantine the victim; the sibling finishes untouched.
    let victim = 1u32;
    let mut k = Kernel::with_config(config(supervised(1_000)));
    spawn_workers(&mut k);
    let report = k
        .run_with_hook(|m| {
            if !m.surprise().supervisor() && m.mem().peek(layout::CURRENT) == victim {
                m.raise_exception(Cause::Illegal, 0x666).unwrap();
            }
        })
        .unwrap();
    assert!(report.panic.is_none());
    assert_eq!(report.quarantined, vec![victim]);
    assert_eq!(
        report.procs[victim as usize - 1].status,
        ProcStatus::Killed(Cause::Illegal)
    );
    let restarts = report
        .recoveries
        .iter()
        .filter(|e| matches!(e, RecoveryEvent::Restart { pid, .. } if *pid == victim))
        .count();
    assert_eq!(
        restarts, 3,
        "full restart budget spent: {:?}",
        report.recoveries
    );
    assert!(report
        .recoveries
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Quarantine { pid, .. } if *pid == victim)));
    // The sibling never noticed.
    assert_eq!(report.procs[1].status, ProcStatus::Exited(0));
    assert_eq!(report.procs[1].output, b"01234567");
}

#[test]
fn every_boundary_checkpoint_cadence_still_recovers_exactly() {
    // checkpoint_every = 1 forces a checkpoint attempt at every
    // observation point, so mid-shadow deferral (a preemption that
    // bent the saved return chain) is exercised constantly; recovery
    // must still replay to byte-identical output.
    let base = baseline();
    let mut k = Kernel::with_config(config(supervised(1)));
    spawn_workers(&mut k);
    let mut armed = true;
    let report = k
        .run_with_hook(|m| {
            if armed && !m.surprise().supervisor() && m.profile().instructions > 6_000 {
                armed = false;
                m.raise_exception(Cause::Overflow, 0).unwrap();
            }
        })
        .unwrap();
    assert!(report.panic.is_none());
    assert!(!report.recoveries.is_empty());
    for (got, want) in report.procs.iter().zip(base.procs.iter()) {
        assert_eq!(got.status, ProcStatus::Exited(0));
        assert_eq!(got.output, want.output);
    }
}

#[test]
fn watchdog_rekills_a_restarted_spinner_until_quarantine_on_both_engines() {
    // The watchdog budget is refunded by a restore, so a restarted
    // spinner burns it again and is re-killed — deterministically, on
    // either engine, with identical reports throughout.
    let run = |engine: Engine| {
        let mut k = Kernel::with_config(KernelConfig {
            time_slice: 2_000,
            watchdog: Some(20_000),
            engine,
            supervisor: supervised(5_000),
            ..KernelConfig::default()
        });
        let wedged = k.spawn("spinner", spinner()).unwrap();
        k.spawn("printer", worker(b'X', 3)).unwrap();
        (wedged, k.run_until_idle().unwrap())
    };
    let (wedged, reference) = run(Engine::Reference);
    let (_, fast) = run(Engine::Fast);
    assert_eq!(reference, fast, "supervised runs are engine-conformant");

    // Initial kill + one per restart: the fired latch is cleared and
    // the budget refunded by each restore.
    assert_eq!(reference.watchdog_kills, vec![wedged; 4]);
    assert_eq!(reference.quarantined, vec![wedged]);
    assert_eq!(
        reference.procs[wedged as usize - 1].status,
        ProcStatus::Killed(Cause::Illegal)
    );
    assert_eq!(reference.procs[1].status, ProcStatus::Exited(0));
    assert_eq!(reference.procs[1].output, b"XYZ");
    assert!(reference.cost.recovery > 0);
}

#[test]
fn hook_free_supervised_runs_match_across_engines() {
    let run = |engine: Engine| {
        let mut k = Kernel::with_config(KernelConfig {
            time_slice: 2_000,
            engine,
            supervisor: supervised(1_000),
            ..KernelConfig::default()
        });
        spawn_workers(&mut k);
        k.run_until_idle().unwrap()
    };
    assert_eq!(run(Engine::Reference), run(Engine::Fast));
}
