//! Kernel hardening under abuse: the watchdog, runaway processes, and
//! the double-fault panic path. The common thread is *kill-and-continue
//! isolation*: whatever one process (or an injected fault) does, its
//! siblings finish with byte-identical output — and when the kernel
//! itself is wounded, the run ends in a controlled panic with a
//! machine-state dump, never a host panic.

use mips_asm::assemble;
use mips_os::{Kernel, KernelConfig, ProcStatus, WATCHDOG_DETAIL};
use mips_sim::Cause;

/// An honest worker: prints its letter and exits.
fn printer(letter: u8) -> mips_core::Program {
    assemble(&format!(
        "mvi #{letter},r1\n trap #1\n mvi #0,r1\n trap #0\n halt"
    ))
    .unwrap()
}

/// A process that never finishes (and never syscalls).
fn spinner() -> mips_core::Program {
    assemble("spin:\n bra spin\n nop\n halt").unwrap()
}

#[test]
fn watchdog_kills_the_wedged_process_and_siblings_finish() {
    let mut k = Kernel::with_config(KernelConfig {
        time_slice: 2_000,
        watchdog: Some(200_000),
        ..KernelConfig::default()
    });
    let wedged = k.spawn("spinner", spinner()).unwrap();
    let fine = k.spawn("printer", printer(b'A')).unwrap();
    let report = k.run_until_idle().unwrap();

    assert_eq!(report.watchdog_kills, vec![wedged]);
    assert_eq!(
        report.procs[wedged as usize - 1].status,
        ProcStatus::Killed(Cause::Illegal),
        "watchdog kill surfaces as the injected illegal exception"
    );
    assert_eq!(
        report.procs[fine as usize - 1].status,
        ProcStatus::Exited(0)
    );
    assert_eq!(report.procs[fine as usize - 1].output, b"A");
    assert!(report.panic.is_none());
    // The killing surprise carries the watchdog's detail signature.
    assert_eq!(WATCHDOG_DETAIL, 0xD06);
}

#[test]
fn watchdog_off_by_default_preserves_old_behavior() {
    assert!(KernelConfig::default().watchdog.is_none());
    let mut k = Kernel::boot();
    k.spawn("p", printer(b'P')).unwrap();
    let report = k.run_until_idle().unwrap();
    assert!(report.watchdog_kills.is_empty());
    assert!(report.panic.is_none());
    assert_eq!(report.procs[0].output, b"P");
}

#[test]
fn runaway_pc_is_killed_not_a_host_error() {
    // An indirect jump into nowhere: the fetch faults, the kernel
    // kills the offender, and the machine keeps multiprogramming.
    let runaway = assemble("lim #9999999,r1\n jmpi 0(r1)\n nop\n nop\n halt").unwrap();
    let mut k = Kernel::boot();
    let bad = k.spawn("runaway", runaway).unwrap();
    let good = k.spawn("printer", printer(b'B')).unwrap();
    let report = k.run_until_idle().unwrap();

    assert_eq!(
        report.procs[bad as usize - 1].status,
        ProcStatus::Killed(Cause::AddressError)
    );
    assert_eq!(
        report.procs[good as usize - 1].status,
        ProcStatus::Exited(0)
    );
    assert_eq!(report.procs[good as usize - 1].output, b"B");
}

#[test]
fn fault_inside_the_kernel_is_a_controlled_panic_with_a_dump() {
    // Corrupt the surprise register's map-enable bit while the kernel
    // is executing: its very next data reference translates through an
    // empty page map and faults — a fault inside the exception
    // handler. The run must stop with a dump, not wedge or host-panic.
    let mut k = Kernel::boot();
    k.spawn("p", printer(b'C')).unwrap();
    let mut armed = true;
    let report = k
        .run_with_hook(|m| {
            if armed && m.pc() == 0 && m.surprise().supervisor() {
                let raw = m.surprise().raw();
                *m.surprise_mut() = mips_sim::Surprise::from_raw(raw | 0x40);
                armed = false;
            }
        })
        .unwrap();

    let panic = report.panic.expect("nested fault panics the kernel");
    assert_eq!(panic.cause, Cause::PageFault);
    assert!(panic.pc < 1000, "fault hit inside kernel text");
    let dump = panic.to_string();
    assert!(dump.contains("kernel panic"), "dump: {dump}");
    assert!(dump.contains("r15"), "dump lists all registers: {dump}");
}

#[test]
fn noop_hook_matches_run_until_idle_exactly() {
    let spawn_all = |k: &mut Kernel| {
        k.spawn("a", printer(b'a')).unwrap();
        k.spawn("b", printer(b'b')).unwrap();
    };
    let mut k1 = Kernel::boot();
    spawn_all(&mut k1);
    let r1 = k1.run_until_idle().unwrap();
    let mut k2 = Kernel::boot();
    spawn_all(&mut k2);
    let r2 = k2.run_with_hook(|_| {}).unwrap();
    assert_eq!(r1.instructions, r2.instructions);
    assert_eq!(r1.console, r2.console);
    assert_eq!(r1.counters, r2.counters);
}
