//! # mips-os — a software kernel on the simulated MIPS machine
//!
//! The paper's core argument is that work traditionally done by
//! hardware — interlocks, condition codes, microcoded exception
//! machinery, hardware page tables — can move into software without
//! losing correctness. This crate carries that argument to its systems
//! conclusion: a complete **guest kernel written in MIPS assembly**
//! (assembled by `mips-asm`, checked in at `src/asm/kernel.s`) running
//! user processes under **preemptive multiprogramming** with
//! **per-process segmentation** and **demand paging**, on exactly the
//! hardware the simulator models:
//!
//! * every exception vectors to address zero with the cause packed in
//!   the *surprise* register (§3.3) — the kernel's `dispatch` decodes
//!   it and saves all sixteen registers by hand;
//! * the three saved return addresses (`ret0..ret2`) carry the
//!   interrupted pipeline's delay-slot state across the switch, so a
//!   process preempted mid-shadow resumes exactly (§3.3's "three
//!   addresses are required");
//! * the on-chip segmentation unit isolates processes by pid insertion
//!   (§3.1) — the kernel switches spaces with one `wsp pid` write;
//! * the off-chip page map takes demand faults; the kernel's handler
//!   implements FIFO fill with second-chance replacement through the
//!   map unit's three MMIO registers;
//! * system calls are `trap` instructions; the timer interrupt drives
//!   round-robin time slicing.
//!
//! The host side ([`Kernel`]) assembles the guest kernel, relocates
//! user [`Program`](mips_core::Program)s behind it, seeds process
//! control blocks, and runs the machine until the kernel halts idle —
//! then reads back per-process console output, exit statuses, and the
//! kernel's own counters, plus a per-section cycle attribution
//! ([`SystemsCost`]) measuring what multiprogramming costs over bare
//! metal.
//!
//! Arm [`KernelConfig::supervisor`] and the run is **supervised**
//! ([`supervise`]): each process is checkpointed at safe boundaries
//! every `checkpoint_every` instructions, a kill rolls the victim back
//! to its last checkpoint and re-schedules it under an exponential
//! backoff / quarantine policy ([`RestartPolicy`]), and a controlled
//! kernel panic becomes a bounded whole-machine rollback. Recovery is
//! deterministic — checkpoint and restart instants are pure functions
//! of the instruction counter — so supervised runs replay identically
//! on either engine; the cycles discarded by rollbacks are metered in
//! [`SystemsCost::recovery`].
//!
//! ## Example
//!
//! ```
//! use mips_os::{Kernel, ProcStatus};
//!
//! // Two tiny processes, each printing via the putchar syscall.
//! let a = mips_asm::assemble("mvi #65,r1\n trap #1\n trap #0\n halt").unwrap();
//! let b = mips_asm::assemble("mvi #66,r1\n trap #1\n trap #0\n halt").unwrap();
//! let mut k = Kernel::boot();
//! k.spawn("a", a).unwrap();
//! k.spawn("b", b).unwrap();
//! let report = k.run_until_idle().unwrap();
//! assert_eq!(report.procs[0].output, b"A");
//! assert_eq!(report.procs[1].output, b"B");
//! assert!(matches!(report.procs[0].status, ProcStatus::Exited(_)));
//! ```

pub mod kernel;
pub mod layout;
pub mod supervise;

pub use kernel::{
    kernel_program, Counters, Kernel, KernelConfig, KernelPanic, KernelRun, NodeCheckpoint,
    OsError, ProcReport, ProcStatus, RunReport, SystemsCost, KERNEL_SRC, WATCHDOG_DETAIL,
};
pub use supervise::{RecoveryEvent, RestartPolicy, SupervisorConfig};

// The engine knob [`KernelConfig::engine`] takes, re-exported so OS
// users need not depend on `mips-sim` directly.
pub use mips_sim::Engine;
