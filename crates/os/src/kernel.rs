//! Host side of the OS: boot the guest kernel, load processes, run.
//!
//! The host never executes kernel logic itself — scheduling, paging,
//! and syscalls all happen in the guest assembly. What the host does
//! is linker-and-firmware work: assemble `kernel.s`, relocate each
//! user program into the shared instruction space behind it, seed the
//! process control blocks the way real firmware seeds boot state, and
//! read the results back out of kernel memory afterwards.
//!
//! Single-machine runs go through [`Kernel::run_until_idle`] /
//! [`Kernel::run_with_hook`]. Cluster drivers instead call
//! [`Kernel::start`] once per node and interleave the returned
//! [`KernelRun`]s with [`KernelRun::run_slice`], ferrying NIC frames
//! between nodes in the gaps — the same loop, cut at an instruction
//! budget instead of run-to-completion.

use crate::layout::{self, pcb, sys};
use crate::supervise::{LoopState, RecoveryEvent, Supervisor, SupervisorConfig};
use mips_asm::assemble;
use mips_core::{Instr, Program, Reg, Target, TrapPiece};
use mips_sim::machine::CONSOLE_ADDR;
use mips_sim::{
    Cause, Engine, Machine, MachineConfig, Mmio, PageMap, Shared, SimError, Snapshot, Surprise,
};
use std::fmt;

/// The guest kernel's source, assembled at [`kernel_program`].
pub const KERNEL_SRC: &str = include_str!("asm/kernel.s");

/// Assembles the guest kernel.
///
/// # Panics
///
/// Panics if the checked-in kernel source does not assemble — a build
/// invariant, covered by tests.
pub fn kernel_program() -> Program {
    assemble(KERNEL_SRC).expect("kernel.s assembles")
}

/// Errors from the OS runtime.
#[derive(Debug)]
pub enum OsError {
    /// Too many processes for the pid field / PCB table.
    TooManyProcs,
    /// A spawned program was empty.
    EmptyProgram,
    /// The underlying machine faulted in a way the kernel cannot see
    /// (step limit, double fault).
    Sim(SimError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::TooManyProcs => {
                write!(f, "at most {} processes", layout::MAX_PROCS)
            }
            OsError::EmptyProgram => write!(f, "cannot spawn an empty program"),
            OsError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for OsError {}

/// Tunable knobs for a kernel run.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Instructions between timer ticks. Must comfortably exceed the
    /// kernel's tick path (~150 instructions) or the system livelocks
    /// servicing its own timer.
    pub time_slice: u64,
    /// Resident page frames shared by all processes (demand-paging
    /// budget), `2..=`[`layout::MAX_FRAMES`].
    pub frames: u32,
    /// Machine step limit (runaway guard).
    pub step_limit: u64,
    /// Watchdog: cumulative user-mode instruction budget per process.
    /// A process that exceeds it is presumed wedged and killed through
    /// an injected illegal-instruction exception (detail
    /// [`WATCHDOG_DETAIL`]); its pid lands in
    /// [`RunReport::watchdog_kills`]. `None` disables the watchdog.
    pub watchdog: Option<u64>,
    /// Execution engine for the underlying machine. With
    /// [`Engine::Fast`], hook-free runs ([`Kernel::run_until_idle`])
    /// burst through user-mode stretches on the fast path and fall back
    /// to per-step execution inside kernel text; runs with a hook
    /// attached always step the reference interpreter so the hook's
    /// pre-step observation point is preserved. The [`RunReport`] is
    /// identical either way.
    pub engine: Engine,
    /// Checkpoint/restart supervision. When set, the host periodically
    /// checkpoints every process at a safe boundary and rolls a killed
    /// process back to its last checkpoint instead of leaving it dead —
    /// see [`crate::supervise`]. `None` (the default) keeps the PR 3
    /// behaviour: detected faults stay kills.
    pub supervisor: Option<SupervisorConfig>,
    /// Attach a NIC at this fabric node address. The guest gains the
    /// `send`/`recv`/`poll` syscalls' device, and the host fabric
    /// reaches the rings through [`KernelRun::machine`]'s
    /// [`Machine::nic`] handle. `None` (the default) boots no NIC.
    pub nic: Option<u32>,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            time_slice: 20_000,
            frames: 64,
            step_limit: 400_000_000,
            watchdog: None,
            engine: Engine::Reference,
            supervisor: None,
            nic: None,
        }
    }
}

/// Detail field of the watchdog's injected illegal-instruction
/// exception, distinguishing a watchdog kill from a genuine illegal
/// instruction in a machine-state dump.
pub const WATCHDOG_DETAIL: u16 = 0xD06;

/// How a process ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcStatus {
    /// Still runnable when the run stopped (only on error paths).
    Running,
    /// Called `exit`; the status word it passed.
    Exited(u32),
    /// Killed by a fatal exception of this cause.
    Killed(Cause),
}

/// Per-process outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcReport {
    /// Pid (1-based).
    pub pid: u32,
    /// Name given at `spawn`.
    pub name: String,
    /// Final state.
    pub status: ProcStatus,
    /// Everything the process wrote through the console syscalls, in
    /// its own order (demultiplexed by pid).
    pub output: Vec<u8>,
}

/// The kernel's own event counters, read back from kernel memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Timer interrupts taken.
    pub ticks: u64,
    /// Demand (hard) page faults.
    pub faults: u64,
    /// Soft faults: swept pages remapped on re-touch.
    pub soft_faults: u64,
    /// Frames evicted by the second-chance sweep.
    pub evictions: u64,
    /// Traps serviced.
    pub syscalls: u64,
    /// Process switch-ins.
    pub switches: u64,
    /// NIC delivery doorbells taken.
    pub net_irqs: u64,
    /// Frames committed by the `send` syscall.
    pub sends: u64,
    /// Frames consumed by the `recv` syscall.
    pub recvs: u64,
}

/// Instruction-cycle attribution by kernel section — the measured
/// price of running under an operating system instead of on bare
/// metal. Buckets follow the kernel's section labels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemsCost {
    /// User-mode instructions.
    pub user: u64,
    /// Register save on entry, PCB copies, restore before `rfe`.
    pub save_restore: u64,
    /// Cause decode and the fatal-exception path.
    pub dispatch: u64,
    /// System-call service bodies.
    pub syscall: u64,
    /// Timer acknowledge and clock bookkeeping.
    pub tick: u64,
    /// Scheduler scan.
    pub sched: u64,
    /// Page-fault handling: scan, map, sweep, evict.
    pub paging: u64,
    /// Discarded work reclaimed by the supervisor: victim cycles
    /// between checkpoint and kill, plus everything unwound by a
    /// whole-machine rollback. Not part of [`SystemsCost::kernel_total`]
    /// — it is the price of *recovery*, not of running the kernel, and
    /// after a rollback the bucket sum can legitimately exceed
    /// [`RunReport::instructions`] (the machine's counter rewinds; the
    /// waste does not un-happen).
    pub recovery: u64,
}

impl SystemsCost {
    /// Total kernel-mode instructions.
    pub fn kernel_total(&self) -> u64 {
        self.save_restore + self.dispatch + self.syscall + self.tick + self.sched + self.paging
    }

    /// Kernel instructions per hundred total, i.e. the multiprogramming
    /// overhead.
    pub fn overhead_percent(&self) -> f64 {
        let total = self.user + self.kernel_total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.kernel_total() as f64 / total as f64
    }
}

/// A controlled kernel panic: an exception arrived while the machine
/// was already executing kernel code — the software equivalent of a
/// double fault. The hardware would silently re-enter `dispatch` and
/// shred the save area; the host runtime instead stops the run and
/// reports the full machine state, which is the honest failure mode
/// for a kernel whose invariants hold *by construction* rather than by
/// interlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPanic {
    /// Kernel-text pc the faulting step started at.
    pub pc: u32,
    /// Instructions executed when the fault hit.
    pub instructions: u64,
    /// Cause of the nested exception.
    pub cause: Cause,
    /// Detail field of the nested exception.
    pub detail: u16,
    /// Raw surprise register after the nested dispatch.
    pub surprise: u32,
    /// Saved return-address chain after the nested dispatch.
    pub ret: [u32; 3],
    /// General registers at the fault.
    pub regs: [u32; 16],
    /// Pid the kernel believed was current.
    pub current_pid: u32,
}

impl fmt::Display for KernelPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel panic: {:?} (detail {:#x}) inside the exception handler at pc {}",
            self.cause, self.detail, self.pc
        )?;
        writeln!(
            f,
            "  instructions={} current_pid={} surprise={:#010x}",
            self.instructions, self.current_pid, self.surprise
        )?;
        writeln!(
            f,
            "  ret0={} ret1={} ret2={}",
            self.ret[0], self.ret[1], self.ret[2]
        )?;
        for (i, chunk) in self.regs.chunks(4).enumerate() {
            write!(f, " ")?;
            for (j, v) in chunk.iter().enumerate() {
                write!(f, " r{:<2}={v:#010x}", i * 4 + j)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Per-process outcomes, in spawn (pid) order.
    pub procs: Vec<ProcReport>,
    /// Kernel event counters.
    pub counters: Counters,
    /// Cycle attribution across kernel sections.
    pub cost: SystemsCost,
    /// Total instructions executed (user + kernel).
    pub instructions: u64,
    /// The chronological console stream as `(pid, byte)` pairs — the
    /// interleaving evidence (per-process bytes are in
    /// [`ProcReport::output`]).
    pub console: Vec<(u32, u8)>,
    /// A controlled kernel panic that cut the run short, if any
    /// (processes not yet finished report [`ProcStatus::Running`]).
    pub panic: Option<KernelPanic>,
    /// Pids killed by the watchdog, in kill order. Under supervision a
    /// restarted process can be killed again, so a pid may repeat.
    pub watchdog_kills: Vec<u32>,
    /// Recovery actions the supervisor took, in event order (empty
    /// without [`KernelConfig::supervisor`]).
    pub recoveries: Vec<RecoveryEvent>,
    /// Pids that exhausted their restart budget and stay killed.
    pub quarantined: Vec<u32>,
}

struct Proc {
    name: String,
    program: Program,
}

/// The multiprogramming runtime: spawn programs, run them all
/// concurrently under the guest kernel.
pub struct Kernel {
    config: KernelConfig,
    procs: Vec<Proc>,
}

/// Console device shared with the machine: the kernel writes
/// `(pid << 8) | byte` words, the host demultiplexes afterwards.
struct MuxConsole(Shared<Vec<u32>>);

impl Mmio for MuxConsole {
    fn read(&mut self, _off: u32) -> u32 {
        0
    }
    fn write(&mut self, _off: u32, value: u32) {
        self.0.borrow_mut().push(value);
    }
}

/// Which cost bucket a kernel section label belongs to.
const SECTIONS: [(&str, Bucket); 11] = [
    ("dispatch", Bucket::SaveRestore),
    ("decode", Bucket::Dispatch),
    ("svc", Bucket::Syscall),
    ("tick", Bucket::Tick),
    ("fault", Bucket::Paging),
    ("kill", Bucket::Dispatch),
    ("preempt", Bucket::SaveRestore),
    ("sched", Bucket::Sched),
    ("found", Bucket::SaveRestore),
    ("boot", Bucket::Sched),
    ("resume", Bucket::SaveRestore),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    User,
    SaveRestore,
    Dispatch,
    Syscall,
    Tick,
    Sched,
    Paging,
}

/// Which cost bucket the instruction at `pc` belongs to, given the
/// sorted kernel section starts and the kernel-text length.
fn bucket_of(sections: &[(u32, Bucket)], klen: u32, pc: u32) -> Bucket {
    if pc >= klen {
        return Bucket::User;
    }
    match sections.binary_search_by_key(&pc, |&(a, _)| a) {
        Ok(i) => sections[i].1,
        Err(0) => Bucket::SaveRestore, // address 0 is `dispatch`
        Err(i) => sections[i - 1].1,
    }
}

fn charge(cost: &mut SystemsCost, b: Bucket) {
    match b {
        Bucket::User => cost.user += 1,
        Bucket::SaveRestore => cost.save_restore += 1,
        Bucket::Dispatch => cost.dispatch += 1,
        Bucket::Syscall => cost.syscall += 1,
        Bucket::Tick => cost.tick += 1,
        Bucket::Sched => cost.sched += 1,
        Bucket::Paging => cost.paging += 1,
    }
}

impl Kernel {
    /// A kernel with default configuration and no processes.
    pub fn boot() -> Kernel {
        Kernel::with_config(KernelConfig::default())
    }

    /// A kernel with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is unrunnable: a time slice too
    /// short for the kernel's own tick path, or a frame budget that
    /// cannot hold a working set.
    pub fn with_config(config: KernelConfig) -> Kernel {
        assert!(config.time_slice >= 512, "time slice livelocks the kernel");
        assert!(
            (2..=layout::MAX_FRAMES).contains(&config.frames),
            "frame budget out of range"
        );
        Kernel {
            config,
            procs: Vec::new(),
        }
    }

    /// Registers a program as a process. Returns its pid (1-based).
    ///
    /// The program runs exactly as compiled for bare metal: `Halt`
    /// instructions are rewritten to `trap #0` (exit) at load, and the
    /// native trap services become kernel syscalls with the same codes.
    ///
    /// # Errors
    ///
    /// [`OsError::TooManyProcs`] past [`layout::MAX_PROCS`];
    /// [`OsError::EmptyProgram`] for an empty program.
    pub fn spawn(&mut self, name: &str, program: Program) -> Result<u32, OsError> {
        if self.procs.len() as u32 >= layout::MAX_PROCS {
            return Err(OsError::TooManyProcs);
        }
        if program.is_empty() {
            return Err(OsError::EmptyProgram);
        }
        self.procs.push(Proc {
            name: name.to_string(),
            program,
        });
        Ok(self.procs.len() as u32)
    }

    /// Builds the combined image, boots the machine, and runs until
    /// the kernel halts with nothing left to schedule.
    ///
    /// # Errors
    ///
    /// [`OsError::Sim`] if the machine stops for a reason the kernel
    /// cannot handle (step limit exceeded, double fault).
    pub fn run_until_idle(&mut self) -> Result<RunReport, OsError> {
        self.run_inner(None)
    }

    /// Like [`Kernel::run_until_idle`], but calls `hook` with the live
    /// machine before every step — the seam fault injectors (and other
    /// instrumentation) attach to, mirroring the simulator's own
    /// timer-injection hook. The hook may flip registers, corrupt
    /// memory, raise or drop interrupt requests; the kernel hardening
    /// below (double-fault panic, watchdog) is what stands between
    /// those faults and a host panic.
    ///
    /// # Errors
    ///
    /// [`OsError::Sim`] if the machine stops for a reason the kernel
    /// cannot handle (step limit exceeded, double fault). A *controlled*
    /// kernel panic is not an error: the run returns with
    /// [`RunReport::panic`] set and the machine-state dump inside.
    pub fn run_with_hook<F>(&mut self, mut hook: F) -> Result<RunReport, OsError>
    where
        F: FnMut(&mut Machine),
    {
        self.run_inner(Some(&mut hook))
    }

    /// The shared run loop. `hook` is `None` for plain runs — the only
    /// shape eligible for fast user-mode bursts, since a hook demands a
    /// per-step observation point.
    fn run_inner(
        &mut self,
        mut hook: Option<&mut dyn FnMut(&mut Machine)>,
    ) -> Result<RunReport, OsError> {
        let mut run = self.start()?;
        loop {
            // Reborrow the hook each lap so the loop doesn't pin it.
            if run.run_slice(u64::MAX, hook.as_deref_mut())? {
                break;
            }
        }
        Ok(run.report())
    }

    /// Builds the combined image and boots the machine, returning a
    /// stepwise runtime instead of running to completion. Cluster
    /// drivers call this once per node, then interleave the
    /// [`KernelRun`]s with [`KernelRun::run_slice`] round-robin,
    /// moving NIC frames between nodes in the gaps.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves the
    /// boot path's right to report image-construction failures.
    pub fn start(&self) -> Result<KernelRun, OsError> {
        let kernel = kernel_program();
        let klen = kernel.len() as u32;

        // Link: kernel at 0, then each process image, entry recorded.
        let mut image: Vec<Instr> = kernel.instrs().to_vec();
        let mut entries = Vec::with_capacity(self.procs.len());
        for p in &self.procs {
            let off = image.len() as u32;
            entries.push(off);
            image.extend(relocate(&p.program, off));
        }
        let mut program = Program::new(image);
        for (name, addr) in kernel.symbols() {
            program.define_symbol(name, addr);
        }

        let mut m = Machine::with_config(
            program,
            MachineConfig {
                native_traps: false, // traps vector to the kernel
                step_limit: self.config.step_limit,
                ..MachineConfig::default()
            },
        );
        m.set_engine(self.config.engine);
        m.attach_page_map(PageMap::new());
        m.attach_timer(self.config.time_slice, 0);
        if let Some(node) = self.config.nic {
            m.attach_nic(node);
        }
        let console: Shared<Vec<u32>> = Shared::new(Vec::new());
        m.mem_mut()
            .add_device(CONSOLE_ADDR, 1, Box::new(MuxConsole(console.clone())));

        // Segmentation geometry is global; the kernel switches spaces
        // by rewriting only the pid register.
        {
            let seg = m.segmentation_mut();
            seg.pid = 0;
            seg.pid_bits = layout::PID_BITS;
            seg.low_limit = layout::LOW_LIMIT;
            seg.high_base = layout::HIGH_BASE;
        }

        // Seed kernel globals and one PCB per process.
        let mem = m.mem_mut();
        mem.poke(layout::NPROCS, self.procs.len() as u32);
        mem.poke(layout::NFRAMES, self.config.frames);
        for (i, entry) in entries.iter().enumerate() {
            let base = layout::PCB_BASE + (i as u32 + 1) * layout::PCB_STRIDE;
            mem.poke(base + pcb::STATE, pcb::STATE_RUNNABLE);
            mem.poke(base + pcb::ENTRY, *entry);
            mem.poke(base + pcb::RET0, *entry);
            mem.poke(base + pcb::RET0 + 1, *entry + 1);
            mem.poke(base + pcb::RET0 + 2, *entry + 2);
            mem.poke(base + pcb::SURPRISE, layout::USER_SURPRISE);
            mem.poke(base + pcb::BRK, layout::INITIAL_BRK);
            // r0..r15 start at zero; the compiled prologue sets its
            // own stack pointer.
        }

        // Map kernel section starts to cost buckets for attribution.
        let mut sections: Vec<(u32, Bucket)> = SECTIONS
            .iter()
            .map(|&(name, b)| (m.program().symbol(name).expect("kernel section"), b))
            .collect();
        sections.sort_by_key(|&(a, _)| a);

        let st = LoopState {
            cost: SystemsCost::default(),
            user_spent: vec![0; self.procs.len() + 1],
            watchdog_kills: Vec::new(),
            watchdog_fired: vec![false; self.procs.len() + 1],
            cur_pid: 0,
            pid_stale: true,
        };
        let sup = self
            .config
            .supervisor
            .map(|cfg| Supervisor::new(cfg, self.procs.len(), klen, console.clone()));

        Ok(KernelRun {
            m,
            klen,
            console,
            names: self.procs.iter().map(|p| p.name.clone()).collect(),
            config: self.config.clone(),
            sections,
            st,
            sup,
            panic: None,
            recoveries: Vec::new(),
            quarantined: Vec::new(),
            done: false,
        })
    }
}

/// A booted kernel machine that runs in instruction-budgeted slices —
/// the seam cluster drivers schedule nodes through. Between slices the
/// caller may inspect or mutate the live machine (deliver NIC frames,
/// collect the TX ring), take a [`NodeCheckpoint`], or roll back to
/// one: the deterministic-replay contract is that identical slice
/// budgets and identical between-slice mutations reproduce the run
/// byte-for-byte.
pub struct KernelRun {
    m: Machine,
    klen: u32,
    console: Shared<Vec<u32>>,
    names: Vec<String>,
    config: KernelConfig,
    sections: Vec<(u32, Bucket)>,
    st: LoopState,
    sup: Option<Supervisor>,
    panic: Option<KernelPanic>,
    recoveries: Vec<RecoveryEvent>,
    quarantined: Vec<u32>,
    done: bool,
}

/// Everything needed to roll a [`KernelRun`] back to an earlier point:
/// the machine snapshot (registers, memory, devices — NIC rings
/// included), the console high-water mark, and the host-side loop
/// bookkeeping. Taken with [`KernelRun::checkpoint`], applied with
/// [`KernelRun::restore`]; the cluster layer uses these to revive
/// killed nodes.
#[derive(Clone)]
pub struct NodeCheckpoint {
    snap: Snapshot,
    console_len: usize,
    st: LoopState,
    panic: Option<KernelPanic>,
    done: bool,
}

impl KernelRun {
    /// The live machine, e.g. for reading [`Machine::nic`] between
    /// slices.
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Mutable access to the live machine, e.g. for delivering frames
    /// into the NIC between slices.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.m
    }

    /// Whether the run has finished (kernel idle, panic, or supervisor
    /// stop). Further [`KernelRun::run_slice`] calls return
    /// immediately.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Runs up to `budget` further instructions (`u64::MAX` = to
    /// completion). Returns `Ok(true)` when the kernel has finished —
    /// idle, controlled panic, or supervisor stop — and `Ok(false)`
    /// when the budget ran out first. `hook`, when present, observes
    /// the machine before every step and pins execution to the
    /// reference interpreter, exactly as in [`Kernel::run_with_hook`].
    ///
    /// # Errors
    ///
    /// [`OsError::Sim`] if the machine stops for a reason the kernel
    /// cannot handle (step limit exceeded, double fault).
    pub fn run_slice(
        &mut self,
        budget: u64,
        mut hook: Option<&mut (dyn FnMut(&mut Machine) + '_)>,
    ) -> Result<bool, OsError> {
        if self.done {
            return Ok(true);
        }
        let klen = self.klen;
        let slice_start = self.m.profile().instructions;
        // Run, attributing each executed instruction to a section.
        // An interrupt dispatches before fetch, so the instruction a
        // step actually executes is the kernel's entry word, not the
        // one at the sampled pc; traps and faults dispatch *after*
        // executing (or suppressing) the instruction at the sampled pc.
        // A fetch of an out-of-range pc dispatches without executing
        // anything (the instruction count stands still).
        loop {
            if self.m.profile().instructions.saturating_sub(slice_start) >= budget {
                return Ok(false);
            }
            if let Some(h) = hook.as_deref_mut() {
                h(&mut self.m);
            }
            if let Some(s) = self.sup.as_mut() {
                s.observe(&mut self.m, &mut self.st);
            }
            if self.st.pid_stale && self.m.pc() >= klen {
                // The kernel just handed off to user code; re-read who.
                self.st.cur_pid = self.m.mem().peek(layout::CURRENT);
                self.st.pid_stale = false;
            }
            if let Some(wd_budget) = self.config.watchdog {
                if self.m.pc() >= klen
                    && !self.m.surprise().supervisor()
                    && (self.st.cur_pid as usize) < self.st.user_spent.len()
                    && self.st.cur_pid > 0
                    && self.st.user_spent[self.st.cur_pid as usize] >= wd_budget
                    && !self.st.watchdog_fired[self.st.cur_pid as usize]
                {
                    // The process outlived its budget: squeeze the
                    // machine with an exception the kernel's decode
                    // treats as fatal — kill-and-continue, not a halt.
                    // The fired latch (cleared by a supervised restart,
                    // which also refunds the budget) keeps the squeeze
                    // from repeating while the kill is in flight.
                    self.st.watchdog_fired[self.st.cur_pid as usize] = true;
                    self.st.watchdog_kills.push(self.st.cur_pid);
                    self.m
                        .raise_exception(Cause::Illegal, WATCHDOG_DETAIL)
                        .map_err(OsError::Sim)?;
                }
            }
            // Hook-free user-mode stretches burst on the fast path:
            // the burst is fenced at the kernel-text boundary, capped
            // by the watchdog and slice budgets, and stops at the first
            // exception dispatch — so every instruction it executes was
            // fetched from user space, except a possible trailing
            // kernel entry word when an interrupt dispatched (the same
            // dispatched-first shape the per-step attribution handles).
            // A due-but-deferred snapshot point (non-quiescent pipeline,
            // or a restart waiting out its backoff) pins execution to
            // the per-step path until the supervisor clears it.
            if hook.is_none()
                && self.config.engine == Engine::Fast
                && self.m.pc() >= klen
                && !self.m.surprise().supervisor()
                && !self.m.snapshot_due()
            {
                let spent = self.m.profile().instructions.saturating_sub(slice_start);
                let mut cap = budget.saturating_sub(spent).max(1);
                if let Some(wd_budget) = self.config.watchdog {
                    if self.st.cur_pid > 0 && (self.st.cur_pid as usize) < self.st.user_spent.len()
                    {
                        cap = cap.min(
                            wd_budget
                                .saturating_sub(self.st.user_spent[self.st.cur_pid as usize])
                                .max(1),
                        );
                    }
                }
                let exceptions = self.m.profile().exceptions;
                let k = self.m.run_burst(cap, klen).map_err(OsError::Sim)?;
                if k > 0 {
                    let dispatched_first =
                        self.m.profile().exceptions > exceptions && self.m.pc() == 1;
                    let user = if dispatched_first { k - 1 } else { k };
                    self.st.cost.user += user;
                    if (self.st.cur_pid as usize) < self.st.user_spent.len() {
                        self.st.user_spent[self.st.cur_pid as usize] += user;
                    }
                    if dispatched_first {
                        // The burst's final step dispatched an interrupt
                        // and executed kernel word 0 in the same breath.
                        charge(&mut self.st.cost, bucket_of(&self.sections, klen, 0));
                        self.st.pid_stale = true;
                    }
                }
                if self.m.halted() {
                    let halted_for_good = match self.sup.as_mut() {
                        Some(s) => !s.on_halt(&mut self.m, &mut self.st),
                        None => true,
                    };
                    if halted_for_good {
                        self.finish();
                        return Ok(true);
                    }
                }
                continue;
            }
            let pc = self.m.pc();
            let sup_before = self.m.surprise().supervisor();
            let exceptions = self.m.profile().exceptions;
            let instructions = self.m.profile().instructions;
            let more = self.m.step().map_err(OsError::Sim)?;
            let faulted = self.m.profile().exceptions > exceptions;
            if self.m.profile().instructions > instructions {
                let dispatched_first = faulted && self.m.pc() == 1;
                let executed = if dispatched_first { 0 } else { pc };
                let b = bucket_of(&self.sections, klen, executed);
                if b == Bucket::User {
                    self.st.cost.user += 1;
                    if (self.st.cur_pid as usize) < self.st.user_spent.len() {
                        self.st.user_spent[self.st.cur_pid as usize] += 1;
                    }
                } else {
                    charge(&mut self.st.cost, b);
                }
                if executed < klen {
                    self.st.pid_stale = true;
                }
            }
            if faulted && sup_before && pc < klen {
                // A fault *inside* the exception handler: the hardware
                // would re-enter dispatch and shred the save area. With
                // supervision, roll the whole machine back to the last
                // global snapshot and replay; otherwise (or past the
                // rollback budget) stop with a machine-state dump.
                if let Some(s) = self.sup.as_mut() {
                    if s.on_panic(&mut self.m, &mut self.st)
                        .map_err(OsError::Sim)?
                    {
                        continue;
                    }
                }
                let mut regs = [0u32; 16];
                for (i, slot) in regs.iter_mut().enumerate() {
                    *slot = self.m.reg(Reg::from_index(i).expect("16 registers"));
                }
                self.panic = Some(KernelPanic {
                    pc,
                    instructions: self.m.profile().instructions,
                    cause: self.m.surprise().cause(),
                    detail: self.m.surprise().detail(),
                    surprise: self.m.surprise().raw(),
                    ret: self.m.ret_addrs(),
                    regs,
                    current_pid: self.m.mem().peek(layout::CURRENT),
                });
                self.finish();
                return Ok(true);
            }
            if !more {
                let halted_for_good = match self.sup.as_mut() {
                    Some(s) => !s.on_halt(&mut self.m, &mut self.st),
                    None => true,
                };
                if halted_for_good {
                    self.finish();
                    return Ok(true);
                }
            }
        }
    }

    /// Seals the run: drains the supervisor and latches `done`.
    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let (recoveries, quarantined, discarded) = match self.sup.take() {
            Some(s) => s.finish(),
            None => (Vec::new(), Vec::new(), 0),
        };
        self.st.cost.recovery = discarded;
        self.recoveries = recoveries;
        self.quarantined = quarantined;
    }

    /// Captures the node for a later [`KernelRun::restore`]. Returns
    /// `None` while a supervisor is attached — its internal snapshots
    /// and budgets are not part of the capture, so a rollback would
    /// desynchronize them (cluster drivers run nodes unsupervised and
    /// do their own checkpointing, which is exactly this call).
    pub fn checkpoint(&self) -> Option<NodeCheckpoint> {
        if self.sup.is_some() {
            return None;
        }
        Some(NodeCheckpoint {
            snap: self.m.snapshot(),
            console_len: self.console.borrow().len(),
            st: self.st.clone(),
            panic: self.panic.clone(),
            done: self.done,
        })
    }

    /// Rolls the node back to a checkpoint: machine state (NIC rings
    /// included), console high-water mark, and loop bookkeeping all
    /// rewind, so re-running the same slices with the same deliveries
    /// reproduces the original trajectory byte-for-byte.
    ///
    /// # Errors
    ///
    /// [`OsError::Sim`] when the snapshot does not fit this machine
    /// (it was taken from a different node shape).
    pub fn restore(&mut self, cp: &NodeCheckpoint) -> Result<(), OsError> {
        self.m.restore(&cp.snap).map_err(OsError::Sim)?;
        self.console.borrow_mut().truncate(cp.console_len);
        self.st = cp.st.clone();
        self.panic = cp.panic.clone();
        self.done = cp.done;
        Ok(())
    }

    /// The run's results so far: final if [`KernelRun::is_done`],
    /// otherwise a mid-flight view (unfinished processes report
    /// [`ProcStatus::Running`]).
    pub fn report(&self) -> RunReport {
        let mem = self.m.mem();
        let counters = Counters {
            ticks: mem.peek(layout::KTICKS) as u64,
            faults: mem.peek(layout::KFAULTS) as u64,
            soft_faults: mem.peek(layout::KSOFT) as u64,
            evictions: mem.peek(layout::KEVICTS) as u64,
            syscalls: mem.peek(layout::KSYSCALLS) as u64,
            switches: mem.peek(layout::KSWITCHES) as u64,
            net_irqs: mem.peek(layout::KNETIRQ) as u64,
            sends: mem.peek(layout::KSENDS) as u64,
            recvs: mem.peek(layout::KRECVS) as u64,
        };
        let mut outputs: Vec<Vec<u8>> = vec![Vec::new(); self.names.len() + 1];
        let mut stream = Vec::with_capacity(self.console.borrow().len());
        for &word in self.console.borrow().iter() {
            let pid = (word >> 8) as usize;
            let byte = (word & 0xff) as u8;
            stream.push((pid as u32, byte));
            if pid < outputs.len() {
                outputs[pid].push(byte);
            }
        }
        let procs = self
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let pid = i as u32 + 1;
                let base = layout::PCB_BASE + pid * layout::PCB_STRIDE;
                let code = mem.peek(base + pcb::CODE);
                let status = match mem.peek(base + pcb::STATE) {
                    pcb::STATE_EXITED => ProcStatus::Exited(code),
                    pcb::STATE_KILLED => ProcStatus::Killed(Surprise::from_raw(code).cause()),
                    _ => ProcStatus::Running,
                };
                ProcReport {
                    pid,
                    name: name.clone(),
                    status,
                    output: std::mem::take(&mut outputs[pid as usize]),
                }
            })
            .collect();
        RunReport {
            procs,
            counters,
            cost: self.st.cost,
            instructions: self.m.profile().instructions,
            console: stream,
            panic: self.panic.clone(),
            watchdog_kills: self.st.watchdog_kills.clone(),
            recoveries: self.recoveries.clone(),
            quarantined: self.quarantined.clone(),
        }
    }
}

/// Relocates a bare-metal program to load offset `off`: every resolved
/// absolute control-flow target shifts, and `halt` (a bare-metal
/// simulator convenience that would fault in user mode) becomes the
/// exit syscall.
fn relocate(p: &Program, off: u32) -> Vec<Instr> {
    p.instrs()
        .iter()
        .map(|&i| {
            if matches!(i, Instr::Halt) {
                return Instr::Trap(TrapPiece::new(sys::EXIT).expect("exit code fits"));
            }
            match i.target() {
                Some(Target::Abs(a)) => i.with_target(Target::Abs(a + off)),
                _ => i,
            }
        })
        .collect()
}

// Re-exported device addresses, for tests and documentation.
pub use mips_sim::machine::{
    CONSOLE_ADDR as CONSOLE, INTCTRL_ADDR as INTCTRL, MAPUNIT_ADDR as MAPUNIT, NIC_ADDR as NIC,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_assembles_and_names_every_section() {
        let k = kernel_program();
        assert_eq!(k.symbol("dispatch"), Some(0), "exception vector at zero");
        for (name, _) in SECTIONS {
            assert!(k.symbol(name).is_some(), "kernel.s defines `{name}:`");
        }
    }

    #[test]
    fn kernel_equ_device_addresses_match_the_machine() {
        // The `.equ` device constants in kernel.s must match the
        // simulator's MMIO map.
        for (name, addr) in [
            ("INTCTRL", INTCTRL),
            ("MAPUNIT", MAPUNIT),
            ("CONSOLE", CONSOLE),
            ("NIC", NIC),
        ] {
            let line = KERNEL_SRC
                .lines()
                .find(|l| l.trim_start().starts_with(&format!(".equ {name} ")))
                .unwrap_or_else(|| panic!("kernel.s defines .equ {name}"));
            let got: u32 = line
                .split(';')
                .next()
                .unwrap()
                .split_whitespace()
                .nth(2)
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(got, addr, ".equ {name} drifted from the machine");
        }
    }

    #[test]
    fn spawn_rejects_overflow_and_empty() {
        let mut k = Kernel::boot();
        assert!(matches!(
            k.spawn("empty", Program::new(vec![])),
            Err(OsError::EmptyProgram)
        ));
        let p = assemble("halt").unwrap();
        for i in 0..layout::MAX_PROCS {
            assert_eq!(k.spawn("p", p.clone()).unwrap(), i + 1);
        }
        assert!(matches!(k.spawn("p", p), Err(OsError::TooManyProcs)));
    }

    #[test]
    fn relocation_shifts_targets_and_rewrites_halt() {
        let p = assemble("main:\n bra main\n nop\n halt").unwrap();
        let r = relocate(&p, 100);
        assert_eq!(r[0].target(), Some(Target::Abs(100)));
        assert!(matches!(r[2], Instr::Trap(t) if t.code == sys::EXIT));
    }

    #[test]
    fn run_slice_budget_cuts_and_resumes_to_the_same_report() {
        // Slicing the run must not change what it computes: run the
        // same two-process workload to completion in one call and in
        // many small budgeted slices, then compare the full reports.
        let src = "
            mvi #0,r1
            mvi #40,r2
        loop:
            trap #1
            add r1,#1,r1
            bne r1,r2,loop
            nop
            halt
        ";
        let mut k = Kernel::boot();
        k.spawn("a", assemble(src).unwrap()).unwrap();
        k.spawn("b", assemble(src).unwrap()).unwrap();

        let whole = {
            let mut run = k.start().unwrap();
            assert!(run.run_slice(u64::MAX, None).unwrap());
            run.report()
        };
        let sliced = {
            let mut run = k.start().unwrap();
            let mut slices = 0u32;
            while !run.run_slice(1_000, None).unwrap() {
                slices += 1;
                assert!(slices < 10_000, "runaway");
            }
            assert!(slices > 2, "the budget actually cut the run");
            run.report()
        };
        assert_eq!(whole, sliced);
    }

    #[test]
    fn checkpoint_restore_replays_to_an_identical_report() {
        let src = "
            mvi #0,r1
            mvi #200,r2
        loop:
            trap #1
            add r1,#1,r1
            bne r1,r2,loop
            nop
            halt
        ";
        let mut k = Kernel::boot();
        k.spawn("p", assemble(src).unwrap()).unwrap();

        let mut run = k.start().unwrap();
        assert!(!run.run_slice(2_000, None).unwrap());
        let cp = run.checkpoint().expect("unsupervised runs checkpoint");
        while !run.run_slice(1_000, None).unwrap() {}
        let first = run.report();

        run.restore(&cp).unwrap();
        while !run.run_slice(1_000, None).unwrap() {}
        assert_eq!(run.report(), first, "replay from checkpoint diverged");
    }
}
