; =====================================================================
; mips-os guest kernel
;
; A complete software kernel for the simulated Stanford MIPS machine:
; exception dispatch, syscalls via trap, a preemptive round-robin
; scheduler driven by the external timer interrupt, and a demand-paging
; handler (FIFO fill + second-chance replacement) over the off-chip
; page-map unit. The paper's thesis is that exactly this software can
; carry what the hardware leaves out: there are no interlocks, no
; microcoded context switch, no hardware page tables — every delay
; slot, load shadow, and restartable fault below is scheduled by hand
; the same way the reorganizer schedules compiled code.
;
; The kernel runs unmapped (physical addresses) in supervisor mode with
; interrupts disabled — exception entry forces that state, `rfe`
; restores the interrupted process's own. Register conventions: all 16
; GPRs are saved to SAVE on entry, so every register is a kernel
; temporary.
;
; Hand-scheduling rules honoured throughout (checked by mips-verify):
;   - a loaded register is not read in the next instruction (1-slot
;     load shadow);
;   - every branch has its 1-slot delay shadow filled with a nop or a
;     both-paths-safe instruction;
;   - no `call`/`jmpi` — straight branches only, so the static CFG is
;     exact.
; =====================================================================

; ------------------------------ memory map ---------------------------
.equ SAVE      256       ; 0x100: 16-word register save area (r0..r15)
.equ CURRENT   288       ; 0x120: pid of the running process (0 = none)
.equ NPROCS    289       ; number of spawned processes (pids 1..NPROCS)
.equ KTICKS    290       ; counter: timer interrupts taken
.equ KFAULTS   291       ; counter: demand (hard) page faults
.equ KEVICTS   292       ; counter: frames evicted by the clock sweep
.equ KSOFT     293       ; counter: soft faults (re-reference remaps)
.equ KSYSCALLS 294       ; counter: traps serviced
.equ KSWITCHES 295       ; counter: process switch-ins
.equ CLOCK     296       ; monotonic tick clock (the `time` syscall)
.equ FHAND     297       ; second-chance clock hand (frame-table slot)
.equ FQLEN     298       ; frame slots filled so far (FIFO fill point)
.equ NFRAMES   299       ; frame budget, set by the host before boot
.equ KNETIRQ   300       ; counter: NIC delivery doorbells taken
.equ KSENDS    301       ; counter: frames committed by the send syscall
.equ KRECVS    302       ; counter: frames consumed by the recv syscall
.equ ITOA      320       ; 0x140: digit buffer for the putint syscall
.equ PCB       512       ; 0x200: process control blocks, 32 words/pid
.equ FRAMES    1024      ; 0x400: frame table, 2 words/slot [page, ref]

; PCB layout (offsets): +0 state (0 free / 1 runnable / 2 exited /
; 3 killed), +1 entry, +2..+4 saved ret0..ret2, +5 saved surprise,
; +6 exit status or killing surprise, +7 program break, +8..+23 r0..r15.

; ---------------------------- device ports ---------------------------
.equ NIC       16777152  ; network interface: +0 status, +2 tx dst,
                         ; +3 tx commit, +4 rx len, +5 rx src, +6 rx ack,
                         ; +16 tx buffer, +32 rx buffer
.equ INTCTRL   16777200  ; interrupt controller (read: device+1, write: ack)
.equ MAPUNIT   16777208  ; +0 fault latch / page select, +1 map, +2 unmap
.equ CONSOLE   16777212  ; console: kernel writes (pid<<8)|byte

; =====================================================================
; Exception entry — the hardware vectors every surprise to address 0.
; Full register-file save into SAVE; the cause field decides the rest.
; =====================================================================
dispatch:
    st r0,@SAVE
    st r1,@SAVE+1
    st r2,@SAVE+2
    st r3,@SAVE+3
    st r4,@SAVE+4
    st r5,@SAVE+5
    st r6,@SAVE+6
    st r7,@SAVE+7
    st r8,@SAVE+8
    st r9,@SAVE+9
    st r10,@SAVE+10
    st r11,@SAVE+11
    st r12,@SAVE+12
    st r13,@SAVE+13
    st r14,@SAVE+14
    st r15,@SAVE+15

; Decode the surprise register's cause field (bits 8..11).
decode:
    rsp surprise,r1
    srl r1,#8,r2
    and r2,#15,r2
    beq r2,#4,svc        ; trap: a system call
    nop
    beq r2,#1,tick       ; external interrupt: the timer
    nop
    beq r2,#3,fault      ; page fault: demand paging or a wild pointer
    nop
    beq r2,#0,boot       ; reset: first entry after power-on
    nop
    bra kill             ; overflow/privilege/illegal/address: fatal
    nop

; =====================================================================
; System calls. The trap code sits in the surprise detail field
; (bits 12..27); the argument and return value travel in the caller's
; r1 (= SAVE+1).  0 exit  1 putchar  2 putint  3 yield  4 brk
; 5 getpid  6 time  7 send  8 recv  9 poll  10 sendf  11 recvf
; The network calls take a second argument / return a second value in
; the caller's r2 (= SAVE+2). The frame calls (sendf/recvf) move a
; whole four-word frame through the caller's r2, r8, r9, r10 — slots
; chosen to stay clear of the registers protocol guests keep state in.
; =====================================================================
svc:
    ld @KSYSCALLS,r3
    srl r1,#12,r1        ; r1 still holds the raw surprise: trap code
    add r3,#1,r3
    st r3,@KSYSCALLS
    beq r1,#0,svc_exit
    nop
    beq r1,#1,svc_putc
    nop
    beq r1,#2,svc_putint
    nop
    beq r1,#3,svc_yield
    nop
    beq r1,#4,svc_brk
    nop
    beq r1,#5,svc_getpid
    nop
    beq r1,#6,svc_time
    nop
    beq r1,#7,svc_send
    nop
    beq r1,#8,svc_recv
    nop
    beq r1,#9,svc_poll
    nop
    beq r1,#10,svc_sendf
    nop
    beq r1,#11,svc_recvf
    nop
    bra resume           ; unknown service: ignored
    nop

svc_exit:
    ld @CURRENT,r1
    lim #PCB,r2
    sll r1,#5,r3
    add r3,r2,r2         ; current process's PCB
    ld @SAVE+1,r4        ; exit status from the caller's r1
    mvi #2,r3
    st r3,0(r2)          ; state := exited
    st r4,6(r2)
    bra sched
    nop

svc_putc:
    ld @SAVE+1,r4        ; character argument
    ld @CURRENT,r5
    lim #255,r6
    and r4,r6,r4
    sll r5,#8,r5         ; console words carry the writer's pid
    or r4,r5,r4
    lim #CONSOLE,r6
    st r4,0(r6)
    bra resume
    nop

svc_putint:
    ld @SAVE+1,r4        ; signed value to print in decimal
    ld @CURRENT,r5
    lim #CONSOLE,r6
    sll r5,#8,r5
    lim #ITOA,r7
    mvi #0,r8            ; digit count
    mvi #48,r10          ; '0'
    bge r4,#0,pi_norm
    nop
    mvi #45,r9           ; '-': value already in the negative domain
    or r9,r5,r9
    st r9,0(r6)
    bra pi_digits
    nop
pi_norm:
    rsub r4,#0,r4        ; negate: negative-domain digits are MIN-safe
pi_digits:
    rem r4,#10,r9        ; remainder in (-9..0]
    rsub r9,r10,r9       ; '0' - remainder
    st r9,(r7,r8)
    add r8,#1,r8
    div r4,#10,r4
    bne r4,#0,pi_digits
    nop
pi_emit:
    sub r8,#1,r8         ; emit most-significant first
    ld (r7,r8),r9
    nop
    or r9,r5,r9
    st r9,0(r6)
    bne r8,#0,pi_emit
    nop
    bra resume
    nop

svc_yield:
    bra preempt          ; voluntary: same path as a timer preemption
    nop

svc_brk:
    ld @CURRENT,r1
    lim #PCB,r2
    sll r1,#5,r3
    add r3,r2,r2
    ld @SAVE+1,r4        ; requested break
    ld 7(r2),r5          ; previous break
    st r4,7(r2)
    st r5,@SAVE+1        ; old break returned in r1
    bra resume
    nop

svc_getpid:
    ld @CURRENT,r4
    nop
    st r4,@SAVE+1
    bra resume
    nop

svc_time:
    ld @CLOCK,r4
    nop
    st r4,@SAVE+1
    bra resume
    nop

; --------------------------- network calls ---------------------------
; 7 send(dst, word): destination node in the caller's r1, payload word
; in the caller's r2. Returns 0 in r1 on success; all-ones when the TX
; ring is full (the caller backs off and retries — the NIC never drops
; a committed frame, so a refused commit is the only loss the guest
; ever sees locally).
svc_send:
    lim #NIC,r2
    ld 0(r2),r3          ; NIC status
    ld @SAVE+1,r4        ; destination argument
    and r3,#2,r3         ; TX_READY
    beq r3,#0,snd_full
    nop
    ld @SAVE+2,r5        ; payload word argument
    st r4,2(r2)          ; latch the destination
    st r5,16(r2)         ; stage the word
    mvi #1,r6
    st r6,3(r2)          ; commit a one-word frame
    ld @KSENDS,r7
    mvi #0,r6
    add r7,#1,r7
    st r7,@KSENDS
    st r6,@SAVE+1        ; return 0
    bra resume
    nop
snd_full:
    mvi #0,r6
    sub r6,#1,r6         ; all-ones: ring full, try again
    st r6,@SAVE+1
    bra resume
    nop

; 8 recv(): pops the head frame. Returns the payload word in r1 and
; the source node in r2; an empty ring returns r2 = all-ones, r1 = 0.
svc_recv:
    lim #NIC,r2
    ld 4(r2),r3          ; head frame's payload length
    nop
    beq r3,#0,rcv_none
    nop
    ld 5(r2),r4          ; source node
    ld 32(r2),r5         ; payload word
    st r4,@SAVE+2
    st r5,@SAVE+1
    mvi #0,r6
    st r6,6(r2)          ; acknowledge: pop the frame
    ld @KRECVS,r7
    nop
    add r7,#1,r7
    st r7,@KRECVS
    bra resume
    nop
rcv_none:
    mvi #0,r4
    sub r4,#1,r4
    st r4,@SAVE+2        ; source := all-ones (nothing waiting)
    mvi #0,r5
    st r5,@SAVE+1
    bra resume
    nop

; 9 poll(): returns the raw NIC status word in r1 (bit 0: a frame is
; waiting, bit 1: the TX ring has space).
svc_poll:
    lim #NIC,r2
    ld 0(r2),r3
    nop
    st r3,@SAVE+1
    bra resume
    nop

; 10 sendf(dst, w0..w3): commits a whole four-word frame — the Frame2
; wire format. Destination in the caller's r1, payload words in the
; caller's r2, r8, r9, r10. Returns 0 in r1 on success; all-ones when
; the TX ring is full (same back-off contract as send).
svc_sendf:
    lim #NIC,r2
    ld 0(r2),r3          ; NIC status
    ld @SAVE+1,r4        ; destination argument
    and r3,#2,r3         ; TX_READY
    beq r3,#0,snd_full
    nop
    st r4,2(r2)          ; latch the destination
    ld @SAVE+2,r5        ; w0
    ld @SAVE+8,r6        ; w1
    st r5,16(r2)
    ld @SAVE+9,r5        ; w2
    st r6,17(r2)
    ld @SAVE+10,r6       ; w3
    st r5,18(r2)
    st r6,19(r2)
    mvi #4,r6
    st r6,3(r2)          ; commit a four-word frame
    ld @KSENDS,r7
    mvi #0,r6
    add r7,#1,r7
    st r7,@KSENDS
    st r6,@SAVE+1        ; return 0
    bra resume
    nop

; 11 recvf(): pops the head frame as four words. Returns the source
; node in r1 (all-ones when nothing is waiting) and the payload words
; in the caller's r2, r8, r9, r10; words past a short frame's payload
; read as zero.
svc_recvf:
    lim #NIC,r2
    ld 4(r2),r3          ; head frame's payload length
    nop
    beq r3,#0,rcvf_none
    nop
    ld 5(r2),r4          ; source node
    ld 32(r2),r5         ; w0
    st r4,@SAVE+1
    ld 33(r2),r4         ; w1
    st r5,@SAVE+2
    ld 34(r2),r5         ; w2
    st r4,@SAVE+8
    ld 35(r2),r4         ; w3
    st r5,@SAVE+9
    st r4,@SAVE+10
    mvi #0,r6
    st r6,6(r2)          ; acknowledge: pop the frame
    ld @KRECVS,r7
    nop
    add r7,#1,r7
    st r7,@KRECVS
    bra resume
    nop
rcvf_none:
    mvi #0,r4
    sub r4,#1,r4
    st r4,@SAVE+1        ; source := all-ones (nothing waiting)
    mvi #0,r5
    st r5,@SAVE+2
    st r5,@SAVE+8
    st r5,@SAVE+9
    st r5,@SAVE+10
    bra resume
    nop

; =====================================================================
; External interrupt: acknowledge the controller and decide by device.
; Device 0 is the timer — advance the clock and preempt (round-robin
; time slicing). Any other device is the NIC's delivery doorbell —
; count it and resume the interrupted process without costing it the
; slice; the frames themselves drain through the recv syscall.
; =====================================================================
tick:
    lim #INTCTRL,r1
    ld 0(r1),r2          ; highest pending device + 1
    nop
    sub r2,#1,r2
    st r2,0(r1)          ; acknowledge it
    bne r2,#0,netirq     ; not the timer: the NIC doorbell
    nop
    ld @KTICKS,r4
    ld @CLOCK,r5
    add r4,#1,r4
    st r4,@KTICKS
    add r5,#1,r5
    st r5,@CLOCK
    bra preempt
    nop

netirq:
    ld @KNETIRQ,r4
    nop
    add r4,#1,r4
    st r4,@KNETIRQ
    bra resume
    nop

; =====================================================================
; Page fault. The map unit latches the faulting address: a value that
; fits 24 bits is a mapped (pid-inserted) address — demand paging; a
; raw 32-bit value came from the segmentation gap — a wild pointer,
; fatal. Frames are identity pairs (frame number = page number): the
; frame table below decides only *which* pages stay mapped. Fill is
; FIFO while free slots remain, then a second-chance clock: a swept
; page is unmapped but remembered, so a re-touch is a cheap soft fault
; that revalidates it; only a page that stayed untouched a full sweep
; gets evicted.
; =====================================================================
fault:
    lim #MAPUNIT,r1
    ld 0(r1),r2          ; latched faulting address
    lim #FRAMES,r4
    srl r2,#12,r2        ; page number (4K-word pages)
    lim #4096,r3
    bgeu r2,r3,kill      ; >= 2^24: raw va from the segmentation gap
    nop
    ld @FQLEN,r5
    mvi #0,r6            ; scan index
    mov r4,r7            ; scan cursor
fscan:                   ; is this a swept-but-resident page?
    beq r6,r5,fmiss
    nop
    ld 0(r7),r8
    add r6,#1,r6
    beq r8,r2,fhit
    nop
    add r7,#2,r7
    bra fscan
    nop
fhit:                    ; soft fault: remap and mark referenced
    mvi #1,r8
    st r8,1(r7)
    st r2,0(r1)          ; select the page ...
    st r2,1(r1)          ; ... and map it back in (frame = page)
    ld @KSOFT,r8
    nop
    add r8,#1,r8
    st r8,@KSOFT
    bra resume
    nop
fmiss:
    ld @KFAULTS,r8
    ld @NFRAMES,r9
    add r8,#1,r8
    st r8,@KFAULTS
    bltu r5,r9,ftake     ; a frame slot is still free: FIFO fill
    nop
fclock:                  ; all frames in use: second-chance sweep
    ld @FHAND,r6
    nop
    sll r6,#1,r7
    add r7,r4,r7         ; the hand's frame-table entry
    ld 1(r7),r8          ; referenced since the last sweep?
    ld 0(r7),r10
    beq r8,#0,fevict
    nop
    mvi #0,r8            ; second chance: clear ref, unmap, move on
    st r8,1(r7)
    st r10,2(r1)         ; unmapped: a re-touch will soft-fault
    add r6,#1,r6
    bltu r6,r9,fwrap
    nop
    mvi #0,r6
fwrap:
    st r6,@FHAND
    bra fclock
    nop
fevict:                  ; the victim went a full sweep untouched
    ld @KEVICTS,r8
    add r6,#1,r6         ; hand moves past the victim
    bltu r6,r9,fev2
    add r8,#1,r8         ; delay slot: count the eviction either way
    mvi #0,r6
fev2:
    st r8,@KEVICTS
    st r6,@FHAND
    st r2,0(r7)          ; the slot now holds the faulting page
    mvi #1,r8
    st r8,1(r7)
    st r2,0(r1)
    st r2,1(r1)          ; map it in
    bra resume
    nop
ftake:
    sll r5,#1,r7
    add r7,r4,r7
    st r2,0(r7)
    mvi #1,r8
    st r8,1(r7)
    add r5,#1,r5
    st r5,@FQLEN
    st r2,0(r1)
    st r2,1(r1)
    bra resume
    nop

; =====================================================================
; Fatal exception in user mode: mark the process killed, record the
; raw surprise so the host can report the cause, schedule someone else.
; =====================================================================
kill:
    ld @CURRENT,r1
    lim #PCB,r2
    sll r1,#5,r3
    add r3,r2,r2
    mvi #3,r3
    st r3,0(r2)          ; state := killed
    rsp surprise,r4
    st r4,6(r2)
    bra sched
    nop

; =====================================================================
; Preemption (timer tick or yield): copy the interrupted context —
; return-address chain, surprise, and all 16 registers — from the save
; area into the PCB, then pick the next process.
; =====================================================================
preempt:
    ld @CURRENT,r1
    lim #PCB,r2
    sll r1,#5,r3
    add r3,r2,r2         ; current process's PCB
    rsp ret0,r3
    st r3,2(r2)
    rsp ret1,r3
    st r3,3(r2)
    rsp ret2,r3
    st r3,4(r2)
    rsp surprise,r3
    st r3,5(r2)
    ld @SAVE,r3
    ld @SAVE+1,r4
    st r3,8(r2)
    st r4,9(r2)
    ld @SAVE+2,r3
    ld @SAVE+3,r4
    st r3,10(r2)
    st r4,11(r2)
    ld @SAVE+4,r3
    ld @SAVE+5,r4
    st r3,12(r2)
    st r4,13(r2)
    ld @SAVE+6,r3
    ld @SAVE+7,r4
    st r3,14(r2)
    st r4,15(r2)
    ld @SAVE+8,r3
    ld @SAVE+9,r4
    st r3,16(r2)
    st r4,17(r2)
    ld @SAVE+10,r3
    ld @SAVE+11,r4
    st r3,18(r2)
    st r4,19(r2)
    ld @SAVE+12,r3
    ld @SAVE+13,r4
    st r3,20(r2)
    st r4,21(r2)
    ld @SAVE+14,r3
    ld @SAVE+15,r4
    st r3,22(r2)
    st r4,23(r2)
    bra sched
    nop

; =====================================================================
; Round-robin scheduler: scan pids after the current one (wrapping),
; take the first runnable. Nothing runnable means the workload set is
; drained — halt the machine.
; =====================================================================
sched:
    ld @NPROCS,r1
    ld @CURRENT,r2
    mvi #0,r7            ; candidates examined
    lim #PCB,r5
sched_loop:
    add r2,#1,r2         ; round robin: start after the current pid
    ble r2,r1,sl_ok
    nop
    mvi #1,r2            ; wrap to pid 1
sl_ok:
    sll r2,#5,r3
    add r3,r5,r3         ; candidate's PCB
    ld 0(r3),r4
    add r7,#1,r7
    beq r4,#1,found      ; runnable
    nop
    blt r7,r1,sched_loop
    nop
    halt                 ; no runnable process: the system is idle

; Switch in: r2 = pid, r3 = its PCB. Restore the return-address chain
; and surprise, point the segmentation unit at the new address space,
; and stage the registers into SAVE for the restore path.
found:
    ld @KSWITCHES,r4
    st r2,@CURRENT
    add r4,#1,r4
    st r4,@KSWITCHES
    wsp r2,pid           ; on-chip segmentation inserts this id
    ld 2(r3),r4
    ld 3(r3),r5
    wsp r4,ret0
    wsp r5,ret1
    ld 4(r3),r4
    ld 5(r3),r5
    wsp r4,ret2
    wsp r5,surprise      ; prev fields hold the user-mode configuration
    ld 8(r3),r4
    ld 9(r3),r5
    st r4,@SAVE
    st r5,@SAVE+1
    ld 10(r3),r4
    ld 11(r3),r5
    st r4,@SAVE+2
    st r5,@SAVE+3
    ld 12(r3),r4
    ld 13(r3),r5
    st r4,@SAVE+4
    st r5,@SAVE+5
    ld 14(r3),r4
    ld 15(r3),r5
    st r4,@SAVE+6
    st r5,@SAVE+7
    ld 16(r3),r4
    ld 17(r3),r5
    st r4,@SAVE+8
    st r5,@SAVE+9
    ld 18(r3),r4
    ld 19(r3),r5
    st r4,@SAVE+10
    st r5,@SAVE+11
    ld 20(r3),r4
    ld 21(r3),r5
    st r4,@SAVE+12
    st r5,@SAVE+13
    ld 22(r3),r4
    ld 23(r3),r5
    st r4,@SAVE+14
    st r5,@SAVE+15
    bra resume
    nop

; Reset: the host has seeded the PCBs and globals; just schedule.
boot:
    bra sched
    nop

; =====================================================================
; Return to user mode: reload all 16 registers and `rfe`. The final
; load is still in its shadow when `rfe` issues — legal, because `rfe`
; reads no general register and the load commits before the first
; user-mode instruction.
; =====================================================================
resume:
    ld @SAVE,r0
    ld @SAVE+1,r1
    ld @SAVE+2,r2
    ld @SAVE+3,r3
    ld @SAVE+4,r4
    ld @SAVE+5,r5
    ld @SAVE+6,r6
    ld @SAVE+7,r7
    ld @SAVE+8,r8
    ld @SAVE+9,r9
    ld @SAVE+10,r10
    ld @SAVE+11,r11
    ld @SAVE+12,r12
    ld @SAVE+13,r13
    ld @SAVE+14,r14
    ld @SAVE+15,r15
    rfe
