//! The kernel's memory map and ABI, mirrored from `src/asm/kernel.s`.
//!
//! Everything here is a contract between the guest kernel (which
//! addresses these words from MIPS assembly via `.equ` constants) and
//! the host runtime (which seeds and reads them with `peek`/`poke`).
//! The two must agree; `tests` in this module pin the assembly's
//! constants to these values.

/// 16-word register save area (r0..r15) used by exception entry.
pub const SAVE: u32 = 0x100;
/// Pid of the running process (0 = none yet).
pub const CURRENT: u32 = 0x120;
/// Number of spawned processes; valid pids are `1..=NPROCS`.
pub const NPROCS: u32 = 0x121;
/// Counter: timer interrupts taken.
pub const KTICKS: u32 = 0x122;
/// Counter: demand (hard) page faults.
pub const KFAULTS: u32 = 0x123;
/// Counter: frames evicted by the second-chance sweep.
pub const KEVICTS: u32 = 0x124;
/// Counter: soft faults (swept pages remapped on re-touch).
pub const KSOFT: u32 = 0x125;
/// Counter: traps serviced.
pub const KSYSCALLS: u32 = 0x126;
/// Counter: process switch-ins.
pub const KSWITCHES: u32 = 0x127;
/// Monotonic tick clock, returned by the `time` syscall.
pub const CLOCK: u32 = 0x128;
/// Second-chance clock hand (frame-table slot index).
pub const FHAND: u32 = 0x129;
/// Frame slots filled so far (the FIFO fill point).
pub const FQLEN: u32 = 0x12a;
/// Frame budget; the host writes this before boot.
pub const NFRAMES: u32 = 0x12b;
/// Counter: NIC delivery doorbells taken.
pub const KNETIRQ: u32 = 0x12c;
/// Counter: frames committed by the `send` syscall.
pub const KSENDS: u32 = 0x12d;
/// Counter: frames consumed by the `recv` syscall.
pub const KRECVS: u32 = 0x12e;
/// Digit buffer for the `putint` syscall.
pub const ITOA: u32 = 0x140;
/// Process control block table base.
pub const PCB_BASE: u32 = 0x200;
/// Words per process control block.
pub const PCB_STRIDE: u32 = 32;
/// Frame table base: 2 words per slot, `[page, referenced]`.
pub const FRAMES_BASE: u32 = 0x400;

/// PCB field offsets.
pub mod pcb {
    /// Process state ([`FREE`](STATE_FREE)…).
    pub const STATE: u32 = 0;
    /// Entry address (host bookkeeping).
    pub const ENTRY: u32 = 1;
    /// Saved return-address chain (three words).
    pub const RET0: u32 = 2;
    /// Saved surprise register.
    pub const SURPRISE: u32 = 5;
    /// Exit status, or the raw surprise of the killing exception.
    pub const CODE: u32 = 6;
    /// Program break (the `brk` syscall's word).
    pub const BRK: u32 = 7;
    /// Saved r0..r15 (sixteen words).
    pub const REGS: u32 = 8;

    /// Unused slot.
    pub const STATE_FREE: u32 = 0;
    /// Ready to run.
    pub const STATE_RUNNABLE: u32 = 1;
    /// Exited via the `exit` syscall.
    pub const STATE_EXITED: u32 = 2;
    /// Killed by a fatal exception.
    pub const STATE_KILLED: u32 = 3;
}

/// System-call trap codes. The first three coincide with the
/// simulator's native firmware services, so a program compiled for
/// bare metal traps into the kernel unchanged.
pub mod sys {
    /// `exit(status)` — status in r1.
    pub const EXIT: u16 = 0;
    /// `putchar(byte)` — byte in r1.
    pub const PUTC: u16 = 1;
    /// `putint(value)` — signed decimal print, value in r1.
    pub const PUTINT: u16 = 2;
    /// `yield()` — give up the rest of the time slice.
    pub const YIELD: u16 = 3;
    /// `brk(addr)` — set the program break, old break returned in r1.
    pub const BRK: u16 = 4;
    /// `getpid()` — pid returned in r1.
    pub const GETPID: u16 = 5;
    /// `time()` — tick count returned in r1.
    pub const TIME: u16 = 6;
    /// `send(dst, word)` — destination node in r1, payload word in r2;
    /// r1 returns 0 on success, all-ones when the TX ring is full.
    pub const SEND: u16 = 7;
    /// `recv()` — payload word returned in r1, source node in r2
    /// (all-ones in r2 when nothing is waiting).
    pub const RECV: u16 = 8;
    /// `poll()` — raw NIC status word returned in r1 (bit 0: frame
    /// waiting, bit 1: TX space).
    pub const POLL: u16 = 9;
    /// `sendf(dst, w0..w3)` — commits a whole four-word frame (the
    /// Frame2 wire format): destination in r1, payload words in
    /// r2, r8, r9, r10; r1 returns 0 on success, all-ones when the
    /// TX ring is full.
    pub const SENDF: u16 = 10;
    /// `recvf()` — pops the head frame as four words: source node
    /// returned in r1 (all-ones when nothing is waiting), payload
    /// words in r2, r8, r9, r10 (zero past a short frame's payload).
    pub const RECVF: u16 = 11;
}

/// Most processes the kernel can hold. Eight pids of sixteen possible
/// `pid_bits = 4` values keeps every mapped address below the MMIO
/// window and the identity-frame budget honest.
pub const MAX_PROCS: u32 = 8;
/// Frame-table capacity (`FRAMES_BASE` region size / 2).
pub const MAX_FRAMES: u32 = 128;

/// Segmentation: inserted pid width. 4 bits = a 1M-word space per
/// process.
pub const PID_BITS: u32 = 4;
/// Exclusive end of the valid low region of a process's 32-bit space.
/// The whole 24-bit span is valid: compiled programs place globals at
/// 0x1000 and the stack top at 0xE00000, both below this.
pub const LOW_LIMIT: u32 = 0x0100_0000;
/// Inclusive start of the valid high region. References between
/// `LOW_LIMIT` and here are wild pointers: the kernel kills the
/// process.
pub const HIGH_BASE: u32 = 0xffff_0000;

/// Surprise seed for a fresh process: supervisor now (the kernel is
/// running), previous = user mode with interrupts and mapping enabled
/// — exactly what `rfe` restores on first dispatch.
pub const USER_SURPRISE: u32 = 0x89;

/// Initial program break for a fresh process (above the compiled
/// globals region).
pub const INITIAL_BRK: u32 = 0x2000;

#[cfg(test)]
mod tests {
    use super::*;

    /// The `.equ` constants in `kernel.s` must mirror this module.
    #[test]
    fn kernel_source_equs_match() {
        let src = crate::KERNEL_SRC;
        let expect = [
            ("SAVE", SAVE),
            ("CURRENT", CURRENT),
            ("NPROCS", NPROCS),
            ("KTICKS", KTICKS),
            ("KFAULTS", KFAULTS),
            ("KEVICTS", KEVICTS),
            ("KSOFT", KSOFT),
            ("KSYSCALLS", KSYSCALLS),
            ("KSWITCHES", KSWITCHES),
            ("CLOCK", CLOCK),
            ("FHAND", FHAND),
            ("FQLEN", FQLEN),
            ("NFRAMES", NFRAMES),
            ("KNETIRQ", KNETIRQ),
            ("KSENDS", KSENDS),
            ("KRECVS", KRECVS),
            ("ITOA", ITOA),
            ("PCB", PCB_BASE),
            ("FRAMES", FRAMES_BASE),
        ];
        for (name, value) in expect {
            let line = src
                .lines()
                .find(|l| {
                    l.trim_start()
                        .strip_prefix(".equ ")
                        .is_some_and(|r| r.trim_start().starts_with(name))
                })
                .unwrap_or_else(|| panic!("kernel.s defines .equ {name}"));
            let got: u32 = line
                .split(';')
                .next()
                .unwrap()
                .split_whitespace()
                .nth(2)
                .unwrap()
                .parse()
                .unwrap_or_else(|_| panic!("numeric .equ {name}"));
            assert_eq!(got, value, ".equ {name} drifted from layout.rs");
        }
    }

    #[test]
    fn pcb_table_fits_below_the_frame_table() {
        const { assert!(PCB_BASE + (MAX_PROCS + 1) * PCB_STRIDE <= FRAMES_BASE) };
        // Kernel data must stay inside page 0.
        const { assert!(FRAMES_BASE + 2 * MAX_FRAMES <= 0x1000) };
    }
}
