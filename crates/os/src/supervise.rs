//! Supervised checkpoint/restart: turn detected faults into recovered
//! runs.
//!
//! The paper's answer to missing hardware is software that carries the
//! invariant; the kernel hardening layer (PR 3) made faults *loud* —
//! kill the victim, keep the siblings. This module closes the loop and
//! makes them *survivable*:
//!
//! * **per-process checkpoints** — at a fixed instruction cadence the
//!   supervisor captures each preempted process's full context (its
//!   PCB, its memory segment, its console position, its watchdog
//!   budget). A checkpoint is only taken at a *safe boundary*: the
//!   process must be runnable, not current, and its saved return chain
//!   must be sequential — a chain bent by a branch shadow means the
//!   preemption landed mid-transfer, and the checkpoint is deferred to
//!   the next cadence point rather than capturing half a control
//!   transfer;
//! * **supervised restart** — when the kernel kills a process (fatal
//!   exception, wild pointer, watchdog), the supervisor rolls the
//!   victim back to its last checkpoint after an exponential backoff
//!   (in kernel cycles), re-marks it runnable, and lets the guest
//!   scheduler pick it up again. Siblings never notice: their memory,
//!   page mappings, and console ordering are untouched. A victim that
//!   keeps dying is **quarantined** after
//!   [`RestartPolicy::max_restarts`] and stays killed;
//! * **whole-machine rollback** — a kernel panic (double fault inside
//!   the handler) normally ends the run; with supervision, the machine
//!   restores to the last global [`Snapshot`] and
//!   replays, bounded by [`RestartPolicy::max_panic_rollbacks`].
//!
//! Everything is deterministic: checkpoint points are a pure function
//! of the executed-instruction count (the fast engine stops its chunks
//! exactly there — see [`mips_sim::Machine::arm_snapshot`]), backoff
//! is measured in the same counter, and a supervised run replays
//! byte-identically from the same inputs on either engine.
//!
//! Discarded work (the victim's cycles between checkpoint and kill,
//! and everything unwound by a whole-machine rollback) is attributed
//! to [`SystemsCost::recovery`](crate::SystemsCost::recovery) — the
//! measured price of coming back.

use crate::kernel::SystemsCost;
use crate::layout::{self, pcb};
use mips_core::word::ADDR_BITS;
use mips_sim::{Machine, Shared, SimError, Snapshot, PAGE_WORDS};

/// When and how often a killed process comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restart budget per process; the kill that would exceed it
    /// quarantines the process instead (it stays killed).
    pub max_restarts: u32,
    /// Kernel cycles (executed instructions) between a kill and the
    /// restart, doubled on every attempt: attempt *n* waits
    /// `backoff << (n-1)`.
    pub backoff: u64,
    /// Whole-machine rollback budget for kernel panics; past it the
    /// panic ends the run exactly as it does unsupervised.
    pub max_panic_rollbacks: u32,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 3,
            backoff: 1_000,
            max_panic_rollbacks: 2,
        }
    }
}

/// Supervision knobs for a kernel run
/// ([`KernelConfig::supervisor`](crate::KernelConfig::supervisor)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Checkpoint cadence in executed instructions. Each cadence point
    /// refreshes the global snapshot and every per-process checkpoint
    /// whose safe-boundary conditions hold.
    pub checkpoint_every: u64,
    /// Restart policy applied to every process.
    pub policy: RestartPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_every: 100_000,
            policy: RestartPolicy::default(),
        }
    }
}

/// One recovery action taken by the supervisor, in event order
/// ([`RunReport::recoveries`](crate::RunReport::recoveries)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A killed process was rolled back to its checkpoint and
    /// re-marked runnable.
    Restart {
        /// The restarted pid.
        pid: u32,
        /// Which attempt this was (1-based).
        attempt: u32,
        /// Instruction count when the restart was applied.
        at: u64,
    },
    /// A process exhausted its restart budget and stays killed.
    Quarantine {
        /// The quarantined pid.
        pid: u32,
        /// Instruction count at the fatal kill.
        at: u64,
    },
    /// A kernel panic unwound the whole machine to the last global
    /// snapshot.
    Rollback {
        /// Instruction count at the panic.
        at: u64,
        /// Instruction count of the snapshot rolled back to.
        to: u64,
    },
}

/// The run-loop state the supervisor reads and rewrites. Owned by
/// [`crate::kernel::KernelRun`]; bundled so checkpoints can capture and
/// restore it alongside the machine.
#[derive(Debug, Clone)]
pub(crate) struct LoopState {
    pub(crate) cost: SystemsCost,
    pub(crate) user_spent: Vec<u64>,
    pub(crate) watchdog_kills: Vec<u32>,
    pub(crate) watchdog_fired: Vec<bool>,
    pub(crate) cur_pid: u32,
    pub(crate) pid_stale: bool,
}

/// Everything needed to put one process back where it was.
#[derive(Debug, Clone)]
struct ProcCheckpoint {
    /// The full PCB ([`layout::PCB_STRIDE`] words).
    pcb: Vec<u32>,
    /// Nonzero RAM words of the process's physical segment.
    words: Vec<(u32, u32)>,
    /// Console words the process had emitted at capture time.
    console_words: usize,
    /// Watchdog budget consumed at capture time.
    user_spent: u64,
}

/// Everything needed to put the whole run back where it was.
#[derive(Clone)]
struct GlobalCheckpoint {
    snap: Snapshot,
    console: Vec<u32>,
    cost: SystemsCost,
    user_spent: Vec<u64>,
    watchdog_kills: Vec<u32>,
    watchdog_fired: Vec<bool>,
    cur_pid: u32,
    pid_stale: bool,
    ckpt: Vec<Option<ProcCheckpoint>>,
    restarts: Vec<u32>,
    quarantined: Vec<bool>,
    restart_due: Vec<Option<u64>>,
    last_state: Vec<u32>,
    next_ckpt: u64,
    events_len: usize,
}

/// Low physical word of pid's segment (identity frames: mapped
/// addresses are physical addresses).
fn seg_base(pid: u32) -> u32 {
    pid << (ADDR_BITS - layout::PID_BITS)
}

/// True when the saved return chain is sequential — no branch or
/// indirect-jump shadow was live at preemption, so the PCB is a safe
/// rollback point.
fn ret_chain_sequential(pcb_words: &[u32]) -> bool {
    let r0 = pcb_words[pcb::RET0 as usize];
    let r1 = pcb_words[(pcb::RET0 + 1) as usize];
    let r2 = pcb_words[(pcb::RET0 + 2) as usize];
    r1 == r0.wrapping_add(1) && r2 == r0.wrapping_add(2)
}

/// The checkpoint/restart engine driven by `run_inner`. One instance
/// per run; all state is host-side and deterministic.
pub(crate) struct Supervisor {
    cfg: SupervisorConfig,
    nprocs: usize,
    klen: u32,
    console: Shared<Vec<u32>>,
    booted: bool,
    next_ckpt: u64,
    ckpt: Vec<Option<ProcCheckpoint>>,
    restarts: Vec<u32>,
    quarantined: Vec<bool>,
    restart_due: Vec<Option<u64>>,
    last_state: Vec<u32>,
    global: Option<GlobalCheckpoint>,
    panic_rollbacks: u32,
    /// Total discarded work (monotone; never unwound by a rollback).
    discarded: u64,
    events: Vec<RecoveryEvent>,
}

impl Supervisor {
    pub(crate) fn new(
        cfg: SupervisorConfig,
        nprocs: usize,
        klen: u32,
        console: Shared<Vec<u32>>,
    ) -> Supervisor {
        Supervisor {
            cfg,
            nprocs,
            klen,
            console,
            booted: false,
            next_ckpt: 0,
            ckpt: vec![None; nprocs + 1],
            restarts: vec![0; nprocs + 1],
            quarantined: vec![false; nprocs + 1],
            restart_due: vec![None; nprocs + 1],
            last_state: vec![pcb::STATE_RUNNABLE; nprocs + 1],
            global: None,
            panic_rollbacks: 0,
            discarded: 0,
            events: Vec::new(),
        }
    }

    /// The next instruction count at which the supervisor needs the
    /// run loop's attention (checkpoint cadence or a pending restart).
    fn next_event(&self) -> u64 {
        let mut at = self.next_ckpt;
        for due in self.restart_due.iter().flatten() {
            at = at.min(*due);
        }
        at
    }

    /// Called at the top of every run-loop iteration, at an
    /// instruction boundary. Takes due checkpoints, watches for kernel
    /// kills, applies due restarts, and re-arms the machine's snapshot
    /// point so fast-engine bursts stop exactly at the next event.
    pub(crate) fn observe(&mut self, m: &mut Machine, st: &mut LoopState) {
        let now = m.profile().instructions;
        if !self.booted || now >= self.next_ckpt {
            self.take_checkpoints(m, st, now);
        }
        // Kills happen in kernel text; scan only while we are there.
        if m.pc() < self.klen {
            self.scan_kills(m, now);
        }
        self.apply_due_restarts(m, st, now, false);
        m.arm_snapshot(self.next_event());
    }

    /// One cadence round: refresh the global snapshot and every
    /// per-process checkpoint whose safe-boundary conditions hold. The
    /// whole round defers (and retries at the next boundary) while a
    /// delayed transfer is in flight — a snapshot mid-shadow would be
    /// exact, but a *PCB* checkpoint taken from it could not be
    /// re-entered through the scheduler's sequential resume path.
    fn take_checkpoints(&mut self, m: &Machine, st: &LoopState, now: u64) {
        if !m.pipeline_quiescent() {
            return;
        }
        self.booted = true;
        let ram = m.mem().snapshot();
        let cur = m.mem().peek(layout::CURRENT);
        let console = self.console.borrow();
        for pid in 1..=self.nprocs as u32 {
            let idx = pid as usize;
            if self.quarantined[idx] || self.restart_due[idx].is_some() {
                continue;
            }
            let base = layout::PCB_BASE + pid * layout::PCB_STRIDE;
            if m.mem().peek(base + pcb::STATE) != pcb::STATE_RUNNABLE || pid == cur {
                continue; // not at rest: keep the previous checkpoint
            }
            let pcb_words: Vec<u32> = (0..layout::PCB_STRIDE)
                .map(|i| m.mem().peek(base + i))
                .collect();
            if !ret_chain_sequential(&pcb_words) {
                continue; // preempted mid-shadow: defer to next cadence
            }
            let (lo, hi) = (seg_base(pid), seg_base(pid + 1));
            self.ckpt[idx] = Some(ProcCheckpoint {
                pcb: pcb_words,
                words: ram
                    .iter()
                    .copied()
                    .filter(|&(a, _)| a >= lo && a < hi)
                    .collect(),
                console_words: console.iter().filter(|&&w| (w >> 8) == pid).count(),
                user_spent: st.user_spent[idx],
            });
        }
        drop(console);
        self.global = Some(GlobalCheckpoint {
            snap: m.snapshot(),
            console: self.console.borrow().clone(),
            cost: st.cost,
            user_spent: st.user_spent.clone(),
            watchdog_kills: st.watchdog_kills.clone(),
            watchdog_fired: st.watchdog_fired.clone(),
            cur_pid: st.cur_pid,
            pid_stale: st.pid_stale,
            ckpt: self.ckpt.clone(),
            restarts: self.restarts.clone(),
            quarantined: self.quarantined.clone(),
            restart_due: self.restart_due.clone(),
            last_state: self.last_state.clone(),
            next_ckpt: now + self.cfg.checkpoint_every,
            events_len: self.events.len(),
        });
        self.next_ckpt = now + self.cfg.checkpoint_every;
    }

    /// Watches PCB state words for kernel kills and schedules a
    /// backed-off restart (or a quarantine) for each fresh one.
    fn scan_kills(&mut self, m: &Machine, now: u64) {
        for pid in 1..=self.nprocs as u32 {
            let idx = pid as usize;
            let base = layout::PCB_BASE + pid * layout::PCB_STRIDE;
            let state = m.mem().peek(base + pcb::STATE);
            if state == pcb::STATE_KILLED
                && self.last_state[idx] != pcb::STATE_KILLED
                && !self.quarantined[idx]
            {
                let attempt = self.restarts[idx] + 1;
                if attempt > self.cfg.policy.max_restarts || self.ckpt[idx].is_none() {
                    self.quarantined[idx] = true;
                    self.events.push(RecoveryEvent::Quarantine { pid, at: now });
                } else {
                    self.restarts[idx] = attempt;
                    let wait = self
                        .cfg
                        .policy
                        .backoff
                        .checked_shl(attempt - 1)
                        .unwrap_or(u64::MAX);
                    self.restart_due[idx] = Some(now.saturating_add(wait));
                }
            }
            self.last_state[idx] = state;
        }
    }

    /// Applies every restart whose backoff has elapsed (`force` skips
    /// the backoff — used when the machine has halted and no more
    /// kernel cycles will ever pass).
    fn apply_due_restarts(&mut self, m: &mut Machine, st: &mut LoopState, now: u64, force: bool) {
        for pid in 1..=self.nprocs as u32 {
            let idx = pid as usize;
            if self.restart_due[idx].is_some_and(|t| force || now >= t) {
                self.restart_due[idx] = None;
                self.restore_proc(m, st, pid, now);
            }
        }
    }

    /// Rolls one process back to its checkpoint: PCB, memory segment,
    /// page mappings (dropped; the kernel's soft-fault path remaps on
    /// touch), console prefix, and watchdog budget. Siblings are
    /// untouched.
    fn restore_proc(&mut self, m: &mut Machine, st: &mut LoopState, pid: u32, now: u64) {
        let idx = pid as usize;
        let ck = self.ckpt[idx]
            .clone()
            .expect("restart implies a checkpoint");
        let base = layout::PCB_BASE + pid * layout::PCB_STRIDE;
        for (i, &w) in ck.pcb.iter().enumerate() {
            m.mem_mut().poke(base + i as u32, w);
        }
        let (lo, hi) = (seg_base(pid), seg_base(pid + 1));
        let live: Vec<u32> = m
            .mem()
            .snapshot()
            .iter()
            .map(|&(a, _)| a)
            .filter(|&a| a >= lo && a < hi)
            .collect();
        for a in live {
            m.mem_mut().poke(a, 0);
        }
        for &(a, w) in &ck.words {
            m.mem_mut().poke(a, w);
        }
        if let Some(pm) = m.page_map() {
            let mut pm = pm.borrow_mut();
            let page_shift = PAGE_WORDS.trailing_zeros();
            let victim: Vec<u32> = pm
                .resident_pages()
                .iter()
                .map(|&(p, _)| p)
                .filter(|&p| (p << page_shift) >= lo && (p << page_shift) < hi)
                .collect();
            for p in victim {
                pm.unmap(p);
            }
        }
        // Siblings keep every console word; the victim keeps only its
        // checkpoint prefix. Relative order is preserved.
        let mut kept = 0usize;
        self.console.borrow_mut().retain(|&w| {
            if (w >> 8) != pid {
                true
            } else {
                kept += 1;
                kept <= ck.console_words
            }
        });
        // The victim's post-checkpoint cycles are discarded work.
        let waste = st.user_spent[idx] - ck.user_spent;
        st.cost.user -= waste;
        self.discarded += waste;
        st.user_spent[idx] = ck.user_spent;
        st.watchdog_fired[idx] = false;
        self.last_state[idx] = pcb::STATE_RUNNABLE;
        self.events.push(RecoveryEvent::Restart {
            pid,
            attempt: self.restarts[idx],
            at: now,
        });
    }

    /// Called when the machine halts. If restarts are still pending,
    /// applies them immediately (no more cycles will pass), clears the
    /// halt latch, and re-enters the guest scheduler — the machine is
    /// parked in supervisor mode inside `sched`, whose loop re-reads
    /// everything from kernel memory. Returns true when revived.
    pub(crate) fn on_halt(&mut self, m: &mut Machine, st: &mut LoopState) -> bool {
        if self.restart_due.iter().all(|d| d.is_none()) {
            return false;
        }
        let now = m.profile().instructions;
        self.apply_due_restarts(m, st, now, true);
        m.clear_halt();
        m.jump_to(m.program().symbol("sched").expect("kernel defines sched"));
        st.pid_stale = true;
        true
    }

    /// Called on a controlled kernel panic. Rolls the whole machine
    /// (and the run-loop state) back to the last global snapshot when
    /// the rollback budget allows. Returns true when the run should
    /// continue instead of reporting the panic.
    pub(crate) fn on_panic(
        &mut self,
        m: &mut Machine,
        st: &mut LoopState,
    ) -> Result<bool, SimError> {
        if self.panic_rollbacks >= self.cfg.policy.max_panic_rollbacks {
            return Ok(false);
        }
        let Some(g) = self.global.clone() else {
            return Ok(false);
        };
        let now = m.profile().instructions;
        m.restore(&g.snap)?;
        m.disarm_snapshot();
        *self.console.borrow_mut() = g.console;
        st.cost = g.cost;
        st.user_spent = g.user_spent;
        st.watchdog_kills = g.watchdog_kills;
        st.watchdog_fired = g.watchdog_fired;
        st.cur_pid = g.cur_pid;
        st.pid_stale = g.pid_stale;
        self.ckpt = g.ckpt;
        self.restarts = g.restarts;
        self.quarantined = g.quarantined;
        self.restart_due = g.restart_due;
        self.last_state = g.last_state;
        self.next_ckpt = g.next_ckpt;
        self.events.truncate(g.events_len);
        // Everything between the snapshot and the panic is discarded.
        self.discarded += now - g.snap.instructions();
        self.events.push(RecoveryEvent::Rollback {
            at: now,
            to: g.snap.instructions(),
        });
        self.panic_rollbacks += 1;
        Ok(true)
    }

    /// Final accounting: (events, quarantined pids, total discarded
    /// cycles).
    pub(crate) fn finish(self) -> (Vec<RecoveryEvent>, Vec<u32>, u64) {
        let quarantined = (1..=self.nprocs as u32)
            .filter(|&p| self.quarantined[p as usize])
            .collect();
        (self.events, quarantined, self.discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_chain_detects_branch_shadows() {
        // A preemption with a sequential chain is a safe boundary...
        let mut pcb_words = vec![0u32; layout::PCB_STRIDE as usize];
        pcb_words[pcb::RET0 as usize] = 700;
        pcb_words[(pcb::RET0 + 1) as usize] = 701;
        pcb_words[(pcb::RET0 + 2) as usize] = 702;
        assert!(ret_chain_sequential(&pcb_words));
        // ...a bent chain means a transfer shadow was live (the shapes
        // `rfe` reconstructs as one- and two-slot pending transfers).
        pcb_words[(pcb::RET0 + 1) as usize] = 900;
        assert!(!ret_chain_sequential(&pcb_words));
        pcb_words[(pcb::RET0 + 1) as usize] = 701;
        pcb_words[(pcb::RET0 + 2) as usize] = 900;
        assert!(!ret_chain_sequential(&pcb_words));
    }

    #[test]
    fn seg_base_matches_the_pid_field() {
        assert_eq!(seg_base(0), 0);
        assert_eq!(seg_base(1), 1 << 20);
        assert_eq!(seg_base(2), 2 << 20);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RestartPolicy::default();
        let waits: Vec<u64> = (1..=3)
            .map(|a| p.backoff.checked_shl(a - 1).unwrap_or(u64::MAX))
            .collect();
        assert_eq!(waits, vec![1_000, 2_000, 4_000]);
    }
}
