//! The fleet's central promise, stress-tested: results are
//! byte-identical to serial execution at every worker count, for every
//! job kind the stack can produce, under schedules engineered to
//! maximize stealing and skew.

use mips_chaos::{run_campaign, standard_pool, CampaignConfig, PoolEntry};
use mips_fleet::{run_job, run_ordered, run_serial, FleetJob, FleetResult, FleetWork};
use mips_os::KernelConfig;
use mips_qc::Rng;
use mips_sim::Engine;

/// One unit of mixed work: everything the stack serves, reduced to a
/// common byte-stable output for cross-schedule diffing.
enum MixedWork {
    Machine(Box<FleetJob>),
    Chaos(CampaignConfig),
}

impl FleetWork for MixedWork {
    type Out = Vec<u8>;
    fn execute(self) -> Vec<u8> {
        match self {
            MixedWork::Machine(job) => run_job(*job).to_bytes(),
            MixedWork::Chaos(cfg) => run_campaign(&cfg).to_json().into_bytes(),
        }
    }
}

fn engine(rng: &mut Rng) -> Engine {
    if rng.bool() {
        Engine::Fast
    } else {
        Engine::Reference
    }
}

/// Draws one job from the mixed distribution. Chaos and recover
/// campaigns are kept tiny (one case) so the 200-job suite stays
/// affordable, but they exercise the full campaign machinery —
/// injection, grading, and for recover the checkpoint/replay path.
fn draw(rng: &mut Rng, pool: &[PoolEntry]) -> MixedWork {
    match rng.weighted(&[10, 5, 2, 1]) {
        0 => {
            let entry = rng.pick(pool);
            MixedWork::Machine(Box::new(FleetJob::bare(
                entry.name,
                entry.program.clone(),
                engine(rng),
            )))
        }
        1 => {
            let count = rng.usize(2..4);
            let procs: Vec<(String, mips_core::Program)> = (0..count)
                .map(|_| {
                    let entry = rng.pick(pool);
                    (entry.name.to_string(), entry.program.clone())
                })
                .collect();
            let config = KernelConfig {
                time_slice: *rng.pick(&[10_000, 20_000, 40_000]),
                engine: engine(rng),
                ..KernelConfig::default()
            };
            MixedWork::Machine(Box::new(FleetJob::kernel("mix", procs, config)))
        }
        2 => MixedWork::Chaos(CampaignConfig {
            seed: rng.next_u64(),
            cases: 1,
            max_faults: rng.usize(1..3),
            ..CampaignConfig::default()
        }),
        _ => MixedWork::Chaos(CampaignConfig {
            seed: rng.next_u64(),
            cases: 1,
            max_faults: 1,
            recover: true,
            ..CampaignConfig::default()
        }),
    }
}

fn mixed_jobs(seed: u64, count: usize) -> Vec<MixedWork> {
    let pool = standard_pool();
    let mut rng = Rng::new(seed);
    (0..count).map(|_| draw(&mut rng, &pool)).collect()
}

#[test]
fn two_hundred_mixed_jobs_are_schedule_independent() {
    let serial: Vec<Vec<u8>> = run_serial(mixed_jobs(0xF1EE7, 200));
    for workers in [2, 4, 8] {
        let parallel = run_ordered(mixed_jobs(0xF1EE7, 200), workers);
        assert_eq!(
            parallel.len(),
            serial.len(),
            "{workers} workers lost results"
        );
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p, s, "job {i} diverged at {workers} workers");
        }
    }
}

/// Steal storm: far more tiny jobs than workers, so every worker's
/// deque drains constantly and the injector and steal paths are
/// exercised thousands of times. Each job is distinct (its own
/// iteration count) so a mis-routed result cannot hide.
#[test]
fn a_steal_storm_of_tiny_jobs_keeps_every_result_in_place() {
    let tiny = |i: usize| {
        let n = 1 + (i % 7);
        let src = format!(
            "    mvi #{n},r2\n\
             loop:\n\
            \x20    mvi #{},r1\n\
            \x20    trap #1\n\
            \x20    sub r2,#1,r2\n\
            \x20    bgt r2,#0,loop\n\
            \x20    nop\n\
            \x20    halt\n",
            48 + (i % 10)
        );
        let program = mips_asm::assemble(&src).expect("tiny program assembles");
        FleetJob::bare("tiny", program, Engine::Reference)
    };
    let jobs: Vec<FleetJob> = (0..600).map(tiny).collect();
    let serial: Vec<FleetResult> = run_serial(jobs.clone());
    for (i, r) in serial.iter().enumerate() {
        assert_eq!(r.output.len(), 1 + (i % 7), "tiny job shape");
    }
    let stormed = run_ordered(jobs, 8);
    assert_eq!(stormed, serial);
}

/// Skew: one job orders of magnitude longer than the rest. The long
/// job pins a worker while the others race through the short tail —
/// the schedule that most tempts a pool to reorder or drop results.
#[test]
fn one_long_job_among_many_short_ones_changes_nothing() {
    let pool = standard_pool();
    let long = {
        // Nested 200x200 busy loops: ~200k instructions before halting
        // (mvi immediates are 8-bit, so the count is built by nesting).
        let src = "    mvi #200,r2\n\
                   outer:\n\
                   \x20    mvi #200,r3\n\
                   inner:\n\
                   \x20    sub r3,#1,r3\n\
                   \x20    bgt r3,#0,inner\n\
                   \x20    nop\n\
                   \x20    sub r2,#1,r2\n\
                   \x20    bgt r2,#0,outer\n\
                   \x20    nop\n\
                   \x20    mvi #33,r1\n\
                   \x20    trap #1\n\
                   \x20    halt\n";
        let program = mips_asm::assemble(src).expect("long program assembles");
        FleetJob::bare("long", program, Engine::Reference)
    };
    let mut jobs = vec![long];
    for i in 0..80 {
        let entry = &pool[i % pool.len()];
        jobs.push(FleetJob::bare(
            entry.name,
            entry.program.clone(),
            Engine::Fast,
        ));
    }
    let serial = run_serial(jobs.clone());
    assert!(serial[0].instructions > 100_000, "the long job is long");
    for workers in [2, 8] {
        assert_eq!(run_ordered(jobs.clone(), workers), serial);
    }
}
