//! Compile-time proof of the Send audit.
//!
//! The fleet's worker threads move whole jobs — machines, kernels,
//! results — across thread boundaries. These assertions fail to
//! *compile* if anyone reintroduces a non-`Send` handle (an `Rc`, a
//! `RefCell`, a raw pointer) anywhere in those types, which is how the
//! audit stays done.

use mips_fleet::{FleetJob, FleetResult};
use mips_os::Kernel;
use mips_sim::Machine;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn fleet_types_cross_threads() {
    assert_send::<FleetJob>();
    assert_send::<FleetResult>();
    assert_sync::<FleetResult>();
}

#[test]
fn the_simulator_stack_crosses_threads() {
    assert_send::<Machine>();
    assert_send::<Kernel>();
}
