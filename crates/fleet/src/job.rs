//! The standard fleet job: one self-contained machine run.
//!
//! A [`FleetJob`] owns everything its run needs — the program(s), the
//! engine choice, the kernel configuration including supervision — so
//! a worker can execute it with zero shared state. The retired
//! [`FleetResult`] captures only *simulation-visible* facts (statuses,
//! outputs, instruction counts); host timing deliberately never
//! appears, which is what makes results byte-stable across schedules
//! ([`FleetResult::to_bytes`] is the canonical encoding the
//! serial-vs-parallel diffs compare).

use crate::pool::FleetWork;
use mips_core::Program;
use mips_os::{Kernel, KernelConfig, ProcStatus};
use mips_sim::{Engine, Machine, MachineConfig};

/// What a job runs.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// One program on the bare machine (native traps, no kernel).
    Bare {
        program: Program,
        engine: Engine,
        /// Runaway guard for the machine.
        step_limit: u64,
    },
    /// A multiprogrammed set under the guest kernel. `config` carries
    /// the engine and the optional recovery (supervision) policy.
    Kernel {
        /// `(name, program)` in spawn (pid) order.
        procs: Vec<(String, Program)>,
        config: KernelConfig,
    },
}

/// A self-contained unit of fleet work.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Label echoed into the result (workload name, case id, …).
    pub name: String,
    /// The run description.
    pub spec: JobSpec,
}

impl FleetJob {
    /// A bare-metal run with the default step limit.
    pub fn bare(name: &str, program: Program, engine: Engine) -> FleetJob {
        FleetJob {
            name: name.to_string(),
            spec: JobSpec::Bare {
                program,
                engine,
                step_limit: MachineConfig::default().step_limit,
            },
        }
    }

    /// A kernel-hosted run of `procs` under `config`.
    pub fn kernel(name: &str, procs: Vec<(String, Program)>, config: KernelConfig) -> FleetJob {
        FleetJob {
            name: name.to_string(),
            spec: JobSpec::Kernel { procs, config },
        }
    }
}

/// The byte-stable outcome of one job. Every field is a pure function
/// of the job description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetResult {
    /// The job's label.
    pub name: String,
    /// One-line outcome: `halt`, `idle`, `panic(...)`, `error: ...`.
    pub status: String,
    /// Simulated instructions executed (user + kernel).
    pub instructions: u64,
    /// Observable output: the bare machine's stream, or every
    /// process's demultiplexed bytes concatenated in pid order.
    pub output: Vec<u8>,
    /// Structured detail — kernel jobs record per-process verdicts and
    /// the kernel counters; deterministic text, no host state.
    pub detail: String,
}

impl FleetResult {
    /// Canonical encoding for byte-diffs: length-prefixed fields, no
    /// host-dependent content anywhere.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            self.name.len() + self.status.len() + self.output.len() + self.detail.len() + 40,
        );
        let mut field = |bytes: &[u8]| {
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(bytes);
        };
        field(self.name.as_bytes());
        field(self.status.as_bytes());
        field(&self.instructions.to_le_bytes());
        field(&self.output);
        field(self.detail.as_bytes());
        out
    }
}

/// Renders a process status deterministically.
fn status_str(s: &ProcStatus) -> String {
    match s {
        ProcStatus::Running => "running".into(),
        ProcStatus::Exited(code) => format!("exit({code})"),
        ProcStatus::Killed(cause) => format!("killed({cause:?})"),
    }
}

/// Executes a job to completion. Every failure mode lands in the
/// result's `status`; this function never panics on simulator errors,
/// so a poisoned job cannot take its worker down.
pub fn run_job(job: FleetJob) -> FleetResult {
    match job.spec {
        JobSpec::Bare {
            program,
            engine,
            step_limit,
        } => {
            let mut m = Machine::with_config(
                program,
                MachineConfig {
                    step_limit,
                    ..MachineConfig::default()
                },
            );
            m.set_engine(engine);
            let status = match m.run() {
                Ok(_) => "halt".to_string(),
                Err(e) => format!("error: {e}"),
            };
            FleetResult {
                name: job.name,
                status,
                instructions: m.profile().instructions,
                output: m.output().to_vec(),
                detail: String::new(),
            }
        }
        JobSpec::Kernel { procs, config } => {
            let mut k = Kernel::with_config(config);
            for (name, program) in &procs {
                if let Err(e) = k.spawn(name, program.clone()) {
                    return FleetResult {
                        name: job.name,
                        status: format!("error: spawn {name}: {e}"),
                        instructions: 0,
                        output: Vec::new(),
                        detail: String::new(),
                    };
                }
            }
            match k.run_until_idle() {
                Ok(r) => {
                    let status = match &r.panic {
                        Some(p) => format!("panic({:?}@{:#x})", p.cause, p.pc),
                        None => "idle".to_string(),
                    };
                    let mut output = Vec::new();
                    let mut detail = String::new();
                    for p in &r.procs {
                        output.extend_from_slice(&p.output);
                        detail.push_str(&format!(
                            "{}:{}:{};",
                            p.pid,
                            status_str(&p.status),
                            p.output.len()
                        ));
                    }
                    let c = r.counters;
                    detail.push_str(&format!(
                        "ticks={} faults={} soft={} evict={} sys={} switch={} restarts={}",
                        c.ticks,
                        c.faults,
                        c.soft_faults,
                        c.evictions,
                        c.syscalls,
                        c.switches,
                        r.recoveries.len()
                    ));
                    FleetResult {
                        name: job.name,
                        status,
                        instructions: r.instructions,
                        output,
                        detail,
                    }
                }
                Err(e) => FleetResult {
                    name: job.name,
                    status: format!("error: {e}"),
                    instructions: 0,
                    output: Vec::new(),
                    detail: String::new(),
                },
            }
        }
    }
}

impl FleetWork for FleetJob {
    type Out = FleetResult;
    fn execute(self) -> FleetResult {
        run_job(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{run_ordered, run_serial};

    const COUNT_S: &str = "\
        mvi #48,r2
        mvi #58,r3
    loop:
        mov r2,r1
        trap #1
        add r2,#1,r2
        blt r2,r3,loop
        nop
        mvi #0,r1
        trap #0
        halt
    ";

    fn counting_job(engine: Engine) -> FleetJob {
        let program = mips_asm::assemble(COUNT_S).expect("assembles");
        FleetJob::bare("count", program, engine)
    }

    #[test]
    fn a_bare_job_retires_its_output() {
        let r = run_job(counting_job(Engine::Reference));
        assert_eq!(r.status, "halt");
        assert_eq!(r.output, b"0123456789");
        assert!(r.instructions > 10);
    }

    #[test]
    fn engines_retire_identical_results() {
        let a = run_job(counting_job(Engine::Reference));
        let b = run_job(counting_job(Engine::Fast));
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn a_kernel_job_reports_per_process_outcomes() {
        let program = mips_asm::assemble(COUNT_S).expect("assembles");
        let job = FleetJob::kernel(
            "pair",
            vec![
                ("a".to_string(), program.clone()),
                ("b".to_string(), program),
            ],
            KernelConfig::default(),
        );
        let r = run_job(job);
        assert_eq!(r.status, "idle");
        assert_eq!(r.output, b"01234567890123456789");
        assert!(r.detail.starts_with("1:exit(0):10;2:exit(0):10;"));
    }

    #[test]
    fn fleet_results_are_schedule_independent() {
        let jobs: Vec<FleetJob> = (0..24).map(|_| counting_job(Engine::Fast)).collect();
        let serial: Vec<Vec<u8>> = run_serial(jobs.clone())
            .iter()
            .map(FleetResult::to_bytes)
            .collect();
        let parallel: Vec<Vec<u8>> = run_ordered(jobs, 4)
            .iter()
            .map(FleetResult::to_bytes)
            .collect();
        assert_eq!(serial, parallel);
    }
}
