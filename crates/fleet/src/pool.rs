//! The work-stealing executor: per-worker deques, a shared injector,
//! and a bounded result channel.
//!
//! ## Scheduling discipline
//!
//! Submitted jobs enter the **injector** (FIFO). An idle worker pulls a
//! small batch from the injector into its own deque, then works that
//! deque LIFO (the classic owner-end discipline — freshly pulled work
//! is cache-warm). A worker whose deque and the injector are both
//! empty **steals** from a sibling's deque FIFO — the oldest entries,
//! the ones the owner is furthest from reaching — taking up to half of
//! what it finds. Workers with nothing to do park on a condition
//! variable with a short timeout so a late steal opportunity (one
//! worker stuck on a long job with a loaded deque) is never missed for
//! long.
//!
//! ## Why results stay deterministic
//!
//! The executor never shares mutable state between jobs; it only moves
//! whole jobs. Retire *order* is scheduling-dependent, so every result
//! travels with the job id assigned at submission, and batch consumers
//! ([`run_ordered`]) place results by id — making the collected output
//! a pure function of the submitted jobs. The bounded channel provides
//! backpressure: when the consumer lags, workers block in `send`
//! rather than buffering unboundedly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A unit of fleet work: moved whole onto a worker, executed exactly
/// once. `execute` must be a **pure function of `self`** (no ambient
/// state, no host timing in the output) for the fleet's determinism
/// contract to hold, and should catch its own failure modes into
/// `Out` rather than panicking.
pub trait FleetWork: Send + 'static {
    /// The retired result.
    type Out: Send + 'static;
    /// Runs the job to completion.
    fn execute(self) -> Self::Out;
}

/// How long an idle worker parks before re-scanning for steals.
const PARK: Duration = Duration::from_micros(500);
/// Most jobs an idle worker pulls from the injector in one batch.
const INJECTOR_BATCH: usize = 8;

struct Core<W: FleetWork> {
    injector: Mutex<VecDeque<(u64, W)>>,
    deques: Vec<Mutex<VecDeque<(u64, W)>>>,
    wake: Condvar,
    closed: AtomicBool,
    /// Jobs submitted and not yet retired (in a deque, the injector,
    /// or executing). Workers exit when this hits zero after `close`.
    in_flight: AtomicUsize,
}

/// A running fleet: submit jobs, read results from the receiver
/// returned by [`Fleet::new`], then [`Fleet::close`] and
/// [`Fleet::join`].
pub struct Fleet<W: FleetWork> {
    core: Arc<Core<W>>,
    next_id: AtomicU64,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<W: FleetWork> Fleet<W> {
    /// Spawns `threads` workers (0 = the host's available parallelism)
    /// and returns the fleet plus the result stream. `capacity` bounds
    /// the result channel: a consumer that stops reading stalls the
    /// workers after `capacity` undelivered results (backpressure),
    /// it never grows memory without bound.
    pub fn new(threads: usize, capacity: usize) -> (Fleet<W>, Receiver<(u64, W::Out)>) {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let (tx, rx) = sync_channel(capacity.max(1));
        let core = Arc::new(Core {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            wake: Condvar::new(),
            closed: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|me| {
                let core = Arc::clone(&core);
                let tx = tx.clone();
                thread::Builder::new()
                    .name(format!("fleet-worker-{me}"))
                    .spawn(move || worker_loop(&core, me, &tx))
                    .expect("spawn fleet worker")
            })
            .collect();
        (
            Fleet {
                core,
                next_id: AtomicU64::new(0),
                workers,
            },
            rx,
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.core.deques.len()
    }

    /// Submits a job; returns the id its result will carry.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Fleet::close`].
    pub fn submit(&self, work: W) -> u64 {
        assert!(
            !self.core.closed.load(Ordering::SeqCst),
            "submit after close"
        );
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.core.in_flight.fetch_add(1, Ordering::SeqCst);
        self.core.injector.lock().unwrap().push_back((id, work));
        self.core.wake.notify_one();
        id
    }

    /// Declares the job stream complete; workers exit once everything
    /// in flight has retired.
    pub fn close(&self) {
        self.core.closed.store(true, Ordering::SeqCst);
        self.core.wake.notify_all();
    }

    /// Closes (idempotently) and joins the workers. Drain the result
    /// receiver **before** joining — with a full channel the workers
    /// are blocked on `send` until the consumer reads or drops it.
    pub fn join(mut self) {
        self.close();
        for h in self.workers.drain(..) {
            h.join().expect("fleet worker panicked");
        }
    }
}

fn worker_loop<W: FleetWork>(core: &Core<W>, me: usize, tx: &SyncSender<(u64, W::Out)>) {
    loop {
        let job = pop_local(core, me)
            .or_else(|| pull_injector(core, me))
            .or_else(|| steal(core, me));
        match job {
            Some((id, work)) => {
                let out = work.execute();
                // A dropped receiver means the consumer gave up on the
                // batch; keep draining so `join` terminates.
                let _ = tx.send((id, out));
                if core.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                    core.wake.notify_all();
                }
            }
            None => {
                if core.closed.load(Ordering::SeqCst) && core.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                let guard = core.injector.lock().unwrap();
                if guard.is_empty() {
                    // Re-check under the lock, then park briefly; the
                    // timeout bounds how stale a steal scan can get.
                    let _ = core.wake.wait_timeout(guard, PARK);
                }
            }
        }
    }
}

/// Owner end of the local deque (LIFO).
fn pop_local<W: FleetWork>(core: &Core<W>, me: usize) -> Option<(u64, W)> {
    core.deques[me].lock().unwrap().pop_back()
}

/// Pulls up to [`INJECTOR_BATCH`] jobs; the first is returned, the
/// rest land in the local deque (stealable by siblings).
fn pull_injector<W: FleetWork>(core: &Core<W>, me: usize) -> Option<(u64, W)> {
    let mut injector = core.injector.lock().unwrap();
    let first = injector.pop_front()?;
    let extra: Vec<_> = (1..INJECTOR_BATCH)
        .map_while(|_| injector.pop_front())
        .collect();
    drop(injector);
    if !extra.is_empty() {
        core.deques[me].lock().unwrap().extend(extra);
        core.wake.notify_one();
    }
    Some(first)
}

/// Steals up to half of a sibling's deque from the FIFO end; the
/// first stolen job is returned, the rest join the local deque.
fn steal<W: FleetWork>(core: &Core<W>, me: usize) -> Option<(u64, W)> {
    let n = core.deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        let mut taken: Vec<(u64, W)> = {
            let mut d = core.deques[victim].lock().unwrap();
            let count = d.len().div_ceil(2);
            d.drain(..count).collect()
        };
        if taken.is_empty() {
            continue;
        }
        let first = taken.remove(0);
        if !taken.is_empty() {
            core.deques[me].lock().unwrap().extend(taken);
        }
        return Some(first);
    }
    None
}

/// Runs every job on the fleet and returns results **in submission
/// order** — byte-identical to [`run_serial`] for deterministic work,
/// whatever `threads` or the steal schedule did.
pub fn run_ordered<W: FleetWork>(works: Vec<W>, threads: usize) -> Vec<W::Out> {
    let n = works.len();
    // Capacity n: collection keeps up by construction, so the channel
    // never stalls a worker in the batch path.
    let (fleet, rx) = Fleet::new(threads, n.max(1));
    for w in works {
        fleet.submit(w);
    }
    fleet.close();
    let mut out: Vec<Option<W::Out>> = std::iter::repeat_with(|| None).take(n).collect();
    for (id, result) in rx.iter().take(n) {
        out[id as usize] = Some(result);
    }
    fleet.join();
    out.into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never retired")))
        .collect()
}

/// The reference schedule: every job in submission order on the
/// calling thread. The byte-diff baseline for [`run_ordered`].
pub fn run_serial<W: FleetWork>(works: Vec<W>) -> Vec<W::Out> {
    works.into_iter().map(W::execute).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Square(u64);
    impl FleetWork for Square {
        type Out = u64;
        fn execute(self) -> u64 {
            self.0 * self.0
        }
    }

    #[test]
    fn ordered_results_match_serial_at_any_worker_count() {
        let serial = run_serial((0..500).map(Square).collect());
        for threads in [1, 2, 4, 8] {
            let parallel = run_ordered((0..500).map(Square).collect(), threads);
            assert_eq!(parallel, serial, "{threads} workers");
        }
    }

    #[test]
    fn streaming_delivers_every_id_exactly_once() {
        let (fleet, rx) = Fleet::new(3, 4);
        for i in 0..64 {
            fleet.submit(Square(i));
        }
        fleet.close();
        let mut seen = [false; 64];
        for (id, out) in rx.iter().take(64) {
            assert_eq!(out, id * id);
            assert!(!seen[id as usize], "id {id} retired twice");
            seen[id as usize] = true;
        }
        fleet.join();
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn a_bounded_channel_applies_backpressure_without_deadlock() {
        // Capacity 1 with a slow consumer: workers must block in
        // send, then drain once the consumer catches up.
        let (fleet, rx) = Fleet::new(4, 1);
        for i in 0..32 {
            fleet.submit(Square(i));
        }
        fleet.close();
        let mut got = 0;
        for _ in 0..32 {
            std::thread::sleep(Duration::from_millis(1));
            let _ = rx.recv().unwrap();
            got += 1;
        }
        fleet.join();
        assert_eq!(got, 32);
    }

    #[test]
    fn an_empty_fleet_joins_cleanly() {
        let (fleet, rx) = Fleet::<Square>::new(2, 1);
        fleet.close();
        assert!(rx.recv().is_err());
        fleet.join();
    }
}
