//! # mips-fleet — thousands of deterministic machines on one host
//!
//! The serving story of the reproduction: a single simulated machine is
//! fast, snapshot-able, supervised, and chaos-hardened; this crate runs
//! **many** of them. A [`Fleet`] is a work-stealing thread pool — one
//! deque per worker plus a shared injector, built on `std` threads
//! only — whose unit of work is a whole machine run: a [`FleetJob`]
//! carries everything a run needs (program, engine, kernel
//! configuration, supervision policy), executes on whichever worker
//! gets to it, and retires a byte-stable [`FleetResult`].
//!
//! ## The determinism contract
//!
//! Each job is **self-contained**: it owns its program and
//! configuration, builds its machine (and kernel) from scratch inside
//! the worker, and shares no mutable state with any other job. A
//! result is therefore a pure function of the job description, and a
//! batch of results — collected in job-id order — is **byte-identical
//! to serial execution regardless of worker count or steal order**
//! ([`run_ordered`] vs [`run_serial`], enforced by the
//! `determinism` test suite at 1/2/4/8 workers, including steal-storm
//! and skew mixes). Host timing never leaks into a result; latency is
//! measured outside the result stream by the `mips-serve` front-end.
//!
//! Migrating whole machines across workers is what forced the `Send`
//! audit of `mips-sim`/`mips-os`: the shared device handles
//! (`Rc<RefCell<…>>`) became [`mips_sim::Shared`] cells, and every
//! MMIO device boxed into a machine is `Send`. The compile-time
//! assertions in `tests/send.rs` pin that property.
//!
//! ## Pieces
//!
//! * [`pool`] — the generic executor: [`FleetWork`] (any send-able job
//!   with a deterministic `execute`), [`Fleet`] (streaming, bounded
//!   result channel, backpressure), [`run_ordered`]/[`run_serial`].
//! * [`job`] — the standard job type: [`FleetJob`]/[`JobSpec`]
//!   (bare-metal or kernel-hosted runs) retiring [`FleetResult`]s.
//! * [`vtime`] — a deterministic discrete-event replay of the fleet
//!   schedule in *virtual time* (cost = simulated instructions), the
//!   host-independent half of `BENCH_fleet.json`'s scaling curve.
//!
//! Chaos campaigns ride the same executor: `mips-chaos` implements
//! [`FleetWork`] for its per-case runs, so `mips-chaos --threads N`
//! fans a campaign out across workers and still emits a report
//! byte-identical to the sequential path.

pub mod job;
pub mod pool;
pub mod vtime;

pub use job::{run_job, FleetJob, FleetResult, JobSpec};
pub use pool::{run_ordered, run_serial, Fleet, FleetWork};
pub use vtime::{percentile, VirtualJob, VirtualSchedule};
