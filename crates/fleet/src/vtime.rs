//! Virtual-time replay of the fleet schedule — the host-independent
//! scaling model.
//!
//! Wall-clock scaling numbers depend on how many cores the measuring
//! host happens to have (a 1-core CI container shows a flat curve no
//! matter how good the scheduler is). The pinned half of
//! `BENCH_fleet.json` therefore comes from here: a **deterministic
//! discrete-event replay** of the fleet discipline in which a job's
//! cost is its *simulated instruction count* — a quantity that is
//! itself byte-stable — and worker count is a model parameter. The
//! replay produces identical bytes on every host, which is what lets
//! CI byte-compare the scaling curve instead of chasing wall-clock
//! noise.
//!
//! The model is list scheduling over the injector order: each job, in
//! submission order (gated by its arrival time for open-loop mixes),
//! goes to the earliest-free worker, ties to the lowest index. For
//! independent jobs this is exactly the schedule an idealized
//! work-stealing pool converges to — stealing exists to *reach* the
//! list schedule despite deques, not to beat it — so makespan and
//! latency quantiles from the replay are the scheduler's capacity, not
//! an optimistic bound. (Greedy list scheduling is within 2x of
//! optimal makespan in the worst case, and within `max_job/total` of
//! ideal speedup on real mixes — the skew term the curve makes
//! visible.)

/// One job in the model: a cost in virtual units (simulated
/// instructions) and an arrival offset in the same units (0 for
/// closed batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualJob {
    pub cost: u64,
    pub arrival: u64,
}

impl VirtualJob {
    /// A batch job present from time zero.
    pub fn batch(cost: u64) -> VirtualJob {
        VirtualJob { cost, arrival: 0 }
    }
}

/// The replayed schedule at one worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualSchedule {
    /// Modeled worker count.
    pub workers: usize,
    /// Virtual time the last job retires.
    pub makespan: u64,
    /// Per-job `completion - arrival`, in job order.
    pub latencies: Vec<u64>,
    /// Sum of all job costs (the serial makespan for batch arrivals).
    pub total_cost: u64,
}

impl VirtualSchedule {
    /// Replays `jobs` on `workers` modeled workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn replay(jobs: &[VirtualJob], workers: usize) -> VirtualSchedule {
        assert!(workers > 0, "a schedule needs at least one worker");
        let mut free_at = vec![0u64; workers];
        let mut latencies = Vec::with_capacity(jobs.len());
        let mut makespan = 0u64;
        let mut total_cost = 0u64;
        for job in jobs {
            // Earliest-free worker, lowest index on ties: the list
            // schedule over injector (submission) order.
            let (w, _) = free_at
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .expect("workers > 0");
            let start = free_at[w].max(job.arrival);
            let done = start + job.cost;
            free_at[w] = done;
            latencies.push(done - job.arrival);
            makespan = makespan.max(done);
            total_cost += job.cost;
        }
        VirtualSchedule {
            workers,
            makespan,
            latencies,
            total_cost,
        }
    }

    /// Speedup over the serial schedule of the same jobs (for batch
    /// arrivals the serial makespan is the total cost).
    pub fn speedup(&self, serial_makespan: u64) -> f64 {
        serial_makespan as f64 / self.makespan.max(1) as f64
    }

    /// Latency quantile `q` in [0, 1] (nearest-rank, deterministic).
    pub fn latency_quantile(&self, q: f64) -> u64 {
        percentile(&self.latencies, q)
    }
}

/// Nearest-rank percentile over an unsorted slice; 0 for empty input.
pub fn percentile(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_uniform_batch_scales_linearly() {
        let jobs: Vec<VirtualJob> = (0..40).map(|_| VirtualJob::batch(100)).collect();
        let serial = VirtualSchedule::replay(&jobs, 1);
        assert_eq!(serial.makespan, 4000);
        let four = VirtualSchedule::replay(&jobs, 4);
        assert_eq!(four.makespan, 1000);
        assert!((four.speedup(serial.makespan) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn skew_bounds_the_speedup_by_the_longest_job() {
        // One 1000-unit job plus forty 10-unit jobs: the long job is
        // the critical path at any worker count.
        let mut jobs = vec![VirtualJob::batch(1000)];
        jobs.extend((0..40).map(|_| VirtualJob::batch(10)));
        let s = VirtualSchedule::replay(&jobs, 8);
        assert_eq!(s.makespan, 1000);
        assert_eq!(s.total_cost, 1400);
    }

    #[test]
    fn arrivals_gate_start_times() {
        let jobs = vec![
            VirtualJob {
                cost: 50,
                arrival: 0,
            },
            VirtualJob {
                cost: 50,
                arrival: 200,
            },
        ];
        let s = VirtualSchedule::replay(&jobs, 4);
        assert_eq!(s.makespan, 250);
        assert_eq!(s.latencies, vec![50, 50]);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn the_replay_is_deterministic() {
        let jobs: Vec<VirtualJob> = (0..64)
            .map(|i| VirtualJob::batch(1 + (i * 37) % 501))
            .collect();
        assert_eq!(
            VirtualSchedule::replay(&jobs, 4),
            VirtualSchedule::replay(&jobs, 4)
        );
    }
}
