//! Differential testing: every code-generator configuration must produce
//! exactly the interpreter's output on a battery of programs, at every
//! reorganizer level.

use mips_ccm::{CcMachine, CcPolicy};
use mips_hll::{
    compile_cc, compile_mips, run_program, BoolValueStrategy, CcBoolStrategy, CcGenOptions,
    CodegenOptions, MachineTarget,
};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, MachineConfig};

const PROGRAMS: &[(&str, &str)] = &[
    (
        "arith",
        "program t; var x, y: integer;
         begin
           x := 2 + 3 * 4 - 1;
           y := (x div 3) * 100 + x mod 3;
           writeln(x, ' ', y, ' ', -y + 5, ' ', 1000000 * 3)
         end.",
    ),
    (
        "fib",
        "program t;
         function fib(n: integer): integer;
         begin
           if n < 2 then fib := n
           else fib := fib(n-1) + fib(n-2)
         end;
         begin writeln(fib(12)) end.",
    ),
    (
        "loops",
        "program t; var i, s: integer;
         begin
           s := 0;
           for i := 1 to 10 do s := s + i;
           while s > 30 do s := s - 7;
           repeat s := s + 1 until s >= 31;
           for i := 3 downto 1 do s := s * 2;
           writeln(s)
         end.",
    ),
    (
        "arrays",
        "program t;
         var a: array [1..20] of integer;
             m: array [0..3] of array [0..3] of integer;
             i, j, s: integer;
         begin
           for i := 1 to 20 do a[i] := 21 - i;
           for i := 0 to 3 do
             for j := 0 to 3 do
               m[i][j] := a[i * 4 + j + 1];
           s := 0;
           for i := 0 to 3 do s := s + m[i, 3 - i];
           writeln(s, ' ', a[1], ' ', a[20])
         end.",
    ),
    (
        "chars",
        "program t;
         var s: packed array [0..9] of char;
             u: array [0..9] of char;
             i, n: integer;
         begin
           for i := 0 to 9 do s[i] := chr(ord('a') + i);
           for i := 0 to 9 do u[i] := s[9 - i];
           n := 0;
           for i := 0 to 9 do
             if s[i] = u[9 - i] then n := n + 1;
           for i := 0 to 9 do write(u[i]);
           writeln(' ', n)
         end.",
    ),
    (
        "booleans",
        "program t;
         var found, b1, b2: boolean; rec, key, i: integer;
         begin
           rec := 5; key := 5; i := 13;
           found := (rec = key) or (i = 13);
           b1 := (rec < key) and (i <> 0);
           b2 := not b1 and (found or (rec >= key));
           writeln(found, ' ', b1, ' ', b2);
           if (rec = key) and ((i > 10) or b1) then writeln('yes')
           else writeln('no')
         end.",
    ),
    (
        "procs",
        "program t;
         var g: integer;
         procedure setg(v: integer); begin g := v end;
         procedure bump(var x: integer; by: integer); begin x := x + by end;
         function triple(x: integer): integer; begin triple := 3 * x end;
         begin
           setg(5);
           bump(g, triple(2));
           writeln(g)
         end.",
    ),
    (
        "varrays",
        "program t;
         type vec = array [0..5] of integer;
         var v: vec; total: integer;
         procedure double(var a: vec);
         var i: integer;
         begin for i := 0 to 5 do a[i] := a[i] * 2 end;
         function sum(var a: vec): integer;
         var i, s: integer;
         begin
           s := 0;
           for i := 0 to 5 do s := s + a[i];
           sum := s
         end;
         var i: integer;
         begin
           for i := 0 to 5 do v[i] := i;
           double(v);
           total := sum(v);
           writeln(total)
         end.",
    ),
    (
        "sieve",
        "program t;
         var isprime: array [2..50] of boolean;
             i, j, count: integer;
         begin
           for i := 2 to 50 do isprime[i] := true;
           for i := 2 to 50 do
             if isprime[i] then
             begin
               j := i + i;
               while j <= 50 do
               begin
                 isprime[j] := false;
                 j := j + i
               end
             end;
           count := 0;
           for i := 2 to 50 do
             if isprime[i] then count := count + 1;
           writeln(count)
         end.",
    ),
    (
        "stringops",
        "program t;
         var s, d: packed array [0..15] of char;
             i, len, matches: integer;
         begin
           len := 12;
           for i := 0 to len - 1 do s[i] := chr(ord('A') + (i * 7) mod 26);
           for i := 0 to len - 1 do d[i] := s[i];
           matches := 0;
           for i := 0 to len - 1 do
             if d[i] = s[i] then matches := matches + 1;
           for i := 0 to len - 1 do write(d[i]);
           writeln(' ', matches)
         end.",
    ),
    (
        "deep_calls",
        "program t;
         function add(a, b: integer): integer; begin add := a + b end;
         function mul(a, b: integer): integer; begin mul := a * b end;
         begin
           writeln(add(mul(2, 3), add(mul(4, 5), mul(6, add(1, 6)))))
         end.",
    ),
    (
        "case_dense",
        "program t; var i, r, acc: integer;
         begin
           acc := 0;
           for i := 0 to 9 do
           begin
             case i of
               0: r := 10;
               1, 2: r := 20;
               3: r := 30;
               5: r := 50;
               7, 8: r := 80
             else r := 1
             end;
             acc := acc * 10 + r div 10 + r mod 10
           end;
           writeln(acc)
         end.",
    ),
    (
        "case_sparse",
        "program t; var i, r, acc: integer;
         begin
           acc := 0;
           for i := 0 to 4 do
           begin
             case i * 100 of
               0: r := 1;
               100: r := 2;
               300: r := 3;
               400: r := 4
             else r := 0
             end;
             acc := acc * 10 + r
           end;
           writeln(acc)
         end.",
    ),
    (
        "case_chars",
        "program t; var s: packed array [0..7] of char; i, vowels, digits, other: integer;
         begin
           s[0] := 'a'; s[1] := '3'; s[2] := 'z'; s[3] := 'e';
           s[4] := '9'; s[5] := 'q'; s[6] := 'i'; s[7] := 'u';
           vowels := 0; digits := 0; other := 0;
           for i := 0 to 7 do
             case s[i] of
               'a', 'e', 'i', 'o', 'u': vowels := vowels + 1;
               '0', '1', '2', '3', '4', '5', '6', '7', '8', '9': digits := digits + 1
             else other := other + 1
             end;
           writeln(vowels, ' ', digits, ' ', other)
         end.",
    ),
    (
        "negatives",
        "program t; var x, y: integer;
         begin
           x := -17;
           y := x div 4;
           writeln(y, ' ', x mod 4, ' ', -x, ' ', x * -3, ' ', x - 100)
         end.",
    ),
];

fn mips_output(src: &str, cg: &CodegenOptions, reorg: ReorgOptions) -> String {
    let lc = compile_mips(src, cg).expect("compiles");
    let out = reorganize(&lc, reorg).expect("reorganizes");
    let cfg = MachineConfig {
        byte_addressed: cg.target == MachineTarget::Byte,
        ..MachineConfig::default()
    };
    let mut m = Machine::with_config(out.program, cfg);
    m.run().expect("runs");
    m.output_string()
}

fn cc_output(src: &str, strategy: CcBoolStrategy, policy: CcPolicy) -> String {
    let p = compile_cc(src, &CcGenOptions { strategy }).expect("compiles");
    let mut m = CcMachine::new(p, policy);
    m.run().expect("runs");
    m.output_string()
}

#[test]
fn mips_matches_interpreter_all_configs() {
    for (name, src) in PROGRAMS {
        let want = run_program(src).expect("interpreter runs");
        for target in [MachineTarget::Word, MachineTarget::Byte] {
            for bool_value in [BoolValueStrategy::SetCond, BoolValueStrategy::Branching] {
                for (promote, pcc_style) in [(0, false), (4, false), (0, true)] {
                    let cg = CodegenOptions {
                        target,
                        bool_value,
                        promote_locals: promote,
                        pcc_style,
                    };
                    for (lname, opts) in ReorgOptions::LEVELS {
                        let got = mips_output(src, &cg, opts);
                        assert_eq!(
                            got, want,
                            "{name} on {target:?}/{bool_value:?}/promote={promote}/pcc={pcc_style} at {lname}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn cc_matches_interpreter_all_strategies() {
    for (name, src) in PROGRAMS {
        let want = run_program(src).expect("interpreter runs");
        let combos = [
            (CcBoolStrategy::FullEval, CcPolicy::S360),
            (CcBoolStrategy::FullEval, CcPolicy::VAX),
            (CcBoolStrategy::EarlyOut, CcPolicy::VAX),
            (CcBoolStrategy::CondSet, CcPolicy::M68000),
        ];
        for (strategy, policy) in combos {
            let got = cc_output(src, strategy, policy);
            assert_eq!(got, want, "{name} under {strategy:?}/{}", policy.name);
        }
    }
}

#[test]
fn reorganized_code_is_hazard_free_and_smaller() {
    for (name, src) in PROGRAMS {
        let cg = CodegenOptions::standard();
        let lc = compile_mips(src, &cg).unwrap();
        let none = reorganize(&lc, ReorgOptions::NONE).unwrap();
        let full = reorganize(&lc, ReorgOptions::FULL).unwrap();
        assert!(
            full.program.len() <= none.program.len(),
            "{name}: full {} vs none {}",
            full.program.len(),
            none.program.len()
        );
        // The full-level program must execute without a single load-use
        // hazard.
        let cfg = MachineConfig {
            check_hazards: true,
            ..MachineConfig::default()
        };
        let mut m = Machine::with_config(full.program, cfg);
        m.run().unwrap();
        assert!(m.hazards().is_empty(), "{name}: hazards {:?}", m.hazards());
    }
}

#[test]
fn packing_produces_packed_pairs_on_real_code() {
    let (_, src) = PROGRAMS[3]; // arrays
    let lc = compile_mips(src, &CodegenOptions::standard()).unwrap();
    let out = reorganize(&lc, ReorgOptions::FULL).unwrap();
    assert!(out.stats.packed > 0, "expected packed pairs");
}

#[test]
fn byte_machine_actually_issues_byte_accesses() {
    let (_, src) = PROGRAMS[4]; // chars
    let cg = CodegenOptions {
        target: MachineTarget::Byte,
        ..CodegenOptions::standard()
    };
    let lc = compile_mips(src, &cg).unwrap();
    let out = reorganize(&lc, ReorgOptions::FULL).unwrap();
    let cfg = MachineConfig {
        byte_addressed: true,
        ..MachineConfig::default()
    };
    let mut m = Machine::with_config(out.program, cfg);
    m.set_refclass_map(out.refclass);
    m.run().unwrap();
    let p = m.profile();
    assert!(p.char_byte.loads > 0, "byte char loads expected: {p:?}");
    assert!(p.char_byte.stores > 0, "byte char stores expected");
}

#[test]
fn word_machine_packed_arrays_use_byte_pointers() {
    let (_, src) = PROGRAMS[4]; // chars (packed + unpacked arrays)
    let cg = CodegenOptions::standard();
    let lc = compile_mips(src, &cg).unwrap();
    let out = reorganize(&lc, ReorgOptions::FULL).unwrap();
    let mut m = Machine::new(out.program);
    m.set_refclass_map(out.refclass);
    m.run().unwrap();
    let p = m.profile();
    assert!(
        p.char_byte.total() > 0,
        "packed chars must profile as byte refs: {p:?}"
    );
    assert!(
        p.char_word.total() > 0,
        "unpacked chars must profile as word refs: {p:?}"
    );
}
