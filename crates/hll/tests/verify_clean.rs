//! Compiled code, after reorganization, passes the static verifier for
//! every codegen style the compiler offers — the backend may emit
//! whatever unscheduled pieces it likes, but the reorganizer + verifier
//! pair must agree the final program respects every pipeline constraint.

use mips_hll::{compile_mips, BoolValueStrategy, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use mips_verify::verify;
use mips_workloads::corpus;

fn codegen_styles() -> Vec<(&'static str, CodegenOptions)> {
    vec![
        ("standard", CodegenOptions::standard()),
        ("pcc", CodegenOptions::pcc()),
        (
            "branching-bools",
            CodegenOptions {
                bool_value: BoolValueStrategy::Branching,
                ..CodegenOptions::standard()
            },
        ),
        (
            "no-promotion",
            CodegenOptions {
                promote_locals: 0,
                ..CodegenOptions::standard()
            },
        ),
    ]
}

#[test]
fn compiled_workloads_are_verifier_clean_at_every_level() {
    for w in corpus() {
        for (style, cg) in codegen_styles() {
            let lc = compile_mips(w.source, &cg).expect("compiles");
            for (level, opts) in ReorgOptions::LEVELS {
                let out = reorganize(&lc, opts).expect("reorganizes");
                let report = verify(&out.program);
                assert!(
                    !report.has_errors(),
                    "{} ({style}) at level '{level}' fails verification:\n{report}",
                    w.name
                );
            }
        }
    }
}
