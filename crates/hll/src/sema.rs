//! Semantic analysis: name resolution, constant evaluation, type
//! checking, and lowering to [`crate::hir`].

use crate::ast;
use crate::error::CompileError;
use crate::hir::*;
use std::collections::HashMap;
use std::rc::Rc;

type CResult<T> = Result<T, CompileError>;

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConstVal {
    Int(i32),
    Char(u8),
    Bool(bool),
}

impl ConstVal {
    fn ty(self) -> Ty {
        match self {
            ConstVal::Int(_) => Ty::Int,
            ConstVal::Char(_) => Ty::Char,
            ConstVal::Bool(_) => Ty::Bool,
        }
    }

    fn to_expr(self) -> HExpr {
        match self {
            ConstVal::Int(v) => HExpr::Int(v),
            ConstVal::Char(c) => HExpr::Char(c),
            ConstVal::Bool(b) => HExpr::Bool(b),
        }
    }
}

#[derive(Debug, Clone)]
struct RoutineSig {
    name: String,
    params: Vec<HParam>,
    ret: Option<Ty>,
}

struct Checker {
    consts: HashMap<String, ConstVal>,
    types: HashMap<String, Ty>,
    globals: Vec<HVar>,
    global_idx: HashMap<String, usize>,
    sigs: Vec<RoutineSig>,
    sig_idx: HashMap<String, usize>,
}

/// Checks a parsed program and lowers it to HIR.
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn check(ast: &ast::Program) -> CResult<HProgram> {
    let mut ck = Checker {
        consts: HashMap::new(),
        types: HashMap::new(),
        globals: Vec::new(),
        global_idx: HashMap::new(),
        sigs: Vec::new(),
        sig_idx: HashMap::new(),
    };

    // Pass 1: constants, types, globals, routine signatures.
    for d in &ast.decls {
        match d {
            ast::Decl::Const { name, value, line } => {
                let v = ck.eval_const(value)?;
                ck.declare_unique(name, *line)?;
                ck.consts.insert(name.clone(), v);
            }
            ast::Decl::Type { name, ty, line } => {
                let t = ck.resolve_type(ty)?;
                ck.declare_unique(name, *line)?;
                ck.types.insert(name.clone(), t);
            }
            ast::Decl::Var { names, ty, line } => {
                let t = ck.resolve_type(ty)?;
                for n in names {
                    ck.declare_unique(n, *line)?;
                    ck.global_idx.insert(n.clone(), ck.globals.len());
                    ck.globals.push(HVar {
                        name: n.clone(),
                        ty: t.clone(),
                    });
                }
            }
            ast::Decl::Routine(r) => {
                ck.declare_unique(&r.name, r.line)?;
                let mut params = Vec::new();
                for p in &r.params {
                    let ty = ck.resolve_type(&p.ty)?;
                    if !p.by_ref && !ty.is_scalar() {
                        return Err(CompileError::new(
                            p.line,
                            format!("array parameter `{}` must be a var parameter", p.name),
                        ));
                    }
                    params.push(HParam {
                        name: p.name.clone(),
                        ty,
                        by_ref: p.by_ref,
                    });
                }
                let ret = match &r.ret {
                    Some(t) => {
                        let ty = ck.resolve_type(t)?;
                        if !ty.is_scalar() {
                            return Err(CompileError::new(
                                r.line,
                                "functions must return a scalar",
                            ));
                        }
                        Some(ty)
                    }
                    None => None,
                };
                ck.sig_idx.insert(r.name.clone(), ck.sigs.len());
                ck.sigs.push(RoutineSig {
                    name: r.name.clone(),
                    params,
                    ret,
                });
            }
        }
    }

    // Pass 2: routine bodies.
    let mut routines = Vec::new();
    for d in &ast.decls {
        if let ast::Decl::Routine(r) = d {
            let idx = ck.sig_idx[&r.name];
            routines.push(ck.check_routine(r, idx)?);
        }
    }

    // The synthesized main.
    let main_index = routines.len();
    {
        let mut scope = Scope::new(&ck, None);
        let body = scope.stmts(&ast.main)?;
        routines.push(HRoutine {
            name: "main".to_string(),
            params: Vec::new(),
            locals: scope.locals,
            ret: None,
            body,
        });
    }

    Ok(HProgram {
        name: ast.name.clone(),
        globals: ck.globals,
        routines,
        main: main_index,
    })
}

impl Checker {
    fn declare_unique(&self, name: &str, line: usize) -> CResult<()> {
        if self.consts.contains_key(name)
            || self.types.contains_key(name)
            || self.global_idx.contains_key(name)
            || self.sig_idx.contains_key(name)
            || name == "main"
            || name == "ord"
            || name == "chr"
            || name == "write"
            || name == "writeln"
        {
            return Err(CompileError::new(
                line,
                format!("`{name}` already declared"),
            ));
        }
        Ok(())
    }

    fn resolve_type(&self, t: &ast::TypeExpr) -> CResult<Ty> {
        match t {
            ast::TypeExpr::Name(n, line) => match n.as_str() {
                "integer" => Ok(Ty::Int),
                "char" => Ok(Ty::Char),
                "boolean" => Ok(Ty::Bool),
                other => self
                    .types
                    .get(other)
                    .cloned()
                    .ok_or_else(|| CompileError::new(*line, format!("unknown type `{other}`"))),
            },
            ast::TypeExpr::Array {
                packed,
                lo,
                hi,
                elem,
                line,
            } => {
                let lo = self.const_int(lo)?;
                let hi = self.const_int(hi)?;
                if hi < lo {
                    return Err(CompileError::new(*line, "array upper bound below lower"));
                }
                let elem = self.resolve_type(elem)?;
                Ok(Ty::Array(Rc::new(ArrayTy {
                    elem,
                    lo,
                    hi,
                    packed: *packed,
                })))
            }
        }
    }

    fn const_int(&self, e: &ast::Expr) -> CResult<i32> {
        match self.eval_const(e)? {
            ConstVal::Int(v) => Ok(v),
            other => Err(CompileError::new(
                e.line(),
                format!("expected integer constant, found {:?}", other.ty()),
            )),
        }
    }

    fn eval_const(&self, e: &ast::Expr) -> CResult<ConstVal> {
        let line = e.line();
        match e {
            ast::Expr::Int(v, _) => i32::try_from(*v)
                .map(ConstVal::Int)
                .map_err(|_| CompileError::new(line, "integer constant out of range")),
            ast::Expr::Char(c, _) => Ok(ConstVal::Char(*c)),
            ast::Expr::Bool(b, _) => Ok(ConstVal::Bool(*b)),
            ast::Expr::Name(n, _) => self
                .consts
                .get(n)
                .copied()
                .ok_or_else(|| CompileError::new(line, format!("`{n}` is not a constant"))),
            ast::Expr::Neg(inner, _) => match self.eval_const(inner)? {
                ConstVal::Int(v) => Ok(ConstVal::Int(-v)),
                _ => Err(CompileError::new(
                    line,
                    "cannot negate non-integer constant",
                )),
            },
            ast::Expr::Bin { op, a, b, .. } => {
                let (ConstVal::Int(x), ConstVal::Int(y)) =
                    (self.eval_const(a)?, self.eval_const(b)?)
                else {
                    return Err(CompileError::new(line, "non-integer constant arithmetic"));
                };
                let v = match op {
                    ast::BinOp::Add => x.wrapping_add(y),
                    ast::BinOp::Sub => x.wrapping_sub(y),
                    ast::BinOp::Mul => x.wrapping_mul(y),
                    ast::BinOp::Div if y != 0 => x.wrapping_div(y),
                    ast::BinOp::Mod if y != 0 => x.wrapping_rem(y),
                    ast::BinOp::Div | ast::BinOp::Mod => {
                        return Err(CompileError::new(line, "constant division by zero"))
                    }
                    _ => {
                        return Err(CompileError::new(
                            line,
                            "operator not allowed in constant expression",
                        ))
                    }
                };
                Ok(ConstVal::Int(v))
            }
            _ => Err(CompileError::new(line, "expression is not constant")),
        }
    }

    fn check_routine(&self, r: &ast::Routine, idx: usize) -> CResult<HRoutine> {
        let sig = &self.sigs[idx];
        let mut scope = Scope::new(self, Some(idx));
        // Local declarations.
        for d in &r.locals {
            match d {
                ast::Decl::Const { name, value, line } => {
                    let v = self.eval_const(value)?;
                    scope.declare_local_unique(name, *line)?;
                    scope.local_consts.insert(name.clone(), v);
                }
                ast::Decl::Var { names, ty, line } => {
                    let t = self.resolve_type(ty)?;
                    for n in names {
                        scope.declare_local_unique(n, *line)?;
                        scope.local_idx.insert(n.clone(), scope.locals.len());
                        scope.locals.push(HVar {
                            name: n.clone(),
                            ty: t.clone(),
                        });
                    }
                }
                ast::Decl::Type { line, .. } => {
                    return Err(CompileError::new(
                        *line,
                        "local type declarations unsupported",
                    ))
                }
                ast::Decl::Routine(nested) => {
                    return Err(CompileError::new(
                        nested.line,
                        "nested routines unsupported",
                    ))
                }
            }
        }
        let body = scope.stmts(&r.body)?;
        Ok(HRoutine {
            name: sig.name.clone(),
            params: sig.params.clone(),
            locals: scope.locals,
            ret: sig.ret.clone(),
            body,
        })
    }
}

struct Scope<'a> {
    ck: &'a Checker,
    routine: Option<usize>,
    locals: Vec<HVar>,
    local_idx: HashMap<String, usize>,
    local_consts: HashMap<String, ConstVal>,
}

impl<'a> Scope<'a> {
    fn new(ck: &'a Checker, routine: Option<usize>) -> Scope<'a> {
        Scope {
            ck,
            routine,
            locals: Vec::new(),
            local_idx: HashMap::new(),
            local_consts: HashMap::new(),
        }
    }

    fn sig(&self) -> Option<&RoutineSig> {
        self.routine.map(|i| &self.ck.sigs[i])
    }

    fn declare_local_unique(&self, name: &str, line: usize) -> CResult<()> {
        if self.local_idx.contains_key(name)
            || self.local_consts.contains_key(name)
            || self
                .sig()
                .is_some_and(|s| s.params.iter().any(|p| p.name == name) || s.name == name)
        {
            return Err(CompileError::new(
                line,
                format!("`{name}` already declared in this routine"),
            ));
        }
        Ok(())
    }

    fn stmts(&mut self, ss: &[ast::Stmt]) -> CResult<Vec<HStmt>> {
        ss.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &ast::Stmt) -> CResult<HStmt> {
        match s {
            ast::Stmt::Assign { lv, e, line } => {
                // Function result assignment?
                if lv.indices.is_empty() {
                    if let Some(sig) = self.sig() {
                        if sig.name == lv.name {
                            let ret = sig.ret.clone().ok_or_else(|| {
                                CompileError::new(*line, "procedures have no result")
                            })?;
                            let he = self.expr(e)?;
                            self.require(&he.ty(), &ret, *line)?;
                            return Ok(HStmt::SetResult(he));
                        }
                    }
                }
                let hlv = self.lvalue(lv)?;
                if !hlv.ty.is_scalar() {
                    return Err(CompileError::new(*line, "array assignment unsupported"));
                }
                let he = self.expr(e)?;
                self.require(&he.ty(), &hlv.ty, *line)?;
                Ok(HStmt::Assign(hlv, he))
            }
            ast::Stmt::Call { name, args, line } => {
                let (routine, hargs) = self.call(name, args, *line)?;
                if self.ck.sigs[routine].ret.is_some() {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` is a function; its result must be used"),
                    ));
                }
                Ok(HStmt::Call {
                    routine,
                    args: hargs,
                })
            }
            ast::Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                let c = self.expr(cond)?;
                self.require(&c.ty(), &Ty::Bool, *line)?;
                let then = vec![self.stmt(then)?];
                let els = match els {
                    Some(e) => vec![self.stmt(e)?],
                    None => Vec::new(),
                };
                Ok(HStmt::If { cond: c, then, els })
            }
            ast::Stmt::While { cond, body, line } => {
                let c = self.expr(cond)?;
                self.require(&c.ty(), &Ty::Bool, *line)?;
                Ok(HStmt::While {
                    cond: c,
                    body: vec![self.stmt(body)?],
                })
            }
            ast::Stmt::Repeat { body, cond, line } => {
                let body = self.stmts(body)?;
                let c = self.expr(cond)?;
                self.require(&c.ty(), &Ty::Bool, *line)?;
                Ok(HStmt::Repeat { body, cond: c })
            }
            ast::Stmt::For {
                var,
                from,
                to,
                down,
                body,
                line,
            } => {
                let lv = self.lvalue(&ast::Designator {
                    name: var.clone(),
                    indices: Vec::new(),
                    line: *line,
                })?;
                self.require(&lv.ty, &Ty::Int, *line)?;
                let from = self.expr(from)?;
                self.require(&from.ty(), &Ty::Int, *line)?;
                let to = self.expr(to)?;
                self.require(&to.ty(), &Ty::Int, *line)?;
                Ok(HStmt::For {
                    var: lv,
                    from,
                    to,
                    down: *down,
                    body: vec![self.stmt(body)?],
                })
            }
            ast::Stmt::Case {
                selector,
                arms,
                els,
                line,
            } => {
                let sel = self.expr(selector)?;
                let sel_ty = sel.ty();
                if !matches!(sel_ty, Ty::Int | Ty::Char) {
                    return Err(CompileError::new(
                        *line,
                        "case selector must be integer or char",
                    ));
                }
                let mut seen = std::collections::HashSet::new();
                let mut harms = Vec::new();
                for (labels, body) in arms {
                    let mut vals = Vec::new();
                    for l in labels {
                        let v = match self.ck.eval_const(l)? {
                            ConstVal::Int(v) if sel_ty == Ty::Int => v,
                            ConstVal::Char(c) if sel_ty == Ty::Char => c as i32,
                            other => {
                                return Err(CompileError::new(
                                    l.line(),
                                    format!(
                                        "case label type {:?} does not match the selector",
                                        other.ty()
                                    ),
                                ))
                            }
                        };
                        if !seen.insert(v) {
                            return Err(CompileError::new(
                                l.line(),
                                format!("duplicate case label {v}"),
                            ));
                        }
                        vals.push(v);
                    }
                    harms.push((vals, vec![self.stmt(body)?]));
                }
                let default = match els {
                    Some(e) => vec![self.stmt(e)?],
                    None => Vec::new(),
                };
                Ok(HStmt::Case {
                    selector: sel,
                    arms: harms,
                    default,
                })
            }
            ast::Stmt::Block(ss) => Ok(HStmt::Block(self.stmts(ss)?)),
            ast::Stmt::Write {
                args,
                newline,
                line,
            } => {
                let mut out = Vec::new();
                for a in args {
                    match a {
                        ast::WriteArg::Str(s) => out.push(HWriteArg::Str(s.clone())),
                        ast::WriteArg::Expr(e) => {
                            let he = self.expr(e)?;
                            match he.ty() {
                                Ty::Int | Ty::Bool => out.push(HWriteArg::Int(he)),
                                Ty::Char => out.push(HWriteArg::Char(he)),
                                Ty::Array(_) => {
                                    return Err(CompileError::new(*line, "cannot write an array"))
                                }
                            }
                        }
                    }
                }
                Ok(HStmt::Write {
                    args: out,
                    newline: *newline,
                })
            }
        }
    }

    fn require(&self, got: &Ty, want: &Ty, line: usize) -> CResult<()> {
        if got == want {
            Ok(())
        } else {
            Err(CompileError::new(
                line,
                format!("type mismatch: expected {want}, found {got}"),
            ))
        }
    }

    fn base_var(&self, name: &str, line: usize) -> CResult<(VarRef, Ty, bool)> {
        if let Some(sig) = self.sig() {
            if let Some(i) = sig.params.iter().position(|p| p.name == name) {
                let p = &sig.params[i];
                return Ok((VarRef::Param(i), p.ty.clone(), p.by_ref));
            }
        }
        if let Some(&i) = self.local_idx.get(name) {
            return Ok((VarRef::Local(i), self.locals[i].ty.clone(), false));
        }
        if let Some(&i) = self.ck.global_idx.get(name) {
            return Ok((VarRef::Global(i), self.ck.globals[i].ty.clone(), false));
        }
        Err(CompileError::new(
            line,
            format!("unknown variable `{name}`"),
        ))
    }

    fn lvalue(&mut self, d: &ast::Designator) -> CResult<HLValue> {
        let (base, mut ty, by_ref) = self.base_var(&d.name, d.line)?;
        let mut indices = Vec::new();
        for ix in &d.indices {
            let Ty::Array(arr) = ty.clone() else {
                return Err(CompileError::new(
                    d.line,
                    format!("`{}` indexed too deeply", d.name),
                ));
            };
            let e = self.expr(ix)?;
            self.require(&e.ty(), &Ty::Int, d.line)?;
            ty = arr.elem.clone();
            indices.push(HIndex {
                expr: e,
                arr: arr.clone(),
            });
        }
        Ok(HLValue {
            base,
            by_ref,
            indices,
            ty,
        })
    }

    fn call(&mut self, name: &str, args: &[ast::Expr], line: usize) -> CResult<(usize, Vec<HArg>)> {
        let Some(&idx) = self.ck.sig_idx.get(name) else {
            return Err(CompileError::new(line, format!("unknown routine `{name}`")));
        };
        let sig = self.ck.sigs[idx].clone();
        if sig.params.len() != args.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "`{name}` takes {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut hargs = Vec::new();
        for (p, a) in sig.params.iter().zip(args) {
            if p.by_ref {
                let ast::Expr::Name(n, l) = a else {
                    match a {
                        ast::Expr::Index(d) => {
                            let lv = self.lvalue(d)?;
                            self.check_ref_arg(&lv, &p.ty, a.line())?;
                            hargs.push(HArg::Ref(lv));
                            continue;
                        }
                        _ => {
                            return Err(CompileError::new(
                                a.line(),
                                "var parameter needs a variable argument",
                            ))
                        }
                    }
                };
                let lv = self.lvalue(&ast::Designator {
                    name: n.clone(),
                    indices: Vec::new(),
                    line: *l,
                })?;
                self.check_ref_arg(&lv, &p.ty, *l)?;
                hargs.push(HArg::Ref(lv));
            } else {
                let he = self.expr(a)?;
                self.require(&he.ty(), &p.ty, a.line())?;
                hargs.push(HArg::Value(he));
            }
        }
        Ok((idx, hargs))
    }

    fn check_ref_arg(&self, lv: &HLValue, want: &Ty, line: usize) -> CResult<()> {
        self.require(&lv.ty, want, line)?;
        // Pascal forbids var parameters bound to packed-array elements.
        if let Some(last) = lv.indices.last() {
            if last.arr.byte_elems_when_packed() {
                return Err(CompileError::new(
                    line,
                    "cannot pass a packed array element as a var parameter",
                ));
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &ast::Expr) -> CResult<HExpr> {
        let line = e.line();
        match e {
            ast::Expr::Int(v, _) => i32::try_from(*v)
                .map(HExpr::Int)
                .map_err(|_| CompileError::new(line, "integer literal out of range")),
            ast::Expr::Char(c, _) => Ok(HExpr::Char(*c)),
            ast::Expr::Bool(b, _) => Ok(HExpr::Bool(*b)),
            ast::Expr::Name(n, _) => {
                if let Some(v) = self.local_consts.get(n).or_else(|| self.ck.consts.get(n)) {
                    return Ok(v.to_expr());
                }
                // Paramless function call by bare name.
                if let Some(&idx) = self.ck.sig_idx.get(n) {
                    let sig = &self.ck.sigs[idx];
                    if let Some(ret) = &sig.ret {
                        if sig.params.is_empty() {
                            return Ok(HExpr::Call {
                                routine: idx,
                                args: Vec::new(),
                                ret: ret.clone(),
                            });
                        }
                    }
                    return Err(CompileError::new(
                        line,
                        format!("routine `{n}` used without arguments"),
                    ));
                }
                let lv = self.lvalue(&ast::Designator {
                    name: n.clone(),
                    indices: Vec::new(),
                    line,
                })?;
                Ok(HExpr::Load(Box::new(lv)))
            }
            ast::Expr::Index(d) => {
                let lv = self.lvalue(d)?;
                if !lv.ty.is_scalar() {
                    return Err(CompileError::new(
                        line,
                        "partial array indexing in expression",
                    ));
                }
                Ok(HExpr::Load(Box::new(lv)))
            }
            ast::Expr::Call { name, args, line } => match name.as_str() {
                "ord" => {
                    self.one_arg(args, *line)?;
                    let a = self.expr(&args[0])?;
                    if !a.ty().is_scalar() {
                        return Err(CompileError::new(*line, "ord takes a scalar"));
                    }
                    Ok(HExpr::Ord(Box::new(a)))
                }
                "chr" => {
                    self.one_arg(args, *line)?;
                    let a = self.expr(&args[0])?;
                    self.require(&a.ty(), &Ty::Int, *line)?;
                    Ok(HExpr::Chr(Box::new(a)))
                }
                _ => {
                    let (routine, hargs) = self.call(name, args, *line)?;
                    let ret = self.ck.sigs[routine].ret.clone().ok_or_else(|| {
                        CompileError::new(*line, format!("procedure `{name}` has no result"))
                    })?;
                    Ok(HExpr::Call {
                        routine,
                        args: hargs,
                        ret,
                    })
                }
            },
            ast::Expr::Neg(inner, _) => {
                let a = self.expr(inner)?;
                self.require(&a.ty(), &Ty::Int, line)?;
                Ok(HExpr::Neg(Box::new(a)))
            }
            ast::Expr::Not(inner, _) => {
                let a = self.expr(inner)?;
                self.require(&a.ty(), &Ty::Bool, line)?;
                Ok(HExpr::Not(Box::new(a)))
            }
            ast::Expr::Bin { op, a, b, .. } => {
                let ha = self.expr(a)?;
                let hb = self.expr(b)?;
                match op {
                    ast::BinOp::Add
                    | ast::BinOp::Sub
                    | ast::BinOp::Mul
                    | ast::BinOp::Div
                    | ast::BinOp::Mod => {
                        self.require(&ha.ty(), &Ty::Int, line)?;
                        self.require(&hb.ty(), &Ty::Int, line)?;
                        let hop = match op {
                            ast::BinOp::Add => HBinOp::Add,
                            ast::BinOp::Sub => HBinOp::Sub,
                            ast::BinOp::Mul => HBinOp::Mul,
                            ast::BinOp::Div => HBinOp::Div,
                            _ => HBinOp::Mod,
                        };
                        Ok(HExpr::Bin {
                            op: hop,
                            a: Box::new(ha),
                            b: Box::new(hb),
                        })
                    }
                    ast::BinOp::And | ast::BinOp::Or => {
                        self.require(&ha.ty(), &Ty::Bool, line)?;
                        self.require(&hb.ty(), &Ty::Bool, line)?;
                        let hop = if *op == ast::BinOp::And {
                            HBoolOp::And
                        } else {
                            HBoolOp::Or
                        };
                        Ok(HExpr::BoolBin {
                            op: hop,
                            a: Box::new(ha),
                            b: Box::new(hb),
                        })
                    }
                    _ => {
                        let ta = ha.ty();
                        if !ta.is_scalar() {
                            return Err(CompileError::new(line, "cannot compare arrays"));
                        }
                        self.require(&hb.ty(), &ta, line)?;
                        let hop = match op {
                            ast::BinOp::Eq => HRelOp::Eq,
                            ast::BinOp::Ne => HRelOp::Ne,
                            ast::BinOp::Lt => HRelOp::Lt,
                            ast::BinOp::Le => HRelOp::Le,
                            ast::BinOp::Gt => HRelOp::Gt,
                            _ => HRelOp::Ge,
                        };
                        Ok(HExpr::Rel {
                            op: hop,
                            a: Box::new(ha),
                            b: Box::new(hb),
                        })
                    }
                }
            }
        }
    }

    fn one_arg(&self, args: &[ast::Expr], line: usize) -> CResult<()> {
        if args.len() == 1 {
            Ok(())
        } else {
            Err(CompileError::new(line, "builtin takes one argument"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn hir_of(src: &str) -> CResult<HProgram> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn resolves_and_types_a_program() {
        let p = hir_of(
            "
            program t;
            const n = 3;
            var a: array [1..10] of integer; c: char; b: boolean;
            function inc2(x: integer): integer;
            begin inc2 := x + 2 end;
            begin
              a[n] := inc2(5);
              c := 'z';
              b := (a[1] = 0) or (c = 'z');
              if b then writeln(a[n])
            end.
            ",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.routines.len(), 2);
        let main = p.main_routine();
        assert!(matches!(main.body[0], HStmt::Assign(..)));
        // boolean or got typed
        let HStmt::Assign(_, ref e) = main.body[2] else {
            panic!()
        };
        assert!(matches!(
            e,
            HExpr::BoolBin {
                op: HBoolOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn const_folding_including_negatives() {
        let p = hir_of(
            "program t; const a = 5; b = -a; c = a * 2 + 1; var x: integer;
             begin x := b + c end.",
        )
        .unwrap();
        let HStmt::Assign(_, HExpr::Bin { a, b, .. }) = &p.main_routine().body[0] else {
            panic!()
        };
        assert_eq!(**a, HExpr::Int(-5));
        assert_eq!(**b, HExpr::Int(11));
    }

    #[test]
    fn function_result_assignment() {
        let p = hir_of(
            "program t;
             function f: integer;
             begin f := 7 end;
             begin writeln(f) end.",
        )
        .unwrap();
        assert!(matches!(p.routines[0].body[0], HStmt::SetResult(_)));
        // bare-name call of a paramless function
        let HStmt::Write { args, .. } = &p.main_routine().body[0] else {
            panic!()
        };
        assert!(matches!(args[0], HWriteArg::Int(HExpr::Call { .. })));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(hir_of("program t; var x: integer; begin x := 'a' end.").is_err());
        assert!(hir_of("program t; var b: boolean; begin b := 1 end.").is_err());
        assert!(hir_of("program t; var x: integer; begin y := 1 end.").is_err());
        assert!(hir_of("program t; begin writeln(f) end.").is_err());
        assert!(
            hir_of("program t; var x: integer; begin if x then x := 1 end.").is_err(),
            "if needs a boolean"
        );
    }

    #[test]
    fn var_params_need_lvalues() {
        let src = "
            program t;
            var g: integer;
            procedure p(var x: integer); begin x := 1 end;
            begin p(g); p(3) end.
        ";
        let e = hir_of(src).unwrap_err();
        assert!(e.message.contains("var parameter"), "{e}");
    }

    #[test]
    fn array_value_params_rejected() {
        let src = "
            program t;
            type v = array [0..3] of integer;
            var g: v;
            procedure p(x: v); begin end;
            begin p(g) end.
        ";
        let e = hir_of(src).unwrap_err();
        assert!(e.message.contains("var parameter"), "{e}");
    }

    #[test]
    fn packed_element_var_param_rejected() {
        let src = "
            program t;
            var s: packed array [0..3] of char;
            procedure p(var c: char); begin end;
            begin p(s[0]) end.
        ";
        let e = hir_of(src).unwrap_err();
        assert!(e.message.contains("packed"), "{e}");
    }

    #[test]
    fn multidim_arrays_resolve() {
        let p = hir_of(
            "program t; var m: array [0..2] of array [0..4] of integer;
             begin m[1,2] := 9 end.",
        )
        .unwrap();
        let HStmt::Assign(lv, _) = &p.main_routine().body[0] else {
            panic!()
        };
        assert_eq!(lv.indices.len(), 2);
        assert_eq!(lv.ty, Ty::Int);
    }

    #[test]
    fn ord_and_chr() {
        let p = hir_of(
            "program t; var x: integer; c: char;
             begin x := ord('a'); c := chr(x + 1) end.",
        )
        .unwrap();
        assert!(matches!(
            p.main_routine().body[0],
            HStmt::Assign(_, HExpr::Ord(_))
        ));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(hir_of("program t; var x: integer; var x: char; begin end.").is_err());
        assert!(
            hir_of("program t; procedure p; begin end; procedure p; begin end; begin end.")
                .is_err()
        );
    }

    #[test]
    fn for_variable_must_be_integer() {
        assert!(
            hir_of("program t; var c: char; begin for c := 1 to 3 do writeln(1) end.").is_err()
        );
    }
}

#[cfg(test)]
mod case_sema_tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn hir_of(src: &str) -> CResult<HProgram> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn duplicate_case_labels_rejected() {
        let e = hir_of(
            "program t; var x: integer;
             begin case x of 1: x := 1; 2, 1: x := 2 end end.",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn case_label_type_must_match_selector() {
        let e = hir_of(
            "program t; var x: integer;
             begin case x of 'a': x := 1 end end.",
        )
        .unwrap_err();
        assert!(e.message.contains("does not match"), "{e}");
        let e = hir_of(
            "program t; var c: char; x: integer;
             begin case c of 1: x := 1 end end.",
        )
        .unwrap_err();
        assert!(e.message.contains("does not match"), "{e}");
    }

    #[test]
    fn boolean_selector_rejected() {
        let e = hir_of(
            "program t; var b: boolean; x: integer;
             begin case b of 1: x := 1 end end.",
        )
        .unwrap_err();
        assert!(e.message.contains("selector"), "{e}");
    }

    #[test]
    fn const_names_work_as_case_labels() {
        let p = hir_of(
            "program t; const a = 3; var x: integer;
             begin case x of a: x := 1; a + 1: x := 2 end end.",
        )
        .unwrap();
        let HStmt::Case { arms, .. } = &p.main_routine().body[0] else {
            panic!()
        };
        assert_eq!(arms[0].0, vec![3]);
        assert_eq!(arms[1].0, vec![4]);
    }
}
