//! The condition-code machine backend: HIR → [`mips_ccm::CcProgram`].
//!
//! This is the "conventional machine" compiler of §2.3: conditional
//! control flow goes through the flags, and boolean values are built with
//! one of the paper's three strategies (Figures 1 and 2):
//!
//! * [`CcBoolStrategy::FullEval`] — both operands of every connective are
//!   evaluated; flag-setting compares steer stores of 0/1 (Figure 1,
//!   left);
//! * [`CcBoolStrategy::EarlyOut`] — short-circuit branching (Figure 1,
//!   right);
//! * [`CcBoolStrategy::CondSet`] — the M68000 `scc` discipline: compares
//!   followed by conditional sets and logical combination, no branches
//!   (Figure 2). Requires a policy with conditional set.
//!
//! Data layout is uniformly word-allocated (the CC baseline exists for the
//! condition-code comparisons, not the byte-addressing study).

use crate::error::CompileError;
use crate::hir::*;
use mips_ccm::{
    CcAddr, CcAluOp, CcCond, CcInstr, CcLabel, CcOperand, CcProgram, CcProgramBuilder, CcReg,
};
use std::collections::HashMap;

/// Re-exported target type alias used by the analysis crate.
pub type CcTarget = mips_ccm::CcProgram;

const TEMPS: [CcReg; 6] = [0, 1, 2, 3, 4, 5];
const FP: CcReg = 6;
const SP: CcReg = 7;
const GLOBAL_BASE: u32 = 0x1000;

/// Boolean-evaluation strategy (Tables 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcBoolStrategy {
    /// Full evaluation with branches (Figure 1, left).
    FullEval,
    /// Early-out branching (Figure 1, right).
    #[default]
    EarlyOut,
    /// Conditional set, branch-free values (Figure 2).
    CondSet,
}

/// Backend options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcGenOptions {
    /// The boolean strategy.
    pub strategy: CcBoolStrategy,
}

/// Compiles a source program for the condition-code machine.
///
/// # Errors
///
/// Front-end errors.
pub fn compile_cc(src: &str, opts: &CcGenOptions) -> Result<CcProgram, CompileError> {
    let prog = crate::front_end(src)?;
    Ok(gen_cc(&prog, opts))
}

/// Word-allocated size (packed ignored: the CC baseline is word
/// allocated).
fn size_words(ty: &Ty) -> u32 {
    match ty {
        Ty::Int | Ty::Char | Ty::Bool => 1,
        Ty::Array(a) => a.count() * size_words(&a.elem),
    }
}

/// Generates CC-machine code for a checked program.
pub fn gen_cc(prog: &HProgram, opts: &CcGenOptions) -> CcProgram {
    let mut g = CcGen {
        prog,
        opts: *opts,
        b: CcProgramBuilder::new(),
        routine_labels: Vec::new(),
        global_addr: Vec::new(),
        free: TEMPS.iter().rev().copied().collect(),
        local_slot: Vec::new(),
        used_slots: 0,
        result_slot: None,
        routine: 0,
        pending: Vec::new(),
    };
    g.program();
    g.b.finish().expect("generated labels are consistent")
}

struct CcGen<'p> {
    prog: &'p HProgram,
    opts: CcGenOptions,
    b: CcProgramBuilder,
    routine_labels: Vec<CcLabel>,
    global_addr: Vec<u32>,
    free: Vec<CcReg>,
    local_slot: Vec<i32>,
    used_slots: i32,
    result_slot: Option<i32>,
    routine: usize,
    /// Saved live-register sets around calls.
    pending: Vec<Vec<CcReg>>,
}

impl<'p> CcGen<'p> {
    fn acquire(&mut self) -> CcReg {
        self.free.pop().expect("cc temp pool exhausted")
    }

    fn release(&mut self, r: CcReg) {
        if TEMPS.contains(&r) && !self.free.contains(&r) {
            self.free.push(r);
        }
    }

    fn live(&self) -> Vec<CcReg> {
        TEMPS
            .iter()
            .copied()
            .filter(|r| !self.free.contains(r))
            .collect()
    }

    fn emit(&mut self, i: CcInstr) {
        self.b.push(i);
    }

    fn program(&mut self) {
        // Global layout.
        let mut addr = GLOBAL_BASE;
        for gv in &self.prog.globals {
            self.global_addr.push(addr);
            addr += size_words(&gv.ty);
        }
        for _ in 0..self.prog.routines.len() {
            let l = self.b.fresh_label();
            self.routine_labels.push(l);
        }
        self.b.define_symbol("__start");
        self.emit(CcInstr::Call {
            target: mips_ccm::CcTarget::Label(self.routine_labels[self.prog.main]),
        });
        self.emit(CcInstr::Halt);
        for i in 0..self.prog.routines.len() {
            self.gen_routine(i);
        }
    }

    fn gen_routine(&mut self, idx: usize) {
        self.routine = idx;
        let r = &self.prog.routines[idx];
        self.free = TEMPS.iter().rev().copied().collect();
        self.local_slot.clear();
        self.used_slots = 0;
        self.result_slot = None;

        let mut used = 0i32;
        for l in &r.locals {
            used += size_words(&l.ty) as i32;
            self.local_slot.push(-used);
        }
        self.used_slots = used;
        if r.ret.is_some() {
            self.used_slots += 1;
            self.result_slot = Some(-self.used_slots);
        }

        self.b.define_symbol(r.name.clone());
        let entry = self.routine_labels[idx];
        self.b.define(entry).expect("unique routine labels");
        // Prologue: push fp; fp := sp; sp -= frame.
        self.emit(CcInstr::Push { src: FP });
        self.emit(CcInstr::MoveReg { src: SP, dst: FP });
        // The frame size must cover for-limit slots allocated during body
        // generation; reserve generously by scanning for `for` statements.
        let fors = count_fors(&r.body);
        let frame = self.used_slots + fors as i32;
        if frame > 0 {
            self.emit(CcInstr::Alu {
                op: CcAluOp::Sub,
                src: CcOperand::Imm(frame),
                dst: SP,
            });
        }
        let body = r.body.clone();
        self.stmts(&body);
        // Epilogue.
        if let Some(slot) = self.result_slot {
            self.emit(CcInstr::Load {
                addr: CcAddr::fp(slot),
                dst: 0,
            });
        }
        self.emit(CcInstr::MoveReg { src: FP, dst: SP });
        self.emit(CcInstr::Pop { dst: FP });
        self.emit(CcInstr::Ret);
    }

    fn alloc_slot(&mut self) -> i32 {
        self.used_slots += 1;
        -self.used_slots
    }

    // ---- addressing ----

    /// Resolves an lvalue to (address, temps-to-release).
    fn addr_of(&mut self, lv: &HLValue) -> (CcAddr, Vec<CcReg>) {
        let mut temps = Vec::new();
        let (mut addr, deref) = match lv.base {
            VarRef::Global(i) => (CcAddr::abs(self.global_addr[i]), false),
            VarRef::Local(i) => (CcAddr::fp(self.local_slot[i]), false),
            VarRef::Param(i) => {
                let a = CcAddr::fp(1 + i as i32);
                if lv.by_ref {
                    let t = self.acquire();
                    self.emit(CcInstr::Load { addr: a, dst: t });
                    temps.push(t);
                    (
                        CcAddr {
                            base: mips_ccm::CcBase::Reg(t),
                            disp: 0,
                            index: None,
                        },
                        true,
                    )
                } else {
                    (a, false)
                }
            }
        };
        let _ = deref;
        let mut dynreg: Option<CcReg> = None;
        for ix in &lv.indices {
            let stride = size_words(&ix.arr.elem) as i32;
            if let Some(k) = const_of(&ix.expr) {
                addr.disp += (k - ix.arr.lo) * stride;
                continue;
            }
            let v = self.eval(&ix.expr);
            if ix.arr.lo != 0 {
                self.emit(CcInstr::Alu {
                    op: CcAluOp::Sub,
                    src: CcOperand::Imm(ix.arr.lo),
                    dst: v,
                });
            }
            if stride != 1 {
                self.emit(CcInstr::Alu {
                    op: CcAluOp::Mul,
                    src: CcOperand::Imm(stride),
                    dst: v,
                });
            }
            match dynreg {
                None => dynreg = Some(v),
                Some(d) => {
                    self.emit(CcInstr::Alu {
                        op: CcAluOp::Add,
                        src: CcOperand::Reg(v),
                        dst: d,
                    });
                    self.release(v);
                }
            }
        }
        if let Some(d) = dynreg {
            addr.index = Some(d);
            temps.push(d);
        }
        (addr, temps)
    }

    fn load_lv(&mut self, lv: &HLValue) -> CcReg {
        let (addr, temps) = self.addr_of(lv);
        let dst = self.acquire();
        self.emit(CcInstr::Load { addr, dst });
        for t in temps {
            self.release(t);
        }
        dst
    }

    fn store_lv(&mut self, lv: &HLValue, v: CcReg) {
        let (addr, temps) = self.addr_of(lv);
        self.emit(CcInstr::Store { src: v, addr });
        for t in temps {
            self.release(t);
        }
    }

    // ---- expressions ----

    fn eval(&mut self, e: &HExpr) -> CcReg {
        match e {
            HExpr::Int(_) | HExpr::Char(_) | HExpr::Bool(_) => {
                let dst = self.acquire();
                self.emit(CcInstr::MoveImm {
                    imm: const_of(e).unwrap(),
                    dst,
                });
                dst
            }
            HExpr::Load(lv) => self.load_lv(lv),
            HExpr::Neg(a) => {
                let v = self.eval(a);
                self.emit(CcInstr::Alu {
                    op: CcAluOp::Neg,
                    src: CcOperand::Imm(0),
                    dst: v,
                });
                v
            }
            HExpr::Not(a) => {
                let v = self.eval(a);
                self.emit(CcInstr::Alu {
                    op: CcAluOp::NotB,
                    src: CcOperand::Imm(0),
                    dst: v,
                });
                v
            }
            HExpr::Ord(a) => self.eval(a),
            HExpr::Chr(a) => {
                let v = self.eval(a);
                self.emit(CcInstr::Alu {
                    op: CcAluOp::And,
                    src: CcOperand::Imm(0xff),
                    dst: v,
                });
                v
            }
            HExpr::Bin { op, a, b } => {
                // Keep constants in the immediate field: swap commutative
                // operands so the constant lands on the right (saves a
                // temporary — important for deep index expressions).
                let (a, b) = if const_of(a).is_some()
                    && const_of(b).is_none()
                    && matches!(op, HBinOp::Add | HBinOp::Mul)
                {
                    (b, a)
                } else {
                    (a, b)
                };
                let va = self.eval(a);
                let src = match const_of(b) {
                    Some(k) => CcOperand::Imm(k),
                    None => {
                        let vb = self.eval(b);
                        CcOperand::Reg(vb)
                    }
                };
                let cop = match op {
                    HBinOp::Add => CcAluOp::Add,
                    HBinOp::Sub => CcAluOp::Sub,
                    HBinOp::Mul => CcAluOp::Mul,
                    HBinOp::Div => CcAluOp::Div,
                    HBinOp::Mod => CcAluOp::Rem,
                };
                self.emit(CcInstr::Alu {
                    op: cop,
                    src,
                    dst: va,
                });
                if let CcOperand::Reg(r) = src {
                    self.release(r);
                }
                va
            }
            HExpr::Rel { .. } | HExpr::BoolBin { .. } => self.bool_value(e),
            HExpr::Call { routine, args, .. } => {
                self.gen_call(*routine, args);
                let dst = self.acquire();
                self.emit(CcInstr::MoveReg { src: 0, dst });
                self.restore_after_call();
                dst
            }
        }
    }

    /// Boolean value under the selected strategy.
    fn bool_value(&mut self, e: &HExpr) -> CcReg {
        match self.opts.strategy {
            CcBoolStrategy::CondSet => self.cond_set_value(e),
            CcBoolStrategy::EarlyOut => {
                // Figure 1, right: assume true, early-out to done.
                let dst = self.acquire();
                let done = self.b.fresh_label();
                self.emit(CcInstr::MoveImm { imm: 1, dst });
                self.branch_cond(e, done, true);
                self.emit(CcInstr::MoveImm { imm: 0, dst });
                self.b.define(done).expect("fresh");
                dst
            }
            CcBoolStrategy::FullEval => {
                let dst = self.acquire();
                self.full_eval_value(e, dst);
                dst
            }
        }
    }

    /// Figure 2: compares + conditional sets, no branches.
    fn cond_set_value(&mut self, e: &HExpr) -> CcReg {
        match e {
            HExpr::Rel { op, a, b } => {
                let va = self.eval(a);
                let src = match const_of(b) {
                    Some(k) => CcOperand::Imm(k),
                    None => CcOperand::Reg(self.eval(b)),
                };
                self.emit(CcInstr::Compare { a: va, b: src });
                if let CcOperand::Reg(r) = src {
                    self.release(r);
                }
                self.emit(CcInstr::CondSet {
                    cond: rel_cc(*op),
                    dst: va,
                });
                va
            }
            HExpr::BoolBin { op, a, b } => {
                let va = self.cond_set_value(a);
                let vb = self.cond_set_value(b);
                let cop = match op {
                    HBoolOp::And => CcAluOp::And,
                    HBoolOp::Or => CcAluOp::Or,
                };
                self.emit(CcInstr::Alu {
                    op: cop,
                    src: CcOperand::Reg(vb),
                    dst: va,
                });
                self.release(vb);
                va
            }
            HExpr::Not(a) => {
                let v = self.cond_set_value(a);
                self.emit(CcInstr::Alu {
                    op: CcAluOp::NotB,
                    src: CcOperand::Imm(0),
                    dst: v,
                });
                v
            }
            other => self.eval(other),
        }
    }

    /// Figure 1, left: full evaluation — every operand evaluated,
    /// conditional stores of 1 into `dst`.
    fn full_eval_value(&mut self, e: &HExpr, dst: CcReg) {
        match e {
            HExpr::BoolBin {
                op: HBoolOp::Or, ..
            } => {
                self.emit(CcInstr::MoveImm { imm: 0, dst });
                let mut terms = Vec::new();
                flatten_or(e, &mut terms);
                for t in terms {
                    let skip = self.b.fresh_label();
                    self.compare_term(t, skip, false);
                    self.emit(CcInstr::MoveImm { imm: 1, dst });
                    self.b.define(skip).expect("fresh");
                }
            }
            HExpr::BoolBin {
                op: HBoolOp::And, ..
            } => {
                self.emit(CcInstr::MoveImm { imm: 1, dst });
                let mut terms = Vec::new();
                flatten_and(e, &mut terms);
                for t in terms {
                    let skip = self.b.fresh_label();
                    self.compare_term(t, skip, true);
                    self.emit(CcInstr::MoveImm { imm: 0, dst });
                    self.b.define(skip).expect("fresh");
                }
            }
            HExpr::Rel { .. } => {
                self.emit(CcInstr::MoveImm { imm: 0, dst });
                let skip = self.b.fresh_label();
                self.compare_term(e, skip, false);
                self.emit(CcInstr::MoveImm { imm: 1, dst });
                self.b.define(skip).expect("fresh");
            }
            HExpr::Not(a) => {
                self.full_eval_value(a, dst);
                self.emit(CcInstr::Alu {
                    op: CcAluOp::NotB,
                    src: CcOperand::Imm(0),
                    dst,
                });
            }
            other => {
                let v = self.eval(other);
                self.emit(CcInstr::MoveReg { src: v, dst });
                self.release(v);
            }
        }
    }

    /// Evaluates one boolean term and branches to `skip` when the term is
    /// `skip_when`.
    fn compare_term(&mut self, e: &HExpr, skip: CcLabel, skip_when: bool) {
        match e {
            HExpr::Rel { op, a, b } => {
                let va = self.eval(a);
                let src = match const_of(b) {
                    Some(k) => CcOperand::Imm(k),
                    None => CcOperand::Reg(self.eval(b)),
                };
                self.emit(CcInstr::Compare { a: va, b: src });
                if let CcOperand::Reg(r) = src {
                    self.release(r);
                }
                self.release(va);
                let cond = if skip_when {
                    rel_cc(*op)
                } else {
                    rel_cc(*op).negate()
                };
                self.emit(CcInstr::CondBranch {
                    cond,
                    target: mips_ccm::CcTarget::Label(skip),
                });
            }
            other => {
                let v = self.eval(other);
                self.emit(CcInstr::Compare {
                    a: v,
                    b: CcOperand::Imm(0),
                });
                self.release(v);
                let cond = if skip_when { CcCond::Ne } else { CcCond::Eq };
                self.emit(CcInstr::CondBranch {
                    cond,
                    target: mips_ccm::CcTarget::Label(skip),
                });
            }
        }
    }

    /// Branches to `target` when `e == sense` (early-out over
    /// connectives).
    fn branch_cond(&mut self, e: &HExpr, target: CcLabel, sense: bool) {
        match e {
            HExpr::Bool(v) => {
                if *v == sense {
                    self.emit(CcInstr::Branch {
                        target: mips_ccm::CcTarget::Label(target),
                    });
                }
            }
            HExpr::Not(a) => self.branch_cond(a, target, !sense),
            HExpr::BoolBin { op, a, b } => {
                let both = match op {
                    HBoolOp::And => !sense,
                    HBoolOp::Or => sense,
                };
                if both {
                    self.branch_cond(a, target, sense);
                    self.branch_cond(b, target, sense);
                } else {
                    let skip = self.b.fresh_label();
                    self.branch_cond(a, skip, !sense);
                    self.branch_cond(b, target, sense);
                    self.b.define(skip).expect("fresh");
                }
            }
            HExpr::Rel { op, a, b } => {
                let va = self.eval(a);
                let src = match const_of(b) {
                    Some(k) => CcOperand::Imm(k),
                    None => CcOperand::Reg(self.eval(b)),
                };
                self.emit(CcInstr::Compare { a: va, b: src });
                if let CcOperand::Reg(r) = src {
                    self.release(r);
                }
                self.release(va);
                let cond = if sense {
                    rel_cc(*op)
                } else {
                    rel_cc(*op).negate()
                };
                self.emit(CcInstr::CondBranch {
                    cond,
                    target: mips_ccm::CcTarget::Label(target),
                });
            }
            other => {
                let v = self.eval(other);
                self.emit(CcInstr::Compare {
                    a: v,
                    b: CcOperand::Imm(0),
                });
                self.release(v);
                let cond = if sense { CcCond::Ne } else { CcCond::Eq };
                self.emit(CcInstr::CondBranch {
                    cond,
                    target: mips_ccm::CcTarget::Label(target),
                });
            }
        }
    }

    /// The control-context condition under the selected strategy.
    fn control_cond(&mut self, e: &HExpr, target: CcLabel, sense: bool) {
        match self.opts.strategy {
            CcBoolStrategy::EarlyOut => self.branch_cond(e, target, sense),
            CcBoolStrategy::FullEval | CcBoolStrategy::CondSet => {
                // Build the value, then a single test-and-branch — unless
                // the expression is a bare comparison (no connectives),
                // where compare-and-branch is the natural code under every
                // strategy.
                if let HExpr::Rel { .. } = e {
                    self.branch_cond(e, target, sense);
                    return;
                }
                let v = self.bool_value(e);
                self.emit(CcInstr::Compare {
                    a: v,
                    b: CcOperand::Imm(0),
                });
                self.release(v);
                let cond = if sense { CcCond::Ne } else { CcCond::Eq };
                self.emit(CcInstr::CondBranch {
                    cond,
                    target: mips_ccm::CcTarget::Label(target),
                });
            }
        }
    }

    // ---- calls ----

    fn gen_call(&mut self, routine: usize, args: &[HArg]) {
        let live = self.live();
        for &r in &live {
            self.emit(CcInstr::Push { src: r });
        }
        self.pending.push(live);
        // Push args in reverse so arg 0 lands on top (fp+1+0 after the
        // callee's fp push).
        let mut vals: Vec<CcReg> = Vec::new();
        for a in args {
            let v = match a {
                HArg::Value(e) => self.eval(e),
                HArg::Ref(lv) => {
                    let (addr, temps) = self.addr_of(lv);
                    let t = self.acquire();
                    // Effective address: base + disp + index.
                    match addr.base {
                        mips_ccm::CcBase::Abs(x) => self.emit(CcInstr::MoveImm {
                            imm: x as i32 + addr.disp,
                            dst: t,
                        }),
                        mips_ccm::CcBase::Reg(r) => {
                            self.emit(CcInstr::MoveReg { src: r, dst: t });
                            if addr.disp != 0 {
                                self.emit(CcInstr::Alu {
                                    op: CcAluOp::Add,
                                    src: CcOperand::Imm(addr.disp),
                                    dst: t,
                                });
                            }
                        }
                    }
                    if let Some(x) = addr.index {
                        self.emit(CcInstr::Alu {
                            op: CcAluOp::Add,
                            src: CcOperand::Reg(x),
                            dst: t,
                        });
                    }
                    for tmp in temps {
                        self.release(tmp);
                    }
                    t
                }
            };
            vals.push(v);
        }
        for &v in vals.iter().rev() {
            self.emit(CcInstr::Push { src: v });
        }
        for v in vals {
            self.release(v);
        }
        self.emit(CcInstr::Call {
            target: mips_ccm::CcTarget::Label(self.routine_labels[routine]),
        });
        if !args.is_empty() {
            self.emit(CcInstr::Alu {
                op: CcAluOp::Add,
                src: CcOperand::Imm(args.len() as i32),
                dst: SP,
            });
        }
    }

    fn restore_after_call(&mut self) {
        let live = self.pending.pop().expect("unbalanced restore");
        for &r in live.iter().rev() {
            self.emit(CcInstr::Pop { dst: r });
        }
    }

    // ---- statements ----

    fn stmts(&mut self, ss: &[HStmt]) {
        for s in ss {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::Assign(lv, e) => {
                let v = self.eval(e);
                self.store_lv(lv, v);
                self.release(v);
            }
            HStmt::SetResult(e) => {
                let v = self.eval(e);
                let slot = self.result_slot.expect("function context");
                self.emit(CcInstr::Store {
                    src: v,
                    addr: CcAddr::fp(slot),
                });
                self.release(v);
            }
            HStmt::If { cond, then, els } => {
                if els.is_empty() {
                    let lend = self.b.fresh_label();
                    self.control_cond(cond, lend, false);
                    self.stmts(then);
                    self.b.define(lend).expect("fresh");
                } else {
                    let lelse = self.b.fresh_label();
                    let lend = self.b.fresh_label();
                    self.control_cond(cond, lelse, false);
                    self.stmts(then);
                    self.emit(CcInstr::Branch {
                        target: mips_ccm::CcTarget::Label(lend),
                    });
                    self.b.define(lelse).expect("fresh");
                    self.stmts(els);
                    self.b.define(lend).expect("fresh");
                }
            }
            HStmt::While { cond, body } => {
                let ltop = self.b.fresh_label();
                let lend = self.b.fresh_label();
                self.b.define(ltop).expect("fresh");
                self.control_cond(cond, lend, false);
                self.stmts(body);
                self.emit(CcInstr::Branch {
                    target: mips_ccm::CcTarget::Label(ltop),
                });
                self.b.define(lend).expect("fresh");
            }
            HStmt::Repeat { body, cond } => {
                let ltop = self.b.fresh_label();
                self.b.define(ltop).expect("fresh");
                self.stmts(body);
                self.control_cond(cond, ltop, false);
            }
            HStmt::For {
                var,
                from,
                to,
                down,
                body,
            } => {
                let limit = self.alloc_slot();
                let v = self.eval(from);
                self.store_lv(var, v);
                self.release(v);
                let t = self.eval(to);
                self.emit(CcInstr::Store {
                    src: t,
                    addr: CcAddr::fp(limit),
                });
                self.release(t);
                let ltop = self.b.fresh_label();
                let lend = self.b.fresh_label();
                self.b.define(ltop).expect("fresh");
                let cur = self.load_lv(var);
                let lim = self.acquire();
                self.emit(CcInstr::Load {
                    addr: CcAddr::fp(limit),
                    dst: lim,
                });
                self.emit(CcInstr::Compare {
                    a: cur,
                    b: CcOperand::Reg(lim),
                });
                self.release(lim);
                self.release(cur);
                self.emit(CcInstr::CondBranch {
                    cond: if *down { CcCond::Lt } else { CcCond::Gt },
                    target: mips_ccm::CcTarget::Label(lend),
                });
                self.stmts(body);
                let cur = self.load_lv(var);
                let lim = self.acquire();
                self.emit(CcInstr::Load {
                    addr: CcAddr::fp(limit),
                    dst: lim,
                });
                self.emit(CcInstr::Compare {
                    a: cur,
                    b: CcOperand::Reg(lim),
                });
                self.release(lim);
                self.emit(CcInstr::CondBranch {
                    cond: CcCond::Eq,
                    target: mips_ccm::CcTarget::Label(lend),
                });
                self.emit(CcInstr::Alu {
                    op: if *down { CcAluOp::Sub } else { CcAluOp::Add },
                    src: CcOperand::Imm(1),
                    dst: cur,
                });
                self.store_lv(var, cur);
                self.release(cur);
                self.emit(CcInstr::Branch {
                    target: mips_ccm::CcTarget::Label(ltop),
                });
                self.b.define(lend).expect("fresh");
            }
            HStmt::Call { routine, args } => {
                self.gen_call(*routine, args);
                self.restore_after_call();
            }
            HStmt::Write { args, newline } => {
                for a in args {
                    match a {
                        HWriteArg::Int(e) => {
                            let v = self.eval(e);
                            self.emit(CcInstr::MoveReg { src: v, dst: 0 });
                            self.emit(CcInstr::PutInt);
                            self.release(v);
                        }
                        HWriteArg::Char(e) => {
                            let v = self.eval(e);
                            self.emit(CcInstr::MoveReg { src: v, dst: 0 });
                            self.emit(CcInstr::PutC);
                            self.release(v);
                        }
                        HWriteArg::Str(s) => {
                            for &byte in s {
                                self.emit(CcInstr::MoveImm {
                                    imm: byte as i32,
                                    dst: 0,
                                });
                                self.emit(CcInstr::PutC);
                            }
                        }
                    }
                }
                if *newline {
                    self.emit(CcInstr::MoveImm {
                        imm: b'\n' as i32,
                        dst: 0,
                    });
                    self.emit(CcInstr::PutC);
                }
            }
            HStmt::Block(ss) => self.stmts(ss),
            HStmt::Case {
                selector,
                arms,
                default,
            } => {
                // The conventional machine: a compare chain (its compilers
                // also built tables, but the chain is the baseline shape).
                let lend = self.b.fresh_label();
                let ldef = self.b.fresh_label();
                let arm_labels: Vec<CcLabel> = arms.iter().map(|_| self.b.fresh_label()).collect();
                let v = self.eval(selector);
                for (i, (labels, _)) in arms.iter().enumerate() {
                    for &val in labels {
                        self.emit(CcInstr::Compare {
                            a: v,
                            b: CcOperand::Imm(val),
                        });
                        self.emit(CcInstr::CondBranch {
                            cond: CcCond::Eq,
                            target: mips_ccm::CcTarget::Label(arm_labels[i]),
                        });
                    }
                }
                self.release(v);
                self.emit(CcInstr::Branch {
                    target: mips_ccm::CcTarget::Label(ldef),
                });
                for (i, (_, body)) in arms.iter().enumerate() {
                    self.b.define(arm_labels[i]).expect("fresh");
                    self.stmts(body);
                    self.emit(CcInstr::Branch {
                        target: mips_ccm::CcTarget::Label(lend),
                    });
                }
                self.b.define(ldef).expect("fresh");
                self.stmts(default);
                self.b.define(lend).expect("fresh");
            }
        }
    }
}

fn const_of(e: &HExpr) -> Option<i32> {
    match e {
        HExpr::Int(v) => Some(*v),
        HExpr::Char(c) => Some(*c as i32),
        HExpr::Bool(b) => Some(*b as i32),
        HExpr::Neg(a) => const_of(a).map(|v| -v),
        _ => None,
    }
}

fn rel_cc(op: HRelOp) -> CcCond {
    match op {
        HRelOp::Eq => CcCond::Eq,
        HRelOp::Ne => CcCond::Ne,
        HRelOp::Lt => CcCond::Lt,
        HRelOp::Le => CcCond::Le,
        HRelOp::Gt => CcCond::Gt,
        HRelOp::Ge => CcCond::Ge,
    }
}

fn flatten_or<'e>(e: &'e HExpr, out: &mut Vec<&'e HExpr>) {
    match e {
        HExpr::BoolBin {
            op: HBoolOp::Or,
            a,
            b,
        } => {
            flatten_or(a, out);
            flatten_or(b, out);
        }
        other => out.push(other),
    }
}

fn flatten_and<'e>(e: &'e HExpr, out: &mut Vec<&'e HExpr>) {
    match e {
        HExpr::BoolBin {
            op: HBoolOp::And,
            a,
            b,
        } => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Counts `for` statements (each needs a hidden frame slot).
fn count_fors(ss: &[HStmt]) -> usize {
    let mut n = 0;
    for s in ss {
        n += match s {
            HStmt::For { body, .. } => 1 + count_fors(body),
            HStmt::If { then, els, .. } => count_fors(then) + count_fors(els),
            HStmt::While { body, .. } => count_fors(body),
            HStmt::Repeat { body, .. } => count_fors(body),
            HStmt::Block(ss) => count_fors(ss),
            _ => 0,
        };
    }
    n
}

/// Maps routine names to entry addresses (convenience over
/// [`CcProgram::symbol`]).
pub fn symbol_map(p: &CcProgram) -> HashMap<String, u32> {
    // CcProgram keeps symbols internally; expose main ones via lookups.
    let mut m = HashMap::new();
    for name in ["__start", "main"] {
        if let Some(a) = p.symbol(name) {
            m.insert(name.to_string(), a);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_ccm::{CcMachine, CcPolicy};

    fn run_with(src: &str, strategy: CcBoolStrategy, policy: CcPolicy) -> String {
        let p = compile_cc(src, &CcGenOptions { strategy }).unwrap();
        let mut m = CcMachine::new(p, policy);
        m.run().unwrap();
        m.output_string()
    }

    #[test]
    fn canonical_example_all_strategies_agree() {
        let src = "program t; var found: boolean; rec, key, i: integer;
             begin
               rec := 5; key := 5; i := 13;
               found := (rec = key) or (i = 13);
               writeln(found)
             end.";
        assert_eq!(
            run_with(src, CcBoolStrategy::FullEval, CcPolicy::S360),
            "1\n"
        );
        assert_eq!(
            run_with(src, CcBoolStrategy::EarlyOut, CcPolicy::VAX),
            "1\n"
        );
        assert_eq!(
            run_with(src, CcBoolStrategy::CondSet, CcPolicy::M68000),
            "1\n"
        );
    }

    #[test]
    fn cond_set_output_is_branch_free() {
        let src = "program t; var b: boolean; x: integer;
             begin x := 3; b := (x = 1) or (x = 3) end.";
        let p = compile_cc(
            src,
            &CcGenOptions {
                strategy: CcBoolStrategy::CondSet,
            },
        )
        .unwrap();
        let main = p.symbol("main").unwrap() as usize;
        let body = &p.instrs()[main..];
        let cond_branches = body
            .iter()
            .filter(|i| matches!(i, CcInstr::CondBranch { .. }))
            .count();
        assert_eq!(cond_branches, 0, "{}", p.listing());
        assert!(body.iter().any(|i| matches!(i, CcInstr::CondSet { .. })));
    }

    #[test]
    fn full_eval_executes_every_term() {
        // Count executed compares: full evaluation always runs both.
        let src = "program t; var b: boolean; x: integer;
             begin x := 1; b := (x = 1) or (x = 99) end.";
        let count = |strategy| {
            let p = compile_cc(src, &CcGenOptions { strategy }).unwrap();
            let mut m = CcMachine::new(p, CcPolicy::VAX);
            m.run().unwrap();
            m.stats().compares
        };
        assert_eq!(count(CcBoolStrategy::FullEval), 2);
        assert_eq!(
            count(CcBoolStrategy::EarlyOut),
            1,
            "first term true: early out"
        );
    }

    #[test]
    fn deep_index_expressions_fit_the_register_file() {
        // The puzzle definepiece shape that once exhausted the pool.
        let src = "program t;
             const d = 8;
             var pflat: array [0..100] of boolean;
                 pbase: array [0..3] of integer;
             procedure def(index, i, j, k: integer);
             begin
               pflat[pbase[index] + i + d * (j + d * k)] := true
             end;
             begin
               pbase[1] := 10;
               def(1, 1, 1, 1);
               if pflat[10 + 1 + 8 * 9] then writeln('ok')
             end.";
        assert_eq!(
            run_with(src, CcBoolStrategy::EarlyOut, CcPolicy::VAX),
            "ok\n"
        );
    }

    #[test]
    fn recursion_works_on_the_cc_machine() {
        let src = "program t;
             function fact(n: integer): integer;
             begin
               if n <= 1 then fact := 1 else fact := n * fact(n - 1)
             end;
             begin writeln(fact(6)) end.";
        assert_eq!(
            run_with(src, CcBoolStrategy::EarlyOut, CcPolicy::S360),
            "720\n"
        );
    }
}
