//! The typed high-level IR produced by semantic analysis and consumed by
//! the code generators, the interpreter, and the static analyzers.

use std::fmt;
use std::rc::Rc;

/// A Pasqal type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit signed integer.
    Int,
    /// Character (stored as its code).
    Char,
    /// Boolean (stored as 0/1).
    Bool,
    /// Array type.
    Array(Rc<ArrayTy>),
}

/// An array type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayTy {
    /// Element type.
    pub elem: Ty,
    /// Lower bound (inclusive).
    pub lo: i32,
    /// Upper bound (inclusive).
    pub hi: i32,
    /// Declared `packed` (byte packing for char/bool elements).
    pub packed: bool,
}

impl ArrayTy {
    /// Number of elements.
    pub fn count(&self) -> u32 {
        (self.hi - self.lo + 1).max(0) as u32
    }

    /// Whether elements are byte-packed under the word-allocated layout
    /// (packed arrays of char/bool).
    pub fn byte_elems_when_packed(&self) -> bool {
        self.packed && matches!(self.elem, Ty::Char | Ty::Bool)
    }
}

impl Ty {
    /// Scalar (non-array)?
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Ty::Array(_))
    }

    /// A character or boolean — the byte-sized data classes of
    /// Tables 7–8.
    pub fn is_byte_datum(&self) -> bool {
        matches!(self, Ty::Char | Ty::Bool)
    }

    /// Is this character data (for the tables' character split)?
    pub fn is_character(&self) -> bool {
        matches!(self, Ty::Char)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "integer"),
            Ty::Char => write!(f, "char"),
            Ty::Bool => write!(f, "boolean"),
            Ty::Array(a) => {
                if a.packed {
                    write!(f, "packed ")?;
                }
                write!(f, "array [{}..{}] of {}", a.lo, a.hi, a.elem)
            }
        }
    }
}

/// A variable slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HVar {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Ty,
}

/// A routine parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HParam {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// `var` parameter (passed by address)?
    pub by_ref: bool,
}

/// A resolved variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// Index into [`HProgram::globals`].
    Global(usize),
    /// Index into the enclosing routine's locals.
    Local(usize),
    /// Index into the enclosing routine's params.
    Param(usize),
}

/// One indexing step of an lvalue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HIndex {
    /// The index expression (integer).
    pub expr: HExpr,
    /// The array type being indexed at this step.
    pub arr: Rc<ArrayTy>,
}

/// An assignable (or loadable) location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HLValue {
    /// The base variable.
    pub base: VarRef,
    /// True when the base is a `var` parameter holding an address.
    pub by_ref: bool,
    /// Indexing steps (outermost first).
    pub indices: Vec<HIndex>,
    /// The type of the designated location.
    pub ty: Ty,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// `div`.
    Div,
    /// `mod`.
    Mod,
}

/// Relational operators (over int/char/bool; result is boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HRelOp {
    /// `=`.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl HRelOp {
    /// The negated relation.
    pub fn negate(self) -> HRelOp {
        match self {
            HRelOp::Eq => HRelOp::Ne,
            HRelOp::Ne => HRelOp::Eq,
            HRelOp::Lt => HRelOp::Ge,
            HRelOp::Ge => HRelOp::Lt,
            HRelOp::Le => HRelOp::Gt,
            HRelOp::Gt => HRelOp::Le,
        }
    }
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HBoolOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HExpr {
    /// Integer literal.
    Int(i32),
    /// Character literal.
    Char(u8),
    /// Boolean literal.
    Bool(bool),
    /// Load from a location.
    Load(Box<HLValue>),
    /// Integer negation.
    Neg(Box<HExpr>),
    /// Boolean not.
    Not(Box<HExpr>),
    /// Integer arithmetic.
    Bin {
        /// Operator.
        op: HBinOp,
        /// Left.
        a: Box<HExpr>,
        /// Right.
        b: Box<HExpr>,
    },
    /// Comparison (boolean result).
    Rel {
        /// Operator.
        op: HRelOp,
        /// Left.
        a: Box<HExpr>,
        /// Right.
        b: Box<HExpr>,
    },
    /// Boolean connective.
    BoolBin {
        /// Operator.
        op: HBoolOp,
        /// Left.
        a: Box<HExpr>,
        /// Right.
        b: Box<HExpr>,
    },
    /// Function call.
    Call {
        /// Routine index.
        routine: usize,
        /// Arguments.
        args: Vec<HArg>,
        /// Result type.
        ret: Ty,
    },
    /// `ord(e)` — char/bool to integer.
    Ord(Box<HExpr>),
    /// `chr(e)` — integer to char.
    Chr(Box<HExpr>),
}

impl HExpr {
    /// The expression's type.
    pub fn ty(&self) -> Ty {
        match self {
            HExpr::Int(_) | HExpr::Neg(_) | HExpr::Bin { .. } | HExpr::Ord(_) => Ty::Int,
            HExpr::Char(_) | HExpr::Chr(_) => Ty::Char,
            HExpr::Bool(_) | HExpr::Not(_) | HExpr::Rel { .. } | HExpr::BoolBin { .. } => Ty::Bool,
            HExpr::Load(lv) => lv.ty.clone(),
            HExpr::Call { ret, .. } => ret.clone(),
        }
    }
}

/// A call argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HArg {
    /// By value.
    Value(HExpr),
    /// By reference (`var` parameter).
    Ref(HLValue),
}

/// A `write`/`writeln` argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HWriteArg {
    /// An integer expression (printed as decimal; booleans print as 0/1).
    Int(HExpr),
    /// A character expression.
    Char(HExpr),
    /// A string literal.
    Str(Vec<u8>),
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HStmt {
    /// `lv := e`.
    Assign(HLValue, HExpr),
    /// Function-result assignment (`fname := e` inside `fname`).
    SetResult(HExpr),
    /// Conditional.
    If {
        /// Condition.
        cond: HExpr,
        /// Then branch.
        then: Vec<HStmt>,
        /// Else branch.
        els: Vec<HStmt>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: HExpr,
        /// Body.
        body: Vec<HStmt>,
    },
    /// Repeat-until loop.
    Repeat {
        /// Body.
        body: Vec<HStmt>,
        /// Exit condition.
        cond: HExpr,
    },
    /// Counted loop. The limit is evaluated once, per Pascal.
    For {
        /// Loop variable (a scalar integer location).
        var: HLValue,
        /// Initial value.
        from: HExpr,
        /// Final value.
        to: HExpr,
        /// `downto`?
        down: bool,
        /// Body.
        body: Vec<HStmt>,
    },
    /// Procedure call.
    Call {
        /// Routine index.
        routine: usize,
        /// Arguments.
        args: Vec<HArg>,
    },
    /// Output.
    Write {
        /// Arguments in order.
        args: Vec<HWriteArg>,
        /// Append a newline?
        newline: bool,
    },
    /// A compound statement.
    Block(Vec<HStmt>),
    /// A `case` statement over integer/char constants.
    Case {
        /// The selector (integer-valued; chars are selected by code).
        selector: HExpr,
        /// Arms: sorted-deduplicated label values and their bodies.
        arms: Vec<(Vec<i32>, Vec<HStmt>)>,
        /// The `else` arm (empty = fall through, per this dialect).
        default: Vec<HStmt>,
    },
}

/// A routine (the synthesized `main` is one too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HRoutine {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<HParam>,
    /// Locals (the `for`-limit temporaries are appended here by sema).
    pub locals: Vec<HVar>,
    /// Return type (None = procedure).
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<HStmt>,
}

/// A checked program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HProgram {
    /// Program name.
    pub name: String,
    /// Global variables.
    pub globals: Vec<HVar>,
    /// All routines; `routines[main]` is the synthesized main.
    pub routines: Vec<HRoutine>,
    /// Index of the main routine.
    pub main: usize,
}

impl HProgram {
    /// The main routine.
    pub fn main_routine(&self) -> &HRoutine {
        &self.routines[self.main]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_count_and_packing() {
        let a = ArrayTy {
            elem: Ty::Char,
            lo: 0,
            hi: 79,
            packed: true,
        };
        assert_eq!(a.count(), 80);
        assert!(a.byte_elems_when_packed());
        let b = ArrayTy {
            elem: Ty::Int,
            lo: 1,
            hi: 10,
            packed: true,
        };
        assert!(!b.byte_elems_when_packed());
    }

    #[test]
    fn expr_types() {
        assert_eq!(HExpr::Int(1).ty(), Ty::Int);
        assert_eq!(HExpr::Char(b'a').ty(), Ty::Char);
        assert_eq!(
            HExpr::Rel {
                op: HRelOp::Eq,
                a: Box::new(HExpr::Int(1)),
                b: Box::new(HExpr::Int(2)),
            }
            .ty(),
            Ty::Bool
        );
        assert_eq!(HExpr::Ord(Box::new(HExpr::Char(b'a'))).ty(), Ty::Int);
        assert_eq!(HExpr::Chr(Box::new(HExpr::Int(65))).ty(), Ty::Char);
    }

    #[test]
    fn relop_negation() {
        for op in [
            HRelOp::Eq,
            HRelOp::Ne,
            HRelOp::Lt,
            HRelOp::Le,
            HRelOp::Gt,
            HRelOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn type_display() {
        let t = Ty::Array(Rc::new(ArrayTy {
            elem: Ty::Char,
            lo: 0,
            hi: 9,
            packed: true,
        }));
        assert_eq!(t.to_string(), "packed array [0..9] of char");
    }
}
