//! # mips-hll — the Pasqal compiler
//!
//! The paper's data comes from "a collection of Pascal programs including
//! compilers and VLSI design aid software" compiled for MIPS and for
//! condition-code machines. This crate provides that substrate: a small
//! Pascal-like language (*Pasqal*) with a complete pipeline —
//!
//! ```text
//! source ──lexer──▶ tokens ──parser──▶ AST ──sema──▶ typed HIR
//!     HIR ──codegen::mips──▶ LinearCode (→ mips-reorg → mips-sim)
//!     HIR ──codegen::cc────▶ CcProgram  (→ mips-ccm)
//!     HIR ──interp─────────▶ reference results (differential testing)
//! ```
//!
//! The code generators expose exactly the knobs the paper's experiments
//! turn:
//!
//! * **Data layout / machine target** ([`MachineTarget`]) — word-addressed
//!   MIPS with word-allocated data and software byte handling (`xc`/`ic`),
//!   or the byte-addressed variant with byte-allocated characters
//!   (Tables 7–10);
//! * **Boolean evaluation strategy** — MIPS *Set Conditionally*
//!   straight-line code versus the condition-code machine's full
//!   evaluation, early-out, and conditional-set strategies
//!   (Tables 4–6, Figures 1–3);
//! * **Register promotion** ([`CodegenOptions::promote_locals`]) — how
//!   many of a routine's most-used scalar locals live in callee-saved
//!   registers (§2.2's register-allocation payoff).
//!
//! ## Example
//!
//! ```
//! use mips_hll::compile_mips;
//! use mips_reorg::{reorganize, ReorgOptions};
//! use mips_sim::Machine;
//!
//! let src = "
//! program demo;
//! function double(x: integer): integer;
//! begin
//!   double := x + x
//! end;
//! begin
//!   writeln(double(21))
//! end.
//! ";
//! let lc = compile_mips(src, &Default::default()).unwrap();
//! let out = reorganize(&lc, ReorgOptions::FULL).unwrap();
//! let mut m = Machine::new(out.program);
//! m.run().unwrap();
//! assert_eq!(m.output_string(), "42\n");
//! ```

pub mod ast;
pub mod cc_gen;
pub mod error;
pub mod hir;
pub mod interp;
pub mod layout;
pub mod lexer;
pub mod mips_gen;
pub mod parser;
pub mod sema;
pub mod token;

pub use cc_gen::{compile_cc, CcBoolStrategy, CcGenOptions};
pub use error::CompileError;
pub use interp::{run_program, InterpError};
pub use mips_gen::{compile_mips, BoolValueStrategy, CodegenOptions, MachineTarget};

/// Parses, checks, and lowers a Pasqal source to typed HIR.
///
/// # Errors
///
/// Returns a [`CompileError`] with a line number on any lexical, syntax,
/// or type error.
pub fn front_end(src: &str) -> Result<hir::HProgram, CompileError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    sema::check(&ast)
}
