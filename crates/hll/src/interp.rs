//! A direct HIR interpreter — the reference semantics that both code
//! generators are differentially tested against.

use crate::hir::*;
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Division (or `mod`) by zero.
    DivideByZero,
    /// The step budget was exhausted.
    StepLimit,
    /// An array index left its declared bounds.
    IndexOutOfBounds {
        /// The offending index value.
        index: i32,
        /// Declared bounds.
        lo: i32,
        /// Declared bounds.
        hi: i32,
    },
    /// A function returned without assigning its result.
    NoResult(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivideByZero => write!(f, "division by zero"),
            InterpError::StepLimit => write!(f, "step limit exhausted"),
            InterpError::IndexOutOfBounds { index, lo, hi } => {
                write!(f, "index {index} outside [{lo}..{hi}]")
            }
            InterpError::NoResult(n) => write!(f, "function {n} assigned no result"),
        }
    }
}

impl Error for InterpError {}

type Cell = Rc<RefCell<Vec<i32>>>;

/// Flattened word count of a type (1 per scalar element).
fn flat_size(ty: &Ty) -> usize {
    match ty {
        Ty::Int | Ty::Char | Ty::Bool => 1,
        Ty::Array(a) => a.count() as usize * flat_size(&a.elem),
    }
}

fn new_cell(ty: &Ty) -> Cell {
    Rc::new(RefCell::new(vec![0; flat_size(ty)]))
}

/// A parameter binding.
enum PSlot {
    Val(Cell),
    Ref(Cell, usize),
}

struct Frame {
    params: Vec<PSlot>,
    locals: Vec<Cell>,
    result: Option<i32>,
}

/// The interpreter.
pub struct Interp<'p> {
    prog: &'p HProgram,
    globals: Vec<Cell>,
    output: Vec<u8>,
    steps: u64,
    limit: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with zero-initialized globals.
    pub fn new(prog: &'p HProgram) -> Interp<'p> {
        Interp {
            prog,
            globals: prog.globals.iter().map(|g| new_cell(&g.ty)).collect(),
            output: Vec::new(),
            steps: 0,
            limit: 5_000_000_000,
        }
    }

    /// Program output so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Reads a global scalar (tests).
    pub fn global(&self, name: &str) -> Option<i32> {
        let i = self.prog.globals.iter().position(|g| g.name == name)?;
        Some(self.globals[i].borrow()[0])
    }

    /// Runs the main routine.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on runtime failures.
    pub fn run(&mut self) -> Result<(), InterpError> {
        let main = self.prog.main;
        self.invoke(main, Vec::new()).map(|_| ())
    }

    /// Calls a function by name with scalar arguments (differential test
    /// harness).
    ///
    /// # Errors
    ///
    /// Runtime failures.
    ///
    /// # Panics
    ///
    /// Unknown routine name, wrong arity, or var parameters.
    pub fn call_function(&mut self, name: &str, args: &[i32]) -> Result<i32, InterpError> {
        let idx = self
            .prog
            .routines
            .iter()
            .position(|r| r.name == name)
            .unwrap_or_else(|| panic!("unknown routine {name}"));
        let r = &self.prog.routines[idx];
        assert_eq!(r.params.len(), args.len(), "arity of {name}");
        assert!(
            r.params.iter().all(|p| !p.by_ref),
            "call_function cannot bind var parameters"
        );
        let slots = args
            .iter()
            .map(|&v| PSlot::Val(Rc::new(RefCell::new(vec![v]))))
            .collect();
        self.invoke(idx, slots)
    }

    fn invoke(&mut self, routine: usize, params: Vec<PSlot>) -> Result<i32, InterpError> {
        let r = &self.prog.routines[routine];
        let mut frame = Frame {
            params,
            locals: r.locals.iter().map(|l| new_cell(&l.ty)).collect(),
            result: None,
        };
        self.stmts(&r.body, &mut frame, routine)?;
        if r.ret.is_some() {
            frame
                .result
                .ok_or_else(|| InterpError::NoResult(r.name.clone()))
        } else {
            Ok(0)
        }
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(InterpError::StepLimit);
        }
        Ok(())
    }

    fn stmts(
        &mut self,
        ss: &[HStmt],
        frame: &mut Frame,
        routine: usize,
    ) -> Result<(), InterpError> {
        for s in ss {
            self.stmt(s, frame, routine)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &HStmt, frame: &mut Frame, routine: usize) -> Result<(), InterpError> {
        self.tick()?;
        match s {
            HStmt::Assign(lv, e) => {
                let v = self.eval(e, frame)?;
                let (cell, off) = self.place(lv, frame)?;
                cell.borrow_mut()[off] = v;
            }
            HStmt::SetResult(e) => {
                let v = self.eval(e, frame)?;
                frame.result = Some(v);
            }
            HStmt::If { cond, then, els } => {
                if self.eval(cond, frame)? != 0 {
                    self.stmts(then, frame, routine)?;
                } else {
                    self.stmts(els, frame, routine)?;
                }
            }
            HStmt::While { cond, body } => {
                while self.eval(cond, frame)? != 0 {
                    self.tick()?;
                    self.stmts(body, frame, routine)?;
                }
            }
            HStmt::Repeat { body, cond } => loop {
                self.tick()?;
                self.stmts(body, frame, routine)?;
                if self.eval(cond, frame)? != 0 {
                    break;
                }
            },
            HStmt::For {
                var,
                from,
                to,
                down,
                body,
            } => {
                let start = self.eval(from, frame)?;
                let limit = self.eval(to, frame)?;
                let (cell, off) = self.place(var, frame)?;
                let mut i = start;
                loop {
                    if (*down && i < limit) || (!*down && i > limit) {
                        break;
                    }
                    self.tick()?;
                    cell.borrow_mut()[off] = i;
                    self.stmts(body, frame, routine)?;
                    // Reload: the body may assign the loop variable.
                    i = cell.borrow()[off];
                    if i == limit {
                        break;
                    }
                    i = if *down { i - 1 } else { i + 1 };
                }
            }
            HStmt::Call { routine: r, args } => {
                let slots = self.bind_args(args, frame)?;
                self.invoke(*r, slots)?;
            }
            HStmt::Write { args, newline } => {
                for a in args {
                    match a {
                        HWriteArg::Int(e) => {
                            let v = self.eval(e, frame)?;
                            self.output.extend_from_slice(v.to_string().as_bytes());
                        }
                        HWriteArg::Char(e) => {
                            let v = self.eval(e, frame)?;
                            self.output.push(v as u8);
                        }
                        HWriteArg::Str(s) => self.output.extend_from_slice(s),
                    }
                }
                if *newline {
                    self.output.push(b'\n');
                }
            }
            HStmt::Block(ss) => self.stmts(ss, frame, routine)?,
            HStmt::Case {
                selector,
                arms,
                default,
            } => {
                let v = self.eval(selector, frame)?;
                let body = arms
                    .iter()
                    .find(|(labels, _)| labels.contains(&v))
                    .map(|(_, b)| b.as_slice())
                    .unwrap_or(default.as_slice());
                // (No-match without an else arm falls through, per this
                // dialect; ISO Pascal calls it an error.)
                self.stmts(body, frame, routine)?;
            }
        }
        Ok(())
    }

    fn bind_args(&mut self, args: &[HArg], frame: &mut Frame) -> Result<Vec<PSlot>, InterpError> {
        let mut out = Vec::new();
        for a in args {
            match a {
                HArg::Value(e) => {
                    let v = self.eval(e, frame)?;
                    out.push(PSlot::Val(Rc::new(RefCell::new(vec![v]))));
                }
                HArg::Ref(lv) => {
                    let (cell, off) = self.place(lv, frame)?;
                    out.push(PSlot::Ref(cell, off));
                }
            }
        }
        Ok(out)
    }

    /// Resolves an lvalue to (storage cell, flat offset).
    fn place(&mut self, lv: &HLValue, frame: &mut Frame) -> Result<(Cell, usize), InterpError> {
        let (cell, mut off) = match lv.base {
            VarRef::Global(i) => (self.globals[i].clone(), 0),
            VarRef::Local(i) => (frame.locals[i].clone(), 0),
            VarRef::Param(i) => match &frame.params[i] {
                PSlot::Val(c) => (c.clone(), 0),
                PSlot::Ref(c, o) => (c.clone(), *o),
            },
        };
        for ix in &lv.indices {
            let v = self.eval(&ix.expr, frame)?;
            if v < ix.arr.lo || v > ix.arr.hi {
                return Err(InterpError::IndexOutOfBounds {
                    index: v,
                    lo: ix.arr.lo,
                    hi: ix.arr.hi,
                });
            }
            let elem = flat_size(&ix.arr.elem);
            off += (v - ix.arr.lo) as usize * elem;
        }
        Ok((cell, off))
    }

    fn eval(&mut self, e: &HExpr, frame: &mut Frame) -> Result<i32, InterpError> {
        self.tick()?;
        Ok(match e {
            HExpr::Int(v) => *v,
            HExpr::Char(c) => *c as i32,
            HExpr::Bool(b) => *b as i32,
            HExpr::Load(lv) => {
                let (cell, off) = self.place(lv, frame)?;
                let v = cell.borrow()[off];
                v
            }
            HExpr::Neg(a) => self.eval(a, frame)?.wrapping_neg(),
            HExpr::Not(a) => 1 - self.eval(a, frame)?,
            HExpr::Bin { op, a, b } => {
                let x = self.eval(a, frame)?;
                let y = self.eval(b, frame)?;
                match op {
                    HBinOp::Add => x.wrapping_add(y),
                    HBinOp::Sub => x.wrapping_sub(y),
                    HBinOp::Mul => x.wrapping_mul(y),
                    HBinOp::Div => {
                        if y == 0 {
                            return Err(InterpError::DivideByZero);
                        }
                        x.wrapping_div(y)
                    }
                    HBinOp::Mod => {
                        if y == 0 {
                            return Err(InterpError::DivideByZero);
                        }
                        x.wrapping_rem(y)
                    }
                }
            }
            HExpr::Rel { op, a, b } => {
                let x = self.eval(a, frame)?;
                let y = self.eval(b, frame)?;
                let r = match op {
                    HRelOp::Eq => x == y,
                    HRelOp::Ne => x != y,
                    HRelOp::Lt => x < y,
                    HRelOp::Le => x <= y,
                    HRelOp::Gt => x > y,
                    HRelOp::Ge => x >= y,
                };
                r as i32
            }
            HExpr::BoolBin { op, a, b } => {
                // Reference semantics: strict evaluation (no side effects
                // exist in Pasqal expressions other than time, so
                // early-out and full evaluation agree on results).
                let x = self.eval(a, frame)?;
                let y = self.eval(b, frame)?;
                match op {
                    HBoolOp::And => ((x != 0) && (y != 0)) as i32,
                    HBoolOp::Or => ((x != 0) || (y != 0)) as i32,
                }
            }
            HExpr::Call { routine, args, .. } => {
                let slots = self.bind_args(args, frame)?;
                self.invoke(*routine, slots)?
            }
            HExpr::Ord(a) | HExpr::Chr(a) => {
                let v = self.eval(a, frame)?;
                if matches!(e, HExpr::Chr(_)) {
                    v & 0xff
                } else {
                    v
                }
            }
        })
    }
}

/// Compiles and interprets a source program, returning its output.
///
/// # Errors
///
/// Compilation errors are returned as `Err(Ok(_))`-free
/// [`crate::CompileError`] strings inside [`InterpError`]?? — no:
/// compilation failures panic the caller's unwrap; use
/// [`crate::front_end`] directly for richer handling. This helper is for
/// tests and examples.
///
/// # Panics
///
/// Panics on compile errors (use [`crate::front_end`] to handle those).
pub fn run_program(src: &str) -> Result<String, InterpError> {
    let prog = crate::front_end(src).expect("compile error");
    let mut i = Interp::new(&prog);
    i.run()?;
    Ok(i.output_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_output() {
        let out = run_program(
            "program t; var x: integer;
             begin x := 2 + 3 * 4; writeln(x, ' ', x div 2, ' ', x mod 5) end.",
        )
        .unwrap();
        assert_eq!(out, "14 7 4\n");
    }

    #[test]
    fn recursion_fib() {
        let out = run_program(
            "program t;
             function fib(n: integer): integer;
             begin
               if n < 2 then fib := n
               else fib := fib(n-1) + fib(n-2)
             end;
             begin writeln(fib(10)) end.",
        )
        .unwrap();
        assert_eq!(out, "55\n");
    }

    #[test]
    fn loops_and_arrays() {
        let out = run_program(
            "program t;
             var a: array [1..5] of integer; i, s: integer;
             begin
               for i := 1 to 5 do a[i] := i * i;
               s := 0;
               for i := 5 downto 1 do s := s + a[i];
               writeln(s)
             end.",
        )
        .unwrap();
        assert_eq!(out, "55\n");
    }

    #[test]
    fn while_and_repeat() {
        let out = run_program(
            "program t; var i, s: integer;
             begin
               i := 0; s := 0;
               while i < 4 do begin i := i + 1; s := s + i end;
               repeat s := s + 10 until s > 30;
               writeln(s)
             end.",
        )
        .unwrap();
        assert_eq!(out, "40\n");
    }

    #[test]
    fn var_params_alias() {
        let out = run_program(
            "program t;
             var g: integer;
             procedure bump(var x: integer); begin x := x + 1 end;
             begin g := 41; bump(g); writeln(g) end.",
        )
        .unwrap();
        assert_eq!(out, "42\n");
    }

    #[test]
    fn var_array_param() {
        let out = run_program(
            "program t;
             type vec = array [0..3] of integer;
             var v: vec;
             procedure fill(var a: vec);
             var i: integer;
             begin for i := 0 to 3 do a[i] := i * 2 end;
             begin fill(v); writeln(v[3]) end.",
        )
        .unwrap();
        assert_eq!(out, "6\n");
    }

    #[test]
    fn chars_and_packed_arrays() {
        let out = run_program(
            "program t;
             var s: packed array [0..4] of char; i: integer;
             begin
               for i := 0 to 4 do s[i] := chr(ord('a') + i);
               for i := 4 downto 0 do write(s[i]);
               writeln
             end.",
        )
        .unwrap();
        assert_eq!(out, "edcba\n");
    }

    #[test]
    fn booleans_print_as_ints() {
        let out = run_program(
            "program t; var b: boolean;
             begin b := (1 = 1) and (2 < 3); writeln(b, ' ', not b) end.",
        )
        .unwrap();
        assert_eq!(out, "1 0\n");
    }

    #[test]
    fn for_loop_zero_trips_and_once() {
        let out = run_program(
            "program t; var i, c: integer;
             begin
               c := 0;
               for i := 3 to 2 do c := c + 1;
               for i := 2 to 2 do c := c + 10;
               writeln(c)
             end.",
        )
        .unwrap();
        assert_eq!(out, "10\n");
    }

    #[test]
    fn divide_by_zero_detected() {
        let e = run_program("program t; var x: integer; begin x := 1 div x end.").unwrap_err();
        assert_eq!(e, InterpError::DivideByZero);
    }

    #[test]
    fn index_bounds_checked() {
        let e = run_program(
            "program t; var a: array [1..3] of integer; i: integer;
             begin i := 9; a[i] := 0 end.",
        )
        .unwrap_err();
        assert!(matches!(e, InterpError::IndexOutOfBounds { index: 9, .. }));
    }

    #[test]
    fn function_without_result_detected() {
        let e = run_program(
            "program t;
             function f: integer; begin end;
             begin writeln(f) end.",
        )
        .unwrap_err();
        assert_eq!(e, InterpError::NoResult("f".into()));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let prog =
            crate::front_end("program t; var x: integer; begin while true do x := x + 1 end.")
                .unwrap();
        let mut i = Interp::new(&prog);
        i.limit = 10_000;
        assert_eq!(i.run(), Err(InterpError::StepLimit));
    }

    #[test]
    fn call_function_helper() {
        let prog = crate::front_end(
            "program t;
             function add(a, b: integer): integer;
             begin add := a + b end;
             begin end.",
        )
        .unwrap();
        let mut i = Interp::new(&prog);
        assert_eq!(i.call_function("add", &[40, 2]).unwrap(), 42);
    }

    #[test]
    fn multidim() {
        let out = run_program(
            "program t;
             var m: array [0..2] of array [0..2] of integer; i, j, s: integer;
             begin
               for i := 0 to 2 do
                 for j := 0 to 2 do
                   m[i, j] := i * 3 + j;
               s := 0;
               for i := 0 to 2 do s := s + m[i, i];
               writeln(s)
             end.",
        )
        .unwrap();
        assert_eq!(out, "12\n");
    }
}

#[cfg(test)]
mod case_tests {
    use super::*;

    #[test]
    fn case_selects_arms_and_default() {
        let out = run_program(
            "program t; var i, r: integer;
             begin
               for i := 0 to 6 do
               begin
                 case i of
                   0: r := 100;
                   1, 2: r := 200;
                   4: r := 400
                 else r := 9
                 end;
                 write(r, ' ')
               end;
               writeln
             end.",
        )
        .unwrap();
        assert_eq!(out, "100 200 200 9 400 9 9 \n");
    }

    #[test]
    fn case_on_chars() {
        let out = run_program(
            "program t; var c: char; n: integer;
             begin
               c := 'x';
               case c of
                 'a': n := 1;
                 'x', 'y': n := 2
               else n := 3
               end;
               writeln(n)
             end.",
        )
        .unwrap();
        assert_eq!(out, "2\n");
    }

    #[test]
    fn case_without_else_falls_through() {
        let out = run_program(
            "program t; var r: integer;
             begin
               r := 7;
               case 99 of
                 1: r := 1
               end;
               writeln(r)
             end.",
        )
        .unwrap();
        assert_eq!(out, "7\n");
    }
}
