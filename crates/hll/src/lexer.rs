//! The Pasqal lexer.
//!
//! Pascal-flavoured: case-insensitive identifiers/keywords, `{ … }` and
//! `(* … *)` comments, `'…'` character and string literals with `''`
//! escaping.

use crate::error::CompileError;
use crate::token::{keyword, Tok, Token};

/// Tokenizes a source string.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();

    macro_rules! tok {
        ($k:expr) => {
            out.push(Token { kind: $k, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'{' => {
                // Comment to matching }.
                let start = line;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(CompileError::new(start, "unterminated { comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'}' {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            b'(' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(start, "unterminated (* comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char or string literal; '' escapes a quote.
                let start = line;
                i += 1;
                let mut text = Vec::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        return Err(CompileError::new(start, "unterminated literal"));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            text.push(b'\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    text.push(bytes[i]);
                    i += 1;
                }
                match text.len() {
                    0 => return Err(CompileError::new(start, "empty character literal")),
                    1 => tok!(Tok::Char(text[0])),
                    _ => tok!(Tok::Str(text)),
                }
            }
            b'0'..=b'9' => {
                let s = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[s..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| CompileError::new(line, format!("bad number `{text}`")))?;
                tok!(Tok::Int(v));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = src[s..i].to_ascii_lowercase();
                match keyword(&word) {
                    Some(k) => tok!(k),
                    None => tok!(Tok::Ident(word)),
                }
            }
            b';' => {
                tok!(Tok::Semi);
                i += 1;
            }
            b':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(Tok::Assign);
                    i += 2;
                } else {
                    tok!(Tok::Colon);
                    i += 1;
                }
            }
            b',' => {
                tok!(Tok::Comma);
                i += 1;
            }
            b'.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    tok!(Tok::DotDot);
                    i += 2;
                } else {
                    tok!(Tok::Dot);
                    i += 1;
                }
            }
            b'(' => {
                tok!(Tok::LParen);
                i += 1;
            }
            b')' => {
                tok!(Tok::RParen);
                i += 1;
            }
            b'[' => {
                tok!(Tok::LBracket);
                i += 1;
            }
            b']' => {
                tok!(Tok::RBracket);
                i += 1;
            }
            b'=' => {
                tok!(Tok::Eq);
                i += 1;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tok!(Tok::Ne);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(Tok::Le);
                    i += 2;
                } else {
                    tok!(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tok!(Tok::Ge);
                    i += 2;
                } else {
                    tok!(Tok::Gt);
                    i += 1;
                }
            }
            b'+' => {
                tok!(Tok::Plus);
                i += 1;
            }
            b'-' => {
                tok!(Tok::Minus);
                i += 1;
            }
            b'*' => {
                tok!(Tok::Star);
                i += 1;
            }
            other => {
                return Err(CompileError::new(
                    line,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("program Foo; BEGIN end."),
            vec![
                Tok::Program,
                Tok::Ident("foo".into()),
                Tok::Semi,
                Tok::Begin,
                Tok::End,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds(":= <> <= >= .. < > = + - *"),
            vec![
                Tok::Assign,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::DotDot,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("42 'a' 'hi' ''''"),
            vec![
                Tok::Int(42),
                Tok::Char(b'a'),
                Tok::Str(b"hi".to_vec()),
                Tok::Char(b'\''),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("{ one\n two }\nx (* y\n *) z").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
        assert_eq!(toks[1].kind, Tok::Ident("z".into()));
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn errors_have_lines() {
        let e = lex("x\n?").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("'unterminated").is_err());
        assert!(lex("{ forever").is_err());
        assert!(lex("''").is_err());
    }
}
