//! The MIPS code generator: HIR → unscheduled [`LinearCode`].
//!
//! The generator is deliberately in the style of the compilers the paper
//! used (the Portable C Compiler emitting instruction pieces): one piece
//! per statement, tree-structured expression evaluation into a small pool
//! of caller-saved temporaries, variables in memory, and *no pipeline
//! awareness whatsoever* — covering load delays, filling branch slots, and
//! packing pieces is entirely the reorganizer's job (paper §4.2.1).
//!
//! Paper-relevant knobs:
//!
//! * [`MachineTarget`] — word-addressed MIPS (packed bytes via
//!   `xc`/`ic` and byte pointers) or the byte-addressed variant
//!   (`ldb`/`stb`);
//! * [`BoolValueStrategy`] — boolean values via *Set Conditionally*
//!   (Figure 3: straight-line, branchless) or via branches (the
//!   conventional early-out code shape of Figure 1);
//! * [`CodegenOptions::promote_locals`] — usage-count register promotion
//!   of scalar locals into callee-saved registers (§2.2).
//!
//! Every load/store of source-level data carries a [`RefClass`] so the
//! simulator can reproduce the reference-pattern tables (7 and 8).

use crate::error::CompileError;
use crate::hir::*;
use crate::layout::{self, elem_stride, elems_are_bytes, scalar_is_byte, size_units, Layout};
use mips_core::{
    AluOp, AluPiece, CallPiece, CmpBranchPiece, Cond, Instr, JumpIndPiece, JumpPiece, Label,
    LinearCode, MemMode, MemPiece, MviPiece, Operand, RefClass, Reg, SetCondPiece, SpecialOp,
    SpecialReg, Target, TrapPiece, UnschedOp, Width, WordAddr,
};
use std::collections::HashSet;

/// Trap service codes shared with the simulator.
mod traps {
    pub const HALT: u16 = 0;
    pub const PUTC: u16 = 1;
    pub const PUTINT: u16 = 2;
}

/// How boolean expressions in *value* context are compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoolValueStrategy {
    /// MIPS *Set Conditionally*: branch-free straight-line code
    /// (Figure 3).
    #[default]
    SetCond,
    /// Early-out branching into 0/1 (the shape a condition-code compiler
    /// produces, Figure 1) — for comparison experiments.
    Branching,
}

pub use crate::layout::MachineTarget;

/// Code-generation options.
#[derive(Debug, Clone, Default)]
pub struct CodegenOptions {
    /// Machine / allocation regime.
    pub target: MachineTarget,
    /// Boolean value strategy.
    pub bool_value: BoolValueStrategy,
    /// How many scalar locals to promote into callee-saved registers
    /// (0–6).
    pub promote_locals: usize,
    /// Compile in the style of the paper's Portable C Compiler port:
    /// array addresses are computed with explicit ALU pieces and accessed
    /// through `0(reg)` instead of the folded `(base,index)` mode. This
    /// is the baseline the paper's Table 11 reorganizer consumed — the
    /// explicit address adds are exactly the pieces the packer exploits.
    pub pcc_style: bool,
}

impl CodegenOptions {
    /// The paper's standard configuration: word machine, set-conditionally
    /// booleans, four promoted locals.
    pub fn standard() -> CodegenOptions {
        CodegenOptions {
            target: MachineTarget::Word,
            bool_value: BoolValueStrategy::SetCond,
            promote_locals: 4,
            pcc_style: false,
        }
    }

    /// The 1982 baseline: PCC-style pieces, no register promotion — the
    /// compiler whose output the paper's Table 11 measures.
    pub fn pcc() -> CodegenOptions {
        CodegenOptions {
            target: MachineTarget::Word,
            bool_value: BoolValueStrategy::SetCond,
            promote_locals: 0,
            pcc_style: true,
        }
    }
}

/// Compiles a source program to unscheduled linear code.
///
/// # Errors
///
/// Front-end errors ([`CompileError`]).
pub fn compile_mips(src: &str, opts: &CodegenOptions) -> Result<LinearCode, CompileError> {
    let prog = crate::front_end(src)?;
    Ok(gen_program(&prog, opts))
}

/// Generates code for a checked program.
pub fn gen_program(prog: &HProgram, opts: &CodegenOptions) -> LinearCode {
    let mut g = Gen::new(prog, opts);
    g.program();
    g.out
}

/// Caller-saved expression temporaries (r0 acquired first, like the
/// paper's examples).
const POOL: [Reg; 7] = [
    Reg::R0,
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R11,
    Reg::R12,
];
/// Callee-saved promotion registers.
const PROMOTE: [Reg; 6] = [Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10];

#[derive(Debug, Default)]
struct TempPool {
    free: Vec<Reg>,
    in_use: Vec<Reg>,
}

impl TempPool {
    fn new() -> TempPool {
        let mut free: Vec<Reg> = POOL.to_vec();
        free.reverse(); // pop() yields r0 first
        TempPool {
            free,
            in_use: Vec::new(),
        }
    }

    fn acquire(&mut self) -> Reg {
        let r = self
            .free
            .pop()
            .expect("expression too complex: temporary pool exhausted");
        self.in_use.push(r);
        r
    }

    fn release(&mut self, r: Reg) {
        if let Some(i) = self.in_use.iter().position(|&x| x == r) {
            self.in_use.remove(i);
            self.free.push(r);
        }
    }

    fn live(&self) -> Vec<Reg> {
        self.in_use.clone()
    }
}

/// An evaluated value: a register plus whether we own (and must release)
/// it.
#[derive(Debug, Clone, Copy)]
struct Val {
    reg: Reg,
    owned: bool,
}

/// A resolved storage place.
enum Place {
    /// A promoted local: the value *is* this register.
    Promoted(Reg),
    /// A machine addressing mode (plus temporaries to release after the
    /// access).
    Mode {
        mode: MemMode,
        width: Width,
        rc: RefClass,
        temps: Vec<Reg>,
    },
    /// Word-machine packed byte element: a byte pointer register.
    PackedByte { ptr: Reg, character: bool },
}

/// Accumulated base of an address computation, in address units.
enum BaseA {
    Const(i64),
    FpRel(i64),
    Reg(Reg, i64),
}

struct FrameInfo {
    local_slot: Vec<i32>,
    promoted: Vec<Option<Reg>>,
    used_slots: i32,
    result_slot: Option<i32>,
}

struct Gen<'p> {
    prog: &'p HProgram,
    opts: &'p CodegenOptions,
    layout: Layout,
    out: LinearCode,
    body: LinearCode,
    next_label: u32,
    routine_labels: Vec<Label>,
    pool: TempPool,
    frame: FrameInfo,
    routine: usize,
    /// Stack of live-temp sets saved around calls (LIFO with
    /// [`Gen::restore_after_call`]).
    saved_stack: Vec<Vec<Reg>>,
}

impl<'p> Gen<'p> {
    fn new(prog: &'p HProgram, opts: &'p CodegenOptions) -> Gen<'p> {
        Gen {
            prog,
            opts,
            layout: Layout::new(prog, opts.target),
            out: LinearCode::new(),
            body: LinearCode::new(),
            next_label: 0,
            routine_labels: Vec::new(),
            pool: TempPool::new(),
            frame: FrameInfo {
                local_slot: Vec::new(),
                promoted: Vec::new(),
                used_slots: 0,
                result_slot: None,
            },
            routine: 0,
            saved_stack: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Label {
        let l = Label::new(self.next_label);
        self.next_label += 1;
        l
    }

    /// Units per word-sized stack slot.
    fn upw(&self) -> i64 {
        self.opts.target.units_per_word() as i64
    }

    fn op(&mut self, i: Instr) {
        self.body.op(i);
    }

    fn op_rc(&mut self, i: Instr, rc: RefClass) {
        self.body.op_meta(UnschedOp::new(i).with_refclass(rc));
    }

    fn alu(&mut self, op: AluOp, a: Operand, b: Operand, dst: Reg) {
        self.op(Instr::alu(AluPiece::new(op, a, b, dst)));
    }

    fn mov(&mut self, src: Reg, dst: Reg) {
        if src != dst {
            self.alu(AluOp::Add, src.into(), Operand::Small(0), dst);
        }
    }

    // ---- program / routines ----

    fn program(&mut self) {
        for _ in 0..self.prog.routines.len() {
            let l = self.fresh();
            self.routine_labels.push(l);
        }

        // __start: set up the stack, call main, halt.
        self.out.symbol("__start");
        let stack = layout::stack_top(self.opts.target);
        self.out.op(Instr::mem(MemPiece::LoadImm {
            value: stack,
            dst: Reg::SP,
        }));
        self.out.op(Instr::Call(CallPiece {
            target: Target::Label(self.routine_labels[self.prog.main]),
            link: Reg::RA,
        }));
        self.out.symbol("__halt");
        self.out.op(Instr::Trap(TrapPiece { code: traps::HALT }));
        self.out.op(Instr::Halt);

        for i in 0..self.prog.routines.len() {
            self.routine(i);
        }
    }

    fn routine(&mut self, idx: usize) {
        self.routine = idx;
        let r = &self.prog.routines[idx];
        self.pool = TempPool::new();

        // Frame layout: locals (non-promoted) get negative slots.
        let promoted_set = self.choose_promotions(r);
        let mut local_slot = Vec::new();
        let mut promoted = Vec::new();
        let mut used = 0i32;
        let mut next_preg = 0usize;
        for (i, l) in r.locals.iter().enumerate() {
            if promoted_set.contains(&i) {
                promoted.push(Some(PROMOTE[next_preg]));
                next_preg += 1;
                local_slot.push(0);
            } else {
                promoted.push(None);
                let size = size_units(self.opts.target, &l.ty).div_ceil(self.upw() as u32) as i32;
                used += size;
                local_slot.push(-used);
            }
        }
        self.frame = FrameInfo {
            local_slot,
            promoted,
            used_slots: used,
            result_slot: None,
        };
        if r.ret.is_some() {
            let s = self.alloc_slot();
            self.frame.result_slot = Some(s);
        }

        // Generate the body into a side buffer (frame size is only known
        // afterwards, because for-loops allocate hidden limit slots).
        self.body = LinearCode::new();
        let body_stmts = r.body.clone();
        self.stmts(&body_stmts);
        let body = std::mem::take(&mut self.body);

        // Prologue.
        let upw = self.upw();
        self.body = LinearCode::new();
        self.out.symbol(r.name.clone());
        let entry = self.routine_labels[idx];
        self.out.define(entry);
        self.add_const_to(Reg::SP, -2 * upw);
        self.op(Instr::mem(MemPiece::store(
            MemMode::Based {
                base: Reg::SP,
                disp: upw as i32,
            },
            Reg::RA,
        )));
        self.op(Instr::mem(MemPiece::store(
            MemMode::Based {
                base: Reg::SP,
                disp: 0,
            },
            Reg::FP,
        )));
        self.mov(Reg::SP, Reg::FP);
        let frame_units = self.frame.used_slots as i64 * upw;
        self.add_const_to(Reg::SP, -frame_units);
        // Save promoted (callee-saved) registers.
        let pregs: Vec<Reg> = self.frame.promoted.iter().flatten().copied().collect();
        if !pregs.is_empty() {
            self.add_const_to(Reg::SP, -(pregs.len() as i64) * upw);
            for (j, &p) in pregs.iter().enumerate() {
                self.op(Instr::mem(MemPiece::store(
                    MemMode::Based {
                        base: Reg::SP,
                        disp: (j as i64 * upw) as i32,
                    },
                    p,
                )));
            }
        }
        let prologue = std::mem::take(&mut self.body);
        self.out.append(prologue);
        self.out.append(body);

        // Epilogue.
        self.body = LinearCode::new();
        if r.ret.is_some() {
            let slot = self.frame.result_slot.unwrap();
            self.op(Instr::mem(MemPiece::load(
                MemMode::Based {
                    base: Reg::FP,
                    disp: (slot as i64 * upw) as i32,
                },
                Reg::R1,
            )));
        }
        if !pregs.is_empty() {
            for (j, &p) in pregs.iter().enumerate() {
                self.op(Instr::mem(MemPiece::load(
                    MemMode::Based {
                        base: Reg::SP,
                        disp: (j as i64 * upw) as i32,
                    },
                    p,
                )));
            }
            self.add_const_to(Reg::SP, pregs.len() as i64 * upw);
        }
        self.mov(Reg::FP, Reg::SP);
        self.op(Instr::mem(MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: upw as i32,
            },
            Reg::RA,
        )));
        self.op(Instr::mem(MemPiece::load(
            MemMode::Based {
                base: Reg::SP,
                disp: 0,
            },
            Reg::FP,
        )));
        self.add_const_to(Reg::SP, 2 * upw);
        self.op(Instr::JumpInd(JumpIndPiece {
            base: Reg::RA,
            disp: 0,
        }));
        let epi = std::mem::take(&mut self.body);
        self.out.append(epi);
    }

    /// Picks the most-used scalar locals for register promotion.
    fn choose_promotions(&self, r: &HRoutine) -> HashSet<usize> {
        let budget = self.opts.promote_locals.min(PROMOTE.len());
        if budget == 0 {
            return HashSet::new();
        }
        let mut counts = vec![0usize; r.locals.len()];
        let mut excluded: HashSet<usize> = HashSet::new();
        fn walk_expr(e: &HExpr, counts: &mut [usize], excluded: &mut HashSet<usize>) {
            match e {
                HExpr::Load(lv) => walk_lv(lv, counts, excluded, false),
                HExpr::Neg(a) | HExpr::Not(a) | HExpr::Ord(a) | HExpr::Chr(a) => {
                    walk_expr(a, counts, excluded)
                }
                HExpr::Bin { a, b, .. } | HExpr::Rel { a, b, .. } | HExpr::BoolBin { a, b, .. } => {
                    walk_expr(a, counts, excluded);
                    walk_expr(b, counts, excluded);
                }
                HExpr::Call { args, .. } => {
                    for a in args {
                        match a {
                            HArg::Value(e) => walk_expr(e, counts, excluded),
                            HArg::Ref(lv) => walk_lv(lv, counts, excluded, true),
                        }
                    }
                }
                _ => {}
            }
        }
        fn walk_lv(
            lv: &HLValue,
            counts: &mut [usize],
            excluded: &mut HashSet<usize>,
            by_ref: bool,
        ) {
            if let VarRef::Local(i) = lv.base {
                if by_ref {
                    excluded.insert(i);
                } else {
                    counts[i] += 1;
                }
            }
            for ix in &lv.indices {
                walk_expr(&ix.expr, counts, excluded);
            }
        }
        fn walk_stmt(s: &HStmt, counts: &mut [usize], excluded: &mut HashSet<usize>) {
            match s {
                HStmt::Assign(lv, e) => {
                    walk_lv(lv, counts, excluded, false);
                    walk_expr(e, counts, excluded);
                }
                HStmt::SetResult(e) => walk_expr(e, counts, excluded),
                HStmt::If { cond, then, els } => {
                    walk_expr(cond, counts, excluded);
                    for s in then.iter().chain(els) {
                        walk_stmt(s, counts, excluded);
                    }
                }
                HStmt::While { cond, body } => {
                    walk_expr(cond, counts, excluded);
                    for s in body {
                        walk_stmt(s, counts, excluded);
                    }
                }
                HStmt::Repeat { body, cond } => {
                    walk_expr(cond, counts, excluded);
                    for s in body {
                        walk_stmt(s, counts, excluded);
                    }
                }
                HStmt::For {
                    var,
                    from,
                    to,
                    body,
                    ..
                } => {
                    walk_lv(var, counts, excluded, false);
                    walk_expr(from, counts, excluded);
                    walk_expr(to, counts, excluded);
                    for s in body {
                        walk_stmt(s, counts, excluded);
                    }
                }
                HStmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            HArg::Value(e) => walk_expr(e, counts, excluded),
                            HArg::Ref(lv) => walk_lv(lv, counts, excluded, true),
                        }
                    }
                }
                HStmt::Write { args, .. } => {
                    for a in args {
                        match a {
                            HWriteArg::Int(e) | HWriteArg::Char(e) => {
                                walk_expr(e, counts, excluded)
                            }
                            HWriteArg::Str(_) => {}
                        }
                    }
                }
                HStmt::Block(ss) => {
                    for s in ss {
                        walk_stmt(s, counts, excluded);
                    }
                }
                HStmt::Case {
                    selector,
                    arms,
                    default,
                } => {
                    walk_expr(selector, counts, excluded);
                    for (_, body) in arms {
                        for s in body {
                            walk_stmt(s, counts, excluded);
                        }
                    }
                    for s in default {
                        walk_stmt(s, counts, excluded);
                    }
                }
            }
        }
        for s in &r.body {
            walk_stmt(s, &mut counts, &mut excluded);
        }
        let mut candidates: Vec<usize> = (0..r.locals.len())
            .filter(|&i| r.locals[i].ty.is_scalar() && !excluded.contains(&i) && counts[i] > 0)
            .collect();
        candidates.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
        candidates.into_iter().take(budget).collect()
    }

    fn alloc_slot(&mut self) -> i32 {
        self.frame.used_slots += 1;
        -self.frame.used_slots
    }

    // ---- constants & helpers ----

    /// Adds a (possibly large, possibly negative) constant to a register
    /// in place.
    fn add_const_to(&mut self, reg: Reg, c: i64) {
        match c {
            0 => {}
            1..=15 => self.alu(AluOp::Add, reg.into(), Operand::Small(c as u8), reg),
            -15..=-1 => self.alu(AluOp::Sub, reg.into(), Operand::Small((-c) as u8), reg),
            _ => {
                let t = self.materialize(c);
                if c > 0 {
                    self.alu(AluOp::Add, reg.into(), t.reg.into(), reg);
                } else {
                    // t holds c (negative); add it.
                    self.alu(AluOp::Add, reg.into(), t.reg.into(), reg);
                }
                self.release(t);
            }
        }
    }

    /// Materializes an arbitrary 32-bit constant into a fresh temporary.
    fn materialize(&mut self, c: i64) -> Val {
        let dst = self.pool.acquire();
        let v = c as i32;
        if (0..=255).contains(&v) {
            self.op(Instr::Mvi(MviPiece { imm: v as u8, dst }));
        } else if (0..=MemPiece::LONG_IMM_MAX as i32).contains(&v) {
            self.op(Instr::mem(MemPiece::LoadImm {
                value: v as u32,
                dst,
            }));
        } else if (-255..0).contains(&v) {
            self.op(Instr::Mvi(MviPiece {
                imm: (-v) as u8,
                dst,
            }));
            // Reverse subtract: dst := 0 - dst.
            self.alu(AluOp::Rsub, dst.into(), Operand::Small(0), dst);
        } else {
            // Full 32-bit build: high 24 bits, shift, or in the low byte.
            let u = v as u32;
            self.op(Instr::mem(MemPiece::LoadImm { value: u >> 8, dst }));
            let t = self.pool.acquire();
            self.op(Instr::Mvi(MviPiece {
                imm: (u & 0xff) as u8,
                dst: t,
            }));
            self.alu(AluOp::Sll, dst.into(), Operand::Small(8), dst);
            self.alu(AluOp::Or, dst.into(), t.into(), dst);
            self.pool.release(t);
        }
        Val {
            reg: dst,
            owned: true,
        }
    }

    fn release(&mut self, v: Val) {
        if v.owned {
            self.pool.release(v.reg);
        }
    }

    /// A destination register for an operation consuming `a` (reuse `a`'s
    /// register when we own it).
    fn dst_for(&mut self, a: Val) -> Reg {
        if a.owned {
            a.reg
        } else {
            self.pool.acquire()
        }
    }

    fn const_of(e: &HExpr) -> Option<i64> {
        match e {
            HExpr::Int(v) => Some(*v as i64),
            HExpr::Char(c) => Some(*c as i64),
            HExpr::Bool(b) => Some(*b as i64),
            HExpr::Neg(inner) => Self::const_of(inner).map(|v| -v),
            _ => None,
        }
    }

    /// Evaluates to an operand, using the 4-bit constant field when the
    /// value allows.
    fn eval_operand(&mut self, e: &HExpr) -> (Operand, Option<Val>) {
        if let Some(c) = Self::const_of(e) {
            if (0..=15).contains(&c) {
                return (Operand::Small(c as u8), None);
            }
        }
        let v = self.eval(e);
        (Operand::Reg(v.reg), Some(v))
    }

    // ---- expressions ----

    fn eval(&mut self, e: &HExpr) -> Val {
        match e {
            HExpr::Int(_) | HExpr::Char(_) | HExpr::Bool(_) => {
                let c = Self::const_of(e).unwrap();
                self.materialize(c)
            }
            HExpr::Load(lv) => self.load(lv),
            HExpr::Neg(a) => {
                let va = self.eval(a);
                let dst = self.dst_for(va);
                self.alu(AluOp::Rsub, va.reg.into(), Operand::Small(0), dst);
                Val {
                    reg: dst,
                    owned: true,
                }
            }
            HExpr::Not(a) => {
                let va = self.eval(a);
                let dst = self.dst_for(va);
                self.alu(AluOp::Xor, va.reg.into(), Operand::Small(1), dst);
                Val {
                    reg: dst,
                    owned: true,
                }
            }
            HExpr::Ord(a) => self.eval(a),
            HExpr::Chr(a) => {
                let va = self.eval(a);
                let dst = self.dst_for(va);
                let mask = self.materialize(0xff);
                self.alu(AluOp::And, va.reg.into(), mask.reg.into(), dst);
                self.release(mask);
                Val {
                    reg: dst,
                    owned: true,
                }
            }
            HExpr::Bin { op, a, b } => self.eval_bin(*op, a, b),
            HExpr::Rel { op, a, b } => match self.opts.bool_value {
                BoolValueStrategy::SetCond => {
                    let (oa, va) = self.eval_operand(a);
                    let (ob, vb) = self.eval_operand(b);
                    let dst = self.pool.acquire();
                    self.op(Instr::SetCond(SetCondPiece::new(
                        rel_cond(*op),
                        oa,
                        ob,
                        dst,
                    )));
                    if let Some(v) = va {
                        self.release(v);
                    }
                    if let Some(v) = vb {
                        self.release(v);
                    }
                    Val {
                        reg: dst,
                        owned: true,
                    }
                }
                BoolValueStrategy::Branching => self.eval_bool_branching(e),
            },
            HExpr::BoolBin { op, a, b } => match self.opts.bool_value {
                BoolValueStrategy::SetCond => {
                    let va = self.eval(a);
                    let vb = self.eval(b);
                    let dst = self.dst_for(va);
                    let alu_op = match op {
                        HBoolOp::And => AluOp::And,
                        HBoolOp::Or => AluOp::Or,
                    };
                    self.alu(alu_op, va.reg.into(), vb.reg.into(), dst);
                    self.release(vb);
                    Val {
                        reg: dst,
                        owned: true,
                    }
                }
                BoolValueStrategy::Branching => self.eval_bool_branching(e),
            },
            HExpr::Call { routine, args, .. } => {
                self.gen_call(*routine, args);
                // Copy the result out of r1 before any restores.
                let dst = self.pool.acquire();
                self.mov(Reg::R1, dst);
                self.restore_after_call();
                Val {
                    reg: dst,
                    owned: true,
                }
            }
        }
    }

    /// Boolean value via branches (the conventional code shape).
    fn eval_bool_branching(&mut self, e: &HExpr) -> Val {
        let dst = self.pool.acquire();
        let done = self.fresh();
        self.op(Instr::Mvi(MviPiece { imm: 1, dst }));
        self.cond(e, done, true);
        self.op(Instr::Mvi(MviPiece { imm: 0, dst }));
        self.body.define(done);
        Val {
            reg: dst,
            owned: true,
        }
    }

    fn eval_bin(&mut self, op: HBinOp, a: &HExpr, b: &HExpr) -> Val {
        // Constant-right peepholes.
        if let Some(c) = Self::const_of(b) {
            match op {
                HBinOp::Add | HBinOp::Sub => {
                    let c = if op == HBinOp::Sub { -c } else { c };
                    let va = self.eval(a);
                    let dst = self.dst_for(va);
                    match c {
                        0 => self.mov(va.reg, dst),
                        1..=15 => self.alu(AluOp::Add, va.reg.into(), Operand::Small(c as u8), dst),
                        -15..=-1 => {
                            self.alu(AluOp::Sub, va.reg.into(), Operand::Small((-c) as u8), dst)
                        }
                        _ => {
                            let t = self.materialize(c);
                            self.alu(AluOp::Add, va.reg.into(), t.reg.into(), dst);
                            self.release(t);
                        }
                    }
                    return Val {
                        reg: dst,
                        owned: true,
                    };
                }
                HBinOp::Mul if c > 0 && (c & (c - 1)) == 0 => {
                    let k = c.trailing_zeros();
                    let va = self.eval(a);
                    let dst = self.dst_for(va);
                    if k <= 15 {
                        self.alu(AluOp::Sll, va.reg.into(), Operand::Small(k as u8), dst);
                    } else {
                        let t = self.materialize(k as i64);
                        self.alu(AluOp::Sll, va.reg.into(), t.reg.into(), dst);
                        self.release(t);
                    }
                    return Val {
                        reg: dst,
                        owned: true,
                    };
                }
                _ => {}
            }
        }
        // Constant-left subtraction uses the reverse operator.
        if op == HBinOp::Sub {
            if let Some(c) = Self::const_of(a) {
                if (0..=15).contains(&c) {
                    let vb = self.eval(b);
                    let dst = self.dst_for(vb);
                    // rsub x,#c → c - x with operand order (a=#c? our rsub
                    // computes b - a, so put the register in a).
                    self.alu(AluOp::Rsub, vb.reg.into(), Operand::Small(c as u8), dst);
                    return Val {
                        reg: dst,
                        owned: true,
                    };
                }
            }
        }
        let va = self.eval(a);
        let (ob, vb) = self.eval_operand(b);
        let dst = self.dst_for(va);
        let alu_op = match op {
            HBinOp::Add => AluOp::Add,
            HBinOp::Sub => AluOp::Sub,
            HBinOp::Mul => AluOp::Mul,
            HBinOp::Div => AluOp::Div,
            HBinOp::Mod => AluOp::Rem,
        };
        self.alu(alu_op, va.reg.into(), ob, dst);
        if let Some(v) = vb {
            self.release(v);
        }
        Val {
            reg: dst,
            owned: true,
        }
    }

    // ---- conditional control flow (early-out compare-and-branch) ----

    /// Emits branches so control reaches `target` iff `e == sense`;
    /// otherwise falls through.
    fn cond(&mut self, e: &HExpr, target: Label, sense: bool) {
        match e {
            HExpr::Bool(b) => {
                if *b == sense {
                    self.op(Instr::Jump(JumpPiece {
                        target: Target::Label(target),
                    }));
                }
            }
            HExpr::Not(inner) => self.cond(inner, target, !sense),
            HExpr::BoolBin { op, a, b } => {
                let both_to_target = match op {
                    HBoolOp::And => !sense, // ¬(a∧b) = ¬a ∨ ¬b
                    HBoolOp::Or => sense,
                };
                if both_to_target {
                    self.cond(a, target, sense);
                    self.cond(b, target, sense);
                } else {
                    let skip = self.fresh();
                    self.cond(a, skip, !sense);
                    self.cond(b, target, sense);
                    self.body.define(skip);
                }
            }
            HExpr::Rel { op, a, b } => {
                let mut c = rel_cond(*op);
                if !sense {
                    c = c.negate();
                }
                let (oa, va) = self.eval_operand(a);
                let (ob, vb) = self.eval_operand(b);
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    c,
                    oa,
                    ob,
                    Target::Label(target),
                )));
                if let Some(v) = va {
                    self.release(v);
                }
                if let Some(v) = vb {
                    self.release(v);
                }
            }
            other => {
                let v = self.eval(other);
                let c = if sense { Cond::Ne } else { Cond::Eq };
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    c,
                    v.reg.into(),
                    Operand::Small(0),
                    Target::Label(target),
                )));
                self.release(v);
            }
        }
    }

    // ---- addressing ----

    fn place_of(&mut self, lv: &HLValue) -> Place {
        let upw = self.upw();
        // Base.
        let (mut base, by_ref_ty_bytes) = match lv.base {
            VarRef::Global(i) => (BaseA::Const(self.layout.global_addr[i] as i64), false),
            VarRef::Local(i) => {
                if let Some(r) = self.frame.promoted[i] {
                    debug_assert!(lv.indices.is_empty());
                    return Place::Promoted(r);
                }
                (BaseA::FpRel(self.frame.local_slot[i] as i64 * upw), false)
            }
            VarRef::Param(i) => {
                let disp = (2 + i as i64) * upw;
                if lv.by_ref {
                    let t = self.pool.acquire();
                    self.op(Instr::mem(MemPiece::load(
                        MemMode::Based {
                            base: Reg::FP,
                            disp: disp as i32,
                        },
                        t,
                    )));
                    (BaseA::Reg(t, 0), true)
                } else {
                    (BaseA::FpRel(disp), false)
                }
            }
        };
        let _ = by_ref_ty_bytes;

        // Index accumulation (word-level; the packed-byte final step on
        // the word machine is deferred).
        let mut dynreg: Option<Reg> = None;
        let word_machine = self.opts.target == MachineTarget::Word;
        let n = lv.indices.len();
        let byte_final =
            word_machine && n > 0 && elems_are_bytes(self.opts.target, &lv.indices[n - 1].arr);
        let word_steps = if byte_final { n - 1 } else { n };

        for ix in &lv.indices[..word_steps] {
            let stride = elem_stride(self.opts.target, &ix.arr) as i64;
            self.accumulate_index(&ix.expr, ix.arr.lo, stride, &mut base, &mut dynreg);
        }

        if byte_final {
            let ix = &lv.indices[n - 1];
            // Collapse the word part to a byte pointer, then add the byte
            // index.
            let ptr = self.collapse_to_reg(base, dynreg);
            self.alu(AluOp::Sll, ptr.into(), Operand::Small(2), ptr);
            let mut b2: BaseA = BaseA::Reg(ptr, 0);
            let mut d2: Option<Reg> = None;
            self.accumulate_index(&ix.expr, ix.arr.lo, 1, &mut b2, &mut d2);
            let ptr = self.collapse_to_reg(b2, d2);
            return Place::PackedByte {
                ptr,
                character: lv.ty.is_character(),
            };
        }

        // Produce a machine mode.
        let width = if scalar_is_byte(self.opts.target, &lv.ty) {
            Width::Byte
        } else {
            Width::Word
        };
        let rc = RefClass {
            byte_sized: width == Width::Byte,
            character: lv.ty.is_character(),
        };
        let (mode, temps) = self.mode_of(base, dynreg);
        Place::Mode {
            mode,
            width,
            rc,
            temps,
        }
    }

    /// Folds one index step into the accumulated address.
    fn accumulate_index(
        &mut self,
        e: &HExpr,
        lo: i32,
        stride: i64,
        base: &mut BaseA,
        dynreg: &mut Option<Reg>,
    ) {
        if let Some(k) = Self::const_of(e) {
            let off = (k - lo as i64) * stride;
            match base {
                BaseA::Const(c) | BaseA::FpRel(c) | BaseA::Reg(_, c) => *c += off,
            }
            return;
        }
        let v = self.eval(e);
        let idx = if v.owned {
            v.reg
        } else {
            let t = self.pool.acquire();
            self.mov(v.reg, t);
            t
        };
        if lo != 0 {
            self.add_const_to(idx, -(lo as i64));
        }
        if stride > 1 {
            if (stride & (stride - 1)) == 0 {
                let k = stride.trailing_zeros() as u8;
                self.alu(AluOp::Sll, idx.into(), Operand::Small(k), idx);
            } else {
                let t = self.materialize(stride);
                self.alu(AluOp::Mul, idx.into(), t.reg.into(), idx);
                self.release(t);
            }
        }
        match dynreg {
            None => *dynreg = Some(idx),
            Some(d) => {
                self.alu(AluOp::Add, (*d).into(), idx.into(), *d);
                self.pool.release(idx);
            }
        }
    }

    /// Collapses an accumulated address into a single register holding
    /// the full unit address.
    fn collapse_to_reg(&mut self, base: BaseA, dynreg: Option<Reg>) -> Reg {
        match (base, dynreg) {
            (BaseA::Const(c), None) => {
                let v = self.materialize(c);
                v.reg
            }
            (BaseA::Const(c), Some(d)) => {
                self.add_const_to(d, c);
                d
            }
            (BaseA::FpRel(c), None) => {
                let t = self.pool.acquire();
                self.mov(Reg::FP, t);
                self.add_const_to(t, c);
                t
            }
            (BaseA::FpRel(c), Some(d)) => {
                self.alu(AluOp::Add, d.into(), Reg::FP.into(), d);
                self.add_const_to(d, c);
                d
            }
            (BaseA::Reg(r, c), None) => {
                self.add_const_to(r, c);
                r
            }
            (BaseA::Reg(r, c), Some(d)) => {
                self.alu(AluOp::Add, d.into(), r.into(), d);
                self.pool.release(r);
                self.add_const_to(d, c);
                d
            }
        }
    }

    /// Produces a memory mode (plus owned temporaries to release after
    /// the access).
    fn mode_of(&mut self, base: BaseA, dynreg: Option<Reg>) -> (MemMode, Vec<Reg>) {
        // PCC style: indexed accesses go through an explicitly computed
        // address register.
        if self.opts.pcc_style && dynreg.is_some() {
            let r = self.collapse_to_reg(base, dynreg);
            return (MemMode::Based { base: r, disp: 0 }, vec![r]);
        }
        const DISP_OK: std::ops::RangeInclusive<i64> =
            (MemMode::DISP_MIN as i64)..=(MemMode::DISP_MAX as i64);
        match (base, dynreg) {
            (BaseA::Const(c), None) => {
                if (0..(1 << 24)).contains(&c) {
                    (MemMode::Absolute(WordAddr::new(c as u32)), vec![])
                } else {
                    let v = self.materialize(c);
                    (
                        MemMode::Based {
                            base: v.reg,
                            disp: 0,
                        },
                        vec![v.reg],
                    )
                }
            }
            (BaseA::Const(c), Some(d)) => {
                let v = self.materialize(c);
                (
                    MemMode::BasedIndexed {
                        base: v.reg,
                        index: d,
                    },
                    vec![v.reg, d],
                )
            }
            (BaseA::FpRel(c), None) => {
                if DISP_OK.contains(&c) {
                    (
                        MemMode::Based {
                            base: Reg::FP,
                            disp: c as i32,
                        },
                        vec![],
                    )
                } else {
                    let t = self.pool.acquire();
                    self.mov(Reg::FP, t);
                    self.add_const_to(t, c);
                    (MemMode::Based { base: t, disp: 0 }, vec![t])
                }
            }
            (BaseA::FpRel(c), Some(d)) => {
                self.add_const_to(d, c);
                (
                    MemMode::BasedIndexed {
                        base: Reg::FP,
                        index: d,
                    },
                    vec![d],
                )
            }
            (BaseA::Reg(r, c), None) => {
                if DISP_OK.contains(&c) {
                    (
                        MemMode::Based {
                            base: r,
                            disp: c as i32,
                        },
                        vec![r],
                    )
                } else {
                    self.add_const_to(r, c);
                    (MemMode::Based { base: r, disp: 0 }, vec![r])
                }
            }
            (BaseA::Reg(r, c), Some(d)) => {
                self.add_const_to(d, c);
                (MemMode::BasedIndexed { base: r, index: d }, vec![r, d])
            }
        }
    }

    fn load(&mut self, lv: &HLValue) -> Val {
        match self.place_of(lv) {
            Place::Promoted(r) => Val {
                reg: r,
                owned: false,
            },
            Place::Mode {
                mode,
                width,
                rc,
                temps,
            } => {
                let dst = self.pool.acquire();
                self.op_rc(Instr::mem(MemPiece::Load { mode, dst, width }), rc);
                for t in temps {
                    self.pool.release(t);
                }
                Val {
                    reg: dst,
                    owned: true,
                }
            }
            Place::PackedByte { ptr, character } => {
                let w = self.pool.acquire();
                self.op_rc(
                    Instr::mem(MemPiece::load(
                        MemMode::BaseShifted {
                            base: ptr,
                            shift: 2,
                        },
                        w,
                    )),
                    RefClass {
                        byte_sized: true,
                        character,
                    },
                );
                self.alu(AluOp::Xc, ptr.into(), w.into(), w);
                self.pool.release(ptr);
                Val {
                    reg: w,
                    owned: true,
                }
            }
        }
    }

    fn store(&mut self, lv: &HLValue, v: Reg) {
        match self.place_of(lv) {
            Place::Promoted(r) => self.mov(v, r),
            Place::Mode {
                mode,
                width,
                rc,
                temps,
            } => {
                self.op_rc(
                    Instr::mem(MemPiece::Store {
                        mode,
                        src: v,
                        width,
                    }),
                    rc,
                );
                for t in temps {
                    self.pool.release(t);
                }
            }
            Place::PackedByte { ptr, character } => {
                // Byte store on the word machine: fetch the word, set the
                // lo byte selector, insert, store back (paper §4.1).
                let w = self.pool.acquire();
                self.op(Instr::mem(MemPiece::load(
                    MemMode::BaseShifted {
                        base: ptr,
                        shift: 2,
                    },
                    w,
                )));
                self.op(Instr::Special(SpecialOp::Write {
                    sr: SpecialReg::Lo,
                    src: ptr.into(),
                }));
                self.alu(AluOp::Ic, v.into(), w.into(), w);
                self.op_rc(
                    Instr::mem(MemPiece::store(
                        MemMode::BaseShifted {
                            base: ptr,
                            shift: 2,
                        },
                        w,
                    )),
                    RefClass {
                        byte_sized: true,
                        character,
                    },
                );
                self.pool.release(w);
                self.pool.release(ptr);
            }
        }
    }

    // ---- calls ----

    /// Emits a call; afterwards the result (if any) is in `r1` and the
    /// caller must invoke [`Gen::restore_after_call`] once the result is
    /// secured. Statement-level calls can call both back to back.
    fn gen_call(&mut self, routine: usize, args: &[HArg]) {
        let upw = self.upw();
        let live = self.pool.live();
        self.saved_stack.push(live.clone());
        if !live.is_empty() {
            self.add_const_to(Reg::SP, -(live.len() as i64) * upw);
            for (k, &t) in live.iter().enumerate() {
                self.op(Instr::mem(MemPiece::store(
                    MemMode::Based {
                        base: Reg::SP,
                        disp: (k as i64 * upw) as i32,
                    },
                    t,
                )));
            }
        }
        let n = args.len();
        if n > 0 {
            self.add_const_to(Reg::SP, -(n as i64) * upw);
        }
        for (i, a) in args.iter().enumerate() {
            let disp = (i as i64 * upw) as i32;
            match a {
                HArg::Value(e) => {
                    let ty = e.ty();
                    let v = self.eval(e);
                    self.op_rc(
                        Instr::mem(MemPiece::store(
                            MemMode::Based {
                                base: Reg::SP,
                                disp,
                            },
                            v.reg,
                        )),
                        RefClass {
                            byte_sized: false,
                            character: ty.is_character(),
                        },
                    );
                    self.release(v);
                }
                HArg::Ref(lv) => {
                    let addr = self.addr_value(lv);
                    self.op(Instr::mem(MemPiece::store(
                        MemMode::Based {
                            base: Reg::SP,
                            disp,
                        },
                        addr,
                    )));
                    self.pool.release(addr);
                }
            }
        }
        self.op(Instr::Call(CallPiece {
            target: Target::Label(self.routine_labels[routine]),
            link: Reg::RA,
        }));
        if n > 0 {
            self.add_const_to(Reg::SP, n as i64 * upw);
        }
    }

    /// Restores temporaries saved by the matching [`Gen::gen_call`].
    fn restore_after_call(&mut self) {
        let upw = self.upw();
        let live = self.saved_stack.pop().expect("unbalanced call restore");
        if !live.is_empty() {
            for (k, &t) in live.iter().enumerate() {
                self.op(Instr::mem(MemPiece::load(
                    MemMode::Based {
                        base: Reg::SP,
                        disp: (k as i64 * upw) as i32,
                    },
                    t,
                )));
            }
            self.add_const_to(Reg::SP, live.len() as i64 * upw);
        }
    }

    /// Computes the unit address of an lvalue into an owned register
    /// (for `var` arguments).
    fn addr_value(&mut self, lv: &HLValue) -> Reg {
        let place = self.place_of(lv);
        match place {
            Place::Promoted(_) => unreachable!("promoted locals are never passed by reference"),
            Place::PackedByte { .. } => {
                unreachable!("packed elements are rejected as var arguments")
            }
            Place::Mode { mode, temps, .. } => {
                let addr = match mode {
                    MemMode::Absolute(a) => {
                        let v = self.materialize(a.value() as i64);
                        v.reg
                    }
                    MemMode::Based { base, disp } => {
                        let t = if temps.contains(&base) {
                            base
                        } else {
                            let t = self.pool.acquire();
                            self.mov(base, t);
                            t
                        };
                        self.add_const_to(t, disp as i64);
                        t
                    }
                    MemMode::BasedIndexed { base, index } => {
                        let t = if temps.contains(&index) {
                            index
                        } else {
                            let t = self.pool.acquire();
                            self.mov(index, t);
                            t
                        };
                        self.alu(AluOp::Add, t.into(), base.into(), t);
                        if temps.contains(&base) && base != t {
                            self.pool.release(base);
                        }
                        t
                    }
                    MemMode::BaseShifted { .. } => unreachable!("not produced by mode_of"),
                };
                addr
            }
        }
    }

    // ---- statements ----

    fn stmts(&mut self, ss: &[HStmt]) {
        for s in ss {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::Assign(lv, e) => {
                let v = self.eval(e);
                self.store(lv, v.reg);
                self.release(v);
            }
            HStmt::SetResult(e) => {
                let v = self.eval(e);
                let slot = self.frame.result_slot.expect("function context");
                let upw = self.upw();
                self.op(Instr::mem(MemPiece::store(
                    MemMode::Based {
                        base: Reg::FP,
                        disp: (slot as i64 * upw) as i32,
                    },
                    v.reg,
                )));
                self.release(v);
            }
            HStmt::If { cond, then, els } => {
                if els.is_empty() {
                    let lend = self.fresh();
                    self.cond(cond, lend, false);
                    self.stmts(then);
                    self.body.define(lend);
                } else {
                    let lelse = self.fresh();
                    let lend = self.fresh();
                    self.cond(cond, lelse, false);
                    self.stmts(then);
                    self.op(Instr::Jump(JumpPiece {
                        target: Target::Label(lend),
                    }));
                    self.body.define(lelse);
                    self.stmts(els);
                    self.body.define(lend);
                }
            }
            HStmt::While { cond, body } => {
                let ltop = self.fresh();
                let lend = self.fresh();
                self.body.define(ltop);
                self.cond(cond, lend, false);
                self.stmts(body);
                self.op(Instr::Jump(JumpPiece {
                    target: Target::Label(ltop),
                }));
                self.body.define(lend);
            }
            HStmt::Repeat { body, cond } => {
                let ltop = self.fresh();
                self.body.define(ltop);
                self.stmts(body);
                self.cond(cond, ltop, false);
            }
            HStmt::For {
                var,
                from,
                to,
                down,
                body,
            } => {
                let upw = self.upw();
                let limit_slot = self.alloc_slot();
                let limit_disp = (limit_slot as i64 * upw) as i32;
                let v = self.eval(from);
                self.store(var, v.reg);
                self.release(v);
                let t = self.eval(to);
                self.op(Instr::mem(MemPiece::store(
                    MemMode::Based {
                        base: Reg::FP,
                        disp: limit_disp,
                    },
                    t.reg,
                )));
                self.release(t);

                let ltop = self.fresh();
                let lend = self.fresh();
                self.body.define(ltop);
                let cur = self.load(var);
                let lim = self.pool.acquire();
                self.op(Instr::mem(MemPiece::load(
                    MemMode::Based {
                        base: Reg::FP,
                        disp: limit_disp,
                    },
                    lim,
                )));
                let exit_cond = if *down { Cond::Lt } else { Cond::Gt };
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    exit_cond,
                    cur.reg.into(),
                    lim.into(),
                    Target::Label(lend),
                )));
                self.release(cur);
                self.pool.release(lim);

                self.stmts(body);

                let cur = self.load(var);
                let lim = self.pool.acquire();
                self.op(Instr::mem(MemPiece::load(
                    MemMode::Based {
                        base: Reg::FP,
                        disp: limit_disp,
                    },
                    lim,
                )));
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    Cond::Eq,
                    cur.reg.into(),
                    lim.into(),
                    Target::Label(lend),
                )));
                self.pool.release(lim);
                let step = self.dst_for(cur);
                if *down {
                    self.alu(AluOp::Sub, cur.reg.into(), Operand::Small(1), step);
                } else {
                    self.alu(AluOp::Add, cur.reg.into(), Operand::Small(1), step);
                }
                self.store(var, step);
                self.pool.release(step);
                self.op(Instr::Jump(JumpPiece {
                    target: Target::Label(ltop),
                }));
                self.body.define(lend);
            }
            HStmt::Call { routine, args } => {
                self.gen_call(*routine, args);
                self.restore_after_call();
            }
            HStmt::Write { args, newline } => {
                for a in args {
                    match a {
                        HWriteArg::Int(e) => {
                            let v = self.eval(e);
                            self.mov(v.reg, Reg::R1);
                            self.op(Instr::Trap(TrapPiece {
                                code: traps::PUTINT,
                            }));
                            self.release(v);
                        }
                        HWriteArg::Char(e) => {
                            let v = self.eval(e);
                            self.mov(v.reg, Reg::R1);
                            self.op(Instr::Trap(TrapPiece { code: traps::PUTC }));
                            self.release(v);
                        }
                        HWriteArg::Str(s) => {
                            for &b in s {
                                self.op(Instr::Mvi(MviPiece {
                                    imm: b,
                                    dst: Reg::R1,
                                }));
                                self.op(Instr::Trap(TrapPiece { code: traps::PUTC }));
                            }
                        }
                    }
                }
                if *newline {
                    self.op(Instr::Mvi(MviPiece {
                        imm: b'\n',
                        dst: Reg::R1,
                    }));
                    self.op(Instr::Trap(TrapPiece { code: traps::PUTC }));
                }
            }
            HStmt::Block(ss) => self.stmts(ss),
            HStmt::Case {
                selector,
                arms,
                default,
            } => self.gen_case(selector, arms, default),
        }
    }

    /// Compiles a `case`. Dense label sets become a jump table reached
    /// through the two-slot indirect jump — the same dispatch idiom the
    /// paper's exception handler uses ("using the fields as an index into
    /// a jump table", §3.3). Each table entry is a protected
    /// `bra`+delay-slot pair, so entries are exactly two words apart.
    fn gen_case(&mut self, selector: &HExpr, arms: &[(Vec<i32>, Vec<HStmt>)], default: &[HStmt]) {
        let lend = self.fresh();
        let ldefault = self.fresh();
        let arm_labels: Vec<Label> = arms.iter().map(|_| self.fresh()).collect();

        let all: Vec<(i32, usize)> = arms
            .iter()
            .enumerate()
            .flat_map(|(i, (ls, _))| ls.iter().map(move |&l| (l, i)))
            .collect();

        if all.is_empty() {
            self.stmts(default);
            self.body.define(lend);
            self.body.define(ldefault);
            return;
        }

        let v = self.eval(selector);
        let lo = all.iter().map(|p| p.0).min().unwrap();
        let hi = all.iter().map(|p| p.0).max().unwrap();
        let span = (hi as i64 - lo as i64 + 1) as usize;
        let dense = span <= 2 * all.len() + 8 && span <= 96;

        if dense {
            // Normalize the selector into an owned register.
            let t = if v.owned {
                v.reg
            } else {
                let t = self.pool.acquire();
                self.mov(v.reg, t);
                t
            };
            self.add_const_to(t, -(lo as i64));
            // One unsigned bound check covers both below-range (wraps
            // huge) and above-range.
            let bound = (span - 1) as i64;
            if (0..=15).contains(&bound) {
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    Cond::Gtu,
                    t.into(),
                    Operand::Small(bound as u8),
                    Target::Label(ldefault),
                )));
            } else {
                let m = self.materialize(bound);
                self.op(Instr::CmpBranch(CmpBranchPiece::new(
                    Cond::Gtu,
                    t.into(),
                    m.reg.into(),
                    Target::Label(ldefault),
                )));
                self.release(m);
            }
            // Each table entry is bra + delay slot: stride two words.
            self.alu(AluOp::Sll, t.into(), Operand::Small(1), t);
            let ltable = self.fresh();
            let tb = self.pool.acquire();
            self.body.op_meta(
                UnschedOp::new(Instr::Lea {
                    target: Target::Label(ltable),
                    dst: tb,
                })
                .no_touch(),
            );
            self.alu(AluOp::Add, t.into(), tb.into(), t);
            self.pool.release(tb);
            self.op(Instr::JumpInd(JumpIndPiece { base: t, disp: 0 }));
            self.pool.release(t);
            self.body.define(ltable);
            let mut table = vec![ldefault; span];
            for &(val, arm) in &all {
                table[(val as i64 - lo as i64) as usize] = arm_labels[arm];
            }
            for target in table {
                self.body.op_meta(
                    UnschedOp::new(Instr::Jump(JumpPiece {
                        target: Target::Label(target),
                    }))
                    .no_touch(),
                );
            }
        } else {
            // Sparse labels: compare chain.
            for &(val, arm) in &all {
                if (0..=15).contains(&val) {
                    self.op(Instr::CmpBranch(CmpBranchPiece::new(
                        Cond::Eq,
                        v.reg.into(),
                        Operand::Small(val as u8),
                        Target::Label(arm_labels[arm]),
                    )));
                } else {
                    let m = self.materialize(val as i64);
                    self.op(Instr::CmpBranch(CmpBranchPiece::new(
                        Cond::Eq,
                        v.reg.into(),
                        m.reg.into(),
                        Target::Label(arm_labels[arm]),
                    )));
                    self.release(m);
                }
            }
            self.release(v);
            self.op(Instr::Jump(JumpPiece {
                target: Target::Label(ldefault),
            }));
        }

        for (i, (_, body)) in arms.iter().enumerate() {
            self.body.define(arm_labels[i]);
            self.stmts(body);
            self.op(Instr::Jump(JumpPiece {
                target: Target::Label(lend),
            }));
        }
        self.body.define(ldefault);
        self.stmts(default);
        self.body.define(lend);
    }
}

fn rel_cond(op: HRelOp) -> Cond {
    match op {
        HRelOp::Eq => Cond::Eq,
        HRelOp::Ne => Cond::Ne,
        HRelOp::Lt => Cond::Lt,
        HRelOp::Le => Cond::Le,
        HRelOp::Gt => Cond::Gt,
        HRelOp::Ge => Cond::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_core::Item;

    fn gen(src: &str, opts: &CodegenOptions) -> LinearCode {
        compile_mips(src, opts).unwrap()
    }

    fn ops_of<'a>(lc: &'a LinearCode, routine: &str) -> Vec<&'a Instr> {
        // Slice the ops between `routine`'s symbol and the next symbol.
        let items = lc.items();
        let start = items
            .iter()
            .position(|i| matches!(i, Item::Symbol(s) if s == routine))
            .unwrap_or_else(|| panic!("no symbol {routine}"));
        items[start + 1..]
            .iter()
            .take_while(|i| !matches!(i, Item::Symbol(_)))
            .filter_map(|i| match i {
                Item::Op(o) => Some(&o.instr),
                _ => None,
            })
            .collect()
    }

    fn shown(lc: &LinearCode) -> String {
        lc.to_string()
    }

    #[test]
    fn small_constants_use_the_operand_field() {
        let lc = gen(
            "program t; var x: integer; begin x := x + 7 end.",
            &CodegenOptions::standard(),
        );
        let s = shown(&lc);
        assert!(s.contains("add r0,#7,r0") || s.contains(",#7,"), "{s}");
        assert!(!s.contains("mvi #7"), "7 must ride the 4-bit field: {s}");
    }

    #[test]
    fn constant_minus_variable_uses_reverse_subtract() {
        let lc = gen(
            "program t; var x, y: integer; begin y := 10 - x end.",
            &CodegenOptions::standard(),
        );
        let s = shown(&lc);
        assert!(s.contains("rsub"), "reverse operator expected: {s}");
    }

    #[test]
    fn multiply_by_power_of_two_becomes_shift() {
        let lc = gen(
            "program t; var x, y: integer; begin y := x * 8 end.",
            &CodegenOptions::standard(),
        );
        let s = shown(&lc);
        assert!(s.contains("sll"), "{s}");
        assert!(!s.contains("mul"), "{s}");
    }

    #[test]
    fn packed_byte_store_emits_the_paper_sequence() {
        // §4.1: "ld (r0>>2),r2 · mov rl,lo · ic lo,r3,r2 · st r2,(r0>>2)"
        let lc = gen(
            "program t; var s: packed array [0..9] of char; i: integer;
             begin s[i] := 'x' end.",
            &CodegenOptions::standard(),
        );
        let s = shown(&lc);
        assert!(s.contains(">>2)"), "byte pointer fetch: {s}");
        assert!(s.contains("wsp") && s.contains("lo"), "byte selector: {s}");
        assert!(s.contains("ic "), "insert byte: {s}");
    }

    #[test]
    fn packed_byte_load_uses_extract() {
        let lc = gen(
            "program t; var s: packed array [0..9] of char; c: char; i: integer;
             begin c := s[i] end.",
            &CodegenOptions::standard(),
        );
        let s = shown(&lc);
        assert!(s.contains("xc "), "extract byte: {s}");
    }

    #[test]
    fn byte_machine_uses_byte_width_accesses() {
        let lc = gen(
            "program t; var c, d: char; begin d := c end.",
            &CodegenOptions {
                target: MachineTarget::Byte,
                ..CodegenOptions::standard()
            },
        );
        let s = shown(&lc);
        assert!(s.contains("ldb"), "{s}");
        assert!(s.contains("stb"), "{s}");
    }

    #[test]
    fn setcond_strategy_is_branch_free_for_boolean_values() {
        let lc = gen(
            "program t; var b: boolean; x: integer;
             begin b := (x = 1) or (x = 2) end.",
            &CodegenOptions::standard(),
        );
        let ops = ops_of(&lc, "main");
        let branches = ops.iter().filter(|i| i.branch_delay() > 0).count();
        // Only the procedure return (an indirect jump) branches.
        assert_eq!(branches, 1, "{}", shown(&lc));
        assert!(ops.iter().any(|i| matches!(i, Instr::SetCond(_))));
    }

    #[test]
    fn branching_strategy_branches() {
        let lc = gen(
            "program t; var b: boolean; x: integer;
             begin b := (x = 1) or (x = 2) end.",
            &CodegenOptions {
                bool_value: BoolValueStrategy::Branching,
                ..CodegenOptions::standard()
            },
        );
        let ops = ops_of(&lc, "main");
        assert!(
            ops.iter().any(|i| matches!(i, Instr::CmpBranch(_))),
            "{}",
            shown(&lc)
        );
    }

    #[test]
    fn promotion_keeps_hot_locals_out_of_memory() {
        let src = "program t;
             function f(n: integer): integer;
             var acc, i: integer;
             begin
               acc := 0;
               for i := 1 to n do acc := acc + i;
               f := acc
             end;
             begin writeln(f(5)) end.";
        let none = gen(
            src,
            &CodegenOptions {
                promote_locals: 0,
                ..CodegenOptions::standard()
            },
        );
        let some = gen(
            src,
            &CodegenOptions {
                promote_locals: 4,
                ..CodegenOptions::standard()
            },
        );
        let mem_ops = |lc: &LinearCode| lc.ops().filter(|o| o.instr.references_memory()).count();
        assert!(
            mem_ops(&some) < mem_ops(&none),
            "promotion must cut memory traffic: {} vs {}",
            mem_ops(&some),
            mem_ops(&none)
        );
    }

    #[test]
    fn ref_locals_are_never_promoted() {
        // `x` is passed by reference: it must stay addressable.
        let src = "program t;
             procedure bump(var v: integer); begin v := v + 1 end;
             procedure go;
             var x: integer;
             begin
               x := 1; x := x + 1; x := x * 2; x := x - 1;
               bump(x);
               writeln(x)
             end;
             begin go end.";
        let lc = gen(
            src,
            &CodegenOptions {
                promote_locals: 6,
                ..CodegenOptions::standard()
            },
        );
        // Correctness is the real check: run it end to end elsewhere; here
        // assert that `go` still stores x to its frame for the var arg.
        let ops = ops_of(&lc, "go");
        assert!(ops.iter().any(|i| i.references_memory()), "{}", shown(&lc));
    }

    #[test]
    fn calls_save_live_temporaries() {
        let src = "program t;
             function f(x: integer): integer; begin f := x + 1 end;
             var y: integer;
             begin y := f(1) + f(2) end.";
        let lc = gen(src, &CodegenOptions::standard());
        // The first call's result must survive the second call: a store
        // below sp followed by a reload.
        let s = shown(&lc);
        assert!(s.contains("(r14)"), "stack traffic expected: {s}");
    }

    #[test]
    fn linear_output_has_no_nops_or_packing() {
        let w = "program t; var x: integer; begin x := 1 end.";
        let lc = gen(w, &CodegenOptions::standard());
        for op in lc.ops() {
            assert!(!op.instr.is_nop());
            assert!(!op.instr.is_packed_pair());
        }
    }
}

#[cfg(test)]
mod case_tests {
    use super::*;

    fn compiled(src: &str) -> String {
        compile_mips(src, &CodegenOptions::standard())
            .unwrap()
            .to_string()
    }

    #[test]
    fn dense_case_uses_a_jump_table() {
        let s = compiled(
            "program t; var i, r: integer;
             begin
               case i of
                 0: r := 1; 1: r := 2; 2: r := 3; 3: r := 4
               else r := 0
               end
             end.",
        );
        assert!(s.contains("lea"), "jump-table base expected: {s}");
        assert!(s.contains("jmpi"), "indirect dispatch expected: {s}");
        assert!(s.contains("bgtu"), "unsigned bounds check expected: {s}");
    }

    #[test]
    fn sparse_case_uses_a_compare_chain() {
        let s = compiled(
            "program t; var i, r: integer;
             begin
               case i of
                 0: r := 1;
                 1000: r := 2;
                 20000: r := 3
               else r := 0
               end
             end.",
        );
        // One `jmpi` belongs to main's return; a table would add a second
        // plus a `lea`.
        assert!(!s.contains("lea"), "no table for sparse labels: {s}");
        // Only main's epilogue return uses an indirect jump.
        assert_eq!(s.matches("jmpi").count(), 1, "{s}");
    }
}
