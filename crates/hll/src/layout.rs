//! Data layout under the paper's two allocation regimes (§4.1).
//!
//! * **Word machine, word-allocated** (Table 7): every unpacked datum —
//!   including characters and booleans — occupies a full word; only
//!   `packed` arrays of char/bool are byte-packed, reached through byte
//!   pointers and the insert/extract-byte instructions. This matches "the
//!   global activation records of the word-based allocation version
//!   average 20% larger".
//! * **Byte machine, byte-allocated** (Table 8): "allocates all characters
//!   and booleans as bytes" — char/bool data takes one byte whether packed
//!   or not; integers take four bytes, aligned.
//!
//! Addresses are measured in *units*: words on the word-addressed machine,
//! bytes on the byte-addressed variant.

use crate::hir::{ArrayTy, HProgram, Ty};

/// Which machine (and, jointly, which allocation regime) code is laid out
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineTarget {
    /// Word-addressed MIPS, word-allocated data (the real machine).
    #[default]
    Word,
    /// The byte-addressed variant with byte-allocated characters
    /// (the §4.1 comparison machine).
    Byte,
}

impl MachineTarget {
    /// Bytes per address unit (1 on the byte machine, 4 per word
    /// otherwise — i.e. how a *word slot count* converts to units).
    pub fn units_per_word(self) -> u32 {
        match self {
            MachineTarget::Word => 1,
            MachineTarget::Byte => 4,
        }
    }
}

/// First global's address, in units.
pub fn global_base(t: MachineTarget) -> u32 {
    match t {
        MachineTarget::Word => 0x1000,
        MachineTarget::Byte => 0x4000,
    }
}

/// Initial stack pointer (stack grows down), in units.
pub fn stack_top(t: MachineTarget) -> u32 {
    match t {
        MachineTarget::Word => 0x00e0_0000,
        // Same word, expressed in bytes — still inside the 24-bit word
        // space after the machine's `>>2`.
        MachineTarget::Byte => 0x00e0_0000 * 4,
    }
}

/// Whether a scalar of type `ty` is stored as a byte on this target.
pub fn scalar_is_byte(t: MachineTarget, ty: &Ty) -> bool {
    t == MachineTarget::Byte && ty.is_byte_datum()
}

/// Whether elements of `arr` are byte-sized on this target.
pub fn elems_are_bytes(t: MachineTarget, arr: &ArrayTy) -> bool {
    match t {
        MachineTarget::Word => arr.byte_elems_when_packed(),
        MachineTarget::Byte => arr.elem.is_byte_datum(),
    }
}

/// Element stride within `arr`, in units.
pub fn elem_stride(t: MachineTarget, arr: &ArrayTy) -> u32 {
    if elems_are_bytes(t, arr) {
        1
    } else {
        size_units(t, &arr.elem)
    }
}

/// Storage size of a type, in units (byte-machine sizes are rounded up to
/// word alignment for aggregates containing words).
pub fn size_units(t: MachineTarget, ty: &Ty) -> u32 {
    match (t, ty) {
        (MachineTarget::Word, Ty::Int | Ty::Char | Ty::Bool) => 1,
        (MachineTarget::Word, Ty::Array(a)) => {
            if a.byte_elems_when_packed() {
                a.count().div_ceil(4)
            } else {
                a.count() * size_units(t, &a.elem)
            }
        }
        (MachineTarget::Byte, Ty::Int) => 4,
        (MachineTarget::Byte, Ty::Char | Ty::Bool) => 1,
        (MachineTarget::Byte, Ty::Array(a)) => {
            let raw = a.count() * elem_stride(t, a);
            raw.div_ceil(4) * 4
        }
    }
}

/// Alignment of a type, in units.
pub fn align_units(t: MachineTarget, ty: &Ty) -> u32 {
    match t {
        MachineTarget::Word => 1,
        MachineTarget::Byte => match ty {
            Ty::Char | Ty::Bool => 1,
            Ty::Int => 4,
            Ty::Array(a) => {
                if elems_are_bytes(t, a) {
                    1
                } else {
                    4
                }
            }
        },
    }
}

/// Global-variable addresses, in units.
#[derive(Debug, Clone)]
pub struct Layout {
    /// The target.
    pub target: MachineTarget,
    /// Address of each global (parallel to [`HProgram::globals`]).
    pub global_addr: Vec<u32>,
    /// One word past the last global (in units).
    pub global_end: u32,
}

impl Layout {
    /// Lays out a program's globals.
    pub fn new(prog: &HProgram, target: MachineTarget) -> Layout {
        let mut addr = global_base(target);
        let mut global_addr = Vec::with_capacity(prog.globals.len());
        for g in &prog.globals {
            let a = align_units(target, &g.ty);
            addr = addr.div_ceil(a) * a;
            global_addr.push(addr);
            addr += size_units(target, &g.ty);
        }
        Layout {
            target,
            global_addr,
            global_end: addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn arr(elem: Ty, n: i32, packed: bool) -> Ty {
        Ty::Array(Rc::new(ArrayTy {
            elem,
            lo: 0,
            hi: n - 1,
            packed,
        }))
    }

    #[test]
    fn word_machine_sizes() {
        let t = MachineTarget::Word;
        assert_eq!(size_units(t, &Ty::Int), 1);
        assert_eq!(size_units(t, &Ty::Char), 1, "unpacked chars take a word");
        assert_eq!(size_units(t, &arr(Ty::Char, 80, false)), 80);
        assert_eq!(
            size_units(t, &arr(Ty::Char, 80, true)),
            20,
            "packed: 4/word"
        );
        assert_eq!(size_units(t, &arr(Ty::Char, 81, true)), 21);
        assert_eq!(
            size_units(t, &arr(Ty::Int, 10, true)),
            10,
            "packed ints stay words"
        );
    }

    #[test]
    fn byte_machine_sizes() {
        let t = MachineTarget::Byte;
        assert_eq!(size_units(t, &Ty::Int), 4);
        assert_eq!(size_units(t, &Ty::Char), 1, "byte-allocated chars");
        assert_eq!(
            size_units(t, &arr(Ty::Char, 80, false)),
            80,
            "bytes even unpacked"
        );
        assert_eq!(size_units(t, &arr(Ty::Int, 10, false)), 40);
    }

    #[test]
    fn word_allocation_is_larger_for_char_data() {
        // The paper: word-allocated records average ~20% larger; for pure
        // char data the factor is 4.
        let w = size_units(MachineTarget::Word, &arr(Ty::Char, 100, false));
        let b = size_units(MachineTarget::Byte, &arr(Ty::Char, 100, false));
        assert_eq!(w, 100);
        assert_eq!(b, 100); // bytes
                            // compare in bytes:
        assert_eq!(w * 4, 400);
    }

    #[test]
    fn strides() {
        let packed = ArrayTy {
            elem: Ty::Char,
            lo: 0,
            hi: 9,
            packed: true,
        };
        assert_eq!(elem_stride(MachineTarget::Word, &packed), 1); // byte ptr units
        assert!(elems_are_bytes(MachineTarget::Word, &packed));
        let unpacked = ArrayTy {
            elem: Ty::Char,
            lo: 0,
            hi: 9,
            packed: false,
        };
        assert_eq!(elem_stride(MachineTarget::Word, &unpacked), 1); // words
        assert!(!elems_are_bytes(MachineTarget::Word, &unpacked));
        assert!(elems_are_bytes(MachineTarget::Byte, &unpacked));
        let ints = ArrayTy {
            elem: Ty::Int,
            lo: 0,
            hi: 9,
            packed: false,
        };
        assert_eq!(elem_stride(MachineTarget::Byte, &ints), 4);
    }

    #[test]
    fn global_layout_aligns_on_byte_machine() {
        use crate::hir::{HProgram, HRoutine, HVar};
        let prog = HProgram {
            name: "t".into(),
            globals: vec![
                HVar {
                    name: "c".into(),
                    ty: Ty::Char,
                },
                HVar {
                    name: "i".into(),
                    ty: Ty::Int,
                },
            ],
            routines: vec![HRoutine {
                name: "main".into(),
                params: vec![],
                locals: vec![],
                ret: None,
                body: vec![],
            }],
            main: 0,
        };
        let l = Layout::new(&prog, MachineTarget::Byte);
        assert_eq!(l.global_addr[0], global_base(MachineTarget::Byte));
        assert_eq!(l.global_addr[1] % 4, 0, "int aligned");
        assert!(l.global_addr[1] > l.global_addr[0]);

        let lw = Layout::new(&prog, MachineTarget::Word);
        assert_eq!(lw.global_addr[1], lw.global_addr[0] + 1);
    }
}
