//! Recursive-descent parser for Pasqal.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Tok, Token};

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, CompileError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    // ---- program structure ----

    fn program(&mut self) -> PResult<Program> {
        self.expect(&Tok::Program)?;
        let name = self.ident()?;
        self.expect(&Tok::Semi)?;
        let decls = self.decls(true)?;
        self.expect(&Tok::Begin)?;
        let main = self.stmt_list()?;
        self.expect(&Tok::End)?;
        self.expect(&Tok::Dot)?;
        if self.peek() != &Tok::Eof {
            return Err(CompileError::new(self.line(), "text after final `.`"));
        }
        Ok(Program { name, decls, main })
    }

    fn decls(&mut self, allow_routines: bool) -> PResult<Vec<Decl>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Tok::Const => {
                    self.bump();
                    loop {
                        let line = self.line();
                        let name = self.ident()?;
                        self.expect(&Tok::Eq)?;
                        let value = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        out.push(Decl::Const { name, value, line });
                        if !matches!(self.peek(), Tok::Ident(_)) {
                            break;
                        }
                    }
                }
                Tok::Type => {
                    self.bump();
                    loop {
                        let line = self.line();
                        let name = self.ident()?;
                        self.expect(&Tok::Eq)?;
                        let ty = self.type_expr()?;
                        self.expect(&Tok::Semi)?;
                        out.push(Decl::Type { name, ty, line });
                        if !matches!(self.peek(), Tok::Ident(_)) {
                            break;
                        }
                    }
                }
                Tok::Var => {
                    self.bump();
                    loop {
                        let line = self.line();
                        let mut names = vec![self.ident()?];
                        while self.eat(&Tok::Comma) {
                            names.push(self.ident()?);
                        }
                        self.expect(&Tok::Colon)?;
                        let ty = self.type_expr()?;
                        self.expect(&Tok::Semi)?;
                        out.push(Decl::Var { names, ty, line });
                        if !matches!(self.peek(), Tok::Ident(_)) {
                            break;
                        }
                    }
                }
                Tok::Function | Tok::Procedure if allow_routines => {
                    out.push(Decl::Routine(self.routine()?));
                }
                _ => break,
            }
        }
        Ok(out)
    }

    fn routine(&mut self) -> PResult<Routine> {
        let line = self.line();
        let is_func = matches!(self.bump(), Tok::Function);
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                let by_ref = self.eat(&Tok::Var);
                let pline = self.line();
                let mut names = vec![self.ident()?];
                while self.eat(&Tok::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(&Tok::Colon)?;
                let ty = self.type_expr()?;
                for n in names {
                    params.push(Param {
                        name: n,
                        ty: ty.clone(),
                        by_ref,
                        line: pline,
                    });
                }
                if !self.eat(&Tok::Semi) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let ret = if is_func {
            self.expect(&Tok::Colon)?;
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        let locals = self.decls(false)?;
        self.expect(&Tok::Begin)?;
        let body = self.stmt_list()?;
        self.expect(&Tok::End)?;
        self.expect(&Tok::Semi)?;
        Ok(Routine {
            name,
            params,
            ret,
            locals,
            body,
            line,
        })
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let line = self.line();
        let packed = self.eat(&Tok::Packed);
        if self.eat(&Tok::Array) {
            self.expect(&Tok::LBracket)?;
            let lo = self.expr()?;
            self.expect(&Tok::DotDot)?;
            let hi = self.expr()?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::Of)?;
            let elem = Box::new(self.type_expr()?);
            return Ok(TypeExpr::Array {
                packed,
                lo,
                hi,
                elem,
                line,
            });
        }
        if packed {
            return Err(CompileError::new(line, "`packed` must precede `array`"));
        }
        Ok(TypeExpr::Name(self.ident()?, line))
    }

    // ---- statements ----

    fn stmt_list(&mut self) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            // Allow empty statements (stray semicolons) as Pascal does.
            while self.eat(&Tok::Semi) {}
            if matches!(self.peek(), Tok::End | Tok::Until) {
                break;
            }
            out.push(self.stmt()?);
            if !self.eat(&Tok::Semi) {
                break;
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Begin => {
                self.bump();
                let body = self.stmt_list()?;
                self.expect(&Tok::End)?;
                Ok(Stmt::Block(body))
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Tok::Then)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    line,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Tok::Do)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, line })
            }
            Tok::Repeat => {
                self.bump();
                let body = self.stmt_list()?;
                self.expect(&Tok::Until)?;
                let cond = self.expr()?;
                Ok(Stmt::Repeat { body, cond, line })
            }
            Tok::Case => {
                self.bump();
                let selector = self.expr()?;
                self.expect(&Tok::Of)?;
                let mut arms = Vec::new();
                let mut els = None;
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::End) {
                        break;
                    }
                    if self.eat(&Tok::Else) {
                        els = Some(Box::new(self.stmt()?));
                        let _ = self.eat(&Tok::Semi);
                        self.expect(&Tok::End)?;
                        break;
                    }
                    let mut labels = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        labels.push(self.expr()?);
                    }
                    self.expect(&Tok::Colon)?;
                    let body = self.stmt()?;
                    arms.push((labels, body));
                    // Arms are separated by `;`; `else`/`end` may follow
                    // the last arm directly (Pascal style).
                    if !matches!(self.peek(), Tok::Semi | Tok::Else | Tok::End) {
                        return Err(CompileError::new(
                            self.line(),
                            format!(
                                "expected `;`, `else`, or `end` in case, found {}",
                                self.peek()
                            ),
                        ));
                    }
                }
                Ok(Stmt::Case {
                    selector,
                    arms,
                    els,
                    line,
                })
            }
            Tok::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let from = self.expr()?;
                let down = match self.bump() {
                    Tok::To => false,
                    Tok::Downto => true,
                    other => {
                        return Err(CompileError::new(
                            line,
                            format!("expected `to` or `downto`, found {other}"),
                        ))
                    }
                };
                let to = self.expr()?;
                self.expect(&Tok::Do)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    down,
                    body,
                    line,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if name == "write" || name == "writeln" {
                    let newline = name == "writeln";
                    let mut args = Vec::new();
                    if self.eat(&Tok::LParen) {
                        loop {
                            match self.peek().clone() {
                                Tok::Str(s) => {
                                    self.bump();
                                    args.push(WriteArg::Str(s));
                                }
                                _ => args.push(WriteArg::Expr(self.expr()?)),
                            }
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    return Ok(Stmt::Write {
                        args,
                        newline,
                        line,
                    });
                }
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Tok::RParen)?;
                        }
                        Ok(Stmt::Call { name, args, line })
                    }
                    _ => {
                        let indices = self.index_suffix()?;
                        // A bare identifier (no indices, no `:=`) is a
                        // parameterless procedure call.
                        if indices.is_empty() && self.peek() != &Tok::Assign {
                            return Ok(Stmt::Call {
                                name,
                                args: Vec::new(),
                                line,
                            });
                        }
                        self.expect(&Tok::Assign)?;
                        let e = self.expr()?;
                        Ok(Stmt::Assign {
                            lv: Designator {
                                name,
                                indices,
                                line,
                            },
                            e,
                            line,
                        })
                    }
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected statement, found {other}"),
            )),
        }
    }

    /// Parses `[e]`, `[e][e]`, and `[e, e]` index chains.
    fn index_suffix(&mut self) -> PResult<Vec<Expr>> {
        let mut indices = Vec::new();
        while self.eat(&Tok::LBracket) {
            loop {
                indices.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        Ok(indices)
    }

    // ---- expressions (Pascal precedence) ----

    fn expr(&mut self) -> PResult<Expr> {
        let a = self.simple()?;
        let line = self.line();
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(a),
        };
        self.bump();
        let b = self.simple()?;
        Ok(Expr::Bin {
            op,
            a: Box::new(a),
            b: Box::new(b),
            line,
        })
    }

    fn simple(&mut self) -> PResult<Expr> {
        let line = self.line();
        let mut a = if self.eat(&Tok::Minus) {
            Expr::Neg(Box::new(self.term()?), line)
        } else {
            let _ = self.eat(&Tok::Plus);
            self.term()?
        };
        loop {
            let line = self.line();
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Or => BinOp::Or,
                _ => break,
            };
            self.bump();
            let b = self.term()?;
            a = Expr::Bin {
                op,
                a: Box::new(a),
                b: Box::new(b),
                line,
            };
        }
        Ok(a)
    }

    fn term(&mut self) -> PResult<Expr> {
        let mut a = self.factor()?;
        loop {
            let line = self.line();
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Div => BinOp::Div,
                Tok::Mod => BinOp::Mod,
                Tok::And => BinOp::And,
                _ => break,
            };
            self.bump();
            let b = self.factor()?;
            a = Expr::Bin {
                op,
                a: Box::new(a),
                b: Box::new(b),
                line,
            };
        }
        Ok(a)
    }

    fn factor(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, line))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(Expr::Char(c, line))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, line))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, line))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Not(Box::new(self.factor()?), line))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?), line))
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Tok::RParen)?;
                        }
                        Ok(Expr::Call { name, args, line })
                    }
                    Tok::LBracket => {
                        let indices = self.index_suffix()?;
                        Ok(Expr::Index(Box::new(Designator {
                            name,
                            indices,
                            line,
                        })))
                    }
                    _ => Ok(Expr::Name(name, line)),
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] on syntax errors.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn minimal_program() {
        let p = parse_src("program p; begin end.").unwrap();
        assert_eq!(p.name, "p");
        assert!(p.decls.is_empty());
        assert!(p.main.is_empty());
    }

    #[test]
    fn full_shapes_parse() {
        let p = parse_src(
            "
            program demo;
            const n = 10; m = -n;
            type row = array [0..7] of integer;
            var a: array [1..100] of integer;
                line: packed array [0..79] of char;
                i, j: integer;
                ok: boolean;

            function fib(k: integer): integer;
            begin
              if k < 2 then fib := k
              else fib := fib(k-1) + fib(k-2)
            end;

            procedure fill(var x: integer; v: integer);
            var t: integer;
            begin
              x := v;
              for t := 1 to 10 do a[t] := t * v;
              while i > 0 do i := i - 1;
              repeat i := i + 1 until i = 5;
              if ok and (line[0] = 'a') then write(line[0]);
              writeln('sum=', i)
            end;

            begin
              fill(i, 3);
              writeln(fib(n))
            end.
            ",
        )
        .unwrap();
        assert_eq!(p.decls.len(), 9);
        assert_eq!(p.main.len(), 2);
        let Decl::Routine(f) = &p.decls[7] else {
            panic!("expected routine");
        };
        assert_eq!(f.name, "fib");
        assert!(f.ret.is_some());
        let Decl::Routine(g) = &p.decls[8] else {
            panic!("expected routine");
        };
        assert!(g.params[0].by_ref);
        assert!(!g.params[1].by_ref);
    }

    #[test]
    fn precedence() {
        let p = parse_src("program p; var x: integer; begin x := 1 + 2 * 3 end.").unwrap();
        let Stmt::Assign { e, .. } = &p.main[0] else {
            panic!()
        };
        let Expr::Bin {
            op: BinOp::Add, b, ..
        } = e
        else {
            panic!("expected + at top: {e:?}")
        };
        assert!(matches!(**b, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn relational_binds_loosest() {
        let p = parse_src("program p; var b: boolean; begin b := (1 = 2) or (3 = 4) end.").unwrap();
        let Stmt::Assign { e, .. } = &p.main[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Bin { op: BinOp::Or, .. }));
    }

    #[test]
    fn multi_dim_index_sugar() {
        let p = parse_src(
            "program p; var m: array [0..3] of array [0..3] of integer;
             begin m[1,2] := m[1][2] end.",
        )
        .unwrap();
        let Stmt::Assign { lv, e, .. } = &p.main[0] else {
            panic!()
        };
        assert_eq!(lv.indices.len(), 2);
        let Expr::Index(d) = e else { panic!() };
        assert_eq!(d.indices.len(), 2);
    }

    #[test]
    fn error_reporting() {
        let e = parse_src("program p; begin x = 1 end.").unwrap_err();
        assert!(e.message.contains("expected"), "{e}");
        assert!(parse_src("program p; begin end").is_err()); // missing dot
        assert!(parse_src("begin end.").is_err()); // missing header
    }

    #[test]
    fn empty_statements_allowed() {
        assert!(parse_src("program p; begin ;; end.").is_ok());
    }
}
