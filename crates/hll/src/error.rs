//! Compilation errors.

use std::error::Error;
use std::fmt;

/// A lexical, syntactic, or semantic error, with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(line: usize, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for CompileError {}
