//! The parse-level abstract syntax tree (names unresolved, types
//! unchecked).

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The program name.
    pub name: String,
    /// Global declarations in order.
    pub decls: Vec<Decl>,
    /// The main statement block.
    pub main: Vec<Stmt>,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `const name = value;`
    Const {
        /// Name.
        name: String,
        /// Constant expression.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `type name = ty;`
    Type {
        /// Name.
        name: String,
        /// The named type.
        ty: TypeExpr,
        /// Source line.
        line: usize,
    },
    /// `var a, b: ty;`
    Var {
        /// Names.
        names: Vec<String>,
        /// Their type.
        ty: TypeExpr,
        /// Source line.
        line: usize,
    },
    /// A function or procedure.
    Routine(Routine),
}

/// A function or procedure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routine {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (None = procedure).
    pub ret: Option<TypeExpr>,
    /// Local declarations (const/var only).
    pub locals: Vec<Decl>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// A parameter group member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: TypeExpr,
    /// `var` (by-reference) parameter?
    pub by_ref: bool,
    /// Source line.
    pub line: usize,
}

/// A syntactic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// A type name (`integer`, `char`, `boolean`, or a declared name).
    Name(String, usize),
    /// `[packed] array [lo..hi] of elem`
    Array {
        /// Packed?
        packed: bool,
        /// Lower bound (constant expression).
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Element type.
        elem: Box<TypeExpr>,
        /// Source line.
        line: usize,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lv := e`
    Assign {
        /// Target.
        lv: Designator,
        /// Value.
        e: Expr,
        /// Source line.
        line: usize,
    },
    /// Procedure call.
    Call {
        /// Procedure name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `if c then t [else e]`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Else-branch.
        els: Option<Box<Stmt>>,
        /// Source line.
        line: usize,
    },
    /// `while c do s`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `repeat ss until c`
    Repeat {
        /// Body.
        body: Vec<Stmt>,
        /// Exit condition.
        cond: Expr,
        /// Source line.
        line: usize,
    },
    /// `for v := a to|downto b do s`
    For {
        /// Loop variable name.
        var: String,
        /// Start.
        from: Expr,
        /// End.
        to: Expr,
        /// Counting down?
        down: bool,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `case e of … end`
    Case {
        /// Selector expression.
        selector: Expr,
        /// Arms: constant labels and their statement.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// Optional `else` statement.
        els: Option<Box<Stmt>>,
        /// Source line.
        line: usize,
    },
    /// `begin … end`
    Block(Vec<Stmt>),
    /// `write(...)` / `writeln(...)`
    Write {
        /// Arguments.
        args: Vec<WriteArg>,
        /// Trailing newline?
        newline: bool,
        /// Source line.
        line: usize,
    },
}

/// An argument of write/writeln.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteArg {
    /// An expression (integer, char, or boolean).
    Expr(Expr),
    /// A string literal.
    Str(Vec<u8>),
}

/// An assignable location: a variable with zero or more index steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Designator {
    /// Variable name.
    pub name: String,
    /// Index expressions (multi-dimensional arrays index step by step).
    pub indices: Vec<Expr>,
    /// Source line.
    pub line: usize,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `and`
    And,
    /// `or`
    Or,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, usize),
    /// Char literal.
    Char(u8, usize),
    /// `true`/`false`.
    Bool(bool, usize),
    /// Variable/constant reference or zero-argument function call.
    Name(String, usize),
    /// Array element.
    Index(Box<Designator>),
    /// Function call.
    Call {
        /// Name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// Unary minus.
    Neg(Box<Expr>, usize),
    /// `not`.
    Not(Box<Expr>, usize),
}

impl Expr {
    /// The expression's source line.
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_, l)
            | Expr::Char(_, l)
            | Expr::Bool(_, l)
            | Expr::Name(_, l)
            | Expr::Neg(_, l)
            | Expr::Not(_, l) => *l,
            Expr::Index(d) => d.line,
            Expr::Call { line, .. } | Expr::Bin { line, .. } => *line,
        }
    }
}
