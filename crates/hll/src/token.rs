//! Pasqal tokens.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (lowercased — Pasqal is case-insensitive like Pascal).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Character literal `'a'`.
    Char(u8),
    /// String literal `'hello'` (two or more characters).
    Str(Vec<u8>),

    // Keywords.
    /// `program`
    Program,
    /// `const`
    Const,
    /// `type`
    Type,
    /// `var`
    Var,
    /// `function`
    Function,
    /// `procedure`
    Procedure,
    /// `begin`
    Begin,
    /// `end`
    End,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `repeat`
    Repeat,
    /// `until`
    Until,
    /// `for`
    For,
    /// `to`
    To,
    /// `downto`
    Downto,
    /// `case`
    Case,
    /// `array`
    Array,
    /// `packed`
    Packed,
    /// `of`
    Of,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `true`
    True,
    /// `false`
    False,

    // Punctuation and operators.
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Char(c) => write!(f, "char literal '{}'", *c as char),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", keyword_text(other)),
        }
    }
}

fn keyword_text(t: &Tok) -> &'static str {
    match t {
        Tok::Program => "program",
        Tok::Const => "const",
        Tok::Type => "type",
        Tok::Var => "var",
        Tok::Function => "function",
        Tok::Procedure => "procedure",
        Tok::Begin => "begin",
        Tok::End => "end",
        Tok::If => "if",
        Tok::Then => "then",
        Tok::Else => "else",
        Tok::While => "while",
        Tok::Do => "do",
        Tok::Repeat => "repeat",
        Tok::Until => "until",
        Tok::For => "for",
        Tok::To => "to",
        Tok::Downto => "downto",
        Tok::Case => "case",
        Tok::Array => "array",
        Tok::Packed => "packed",
        Tok::Of => "of",
        Tok::Div => "div",
        Tok::Mod => "mod",
        Tok::And => "and",
        Tok::Or => "or",
        Tok::Not => "not",
        Tok::True => "true",
        Tok::False => "false",
        Tok::Semi => ";",
        Tok::Colon => ":",
        Tok::Comma => ",",
        Tok::Dot => ".",
        Tok::DotDot => "..",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Assign => ":=",
        Tok::Eq => "=",
        Tok::Ne => "<>",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        _ => "?",
    }
}

/// Looks up a keyword.
pub fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "program" => Tok::Program,
        "const" => Tok::Const,
        "type" => Tok::Type,
        "var" => Tok::Var,
        "function" => Tok::Function,
        "procedure" => Tok::Procedure,
        "begin" => Tok::Begin,
        "end" => Tok::End,
        "if" => Tok::If,
        "then" => Tok::Then,
        "else" => Tok::Else,
        "while" => Tok::While,
        "do" => Tok::Do,
        "repeat" => Tok::Repeat,
        "until" => Tok::Until,
        "for" => Tok::For,
        "to" => Tok::To,
        "downto" => Tok::Downto,
        "case" => Tok::Case,
        "array" => Tok::Array,
        "packed" => Tok::Packed,
        "of" => Tok::Of,
        "div" => Tok::Div,
        "mod" => Tok::Mod,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "true" => Tok::True,
        "false" => Tok::False,
        _ => return None,
    })
}
