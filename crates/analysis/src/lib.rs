//! # mips-analysis — the paper's measurements, regenerated
//!
//! One module per experiment; each produces a typed result with a
//! `Display` implementation printing measured values next to the paper's
//! published ones. The `tables` binary in `mips-bench` drives everything.
//!
//! | module | reproduces |
//! |---|---|
//! | [`constants`] | Table 1 — constant-magnitude distribution |
//! | [`taxonomy`] | Table 2 — condition-code policy taxonomy |
//! | [`cc_usage`] | Table 3 — compares saved by condition codes |
//! | [`booleans`] | Table 4 — boolean expression statistics |
//! | [`bool_cost`] | Tables 5 & 6 — boolean evaluation strategy costs |
//! | [`refs`] | Tables 7 & 8 — dynamic data-reference patterns |
//! | [`byte_cost`] | Tables 9 & 10 — byte vs word addressing costs |
//! | [`table11`] | Table 11 — reorganizer improvement levels |
//! | [`figures`] | Figures 1–4 — code-shape listings |
//! | [`free_cycles`] | §3.1 — free memory-cycle fraction |

pub mod bool_cost;
pub mod booleans;
pub mod byte_cost;
pub mod cc_usage;
pub mod constants;
pub mod figures;
pub mod free_cycles;
pub mod refs;
pub mod regalloc;
pub mod table11;
pub mod taxonomy;
pub mod util;
pub mod word_at_a_time;
