//! Tables 9 and 10: the cost of byte operations and the byte- vs
//! word-addressing comparison.
//!
//! Table 9's cycle costs are measured by compiling micro-statements for
//! each access kind on both machine targets and counting the *executed
//! cycles* attributable to the access (naive schedule, so load-delay
//! no-ops are charged, exactly as a cycle count should). The
//! byte-addressed machine's costs are then inflated by the paper's
//! estimated memory-interface overhead ("from 15% to 20% additional
//! overhead to the critical path").
//!
//! Table 10 composes those costs with the measured reference frequencies
//! of Tables 7/8 to produce the headline: word addressing wins.

use crate::refs::RefPattern;
use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, MachineConfig};
use std::fmt;

/// The paper's byte-interface overhead band.
pub const OVERHEAD_LOW: f64 = 1.15;
/// See [`OVERHEAD_LOW`].
pub const OVERHEAD_HIGH: f64 = 1.20;

/// The access kinds of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load a word element from an array.
    LoadWordArray,
    /// Store a word element into an array.
    StoreWordArray,
    /// Load a byte (packed char) element.
    LoadByte,
    /// Store a byte element.
    StoreByte,
    /// Load a scalar word.
    LoadWord,
    /// Store a scalar word.
    StoreWord,
}

impl AccessKind {
    /// All kinds in the paper's row order.
    pub const ALL: [AccessKind; 6] = [
        AccessKind::LoadWordArray,
        AccessKind::StoreWordArray,
        AccessKind::LoadByte,
        AccessKind::StoreByte,
        AccessKind::LoadWord,
        AccessKind::StoreWord,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::LoadWordArray => "load from array",
            AccessKind::StoreWordArray => "store into array",
            AccessKind::LoadByte => "load byte",
            AccessKind::StoreByte => "store byte",
            AccessKind::LoadWord => "load word",
            AccessKind::StoreWord => "store word",
        }
    }

    /// Paper values: (byte machine, byte machine + overhead, word MIPS)
    /// as strings (some are ranges).
    pub fn paper(self) -> (&'static str, &'static str, &'static str) {
        match self {
            AccessKind::LoadWordArray => ("4", "4.6", "6"),
            AccessKind::StoreWordArray => ("4", "4.6", "8-12"),
            AccessKind::LoadByte => ("6", "6.9", "8"),
            AccessKind::StoreByte => ("6", "6.9", "10-18"),
            AccessKind::LoadWord => ("4", "4.6", "4"),
            AccessKind::StoreWord => ("4", "4.6", "4"),
        }
    }

    /// The micro-statement exercising this access (inside a fixed harness
    /// program).
    fn statement(self) -> &'static str {
        match self {
            AccessKind::LoadWordArray => "x := a[i]",
            AccessKind::StoreWordArray => "a[i] := x",
            AccessKind::LoadByte => "c := s[i]",
            AccessKind::StoreByte => "s[i] := c",
            AccessKind::LoadWord => "x := y",
            AccessKind::StoreWord => "y := x",
        }
    }
}

fn harness(stmt: Option<&str>) -> String {
    let body = stmt.map(|s| format!("  {s};\n")).unwrap_or_default();
    format!(
        "program t;\n\
         var a: array [0..63] of integer;\n\
             s: packed array [0..63] of char;\n\
             x, y, i: integer; c: char;\n\
         begin\n  i := 3;\n{body}end.\n"
    )
}

/// Executed cycles of one micro-statement on a target (naive schedule,
/// delay no-ops included).
pub fn measure_cycles(kind: AccessKind, target: MachineTarget) -> f64 {
    let cg = CodegenOptions {
        target,
        promote_locals: 0,
        ..CodegenOptions::standard()
    };
    let run = |src: &str| -> u64 {
        let lc = compile_mips(src, &cg).expect("compiles");
        let out = reorganize(&lc, ReorgOptions::NONE).expect("reorganizes");
        let cfg = MachineConfig {
            byte_addressed: target == MachineTarget::Byte,
            ..MachineConfig::default()
        };
        let mut m = Machine::with_config(out.program, cfg);
        m.run().expect("runs");
        m.profile().instructions
    };
    let with = run(&harness(Some(kind.statement())));
    let without = run(&harness(None));
    (with - without) as f64
}

/// Table 9: measured cycle costs per access kind.
#[derive(Debug, Clone)]
pub struct Table9 {
    /// (kind, byte-machine cycles, word-machine cycles).
    pub rows: Vec<(AccessKind, f64, f64)>,
}

/// Measures Table 9.
pub fn table9() -> Table9 {
    let rows = AccessKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                measure_cycles(k, MachineTarget::Byte),
                measure_cycles(k, MachineTarget::Word),
            )
        })
        .collect();
    Table9 { rows }
}

impl Table9 {
    /// Measured cost on the byte machine including interface overhead.
    pub fn byte_with_overhead(&self, kind: AccessKind, overhead: f64) -> f64 {
        self.cost(kind, MachineTarget::Byte) * overhead
    }

    /// Raw measured cost.
    pub fn cost(&self, kind: AccessKind, target: MachineTarget) -> f64 {
        let row = self.rows.iter().find(|(k, _, _)| *k == kind).unwrap();
        match target {
            MachineTarget::Byte => row.1,
            MachineTarget::Word => row.2,
        }
    }
}

impl fmt::Display for Table9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 9: Cost of various byte operations (cycles)")?;
        writeln!(
            f,
            "{:<18} {:>10} {:>12} {:>10}   (paper: byte / byte+ovh / MIPS)",
            "operation", "byte mach", "byte +15%", "word MIPS"
        )?;
        for &(k, b, w) in &self.rows {
            let (p1, p2, p3) = k.paper();
            writeln!(
                f,
                "{:<18} {:>10.1} {:>12.2} {:>10.1}   ({p1} / {p2} / {p3})",
                k.name(),
                b,
                b * OVERHEAD_LOW,
                w
            )?;
        }
        Ok(())
    }
}

/// Table 10: the composed comparison.
#[derive(Debug, Clone)]
pub struct Table10 {
    /// Weighted cost per reference on the word-addressed machine,
    /// word-allocated mix.
    pub word_mix_on_word: f64,
    /// Same mix on the byte-addressed machine (overhead low..high).
    pub word_mix_on_byte: (f64, f64),
    /// Byte-allocated mix on the word machine.
    pub byte_mix_on_word: f64,
    /// Byte-allocated mix on the byte machine (overhead low..high).
    pub byte_mix_on_byte: (f64, f64),
}

impl Table10 {
    /// Byte-addressing penalty for the word-allocated mix, percent
    /// (low..high). Paper: 9% – 11.8%.
    pub fn penalty_word_alloc(&self) -> (f64, f64) {
        (
            100.0 * (self.word_mix_on_byte.0 - self.word_mix_on_word) / self.word_mix_on_word,
            100.0 * (self.word_mix_on_byte.1 - self.word_mix_on_word) / self.word_mix_on_word,
        )
    }

    /// Byte-addressing penalty for the byte-allocated mix, percent.
    /// Paper: 7.7% – 14.6%.
    pub fn penalty_byte_alloc(&self) -> (f64, f64) {
        (
            100.0 * (self.byte_mix_on_byte.0 - self.byte_mix_on_word) / self.byte_mix_on_word,
            100.0 * (self.byte_mix_on_byte.1 - self.byte_mix_on_word) / self.byte_mix_on_word,
        )
    }
}

/// Composes Table 10 from Table 9 costs and measured reference mixes.
pub fn table10(t9: &Table9, word_mix: &RefPattern, byte_mix: &RefPattern) -> Table10 {
    // Class fractions: [byte loads, word loads, byte stores, word stores].
    let frac = |p: &RefPattern| -> [f64; 4] {
        let m = p.percentages();
        [m[2] / 100.0, m[3] / 100.0, m[4] / 100.0, m[5] / 100.0]
    };
    let cost_mix = |fr: [f64; 4], target: MachineTarget, oh: f64| -> f64 {
        let c = |k: AccessKind| t9.cost(k, target) * oh;
        fr[0] * c(AccessKind::LoadByte)
            + fr[1] * c(AccessKind::LoadWordArray)
            + fr[2] * c(AccessKind::StoreByte)
            + fr[3] * c(AccessKind::StoreWordArray)
    };
    let wm = frac(word_mix);
    let bm = frac(byte_mix);
    Table10 {
        word_mix_on_word: cost_mix(wm, MachineTarget::Word, 1.0),
        word_mix_on_byte: (
            cost_mix(wm, MachineTarget::Byte, OVERHEAD_LOW),
            cost_mix(wm, MachineTarget::Byte, OVERHEAD_HIGH),
        ),
        byte_mix_on_word: cost_mix(bm, MachineTarget::Word, 1.0),
        byte_mix_on_byte: (
            cost_mix(bm, MachineTarget::Byte, OVERHEAD_LOW),
            cost_mix(bm, MachineTarget::Byte, OVERHEAD_HIGH),
        ),
    }
}

impl fmt::Display for Table10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 10: Cost of byte- and word-addressed architectures"
        )?;
        writeln!(
            f,
            "  word-allocated mix: word machine {:.3} vs byte machine {:.3}-{:.3} cycles/ref",
            self.word_mix_on_word, self.word_mix_on_byte.0, self.word_mix_on_byte.1
        )?;
        writeln!(
            f,
            "  byte-allocated mix: word machine {:.3} vs byte machine {:.3}-{:.3} cycles/ref",
            self.byte_mix_on_word, self.byte_mix_on_byte.0, self.byte_mix_on_byte.1
        )?;
        let (wl, wh) = self.penalty_word_alloc();
        let (bl, bh) = self.penalty_byte_alloc();
        writeln!(
            f,
            "  byte-addressing penalty, word-allocated: {wl:.1}% - {wh:.1}%  (paper 9% - 11.8%)"
        )?;
        writeln!(
            f,
            "  byte-addressing penalty, byte-allocated: {bl:.1}% - {bh:.1}%  (paper 7.7% - 14.6%)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs;

    #[test]
    fn byte_ops_cost_more_on_word_machine() {
        let t9 = table9();
        // On the word machine, byte accesses synthesize via xc/ic: more
        // expensive than on the byte machine.
        assert!(
            t9.cost(AccessKind::LoadByte, MachineTarget::Word)
                > t9.cost(AccessKind::LoadByte, MachineTarget::Byte),
            "{t9}"
        );
        assert!(
            t9.cost(AccessKind::StoreByte, MachineTarget::Word)
                > t9.cost(AccessKind::StoreByte, MachineTarget::Byte),
            "{t9}"
        );
        // Word scalars cost the same number of instructions on both.
        assert_eq!(
            t9.cost(AccessKind::LoadWord, MachineTarget::Word),
            t9.cost(AccessKind::LoadWord, MachineTarget::Byte),
            "{t9}"
        );
        // Byte stores carry the read-modify-write surcharge over loads.
        assert!(
            t9.cost(AccessKind::StoreByte, MachineTarget::Word)
                >= t9.cost(AccessKind::LoadByte, MachineTarget::Word)
        );
    }

    #[test]
    fn word_addressing_wins_table10() {
        let t9 = table9();
        let names: &[&str] = &["scanner", "wordcount", "strings", "formatter", "sieve"];
        let wm = refs::measure(MachineTarget::Word, Some(names));
        let bm = refs::measure(MachineTarget::Byte, Some(names));
        let t10 = table10(&t9, &wm, &bm);
        let (wl, _) = t10.penalty_word_alloc();
        let (bl, _) = t10.penalty_byte_alloc();
        assert!(
            wl > 0.0,
            "word addressing must win on word-allocated mix: {t10}"
        );
        assert!(
            bl > -5.0,
            "byte machine should not win big even on byte-allocated mix: {t10}"
        );
    }
}
