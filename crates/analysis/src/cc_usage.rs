//! Table 3: how many compares condition codes actually save.
//!
//! "Table 3 contains empirical data which show that the number of
//! instructions saved by condition codes is so small as to be essentially
//! useless" — ≈1.1% with operation-set codes, ≈2.1% when moves set them
//! too.

use crate::util::pct;
use mips_ccm::analyze_savings;
use mips_hll::{compile_cc, CcBoolStrategy, CcGenOptions};
use std::fmt;

/// Aggregated Table 3 result.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CcUsage {
    /// Explicit compares in the compiled corpus.
    pub total_compares: u64,
    /// Saved with operation-set codes.
    pub saved_ops_only: u64,
    /// Gross saves with operation-and-move-set codes.
    pub gross_ops_and_moves: u64,
    /// Moves that existed only to set the codes (excluded from net).
    pub moves_only_for_cc: u64,
}

/// Paper values (percent savings).
pub const PAPER_OPS_ONLY_PCT: f64 = 1.1;
/// See [`PAPER_OPS_ONLY_PCT`].
pub const PAPER_OPS_AND_MOVES_PCT: f64 = 2.1;

impl CcUsage {
    /// Net saves under the ops-and-moves policy.
    pub fn net_saved(&self) -> u64 {
        self.gross_ops_and_moves - self.moves_only_for_cc
    }

    /// Percent saved, ops-only policy.
    pub fn pct_ops_only(&self) -> f64 {
        pct(self.saved_ops_only, self.total_compares)
    }

    /// Percent saved (net), ops-and-moves policy.
    pub fn pct_ops_and_moves(&self) -> f64 {
        pct(self.net_saved(), self.total_compares)
    }
}

impl fmt::Display for CcUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: Use of condition codes")?;
        writeln!(
            f,
            "  compares in compiled corpus          {:>8}",
            self.total_compares
        )?;
        writeln!(
            f,
            "  saved, codes set by operations only  {:>8}  ({:.1}%; paper {PAPER_OPS_ONLY_PCT}%)",
            self.saved_ops_only,
            self.pct_ops_only()
        )?;
        writeln!(
            f,
            "  gross saves, codes set by ops+moves  {:>8}",
            self.gross_ops_and_moves
        )?;
        writeln!(
            f,
            "  moves used only to set the codes     {:>8}",
            self.moves_only_for_cc
        )?;
        writeln!(
            f,
            "  net saved, ops and moves             {:>8}  ({:.1}%; paper {PAPER_OPS_AND_MOVES_PCT}%)",
            self.net_saved(),
            self.pct_ops_and_moves()
        )
    }
}

/// Runs the analysis over the whole corpus (compiled with the standard
/// early-out CC compiler).
pub fn analyze_corpus() -> CcUsage {
    let mut u = CcUsage::default();
    for w in mips_workloads::corpus() {
        let p = compile_cc(
            w.source,
            &CcGenOptions {
                strategy: CcBoolStrategy::EarlyOut,
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r = analyze_savings(&p);
        u.total_compares += r.total_compares;
        u.saved_ops_only += r.saved_ops_only;
        u.gross_ops_and_moves += r.gross_ops_and_moves;
        u.moves_only_for_cc += r.moves_only_for_cc;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_savings_are_small() {
        let u = analyze_corpus();
        assert!(u.total_compares > 100, "corpus compare-rich: {u:?}");
        // The paper's headline: savings are tiny.
        assert!(
            u.pct_ops_and_moves() < 15.0,
            "net savings should be small: {u:?}"
        );
        assert!(u.gross_ops_and_moves >= u.saved_ops_only);
        assert!(
            u.pct_ops_only() < 10.0,
            "ops-only savings should be tiny: {u:?}"
        );
    }

    #[test]
    fn display_mentions_paper() {
        let u = analyze_corpus();
        let s = u.to_string();
        assert!(s.contains("Table 3"));
        assert!(s.contains("paper 1.1%"));
    }
}
