//! The §4.1 compiler transformation the paper calls out:
//!
//! "The compiler can help by attempting to transform character at a time
//! processing to word at a time processing. Since many of the operations
//! that deal with characters concern copying and comparing strings, the
//! potential benefits are substantial."
//!
//! Both versions are real MIPS code run on the simulator: the
//! character-at-a-time copy walks byte pointers through `xc`/`ic`, while
//! the word-at-a-time copy moves four characters per load/store pair.

use mips_asm::assemble;
use mips_sim::Machine;
use std::fmt;

/// Number of characters copied in the experiment.
pub const CHARS: u32 = 256;
const SRC_BASE: u32 = 0x2000; // word address of the packed source
const DST_BASE: u32 = 0x2100;

/// Byte-at-a-time copy of a packed character array (the §4.1 sequences:
/// load = `ld (p>>2)` + `xc`; store = `ld` + `wsp lo` + `ic` + `st`).
fn bytewise_source() -> String {
    format!(
        "
        main:
            lim #{src_b},r1       ; source byte pointer
            lim #{dst_b},r2       ; destination byte pointer
            lim #{n},r3           ; bytes remaining
        loop:
            ld (r1>>2),r4         ; word holding the source byte
            nop
            xc r1,r4,r4           ; extract it
            ld (r2>>2),r5         ; destination word (read-modify-write)
            wsp r2,lo             ; byte selector
            ic r4,r5,r5           ; insert
            st r5,(r2>>2)
            add r1,#1,r1
            add r2,#1,r2
            sub r3,#1,r3
            bne r3,#0,loop
            nop
            halt
        ",
        src_b = SRC_BASE * 4,
        dst_b = DST_BASE * 4,
        n = CHARS
    )
}

/// Word-at-a-time copy of the same data: four characters per iteration.
fn wordwise_source() -> String {
    format!(
        "
        main:
            lim #{src},r1         ; source word address
            lim #{dst},r2         ; destination word address
            lim #{n},r3           ; words remaining
        loop:
            ld (r1),r4
            add r1,#1,r1          ; covered load-delay slot
            st r4,(r2)
            add r2,#1,r2
            sub r3,#1,r3
            bne r3,#0,loop
            nop
            halt
        ",
        src = SRC_BASE,
        dst = DST_BASE,
        n = CHARS / 4
    )
}

/// Measured costs of the two approaches.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordAtATime {
    /// Cycles for the byte-at-a-time copy.
    pub bytewise_cycles: u64,
    /// Cycles for the word-at-a-time copy.
    pub wordwise_cycles: u64,
}

impl WordAtATime {
    /// Speedup factor.
    pub fn speedup(&self) -> f64 {
        self.bytewise_cycles as f64 / self.wordwise_cycles.max(1) as f64
    }
}

impl fmt::Display for WordAtATime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Word-at-a-time string processing (§4.1 compiler transformation)"
        )?;
        writeln!(
            f,
            "  copy {CHARS} packed chars, byte-at-a-time: {:>6} cycles",
            self.bytewise_cycles
        )?;
        writeln!(
            f,
            "  copy {CHARS} packed chars, word-at-a-time: {:>6} cycles",
            self.wordwise_cycles
        )?;
        writeln!(
            f,
            "  speedup {:.1}x — 'the potential benefits are substantial'",
            self.speedup()
        )
    }
}

fn run_copy(src: &str) -> (u64, Machine) {
    let p = assemble(src).expect("assembles");
    let mut m = Machine::new(p);
    // Fill the source with recognizable characters.
    for w in 0..CHARS / 4 {
        m.mem_mut().poke(SRC_BASE + w, 0x61626364 + w);
    }
    m.run().expect("runs");
    (m.profile().instructions, m)
}

/// Runs both copies and verifies they produce identical destinations.
pub fn measure() -> WordAtATime {
    let (bytewise_cycles, mb) = run_copy(&bytewise_source());
    let (wordwise_cycles, mw) = run_copy(&wordwise_source());
    for w in 0..CHARS / 4 {
        assert_eq!(
            mb.mem().peek(DST_BASE + w),
            mw.mem().peek(DST_BASE + w),
            "copies disagree at word {w}"
        );
        assert_eq!(
            mw.mem().peek(DST_BASE + w),
            mw.mem().peek(SRC_BASE + w),
            "copy is wrong at word {w}"
        );
    }
    WordAtATime {
        bytewise_cycles,
        wordwise_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordwise_copy_is_several_times_faster() {
        let r = measure();
        assert!(r.speedup() > 3.0, "expected a substantial (≈4x+) win: {r}");
        assert!(r.wordwise_cycles > 0);
    }
}
