//! Tables 5 and 6: the cost of evaluating boolean expressions under each
//! architectural support level.
//!
//! Everything here is *measured from generated code*, not hand-derived:
//! for each strategy we compile small programs containing an OR-chain of
//! `k` comparisons in a store context (`found := …`) and a jump context
//! (`if … then`), subtract a baseline without the expression, and count
//! instruction classes — statically, and dynamically averaged over every
//! truth-value combination of the terms (which is where the paper's
//! "1.5 branches" style averages come from).
//!
//! Costs are weighted with the paper's §2.3.2 numbers: "register
//! operations take time 1, compares take time 2, and branches take
//! time 4."

use mips_ccm::{CcInstr, CcMachine, CcPolicy, CcProgram};
use mips_core::Instr;
use mips_hll::{compile_cc, compile_mips, CcBoolStrategy, CcGenOptions, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::Machine;
use std::fmt;

/// Instruction-class counts (floating to allow dynamic averages).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Classes {
    /// Compares (MIPS *Set Conditionally*, CC `cmp`).
    pub compares: f64,
    /// Register operations, moves, loads/stores, conditional sets.
    pub reg_ops: f64,
    /// Branches (including MIPS compare-and-branch).
    pub branches: f64,
}

impl Classes {
    /// Weighted cost (1 / 2 / 4).
    pub fn weighted(&self) -> f64 {
        self.reg_ops + 2.0 * self.compares + 4.0 * self.branches
    }

    fn sub(self, o: Classes) -> Classes {
        Classes {
            compares: self.compares - o.compares,
            reg_ops: self.reg_ops - o.reg_ops,
            branches: self.branches - o.branches,
        }
    }

    fn scale(self, k: f64) -> Classes {
        Classes {
            compares: self.compares * k,
            reg_ops: self.reg_ops * k,
            branches: self.branches * k,
        }
    }

    fn add(self, o: Classes) -> Classes {
        Classes {
            compares: self.compares + o.compares,
            reg_ops: self.reg_ops + o.reg_ops,
            branches: self.branches + o.branches,
        }
    }
}

impl fmt::Display for Classes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}/{:.1}/{:.1}",
            self.compares, self.reg_ops, self.branches
        )
    }
}

/// The strategies compared (Table 5's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// MIPS: *Set Conditionally*, no condition code.
    SetCond,
    /// CC machine with a conditional-set instruction.
    CcCondSet,
    /// CC machine, branches only, full evaluation.
    CcFullEval,
    /// CC machine, branches only, early-out.
    CcEarlyOut,
}

impl Strategy {
    /// All strategies in the paper's row order.
    pub const ALL: [Strategy; 4] = [
        Strategy::SetCond,
        Strategy::CcCondSet,
        Strategy::CcFullEval,
        Strategy::CcEarlyOut,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::SetCond => "Set Conditionally (MIPS, no CC)",
            Strategy::CcCondSet => "CC + conditional set",
            Strategy::CcFullEval => "CC, branch only, full evaluation",
            Strategy::CcEarlyOut => "CC, branch only, early-out",
        }
    }

    /// Paper Table 5 triples (compare/register/branch), static.
    pub fn paper_static(self) -> (f64, f64, f64) {
        match self {
            Strategy::SetCond => (2.0, 1.0, 0.0),
            Strategy::CcCondSet => (2.0, 3.0, 0.0),
            Strategy::CcFullEval => (2.0, 2.0, 2.0),
            Strategy::CcEarlyOut => (2.0, 0.0, 2.0),
        }
    }

    /// Paper Table 5 triples, dynamic.
    pub fn paper_dynamic(self) -> (f64, f64, f64) {
        match self {
            Strategy::CcEarlyOut => (2.0, 0.0, 1.5),
            other => other.paper_static(),
        }
    }
}

/// Builds the test program: `k+1` integer globals, an OR-chain of `k+1`
/// comparisons (`k` operators), in the requested context. `truth`
/// selects which terms evaluate true (bit per term). `with_expr` = false
/// gives the baseline program.
fn test_source(terms: usize, truth: usize, store_ctx: bool, with_expr: bool) -> String {
    use std::fmt::Write as _;
    let mut vars = String::new();
    let mut inits = String::new();
    for t in 0..terms {
        let _ = write!(vars, "v{t}, ");
        let val = if truth & (1 << t) != 0 { t + 1 } else { 0 };
        let _ = writeln!(inits, "  v{t} := {val};");
    }
    let expr = (0..terms)
        .map(|t| format!("(v{t} = {})", t + 1))
        .collect::<Vec<_>>()
        .join(" or ");
    let body = if !with_expr {
        String::new()
    } else if store_ctx {
        format!("  found := {expr};\n")
    } else {
        format!("  if {expr} then x := 1;\n")
    };
    format!("program t;\nvar {vars}x: integer; found: boolean;\nbegin\n{inits}{body}end.\n")
}

/// Classifies an instruction into the paper's Compare/Register/Branch
/// accounting. Memory traffic is *excluded*: the paper's baseline
/// machines take memory operands directly (`cmp Rec,Key`), so loads and
/// stores are not part of the per-operator counts.
fn classify_mips(i: &Instr) -> Classes {
    let mut c = Classes::default();
    match i {
        Instr::SetCond(_) => c.compares = 1.0,
        Instr::CmpBranch(_) | Instr::Jump(_) | Instr::Call(_) | Instr::JumpInd(_) => {
            c.branches = 1.0
        }
        Instr::Trap(_) | Instr::Halt => {}
        Instr::Op { mem: Some(_), .. } => {}
        Instr::Op {
            alu: None,
            mem: None,
        } => {}
        _ => c.reg_ops = 1.0,
    }
    c
}

fn classify_cc(i: &CcInstr) -> Classes {
    let mut c = Classes::default();
    match i {
        CcInstr::Compare { .. } => c.compares = 1.0,
        CcInstr::CondBranch { .. }
        | CcInstr::Branch { .. }
        | CcInstr::Call { .. }
        | CcInstr::Ret => c.branches = 1.0,
        CcInstr::Halt | CcInstr::PutC | CcInstr::PutInt => {}
        // Memory traffic excluded (memory-operand machines).
        CcInstr::Load { .. }
        | CcInstr::Store { .. }
        | CcInstr::Push { .. }
        | CcInstr::Pop { .. } => {}
        _ => c.reg_ops = 1.0,
    }
    c
}

/// Static + dynamic class counts of a whole MIPS program.
fn mips_counts(src: &str) -> (Classes, Classes) {
    let lc = compile_mips(src, &CodegenOptions::standard()).expect("compiles");
    let out = reorganize(&lc, ReorgOptions::SCHEDULE).expect("reorganizes");
    let mut stat = Classes::default();
    for i in out.program.instrs() {
        stat = stat.add(classify_mips(i));
    }
    let mut m = Machine::new(out.program);
    let mut dynamic = Classes::default();
    while let Some(&i) = m.program().fetch(m.pc()) {
        dynamic = dynamic.add(classify_mips(&i));
        if !m.step().expect("runs") {
            break;
        }
    }
    (stat, dynamic)
}

/// Static + dynamic class counts of a whole CC program.
fn cc_counts(src: &str, strategy: CcBoolStrategy, policy: CcPolicy) -> (Classes, Classes) {
    let p: CcProgram = compile_cc(src, &CcGenOptions { strategy }).expect("compiles");
    let mut stat = Classes::default();
    for i in p.instrs() {
        stat = stat.add(classify_cc(i));
    }
    let mut m = CcMachine::new(p, policy);
    let mut dynamic = Classes::default();
    while let Some(&i) = m.program().instrs().get(m.pc() as usize) {
        dynamic = dynamic.add(classify_cc(&i));
        match m.step() {
            Ok(true) => {}
            _ => break,
        }
    }
    (stat, dynamic)
}

/// Measured costs of one strategy in one context.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContextCost {
    /// Static class counts attributable to the expression.
    pub static_classes: Classes,
    /// Dynamic class counts averaged over all truth combinations.
    pub dynamic_classes: Classes,
}

/// Measures (static, dynamic-averaged) expression costs for `k` operator
/// terms in the given context.
pub fn measure(strategy: Strategy, operators: usize, store_ctx: bool) -> ContextCost {
    let terms = operators + 1;
    let counts = |src: &str| -> (Classes, Classes) {
        match strategy {
            Strategy::SetCond => mips_counts(src),
            Strategy::CcCondSet => cc_counts(src, CcBoolStrategy::CondSet, CcPolicy::M68000),
            Strategy::CcFullEval => cc_counts(src, CcBoolStrategy::FullEval, CcPolicy::VAX),
            Strategy::CcEarlyOut => cc_counts(src, CcBoolStrategy::EarlyOut, CcPolicy::VAX),
        }
    };
    // Static: any truth combo (static code identical).
    let (with_stat, _) = counts(&test_source(terms, 0, store_ctx, true));
    let (base_stat, _) = counts(&test_source(terms, 0, store_ctx, false));
    let static_classes = with_stat.sub(base_stat);

    // Dynamic: average over all truth combinations.
    let combos = 1usize << terms;
    let mut acc = Classes::default();
    for truth in 0..combos {
        let (_, with_dyn) = counts(&test_source(terms, truth, store_ctx, true));
        let (_, base_dyn) = counts(&test_source(terms, truth, store_ctx, false));
        acc = acc.add(with_dyn.sub(base_dyn));
    }
    ContextCost {
        static_classes,
        dynamic_classes: acc.scale(1.0 / combos as f64),
    }
}

/// One Table 5 row: per-single-operator expression costs.
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// The strategy.
    pub strategy: Strategy,
    /// Measured single-operator expression classes (store context,
    /// evaluation only), static.
    pub measured_static: Classes,
    /// Same, dynamic.
    pub measured_dynamic: Classes,
}

/// Table 5.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Rows in paper order.
    pub rows: Vec<Table5Row>,
}

/// Computes Table 5 (the canonical one-operator expression).
pub fn table5() -> Table5 {
    let rows = Strategy::ALL
        .iter()
        .map(|&s| {
            let c = measure(s, 1, true);
            Table5Row {
                strategy: s,
                measured_static: c.static_classes,
                measured_dynamic: c.dynamic_classes,
            }
        })
        .collect();
    Table5 { rows }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5: Compare/Register/Branch operations per boolean operator"
        )?;
        writeln!(
            f,
            "{:<36} {:>14} {:>14} {:>12} {:>12}",
            "strategy", "measured stat", "measured dyn", "paper stat", "paper dyn"
        )?;
        for r in &self.rows {
            let (ps1, ps2, ps3) = r.strategy.paper_static();
            let (pd1, pd2, pd3) = r.strategy.paper_dynamic();
            writeln!(
                f,
                "{:<36} {:>14} {:>14} {:>12} {:>12}",
                r.strategy.name(),
                r.measured_static.to_string(),
                r.measured_dynamic.to_string(),
                format!("{ps1}/{ps2}/{ps3}"),
                format!("{pd1}/{pd2}/{pd3}"),
            )?;
        }
        Ok(())
    }
}

/// Paper Table 6 values (weighted costs; Full / Early-out columns).
pub const PAPER_TABLE6: [(&str, f64, f64); 9] = [
    ("Store: set conditionally/no CC", 9.3, 9.3),
    ("Store: CC/conditional set", 14.9, 14.9),
    ("Store: CC with only branch", 27.9, 20.5),
    ("Jump: set conditionally/no CC", 13.3, 13.3),
    ("Jump: CC/conditional set", 18.9, 18.9),
    ("Jump: CC with only branch", 26.9, 19.5),
    ("Total: set conditionally/no CC", 12.5, 12.5),
    ("Total: CC/conditional set", 18.0, 18.0),
    ("Total: CC with only branch", 26.9, 19.7),
];

/// One Table 6 strategy summary.
#[derive(Debug, Clone, Copy)]
pub struct Table6Row {
    /// Strategy.
    pub strategy: Strategy,
    /// Weighted cost in store context (interpolated to the corpus's
    /// average operator count).
    pub store: f64,
    /// Weighted cost in jump context.
    pub jump: f64,
    /// Context-mix weighted total.
    pub total: f64,
}

/// Table 6.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Rows.
    pub rows: Vec<Table6Row>,
    /// The operator average used (from Table 4).
    pub avg_operators: f64,
    /// Jump-context weight used (from Table 4).
    pub jump_fraction: f64,
    /// Improvement of conditional-set over branch-only CC (vs full /
    /// vs early-out), percent. Paper: 33.0% / 8.6%.
    pub improvement_condset_pct: (f64, f64),
    /// Improvement of MIPS set-conditionally over branch-only CC
    /// (vs full / vs early-out), percent. Paper: 53.5% / 36.5%.
    pub improvement_setcond_pct: (f64, f64),
}

/// Computes Table 6 from measured strategy costs and the corpus's
/// Table 4 statistics.
pub fn table6(avg_operators: f64, jump_fraction: f64) -> Table6 {
    let interp = |s: Strategy, store: bool| -> f64 {
        let c1 = measure(s, 1, store).dynamic_classes.weighted();
        let c2 = measure(s, 2, store).dynamic_classes.weighted();
        c1 + (avg_operators - 1.0) * (c2 - c1)
    };
    let rows: Vec<Table6Row> = Strategy::ALL
        .iter()
        .map(|&s| {
            let store = interp(s, true);
            let jump = interp(s, false);
            Table6Row {
                strategy: s,
                store,
                jump,
                total: jump_fraction * jump + (1.0 - jump_fraction) * store,
            }
        })
        .collect();
    let total_of = |s: Strategy| rows.iter().find(|r| r.strategy == s).unwrap().total;
    let full = total_of(Strategy::CcFullEval);
    let early = total_of(Strategy::CcEarlyOut);
    let imp = |mine: f64| (100.0 * (full - mine) / full, 100.0 * (early - mine) / early);
    Table6 {
        improvement_condset_pct: imp(total_of(Strategy::CcCondSet)),
        improvement_setcond_pct: imp(total_of(Strategy::SetCond)),
        rows,
        avg_operators,
        jump_fraction,
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: Weighted cost of evaluating boolean expressions (weights 1/2/4)"
        )?;
        writeln!(
            f,
            "  (operator average {:.2}, {:.1}% jump context)",
            self.avg_operators,
            100.0 * self.jump_fraction
        )?;
        writeln!(
            f,
            "{:<36} {:>8} {:>8} {:>8}",
            "strategy", "store", "jump", "total"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<36} {:>8.1} {:>8.1} {:>8.1}",
                r.strategy.name(),
                r.store,
                r.jump,
                r.total
            )?;
        }
        writeln!(
            f,
            "  improvement, conditional set vs branch-only CC: {:.1}% full / {:.1}% early-out (paper 33.0% / 8.6%)",
            self.improvement_condset_pct.0, self.improvement_condset_pct.1
        )?;
        writeln!(
            f,
            "  improvement, MIPS set-conditionally vs CC:      {:.1}% full / {:.1}% early-out (paper 53.5% / 36.5%)",
            self.improvement_setcond_pct.0, self.improvement_setcond_pct.1
        )?;
        writeln!(f, "  paper reference values:")?;
        for (name, full, early) in PAPER_TABLE6 {
            writeln!(f, "    {name:<36} full {full:>5}  early-out {early:>5}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper_exactly_for_branchless_strategies() {
        let t5 = table5();
        let row = |s: Strategy| t5.rows.iter().find(|r| r.strategy == s).copied().unwrap();
        // MIPS set-conditionally: 2 compares, 1 register op, 0 branches
        // (the paper's Figure 3 / Table 5 row), static and dynamic.
        let m = row(Strategy::SetCond);
        assert_eq!(
            (
                m.measured_static.compares,
                m.measured_static.reg_ops,
                m.measured_static.branches
            ),
            (2.0, 1.0, 0.0),
            "{t5}"
        );
        assert_eq!(m.measured_dynamic.branches, 0.0);
        // CC + conditional set: 2/3/0 (Figure 2).
        let c = row(Strategy::CcCondSet);
        assert_eq!(
            (
                c.measured_static.compares,
                c.measured_static.reg_ops,
                c.measured_static.branches
            ),
            (2.0, 3.0, 0.0),
            "{t5}"
        );
        // Branch-only strategies really branch.
        assert!(row(Strategy::CcFullEval).measured_static.branches >= 2.0);
        assert!(row(Strategy::CcEarlyOut).measured_static.branches >= 2.0);
        // Early-out executes fewer branches than it contains.
        let e = row(Strategy::CcEarlyOut);
        assert!(e.measured_dynamic.branches < e.measured_static.branches);
    }

    #[test]
    fn table6_mips_wins() {
        let t6 = table6(1.66, 0.809);
        let total = |s: Strategy| t6.rows.iter().find(|r| r.strategy == s).unwrap().total;
        // The paper's headline: set-conditionally beats every CC scheme.
        for s in [
            Strategy::CcCondSet,
            Strategy::CcFullEval,
            Strategy::CcEarlyOut,
        ] {
            assert!(total(Strategy::SetCond) < total(s), "MIPS must win: {t6}");
        }
        // Conditional set beats full evaluation (paper: 33.0%).
        assert!(t6.improvement_condset_pct.0 > 0.0, "{t6}");
        // And the set-conditionally improvements are in the paper's band.
        assert!(
            t6.improvement_setcond_pct.1 > 15.0,
            "early-out improvement too small: {t6}"
        );
    }

    #[test]
    fn weighted_costs_use_paper_weights() {
        let c = Classes {
            compares: 1.0,
            reg_ops: 1.0,
            branches: 1.0,
        };
        assert_eq!(c.weighted(), 7.0);
    }
}
