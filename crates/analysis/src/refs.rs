//! Tables 7 and 8: dynamic data-reference patterns.
//!
//! The corpus is compiled twice — word-allocated for the word-addressed
//! machine (Table 7) and byte-allocated for the byte-addressed variant
//! (Table 8) — executed on the simulator, and every load/store's
//! [`mips_core::RefClass`] is tallied.

use crate::util::pct;
use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, MachineConfig, Profile};
use std::fmt;

/// Paper values for Table 7 (word-allocated) as percentages of all data
/// references: (loads, stores, byte loads, word loads, byte stores, word
/// stores).
pub const PAPER_WORD: [f64; 6] = [71.2, 28.7, 2.6, 68.6, 2.6, 26.2];
/// Paper values for Table 8 (byte-allocated).
pub const PAPER_BYTE: [f64; 6] = [71.2, 28.7, 6.6, 64.6, 5.9, 22.9];
/// Paper character-reference split for Table 7: (char loads % of char
/// refs, char stores %, byte char loads % of char refs, word char loads,
/// byte char stores, word char stores).
pub const PAPER_WORD_CHAR: [f64; 6] = [66.7, 33.3, 14.7, 52.0, 21.5, 11.8];

/// A measured reference-pattern table.
#[derive(Debug, Clone, Default)]
pub struct RefPattern {
    /// Which allocation regime.
    pub target_name: &'static str,
    /// Merged execution profile.
    pub profile: Profile,
}

impl RefPattern {
    fn totals(&self) -> (u64, u64, u64, u64, u64, u64) {
        let p = &self.profile;
        let byte_loads = p.char_byte.loads + p.other_byte.loads;
        let byte_stores = p.char_byte.stores + p.other_byte.stores;
        let word_loads = p.loads - byte_loads;
        let word_stores = p.stores - byte_stores;
        (
            p.loads,
            p.stores,
            byte_loads,
            word_loads,
            byte_stores,
            word_stores,
        )
    }

    /// The six headline percentages (same order as [`PAPER_WORD`]).
    pub fn percentages(&self) -> [f64; 6] {
        let (l, s, bl, wl, bs, ws) = self.totals();
        let all = l + s;
        [
            pct(l, all),
            pct(s, all),
            pct(bl, all),
            pct(wl, all),
            pct(bs, all),
            pct(ws, all),
        ]
    }

    /// Character-reference split (same order, relative to character
    /// references).
    pub fn char_percentages(&self) -> [f64; 6] {
        let p = &self.profile;
        let cl = p.char_byte.loads + p.char_word.loads;
        let cs = p.char_byte.stores + p.char_word.stores;
        let all = cl + cs;
        [
            pct(cl, all),
            pct(cs, all),
            pct(p.char_byte.loads, all),
            pct(p.char_word.loads, all),
            pct(p.char_byte.stores, all),
            pct(p.char_word.stores, all),
        ]
    }

    /// Fraction of all references that touch character data.
    pub fn char_fraction(&self) -> f64 {
        let p = &self.profile;
        let c = p.char_byte.total() + p.char_word.total();
        pct(c, p.loads + p.stores)
    }
}

const LABELS: [&str; 6] = [
    "loads (all)",
    "stores (all)",
    "8-bit loads",
    "32-bit loads",
    "8-bit stores",
    "32-bit stores",
];

impl fmt::Display for RefPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (table, paper) = if self.target_name == "word" {
            (
                "Table 7: Data reference patterns in word-allocated programs",
                PAPER_WORD,
            )
        } else {
            (
                "Table 8: Data reference patterns in byte-allocated programs",
                PAPER_BYTE,
            )
        };
        writeln!(f, "{table}")?;
        writeln!(f, "{:>16}  {:>9}  {:>9}", "class", "measured", "paper")?;
        let m = self.percentages();
        for i in 0..6 {
            writeln!(f, "{:>16}  {:>8.1}%  {:>8.1}%", LABELS[i], m[i], paper[i])?;
        }
        if self.target_name == "word" {
            writeln!(
                f,
                "  character references ({:.1}% of all):",
                self.char_fraction()
            )?;
            let c = self.char_percentages();
            for i in 0..6 {
                writeln!(
                    f,
                    "{:>16}  {:>8.1}%  {:>8.1}%",
                    LABELS[i], c[i], PAPER_WORD_CHAR[i]
                )?;
            }
        }
        Ok(())
    }
}

fn merge_profiles(into: &mut Profile, p: &Profile) {
    into.instructions += p.instructions;
    into.loads += p.loads;
    into.stores += p.stores;
    for (a, b) in [
        (&mut into.word_data, &p.word_data),
        (&mut into.char_word, &p.char_word),
        (&mut into.char_byte, &p.char_byte),
        (&mut into.other_byte, &p.other_byte),
        (&mut into.unclassified, &p.unclassified),
    ] {
        a.loads += b.loads;
        a.stores += b.stores;
    }
    into.mem_cycles_used += p.mem_cycles_used;
    into.mem_cycles_free += p.mem_cycles_free;
    into.nops += p.nops;
    into.packed += p.packed;
    into.branches += p.branches;
    into.branches_taken += p.branches_taken;
}

/// Runs one workload on the given target and returns its profile.
pub fn profile_workload(source: &str, target: MachineTarget) -> Profile {
    let cg = CodegenOptions {
        target,
        ..CodegenOptions::standard()
    };
    let lc = compile_mips(source, &cg).expect("compiles");
    let out = reorganize(&lc, ReorgOptions::FULL).expect("reorganizes");
    let cfg = MachineConfig {
        byte_addressed: target == MachineTarget::Byte,
        ..MachineConfig::default()
    };
    let mut m = Machine::with_config(out.program, cfg);
    m.set_refclass_map(out.refclass);
    m.run().expect("runs");
    m.profile().clone()
}

/// Measures the reference pattern over the named workloads. With `None`,
/// uses every non-Table-11 workload — the stand-in for the paper's §4.1
/// Pascal corpus ("compilers, optimizers, and VLSI design aid software"),
/// which is distinct from the Table 11 benchmark inputs.
pub fn measure(target: MachineTarget, names: Option<&[&str]>) -> RefPattern {
    let mut pat = RefPattern {
        target_name: match target {
            MachineTarget::Word => "word",
            MachineTarget::Byte => "byte",
        },
        profile: Profile::default(),
    };
    for w in mips_workloads::corpus() {
        match names {
            Some(ns) => {
                if !ns.contains(&w.name) {
                    continue;
                }
            }
            None => {
                if w.table11 {
                    continue;
                }
            }
        }
        let p = profile_workload(w.source, target);
        merge_profiles(&mut pat.profile, &p);
    }
    pat
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: &[&str] = &[
        "scanner",
        "wordcount",
        "strings",
        "formatter",
        "sieve",
        "matmul",
        "sort",
        "queens",
    ];

    #[test]
    fn word_allocation_pattern_shape() {
        let pat = measure(MachineTarget::Word, Some(FAST));
        let m = pat.percentages();
        assert!(m[0] > 55.0, "loads dominate: {m:?}");
        assert!(m[0] + m[1] > 99.9);
        // Word references dominate byte references on word-allocated
        // programs (the paper's key observation).
        assert!(m[3] > m[2] * 3.0, "32-bit loads dominate: {m:?}");
        // Byte (packed) references exist.
        assert!(m[2] + m[4] > 0.5, "packed data must appear: {m:?}");
    }

    #[test]
    fn byte_allocation_raises_byte_share() {
        let w = measure(MachineTarget::Word, Some(FAST));
        let b = measure(MachineTarget::Byte, Some(FAST));
        let (wm, bm) = (w.percentages(), b.percentages());
        assert!(
            bm[2] + bm[4] > wm[2] + wm[4],
            "byte allocation must increase byte refs: {wm:?} vs {bm:?}"
        );
    }

    #[test]
    fn char_stores_run_high_in_char_data() {
        // "Character reference patterns have a much higher percentage of
        // stores than do non-character reference patterns."
        let pat = measure(
            MachineTarget::Word,
            Some(&["strings", "formatter", "wordcount"]),
        );
        let c = pat.char_percentages();
        let all = pat.percentages();
        assert!(
            c[1] > all[1],
            "char stores {c:?} should exceed overall store share {all:?}"
        );
    }
}
