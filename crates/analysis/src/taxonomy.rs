//! Table 2: the condition-code design-space taxonomy.
//!
//! "Table 2 shows a typical set of features associated with condition
//! codes and various architectures which possess these features." This is
//! a classification, not a measurement; we render it from the machine
//! models this reproduction actually implements.

use std::fmt;

/// One row of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaxonomyRow {
    /// Feature description.
    pub feature: &'static str,
    /// Architectures the paper names.
    pub paper_examples: &'static str,
    /// The model in this reproduction exercising the cell.
    pub our_model: &'static str,
}

/// The taxonomy table.
#[derive(Debug, Clone, Copy, Default)]
pub struct Taxonomy;

/// The rows.
pub fn rows() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            feature: "No condition code; compare-and-branch + conditional set",
            paper_examples: "MIPS, PDP-10, Cray-1",
            our_model: "mips-core / mips-sim (Cond, SetCondPiece, CmpBranchPiece)",
        },
        TaxonomyRow {
            feature: "Condition code set on operations only",
            paper_examples: "IBM 360",
            our_model: "mips-ccm CcPolicy::S360",
        },
        TaxonomyRow {
            feature: "Condition code set on operations and moves",
            paper_examples: "VAX",
            our_model: "mips-ccm CcPolicy::VAX",
        },
        TaxonomyRow {
            feature: "Conditional set from the condition code",
            paper_examples: "M68000",
            our_model: "mips-ccm CcPolicy::M68000 (CondSet)",
        },
        TaxonomyRow {
            feature: "Branch accesses the condition code",
            paper_examples: "VAX, 360, M68000",
            our_model: "mips-ccm CondBranch (all policies)",
        },
    ]
}

impl fmt::Display for Taxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: Condition code operations (taxonomy)")?;
        for r in rows() {
            writeln!(
                f,
                "  {:<58} | {:<20} | {}",
                r.feature, r.paper_examples, r.our_model
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_policies() {
        let s = Taxonomy.to_string();
        assert!(s.contains("S360"));
        assert!(s.contains("VAX"));
        assert!(s.contains("M68000"));
        assert!(s.contains("MIPS"));
        assert_eq!(rows().len(), 5);
    }
}
