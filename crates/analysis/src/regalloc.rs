//! The §2.2 register-allocation payoff, measured.
//!
//! "Load/store architectures can yield performance increases if
//! frequently-used operands are kept in registers. Not only is redundant
//! memory traffic decreased, but addressing calculations are saved as
//! well."
//!
//! This experiment sweeps the compiler's register-promotion budget (how
//! many of a routine's most-used scalar locals live in callee-saved
//! registers) and measures dynamic instructions and data-memory traffic
//! over the corpus — an ablation of the paper's register-allocation
//! argument.

use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::Machine;
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PromotionPoint {
    /// Promotion budget (registers).
    pub budget: usize,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic data-memory references.
    pub mem_refs: u64,
    /// Static program size (words).
    pub static_words: u64,
}

/// The sweep.
#[derive(Debug, Clone, Default)]
pub struct PromotionSweep {
    /// Points for budgets 0..=6.
    pub points: Vec<PromotionPoint>,
}

impl PromotionSweep {
    /// Reduction in dynamic memory traffic from 0 to max promotion,
    /// percent.
    pub fn mem_reduction_pct(&self) -> f64 {
        let first = self.points.first().map_or(0, |p| p.mem_refs);
        let last = self.points.last().map_or(0, |p| p.mem_refs);
        if first == 0 {
            0.0
        } else {
            100.0 * (first - last) as f64 / first as f64
        }
    }

    /// Reduction in dynamic instruction count, percent.
    pub fn instr_reduction_pct(&self) -> f64 {
        let first = self.points.first().map_or(0, |p| p.instructions);
        let last = self.points.last().map_or(0, |p| p.instructions);
        if first == 0 {
            0.0
        } else {
            100.0 * (first - last) as f64 / first as f64
        }
    }
}

impl fmt::Display for PromotionSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Register promotion sweep (§2.2: keep frequently-used operands in registers)"
        )?;
        writeln!(
            f,
            "{:>8} {:>14} {:>12} {:>12}",
            "budget", "instructions", "mem refs", "static"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>14} {:>12} {:>12}",
                p.budget, p.instructions, p.mem_refs, p.static_words
            )?;
        }
        writeln!(
            f,
            "  memory traffic cut {:.1}%, dynamic instructions cut {:.1}%",
            self.mem_reduction_pct(),
            self.instr_reduction_pct()
        )
    }
}

/// Runs the sweep over the named workloads.
pub fn sweep(names: &[&str]) -> PromotionSweep {
    let mut points = Vec::new();
    for budget in 0..=6usize {
        let mut point = PromotionPoint {
            budget,
            ..PromotionPoint::default()
        };
        for w in mips_workloads::corpus() {
            if !names.contains(&w.name) {
                continue;
            }
            let cg = CodegenOptions {
                target: MachineTarget::Word,
                promote_locals: budget,
                ..CodegenOptions::standard()
            };
            let lc = compile_mips(w.source, &cg).expect("compiles");
            let out = reorganize(&lc, ReorgOptions::FULL).expect("reorganizes");
            point.static_words += out.program.len() as u64;
            let mut m = Machine::new(out.program);
            m.run().expect("runs");
            point.instructions += m.profile().instructions;
            point.mem_refs += m.profile().loads + m.profile().stores;
        }
        points.push(point);
    }
    PromotionSweep { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_cuts_memory_traffic_monotonically_enough() {
        // Routine-heavy workloads (promotion applies to routine locals;
        // Pascal main-program globals stay in memory, as they must).
        let s = sweep(&["sort", "queens", "strings", "formatter"]);
        assert_eq!(s.points.len(), 7);
        // The paper's claim: register residence reduces memory traffic
        // and overall work.
        assert!(
            s.mem_reduction_pct() > 10.0,
            "promotion should cut traffic substantially: {s}"
        );
        assert!(
            s.instr_reduction_pct() > 5.0,
            "and dynamic instructions: {s}"
        );
        // No sweep point should be *worse* than no promotion at all.
        let base = s.points[0].instructions;
        for p in &s.points {
            assert!(p.instructions <= base + base / 50, "{s}");
        }
    }
}
