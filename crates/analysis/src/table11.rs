//! Table 11: cumulative static-instruction improvement from the
//! reorganizer's three optimizations.
//!
//! "The data in Table 11 show the improvements in static instruction
//! counts" for Fibonacci and the two Puzzle variants, through the levels
//! None → Reorganization → Packing → Branch delay. Paper totals: 20.6%,
//! 24.8%, 35.1%.

use crate::util::pct;
use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use std::fmt;

/// Paper values: static counts per level for (Fibbonacci, Puzzle 0,
/// Puzzle 1).
pub const PAPER_COUNTS: [(&str, [u64; 3]); 4] = [
    ("None (no-ops inserted)", [63, 843, 1219]),
    ("Reorganization", [63, 834, 1113]),
    ("Packing", [55, 776, 992]),
    ("Branch delay", [50, 634, 791]),
];

/// Paper total improvements per workload (percent).
pub const PAPER_IMPROVEMENT: [f64; 3] = [20.6, 24.8, 35.1];

/// One measured workload column.
#[derive(Debug, Clone)]
pub struct WorkloadColumn {
    /// Workload name.
    pub name: &'static str,
    /// Static counts at the four levels.
    pub counts: [u64; 4],
}

impl WorkloadColumn {
    /// Total improvement, percent.
    pub fn improvement(&self) -> f64 {
        pct(self.counts[0] - self.counts[3], self.counts[0])
    }

    /// Improvement at each level vs the previous.
    pub fn step_improvements(&self) -> [f64; 3] {
        [
            pct(self.counts[0] - self.counts[1], self.counts[0]),
            pct(self.counts[1] - self.counts[2], self.counts[0]),
            pct(self.counts[2] - self.counts[3], self.counts[0]),
        ]
    }
}

/// The measured table.
#[derive(Debug, Clone)]
pub struct Table11 {
    /// One column per workload (fib, puzzle0, puzzle1).
    pub columns: Vec<WorkloadColumn>,
}

/// Measures one workload's static counts at all four levels.
pub fn measure_workload(name: &'static str, source: &str) -> WorkloadColumn {
    // PCC-style code: no register promotion, as in the paper's inputs.
    let cg = CodegenOptions {
        target: MachineTarget::Word,
        promote_locals: 0,
        ..CodegenOptions::standard()
    };
    let lc = compile_mips(source, &cg).expect("compiles");
    let mut counts = [0u64; 4];
    for (i, (_, opts)) in ReorgOptions::LEVELS.iter().enumerate() {
        counts[i] = reorganize(&lc, *opts).expect("reorganizes").program.len() as u64;
    }
    WorkloadColumn { name, counts }
}

/// Measures the paper's three workloads.
pub fn measure() -> Table11 {
    let columns = mips_workloads::table11()
        .into_iter()
        .map(|w| measure_workload(w.name, w.source))
        .collect();
    Table11 { columns }
}

impl fmt::Display for Table11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 11: Cumulative improvements with postpass optimization (static words)"
        )?;
        write!(f, "{:<26}", "optimization")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.name)?;
        }
        writeln!(f, "     paper (fib/puz0/puz1)")?;
        for (lvl, (label, paper)) in PAPER_COUNTS.iter().enumerate() {
            write!(f, "{label:<26}")?;
            for c in &self.columns {
                write!(f, "{:>12}", c.counts[lvl])?;
            }
            writeln!(f, "     {} / {} / {}", paper[0], paper[1], paper[2])?;
        }
        write!(f, "{:<26}", "total improvement")?;
        for c in &self.columns {
            write!(f, "{:>11.1}%", c.improvement())?;
        }
        writeln!(
            f,
            "     {}% / {}% / {}%",
            PAPER_IMPROVEMENT[0], PAPER_IMPROVEMENT[1], PAPER_IMPROVEMENT[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_shrink_monotonically_and_meaningfully() {
        let t = measure();
        assert_eq!(t.columns.len(), 3);
        for c in &t.columns {
            assert!(
                c.counts[0] >= c.counts[1]
                    && c.counts[1] >= c.counts[2]
                    && c.counts[2] >= c.counts[3],
                "{}: {:?}",
                c.name,
                c.counts
            );
            let imp = c.improvement();
            // The paper reports 20.6-35.1%; our code generator's richer
            // addressing modes absorb address arithmetic PCC emitted as
            // separate (packable) pieces, so the reorganizer has less to
            // win — the qualitative shape (monotone, double-digit total,
            // branch delay the largest step on Puzzle) still holds. See
            // EXPERIMENTS.md.
            assert!(
                (8.0..=45.0).contains(&imp),
                "{}: improvement {imp:.1}% outside the accepted band",
                c.name
            );
        }
    }

    #[test]
    fn display_shows_paper_columns() {
        let t = measure();
        let s = t.to_string();
        assert!(s.contains("Table 11"));
        assert!(s.contains("843"));
    }
}
