//! Table 4: boolean-expression statistics.
//!
//! "Average operators/boolean expression 1.66; boolean expressions ending
//! in jumps 80.9%; boolean expressions ending in stores 19.1%."
//!
//! A *boolean expression* here is a maximal boolean-operator tree at a
//! statement use site: a conditional context (if/while/until — "ending in
//! a jump") or a value context (assignment of a boolean — "ending in a
//! store"). Operators are the `and`/`or` connectives.

use crate::util::pct;
use mips_hll::hir::*;
use std::fmt;

/// Paper values.
pub const PAPER_OPERATORS_PER_EXPR: f64 = 1.66;
/// See [`PAPER_OPERATORS_PER_EXPR`].
pub const PAPER_JUMP_PCT: f64 = 80.9;
/// See [`PAPER_OPERATORS_PER_EXPR`].
pub const PAPER_STORE_PCT: f64 = 19.1;

/// Aggregated boolean-expression statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BoolStats {
    /// Boolean expressions in jump (conditional) context.
    pub jumps: u64,
    /// Boolean expressions in store (assignment) context.
    pub stores: u64,
    /// Total `and`/`or` operators across all of them.
    pub operators: u64,
    /// Expressions containing at least one operator.
    pub with_operators: u64,
    /// Operators in those expressions only.
    pub operators_in_compound: u64,
}

impl BoolStats {
    /// Total boolean expressions.
    pub fn total(&self) -> u64 {
        self.jumps + self.stores
    }

    /// Average operators per boolean expression, among expressions that
    /// contain operators (the paper's compound expressions).
    pub fn operators_per_compound(&self) -> f64 {
        if self.with_operators == 0 {
            0.0
        } else {
            self.operators_in_compound as f64 / self.with_operators as f64
        }
    }

    /// Percent ending in jumps.
    pub fn jump_pct(&self) -> f64 {
        pct(self.jumps, self.total())
    }

    /// Percent ending in stores.
    pub fn store_pct(&self) -> f64 {
        pct(self.stores, self.total())
    }

    /// Merge.
    pub fn merge(&mut self, o: &BoolStats) {
        self.jumps += o.jumps;
        self.stores += o.stores;
        self.operators += o.operators;
        self.with_operators += o.with_operators;
        self.operators_in_compound += o.operators_in_compound;
    }
}

impl fmt::Display for BoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: Boolean expressions")?;
        writeln!(
            f,
            "  operators/compound expression  {:>6.2}   (paper {PAPER_OPERATORS_PER_EXPR})",
            self.operators_per_compound()
        )?;
        writeln!(
            f,
            "  ending in jumps                {:>5.1}%   (paper {PAPER_JUMP_PCT}%)",
            self.jump_pct()
        )?;
        writeln!(
            f,
            "  ending in stores               {:>5.1}%   (paper {PAPER_STORE_PCT}%)",
            self.store_pct()
        )?;
        writeln!(
            f,
            "  total expressions {} (jumps {}, stores {})",
            self.total(),
            self.jumps,
            self.stores
        )
    }
}

/// Counts `and`/`or` operators in a boolean tree.
fn count_ops(e: &HExpr) -> u64 {
    match e {
        HExpr::BoolBin { a, b, .. } => 1 + count_ops(a) + count_ops(b),
        HExpr::Not(a) => count_ops(a),
        _ => 0,
    }
}

/// Records one boolean-expression use site.
fn record(stats: &mut BoolStats, e: &HExpr, jump: bool) {
    if jump {
        stats.jumps += 1;
    } else {
        stats.stores += 1;
    }
    let ops = count_ops(e);
    stats.operators += ops;
    if ops > 0 {
        stats.with_operators += 1;
        stats.operators_in_compound += ops;
    }
}

/// Analyzes one program.
pub fn analyze(prog: &HProgram) -> BoolStats {
    let mut stats = BoolStats::default();
    fn stmt(s: &HStmt, stats: &mut BoolStats) {
        match s {
            HStmt::Assign(lv, e) if lv.ty == Ty::Bool => {
                record(stats, e, false);
            }
            HStmt::SetResult(e) if e.ty() == Ty::Bool => {
                record(stats, e, false);
            }
            HStmt::If { cond, then, els } => {
                record(stats, cond, true);
                for s in then.iter().chain(els) {
                    stmt(s, stats);
                }
            }
            HStmt::While { cond, body } => {
                record(stats, cond, true);
                for s in body {
                    stmt(s, stats);
                }
            }
            HStmt::Repeat { body, cond } => {
                record(stats, cond, true);
                for s in body {
                    stmt(s, stats);
                }
            }
            HStmt::For { body, .. } => {
                for s in body {
                    stmt(s, stats);
                }
            }
            HStmt::Block(ss) => {
                for s in ss {
                    stmt(s, stats);
                }
            }
            HStmt::Case { arms, default, .. } => {
                for (_, body) in arms {
                    for s in body {
                        stmt(s, stats);
                    }
                }
                for s in default {
                    stmt(s, stats);
                }
            }
            _ => {}
        }
    }
    for r in &prog.routines {
        for s in &r.body {
            stmt(s, &mut stats);
        }
    }
    stats
}

/// Analyzes the whole corpus.
pub fn analyze_corpus() -> BoolStats {
    let mut stats = BoolStats::default();
    for (_, prog) in crate::util::corpus_hirs() {
        stats.merge(&analyze(&prog));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_contexts() {
        let prog = mips_hll::front_end(
            "program t; var b: boolean; x: integer;
             begin
               b := (x = 1) or (x = 2);
               if (x > 0) and b then x := 1;
               while x < 3 do x := x + 1
             end.",
        )
        .unwrap();
        let s = analyze(&prog);
        assert_eq!(s.stores, 1);
        assert_eq!(s.jumps, 2);
        assert_eq!(s.operators, 2);
        assert_eq!(s.with_operators, 2);
        assert_eq!(s.operators_per_compound(), 1.0);
    }

    #[test]
    fn corpus_shape_matches_paper() {
        let s = analyze_corpus();
        assert!(s.total() > 40, "corpus boolean-rich: {s:?}");
        // Jumps dominate stores, as in the paper.
        assert!(
            s.jump_pct() > 60.0,
            "jumps should dominate: {:.1}%",
            s.jump_pct()
        );
        assert!(s.store_pct() > 2.0, "stores must occur: {s:?}");
        let avg = s.operators_per_compound();
        assert!(
            (1.0..=3.0).contains(&avg),
            "compound operator average {avg:.2} out of band"
        );
    }
}
