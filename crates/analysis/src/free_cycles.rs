//! The §3.1 free-memory-cycle measurement.
//!
//! "Dynamic simulations indicated that the wasted bandwidth came close to
//! 40% of the available bandwidth." With the dual instruction/data
//! interface, every cycle consumes one instruction-fetch cycle and offers
//! one data cycle; the wasted fraction is the unused data cycles over the
//! *total* bandwidth (two cycles per instruction). Packing load/store
//! pieces into operate words raises per-word utilization, which is
//! exactly what the packed level shows.

use mips_hll::{compile_mips, CodegenOptions, MachineTarget};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::Machine;
use std::fmt;

/// Paper's figure for wasted (free) bandwidth.
pub const PAPER_FREE_PCT: f64 = 40.0;

/// Measured free-bandwidth fractions (of total I+D bandwidth).
#[derive(Debug, Clone, Copy, Default)]
pub struct FreeCycles {
    /// Wasted bandwidth with unpacked code (one piece per word), percent.
    pub unpacked_pct: f64,
    /// Wasted bandwidth with full packing, percent.
    pub packed_pct: f64,
    /// DMA transfers serviced during the packed run (demonstrating the
    /// free-cycle reuse the status pin enables).
    pub dma_serviced: u64,
}

impl fmt::Display for FreeCycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Free memory bandwidth (paper §3.1: ≈{PAPER_FREE_PCT}% wasted)"
        )?;
        writeln!(
            f,
            "  unpacked code: {:.1}% of total bandwidth free",
            self.unpacked_pct
        )?;
        writeln!(
            f,
            "  packed code:   {:.1}% of total bandwidth free",
            self.packed_pct
        )?;
        writeln!(
            f,
            "  DMA transfers serviced from free cycles: {}",
            self.dma_serviced
        )
    }
}

/// Measures free-cycle fractions over the named workloads.
pub fn measure(names: &[&str]) -> FreeCycles {
    let cg = CodegenOptions {
        target: MachineTarget::Word,
        ..CodegenOptions::standard()
    };
    let run = |opts: ReorgOptions, dma: bool| -> (u64, u64, u64) {
        let (mut used, mut free, mut serviced) = (0u64, 0u64, 0u64);
        for w in mips_workloads::corpus() {
            if !names.contains(&w.name) {
                continue;
            }
            let lc = compile_mips(w.source, &cg).expect("compiles");
            let out = reorganize(&lc, opts).expect("reorganizes");
            let mut m = Machine::new(out.program);
            if dma {
                for k in 0..1000 {
                    m.mem_mut().queue_dma(mips_sim::mem::Dma::Write {
                        addr: 0x00f0_0000 + k,
                        value: k,
                    });
                }
            }
            m.run().expect("runs");
            used += m.profile().mem_cycles_used;
            free += m.profile().mem_cycles_free;
            serviced += m.profile().dma_serviced;
        }
        (used, free, serviced)
    };
    let (u1, f1, _) = run(ReorgOptions::SCHEDULE, false);
    let (u2, f2, s2) = run(ReorgOptions::FULL, true);
    // Total bandwidth = one fetch cycle + one data cycle per instruction.
    FreeCycles {
        unpacked_pct: 100.0 * f1 as f64 / (2 * (u1 + f1)) as f64,
        packed_pct: 100.0 * f2 as f64 / (2 * (u2 + f2)) as f64,
        dma_serviced: s2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpacked_bandwidth_waste_is_large() {
        let fc = measure(&["scanner", "strings", "sieve", "sort", "matmul"]);
        assert!(
            (30.0..=50.0).contains(&fc.unpacked_pct),
            "free fraction should sit near the paper's 40%: {fc:?}"
        );
        // Packing reduces the number of free slots per word of code.
        assert!(fc.packed_pct <= fc.unpacked_pct, "{fc:?}");
        assert!(fc.dma_serviced > 0, "DMA should have been serviced: {fc:?}");
    }
}
