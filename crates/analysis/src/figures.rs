//! Figures 1–4: the paper's code-shape examples, regenerated from the
//! real compilers and reorganizer.
//!
//! The canonical boolean example is the paper's
//! `Found := (Rec = Key) OR (I = 13)`.

use mips_hll::{compile_cc, compile_mips, CcBoolStrategy, CcGenOptions, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use std::fmt;

/// The canonical source.
pub const CANONICAL: &str = "program t;
var found: boolean; rec, key, i: integer;
begin
  found := (rec = key) or (i = 13)
end.
";

/// A rendered figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: &'static str,
    /// The paper's note on the figure.
    pub paper_note: &'static str,
    /// One listing per variant: (caption, text, static instruction
    /// count, static branch count).
    pub listings: Vec<(String, String, usize, usize)>,
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "  (paper: {})", self.paper_note)?;
        for (caption, text, instrs, branches) in &self.listings {
            writeln!(
                f,
                "--- {caption} ({instrs} instructions, {branches} branches) ---"
            )?;
            for line in text.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

fn cc_listing(strategy: CcBoolStrategy) -> (String, usize, usize) {
    let p = compile_cc(CANONICAL, &CcGenOptions { strategy }).expect("compiles");
    // Slice the main routine: from the `main` symbol to the final ret.
    let start = p.symbol("main").expect("main") as usize;
    let instrs = &p.instrs()[start..];
    let end = instrs
        .iter()
        .position(|i| matches!(i, mips_ccm::CcInstr::Ret))
        .map_or(instrs.len(), |e| e + 1);
    let instrs = &instrs[..end];
    let text = instrs
        .iter()
        .enumerate()
        .map(|(k, i)| format!("{:>3}  {i}", start + k))
        .collect::<Vec<_>>()
        .join("\n");
    let branches = instrs.iter().filter(|i| i.is_branch()).count();
    (text, instrs.len(), branches)
}

fn mips_listing(opts: ReorgOptions) -> (String, usize, usize) {
    let lc = compile_mips(CANONICAL, &CodegenOptions::standard()).expect("compiles");
    let out = reorganize(&lc, opts).expect("reorganizes");
    let start = out.program.symbol("main").expect("main") as usize;
    let instrs = &out.program.instrs()[start..];
    let end = instrs
        .iter()
        .position(|i| matches!(i, mips_core::Instr::JumpInd(_)))
        .map_or(instrs.len(), |e| (e + 3).min(instrs.len()));
    let instrs = &instrs[..end];
    let text = instrs
        .iter()
        .enumerate()
        .map(|(k, i)| format!("{:>3}  {i}", start + k))
        .collect::<Vec<_>>()
        .join("\n");
    let branches = instrs.iter().filter(|i| i.branch_delay() > 0).count();
    (text, instrs.len(), branches)
}

/// Figure 1: full vs early-out evaluation on a CC machine.
pub fn figure1() -> Figure {
    let (full, fi, fb) = cc_listing(CcBoolStrategy::FullEval);
    let (early, ei, eb) = cc_listing(CcBoolStrategy::EarlyOut);
    Figure {
        title: "Figure 1: Evaluating boolean expressions with condition codes",
        paper_note: "full: 8 static, avg 7 executed, 2 branches; early-out: 6 static, avg 4.25 executed, ≤2 branches",
        listings: vec![
            ("full evaluation (main routine)".to_string(), full, fi, fb),
            ("early-out evaluation (main routine)".to_string(), early, ei, eb),
        ],
    }
}

/// Figure 2: conditional-set evaluation.
pub fn figure2() -> Figure {
    let (text, i, b) = cc_listing(CcBoolStrategy::CondSet);
    Figure {
        title: "Figure 2: Boolean expression evaluation using conditional set",
        paper_note: "5 static/dynamic instructions, no branches",
        listings: vec![("conditional set (main routine)".to_string(), text, i, b)],
    }
}

/// Figure 3: MIPS *Set Conditionally*.
pub fn figure3() -> Figure {
    let (text, i, b) = mips_listing(ReorgOptions::FULL);
    Figure {
        title: "Figure 3: Boolean expression evaluation using set conditionally",
        paper_note: "3 static and dynamic instructions, no branches (seq/seq/or)",
        listings: vec![(
            "MIPS set-conditionally (main routine)".to_string(),
            text,
            i,
            b,
        )],
    }
}

/// The Figure 4 input fragment (the paper's, in our assembler syntax).
pub const FIGURE4_SRC: &str = "
    ld 2(r13),r0
    ble r0,#1,l11
    .dead r2
    sub r0,#1,r2
    st r2,2(r14)
    ld 3(r14),r5
    add r5,r0,r5
    add r4,#1,r4
    bra l3
l3:
    halt
l11:
    halt
";

/// Figure 4: the reorganization example at every level.
pub fn figure4() -> Figure {
    let lc = mips_asm::assemble_linear(FIGURE4_SRC).expect("assembles");
    let mut listings = Vec::new();
    for (name, opts) in ReorgOptions::LEVELS {
        let out = reorganize(&lc, opts).expect("reorganizes");
        let text = out.program.listing();
        let n = out.program.len();
        let branches = out
            .program
            .instrs()
            .iter()
            .filter(|i| i.branch_delay() > 0)
            .count();
        listings.push((name.to_string(), text, n, branches));
    }
    Figure {
        title: "Figure 4: Reorganization, packing, and branch delay",
        paper_note: "legal code with no-ops vs reorganized code (the paper's fragment)",
        listings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_is_branch_free_and_tiny() {
        let fig = figure3();
        let (_, _, instrs, branches) = &fig.listings[0];
        // Prologue/epilogue surround the 3-instruction core; but the
        // expression itself must contribute no branches beyond the return.
        assert!(*branches <= 1, "{fig}");
        assert!(*instrs < 25, "{fig}");
        let text = fig.to_string();
        assert!(text.contains("seq"), "{text}");
        assert!(text.contains("or"), "{text}");
    }

    #[test]
    fn figure1_has_branches_figure2_does_not() {
        let f1 = figure1();
        let full_branches = f1.listings[0].3;
        assert!(full_branches >= 2, "{f1}");
        let f2 = figure2();
        let t = f2.to_string();
        assert!(t.contains("seq") || t.contains("s"), "{t}");
        // Conditional-set main contains no conditional branches.
        assert!(
            !f2.listings[0].1.contains("beq") && !f2.listings[0].1.contains("bne"),
            "{t}"
        );
    }

    #[test]
    fn figure4_improves_monotonically() {
        let fig = figure4();
        let sizes: Vec<usize> = fig.listings.iter().map(|l| l.2).collect();
        assert!(sizes.windows(2).all(|w| w[1] <= w[0]), "{sizes:?}");
        assert!(sizes[0] > sizes[3], "full must beat none: {sizes:?}");
    }
}
