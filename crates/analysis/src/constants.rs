//! Table 1: the distribution of constant magnitudes in programs.
//!
//! "Table 1 contains the distribution of constants (in magnitudes) found
//! in a collection of Pascal programs including compilers and VLSI design
//! aid software. … a 4-bit constant should cover approximately 70% of the
//! cases; the special 8-bit constant will catch all but 5%."

use crate::util::{pct, walk_exprs};
use mips_hll::hir::{HExpr, HProgram};
use std::fmt;

/// The paper's magnitude buckets.
pub const BUCKETS: [&str; 6] = ["0", "1", "2", "3 - 15", "16 - 255", "> 255"];

/// Paper percentages per bucket.
pub const PAPER: [f64; 6] = [24.8, 19.0, 4.1, 20.8, 26.8, 4.5];

/// A constant-magnitude histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstDist {
    /// Counts per bucket.
    pub counts: [u64; 6],
}

impl ConstDist {
    fn bucket(v: i64) -> usize {
        match v.unsigned_abs() {
            0 => 0,
            1 => 1,
            2 => 2,
            3..=15 => 3,
            16..=255 => 4,
            _ => 5,
        }
    }

    /// Records one constant.
    pub fn record(&mut self, v: i64) {
        self.counts[Self::bucket(v)] += 1;
    }

    /// Total constants seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage per bucket.
    pub fn percentages(&self) -> [f64; 6] {
        let t = self.total();
        let mut p = [0.0; 6];
        for (i, &c) in self.counts.iter().enumerate() {
            p[i] = pct(c, t);
        }
        p
    }

    /// Fraction of constants the 4-bit operand field covers (buckets
    /// 0..=3-15). The paper: ≈70%.
    pub fn four_bit_coverage(&self) -> f64 {
        let p = self.percentages();
        p[0] + p[1] + p[2] + p[3]
    }

    /// Fraction covered by 4-bit or 8-bit constants. Paper: ≈95%.
    pub fn eight_bit_coverage(&self) -> f64 {
        100.0 - self.percentages()[5]
    }

    /// Merges another distribution.
    pub fn merge(&mut self, other: &ConstDist) {
        for i in 0..6 {
            self.counts[i] += other.counts[i];
        }
    }
}

impl fmt::Display for ConstDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: Constant distribution in programs")?;
        writeln!(
            f,
            "{:>12}  {:>10}  {:>10}",
            "magnitude", "measured", "paper"
        )?;
        let p = self.percentages();
        for i in 0..6 {
            writeln!(f, "{:>12}  {:>9.1}%  {:>9.1}%", BUCKETS[i], p[i], PAPER[i])?;
        }
        writeln!(
            f,
            "4-bit field covers {:.1}% (paper ≈70%); 8-bit covers {:.1}% (paper ≈95%)",
            self.four_bit_coverage(),
            self.eight_bit_coverage()
        )
    }
}

/// Analyzes the constants of one program.
pub fn analyze(prog: &HProgram) -> ConstDist {
    let mut d = ConstDist::default();
    walk_exprs(prog, |e| match e {
        HExpr::Int(v) => d.record(*v as i64),
        HExpr::Char(c) => d.record(*c as i64),
        HExpr::Bool(b) => d.record(*b as i64),
        _ => {}
    });
    d
}

/// Analyzes the whole corpus.
pub fn analyze_corpus() -> ConstDist {
    let mut d = ConstDist::default();
    for (_, prog) in crate::util::corpus_hirs() {
        d.merge(&analyze(&prog));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets() {
        let mut d = ConstDist::default();
        for v in [0, 1, -1, 2, 3, 15, 16, 255, 256, -300] {
            d.record(v);
        }
        assert_eq!(d.counts, [1, 2, 1, 2, 2, 2]);
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn char_constants_land_in_16_255() {
        let prog = mips_hll::front_end(
            "program t; var c: char; begin c := 'a'; if c = 'z' then c := 'b' end.",
        )
        .unwrap();
        let d = analyze(&prog);
        assert_eq!(d.counts[4], 3, "{d:?}");
    }

    #[test]
    fn corpus_distribution_matches_paper_shape() {
        let d = analyze_corpus();
        assert!(
            d.total() > 200,
            "corpus should be constant-rich: {}",
            d.total()
        );
        // The headline claims, loosely banded:
        let four = d.four_bit_coverage();
        assert!(
            (50.0..=90.0).contains(&four),
            "4-bit coverage {four:.1}% out of band"
        );
        let eight = d.eight_bit_coverage();
        assert!(
            eight >= 85.0,
            "8-bit coverage {eight:.1}% should catch nearly all"
        );
        // Small constants dominate.
        let p = d.percentages();
        assert!(p[0] + p[1] > 20.0, "0 and 1 should be common: {p:?}");
    }

    #[test]
    fn display_contains_paper_column() {
        let d = analyze_corpus();
        let s = d.to_string();
        assert!(s.contains("Table 1"));
        assert!(s.contains("24.8"));
    }
}
