//! Shared helpers: corpus access, HIR walking, percentage formatting.

use mips_hll::hir::*;

/// Compiles the whole workload corpus to HIR.
///
/// # Panics
///
/// Panics if any corpus program fails to compile (the corpus is tested).
pub fn corpus_hirs() -> Vec<(&'static str, HProgram)> {
    mips_workloads::corpus()
        .iter()
        .map(|w| {
            (
                w.name,
                mips_hll::front_end(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name)),
            )
        })
        .collect()
}

/// Percentage with divide-by-zero safety.
pub fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Walks every expression in a program (including nested ones),
/// depth-first.
pub fn walk_exprs(prog: &HProgram, mut f: impl FnMut(&HExpr)) {
    fn expr(e: &HExpr, f: &mut impl FnMut(&HExpr)) {
        f(e);
        match e {
            HExpr::Neg(a) | HExpr::Not(a) | HExpr::Ord(a) | HExpr::Chr(a) => expr(a, f),
            HExpr::Bin { a, b, .. } | HExpr::Rel { a, b, .. } | HExpr::BoolBin { a, b, .. } => {
                expr(a, f);
                expr(b, f);
            }
            HExpr::Load(lv) => {
                for ix in &lv.indices {
                    expr(&ix.expr, f);
                }
            }
            HExpr::Call { args, .. } => {
                for a in args {
                    match a {
                        HArg::Value(e) => expr(e, f),
                        HArg::Ref(lv) => {
                            for ix in &lv.indices {
                                expr(&ix.expr, f);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    fn lv_exprs(lv: &HLValue, f: &mut impl FnMut(&HExpr)) {
        for ix in &lv.indices {
            expr(&ix.expr, f);
        }
    }
    fn stmt(s: &HStmt, f: &mut impl FnMut(&HExpr)) {
        match s {
            HStmt::Assign(lv, e) => {
                lv_exprs(lv, f);
                expr(e, f);
            }
            HStmt::SetResult(e) => expr(e, f),
            HStmt::If { cond, then, els } => {
                expr(cond, f);
                for s in then.iter().chain(els) {
                    stmt(s, f);
                }
            }
            HStmt::While { cond, body } => {
                expr(cond, f);
                for s in body {
                    stmt(s, f);
                }
            }
            HStmt::Repeat { body, cond } => {
                expr(cond, f);
                for s in body {
                    stmt(s, f);
                }
            }
            HStmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                lv_exprs(var, f);
                expr(from, f);
                expr(to, f);
                for s in body {
                    stmt(s, f);
                }
            }
            HStmt::Call { args, .. } => {
                for a in args {
                    match a {
                        HArg::Value(e) => expr(e, f),
                        HArg::Ref(lv) => lv_exprs(lv, f),
                    }
                }
            }
            HStmt::Write { args, .. } => {
                for a in args {
                    match a {
                        HWriteArg::Int(e) | HWriteArg::Char(e) => expr(e, f),
                        HWriteArg::Str(_) => {}
                    }
                }
            }
            HStmt::Block(ss) => {
                for s in ss {
                    stmt(s, f);
                }
            }
            HStmt::Case {
                selector,
                arms,
                default,
            } => {
                expr(selector, f);
                for (_, body) in arms {
                    for s in body {
                        stmt(s, f);
                    }
                }
                for s in default {
                    stmt(s, f);
                }
            }
        }
    }
    for r in &prog.routines {
        for s in &r.body {
            stmt(s, &mut f);
        }
    }
}

/// Walks every statement (recursively) in a program.
pub fn walk_stmts(prog: &HProgram, mut f: impl FnMut(&HStmt)) {
    fn stmt(s: &HStmt, f: &mut impl FnMut(&HStmt)) {
        f(s);
        match s {
            HStmt::If { then, els, .. } => {
                for s in then.iter().chain(els) {
                    stmt(s, f);
                }
            }
            HStmt::While { body, .. } | HStmt::Repeat { body, .. } | HStmt::For { body, .. } => {
                for s in body {
                    stmt(s, f);
                }
            }
            HStmt::Block(ss) => {
                for s in ss {
                    stmt(s, f);
                }
            }
            HStmt::Case { arms, default, .. } => {
                for (_, body) in arms {
                    for s in body {
                        stmt(s, f);
                    }
                }
                for s in default {
                    stmt(s, f);
                }
            }
            _ => {}
        }
    }
    for r in &prog.routines {
        for s in &r.body {
            stmt(s, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_compiles() {
        let hirs = corpus_hirs();
        assert!(hirs.len() >= 12);
    }

    #[test]
    fn walkers_visit_nested_expressions() {
        let prog = mips_hll::front_end(
            "program t; var a: array [0..9] of integer; i: integer;
             begin if a[i + 1] = 2 then a[3] := 4 + 5 end.",
        )
        .unwrap();
        let mut ints = Vec::new();
        walk_exprs(&prog, |e| {
            if let HExpr::Int(v) = e {
                ints.push(*v);
            }
        });
        ints.sort_unstable();
        assert_eq!(ints, vec![1, 2, 3, 4, 5]);
        let mut stmts = 0;
        walk_stmts(&prog, |_| stmts += 1);
        assert_eq!(stmts, 2); // if + assign
    }

    #[test]
    fn pct_safety() {
        assert_eq!(pct(1, 0), 0.0);
        assert!((pct(1, 4) - 25.0).abs() < 1e-12);
    }
}
