fn main() {
    let t = mips_analysis::table11::measure();
    println!("{t}");
    for c in &t.columns {
        println!("{}: steps {:?}", c.name, c.step_improvements());
    }
}
