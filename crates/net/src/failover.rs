//! The failover workload: a replicated counter that survives the
//! death of *anyone* — including its leader — at *any* round.
//!
//! Three identical guest members run a primary/backup protocol with
//! bully-style leader election on top of two new mechanisms:
//!
//! * **Frame2** ([`frame2`]): a four-word wire format (magic / type /
//!   length / sequence / term header, value word, reserved word,
//!   whole-frame checksum) carried by the `sendf`/`recvf` syscalls —
//!   the length-prefixed multi-word replacement for the v1
//!   single-u32 wire word.
//! * **A guest write-ahead log** ([`wal`]): an append-only record
//!   segment in reserved guest memory that the host [`crate::cluster::Cluster`]
//!   preserves across `kill_node` restores (see
//!   [`crate::cluster::WalSpec`]). Every protocol-state change —
//!   term adoption, candidacy, applied replication, leader progress —
//!   is appended *before* it is acknowledged, so a restored member
//!   replays its own log to re-derive `(term, seq, value, phase)`
//!   instead of depending on the next frame it happens to see.
//!
//! ## The protocol
//!
//! The leader of term `t` is node `t % n` by construction, so
//! elections need no name exchange: a member that hears nothing for
//! [`ELECT_TICKS`] bumps its term to the next value congruent to its
//! own id, logs it, and broadcasts `ELECT`; one `VOTE` (self plus one
//! voter is a majority of three) makes it leader. Term numbers
//! totally order leadership: every member adopts any higher term it
//! hears (logging the adoption) and replies to any *stale*-term frame
//! with its own term so deposed leaders step down in one round trip.
//!
//! The leader drives every backup through `K` `SET`s and one `FIN`,
//! one `(seq, backup)` pair at a time, retrying on timeout. Each
//! `SET`/`FIN` carries the **full** counter state, and the drive
//! content is a pure function of `(seq)` — so a re-elected leader
//! re-driving from progress zero converges to the same final value
//! `K`, no matter how many leaders died along the way. Backups apply
//! fresh sequence numbers (log, then acknowledge), re-acknowledge
//! stale ones, print the counter exactly once when the `FIN` lands
//! (phase `DONE` in the log), and exit after [`IDLE_TICKS`] of
//! silence. The leader exits once its log says `DONE` and the value
//! is printed — which can only happen after every backup logged
//! `DONE`, so nobody left alive will ever start an election against
//! the silence of a finished cluster.

use crate::cluster::{ClusterConfig, WalSpec};
use crate::workloads::{IDLE_TICKS, K, RESEND_TICKS};
use mips_os::{Kernel, OsError};
use mips_sim::Engine;

/// Members in the failover cluster. The election shortcut
/// (`leader(term) = term % 3`) and the one-vote majority are sized to
/// exactly three.
pub const FAILOVER_NODES: u32 = 3;

/// Guest clock ticks of silence before a backup starts an election.
/// Far above the resend period (a live leader is never this quiet)
/// and far below [`IDLE_TICKS`] (an abandoned candidate still
/// idle-exits).
pub const ELECT_TICKS: u32 = 64;

/// Frame2: the four-word wire format, host side. The guest assembly
/// in [`member_src`] implements exactly this; tests and the chaos
/// grader use the Rust form.
///
/// ```text
///  w0:  31    24 23  20 19  16 15    10 9        0
///      +--------+------+------+--------+----------+
///      |  0xF2  | type | len=4|  seq   |   term   |
///      +--------+------+------+--------+----------+
///  w1:  value (full replica state)
///  w2:  reserved (zero)
///  w3:  w0 + w1 + w2  (wrapping — whole-frame checksum)
/// ```
///
/// Any single-bit flip lands in exactly one word and breaks the sum,
/// so a corrupt frame is dropped and behaves like a lost one — the
/// sender's retry masks it. Reply types are always `request + 1`.
pub mod frame2 {
    /// Header magic, bits 31:24 of `w0`.
    pub const MAGIC: u32 = 0xF2;
    /// Payload length in words, bits 19:16 of `w0`.
    pub const LEN: u32 = 4;
    /// Replicate/heartbeat request: apply `(seq, value)`.
    pub const SET: u32 = 1;
    /// Replicate acknowledged.
    pub const ACK: u32 = 2;
    /// Finish request: apply, log `DONE`, print once.
    pub const FIN: u32 = 3;
    /// Finish acknowledged.
    pub const FINACK: u32 = 4;
    /// Election solicit from the candidate of `term`.
    pub const ELECT: u32 = 5;
    /// Vote for the candidate of `term`.
    pub const VOTE: u32 = 6;

    /// Packs a whole frame and stamps the checksum.
    pub fn pack(typ: u32, seq: u32, term: u32, value: u32) -> [u32; 4] {
        let w0 = MAGIC << 24 | (typ & 0xF) << 20 | LEN << 16 | (seq & 0x3F) << 10 | (term & 0x3FF);
        let w2 = 0;
        [w0, value, w2, w0.wrapping_add(value).wrapping_add(w2)]
    }

    /// Whether the frame carries the magic and a consistent checksum.
    pub fn frame_ok(f: &[u32]) -> bool {
        f.len() == 4 && f[0] >> 24 == MAGIC && f[0].wrapping_add(f[1]).wrapping_add(f[2]) == f[3]
    }

    /// The type field.
    pub fn typ(f: &[u32]) -> u32 {
        (f[0] >> 20) & 0xF
    }

    /// The sequence field.
    pub fn seq(f: &[u32]) -> u32 {
        (f[0] >> 10) & 0x3F
    }

    /// The term field.
    pub fn term(f: &[u32]) -> u32 {
        f[0] & 0x3FF
    }

    /// The value word.
    pub fn value(f: &[u32]) -> u32 {
        f[1]
    }
}

/// The guest write-ahead log, host side: layout constants, the record
/// format, and the same replay scan the guest runs at its loop top.
///
/// The segment lives at guest data address [`wal::VA`] (physical
/// [`wal::PHYS`] under the kernel's `pid << 20 | va` data mapping for
/// the single spawned process). Word 0 is the record count; records
/// are three words each, appended in order:
///
/// ```text
///  w0:  0xA11D << 16 | term(10) << 6 | seq(6)
///  w1:  phase(RUN=0 / DONE=1) << 16 | value(16)
///  w2:  w0 + w1  (wrapping)
/// ```
///
/// The writer stores `w0`, `w1`, `w2` and only then bumps the count,
/// so a crash mid-append leaves the log's visible prefix whole. The
/// replay scan still validates every counted record (magic and sum)
/// and truncates at the first torn one — a record can never validate
/// by accident, because an uncounted or half-written slot fails the
/// magic check (zeros) or the sum (mixed halves of two appends that
/// would need `w0` to be byte-identical, i.e. the same key).
pub mod wal {
    use super::WalSpec;

    /// Record magic, bits 31:16 of `w0`.
    pub const MAGIC: u32 = 0xA11D;
    /// Guest data virtual address of the segment.
    pub const VA: u32 = 0x1000;
    /// Guest-physical address of the segment (pid 1's data space).
    pub const PHYS: u32 = 0x0010_1000;
    /// Maximum records. When the log is full the last slot is
    /// overwritten in place — state is always the newest record, and
    /// a torn overwrite falls back to the previous one.
    pub const CAP: u32 = 80;
    /// Segment length in words: the count word plus the records.
    pub const WORDS: u32 = 1 + 3 * CAP;
    /// `phase` of a record written before the finish.
    pub const PHASE_RUN: u32 = 0;
    /// `phase` of the finish record: value final, print due.
    pub const PHASE_DONE: u32 = 1;

    /// One decoded record.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Record {
        /// Election term the record was written under.
        pub term: u32,
        /// Protocol sequence (backups) or drive progress (leaders).
        pub seq: u32,
        /// Counter value — the full replica state.
        pub value: u32,
        /// Whether the finish phase was reached.
        pub done: bool,
    }

    /// Packs one record (three words, checksum last).
    pub fn record(term: u32, seq: u32, value: u32, done: bool) -> [u32; 3] {
        let w0 = MAGIC << 16 | (term & 0x3FF) << 6 | (seq & 0x3F);
        let w1 = u32::from(done) << 16 | (value & 0xFFFF);
        [w0, w1, w0.wrapping_add(w1)]
    }

    /// Whether three words form a valid record.
    pub fn record_ok(w: &[u32]) -> bool {
        w.len() == 3 && w[0] >> 16 == MAGIC && w[0].wrapping_add(w[1]) == w[2]
    }

    fn decode(w: &[u32]) -> Record {
        Record {
            term: (w[0] >> 6) & 0x3FF,
            seq: w[0] & 0x3F,
            value: w[1] & 0xFFFF,
            done: (w[1] >> 16) & 1 == 1,
        }
    }

    /// The replay scan, exactly as the guest runs it: walk the counted
    /// prefix, stop at the first invalid record, return the last valid
    /// one. `None` means an empty (or immediately-torn) log — the
    /// guest falls back to `(term 0, seq 0, value 0, RUN)`.
    pub fn latest(segment: &[u32]) -> Option<Record> {
        let count = (*segment.first()? as usize).min(CAP as usize);
        let mut last = None;
        for i in 0..count {
            let w = segment.get(1 + 3 * i..4 + 3 * i)?;
            if !record_ok(w) {
                break;
            }
            last = Some(decode(w));
        }
        last
    }

    /// The host-side [`WalSpec`] matching the guest layout.
    pub fn spec() -> WalSpec {
        WalSpec {
            base: PHYS,
            words: WORDS,
        }
    }
}

/// Appends the member's current `(r3 term, r4 seq, r5 value)` to the
/// WAL with the given phase: record words first, checksum last, count
/// bump last of all — so a crash at any store boundary leaves a log
/// that replays to either the old state or the new one, never garbage.
/// Clobbers r1, r2, r10, r11, r12; preserves r8/r9 (reply builders
/// depend on that). `id` uniquifies the local labels.
fn asm_wal_append(done: bool, id: &str) -> String {
    let w1 = if done {
        "lim #65536,r10
    or r10,r5,r10        ; record w1: DONE phase over the value"
    } else {
        "add r5,#0,r10        ; record w1: RUN phase over the value"
    };
    format!(
        "
    lim #41245,r11       ; WAL record magic (0xA11D)
    mvi #16,r12
    sll r11,r12,r11
    sll r3,#6,r10
    or r11,r10,r11
    or r11,r4,r11        ; record w0: magic | term | seq
    {w1}
    lim #4096,r1         ; WAL base
    ld 0(r1),r2          ; record count
    mvi #80,r12
    bltu r2,r12,ap_room{id}
    nop
    mvi #79,r2           ; full: overwrite the newest slot in place
ap_room{id}:
    sll r2,#1,r12
    add r12,r2,r12
    add r12,r1,r12
    add r12,#1,r12       ; slot address = base + 1 + 3*count
    st r11,0(r12)
    st r10,1(r12)
    add r11,r10,r11
    st r11,2(r12)        ; checksum last: a torn append never validates
    ld 0(r1),r2
    mvi #80,r12
    bgeu r2,r12,ap_done{id}
    nop
    add r2,#1,r2
    st r2,0(r1)          ; the count lands only once the record is whole
ap_done{id}:"
    )
}

/// Sends a Frame2 of type `{typ}` (register), seq `{seq}` (register),
/// the member's term (r3) and value (r5), to the requester in r9.
/// Clobbers r1, r2, r8, r9, r10, r12; preserves r11/r13 (the leader's
/// retry budget and timers ride through stale replies).
fn asm_send_reply(typ: &str, seq: &str) -> String {
    format!(
        "
    lim #61956,r2        ; Frame2 magic and length halfword (0xF204)
    mvi #16,r12
    sll r2,r12,r2
    mvi #20,r12
    sll {typ},r12,r1
    or r2,r1,r2
    mvi #10,r12
    sll {seq},r12,r1
    or r2,r1,r2
    or r2,r3,r2          ; w0
    add r5,#0,r8         ; w1: my full state
    add r9,#0,r1         ; destination := requester
    mvi #0,r9            ; w2
    add r2,r8,r10
    add r10,r9,r10       ; w3: whole-frame checksum
    trap #10             ; sendf; a full ring drops the reply — they retry"
    )
}

/// One failover member (symmetric: all three nodes run this source).
///
/// Register map — r1/r2 are the syscall pair and, with r8/r9/r10, the
/// `sendf`/`recvf` frame words; protocol state lives clear of them:
/// r3 term, r4 seq (backup) / drive progress (leader), r5 value,
/// r6 printed-flag, r7 last-activity tick, r11 phase after the loop-top
/// replay (scratch below it), r12 shift scratch, r13 resend timer /
/// leader retry clock, r14 votes, r15 all-ones.
///
/// Every iteration starts by replaying the WAL — cheap, and it makes
/// restore-after-kill a non-event: the member literally cannot tell a
/// kill from an ordinary trip around the loop.
pub fn member_src(me: u32, k: u32) -> String {
    assert!(me < FAILOVER_NODES, "member id out of range");
    let votes0 = u32::from(me == 0); // node 0 grants itself the term-0 vote
    let peer_a = (me + 1) % FAILOVER_NODES;
    let peer_b = (me + 2) % FAILOVER_NODES;
    let me3 = me + FAILOVER_NODES;
    let fin_s = k + 1; // the FIN sequence number
    let pmax = 2 * (k + 1); // drive steps: (K SETs + FIN) x two backups
    let idle = IDLE_TICKS;
    let elect = ELECT_TICKS;
    let to = RESEND_TICKS;
    let ap_el = asm_wal_append(false, "el");
    let ap_ad = asm_wal_append(false, "ad");
    let ap_as = asm_wal_append(false, "as");
    let ap_af = asm_wal_append(true, "af");
    let ap_ca = asm_wal_append(false, "ca");
    let ap_lp = asm_wal_append(false, "lp");
    let ap_lf = asm_wal_append(true, "lf");
    let ap_la = asm_wal_append(false, "la");
    let reply = asm_send_reply("r11", "r8");
    let stale_reply = asm_send_reply("r10", "r8");
    let cand_reply = asm_send_reply("r10", "r8");
    let lead_reply = asm_send_reply("r10", "r8");
    let vote_reply = asm_send_reply("r10", "r8");
    format!(
        "
start:
    mvi #0,r15
    sub r15,#1,r15       ; r15 := all-ones (empty/full sentinel)
    mvi #{votes0},r14    ; votes held
    mvi #0,r6            ; printed?
    trap #6
    add r1,#0,r7         ; last activity := boot
loop:
    ; --- WAL replay: (term, seq, value, phase) := the log's last word ---
    mvi #0,r3
    mvi #0,r4
    mvi #0,r5
    mvi #0,r11
    lim #4096,r1         ; WAL base
    ld 0(r1),r2          ; record count
    mvi #80,r12
    bltu r2,r12,sc_go
    nop
    mvi #80,r2           ; clamp a corrupt count
sc_go:
    add r1,#1,r1         ; first record slot
    sll r2,#1,r12
    add r12,r2,r2
    add r2,r1,r2         ; end = base + 1 + 3*count
sc_next:
    bgeu r1,r2,sc_done
    nop
    ld 0(r1),r8
    ld 1(r1),r9
    ld 2(r1),r10
    add r8,r9,r12
    bne r12,r10,sc_done  ; torn record: the replay truncates here
    nop
    mvi #16,r12
    srl r8,r12,r12
    lim #41245,r10
    bne r12,r10,sc_done  ; not a record: same
    nop
    srl r8,#6,r3
    lim #1023,r10
    and r3,r10,r3        ; term
    mvi #63,r10
    and r8,r10,r4        ; seq / drive progress
    lim #65535,r10
    and r9,r10,r5        ; value
    mvi #16,r12
    srl r9,r12,r11       ; phase
    add r1,#3,r1
    bra sc_next
    nop
sc_done:
    ; --- print exactly once when the log says DONE ---
    bne r11,#1,no_print
    nop
    bne r6,#0,no_print
    nop
    add r5,#0,r1
    trap #2
    mvi #10,r1
    trap #1
    mvi #1,r6
no_print:
    ; --- role: the leader of term t is node t mod 3 ---
    rem r3,#3,r10
    bne r10,#{me},serve_poll
    nop
    bne r11,#1,lead_live
    nop
    mvi #0,r1            ; my drive is DONE and printed: finished
    trap #0
    halt
lead_live:
    mvi #1,r10
    bgeu r14,r10,lead
    nop
    bra candidate        ; my term but no vote on hand: (re-)solicit
    nop

    ; ================= backup / voter =================
serve_poll:
    trap #11             ; recvf: r1 src, r2/r8/r9/r10 frame words
    bne r1,r15,got
    nop
    trap #6
    sub r1,r7,r2         ; ticks of silence
    mvi #{idle},r10
    bgtu r2,r10,idle_done
    nop
    beq r11,#1,poll_on   ; DONE: a finished cluster is rightly quiet
    nop
    mvi #{elect},r10
    bgtu r2,r10,elect_now
    nop
poll_on:
    bra loop             ; quiet poll: replay again — a node restored
    nop                  ; mid-poll re-derives its state from the WAL
                         ; before the idle or election clocks can act
                         ; on the stale registers the restore left it
elect_now:
    ; bump to the next term above r3 congruent to my id
    rem r3,#3,r10
    mvi #{me3},r12
    sub r12,r10,r10
    rem r10,#3,r10
    bne r10,#0,eb
    nop
    mvi #3,r10
eb:
    add r3,r10,r3
    mvi #0,r4
    mvi #0,r14           ; candidacy is logged before it is solicited
{ap_el}
    bra loop
    nop
got:
    add r2,r8,r12
    add r12,r9,r12
    bne r12,r10,serve_poll ; bad checksum: a corrupt frame is a lost frame
    nop
    mvi #24,r12
    srl r2,r12,r12
    lim #242,r10
    bne r12,r10,serve_poll
    nop
    add r1,#0,r9         ; requester
    trap #6
    add r1,#0,r7         ; any valid frame counts as liveness
    lim #1023,r10
    and r2,r10,r10       ; their term
    bgtu r10,r3,adopt
    nop
    bltu r10,r3,stale
    nop
    mvi #20,r12
    srl r2,r12,r10
    and r10,#15,r10      ; type, at my own term
    beq r10,#1,apply_set
    nop
    beq r10,#3,apply_fin
    nop
    beq r10,#5,vote_req
    nop
    bra serve_poll       ; votes I cannot win and strays: ignore
    nop
adopt:
    add r10,#0,r3        ; join the newer term, keep my own value...
    mvi #0,r4
{ap_ad}
    bra loop             ; ...logged before anything is acknowledged
    nop
stale:
    mvi #20,r12
    srl r2,r12,r10
    and r10,#15,r10
    and r10,#1,r12
    beq r12,#0,serve_poll ; only requests earn a reply
    nop
    add r10,#1,r10       ; the matching reply type...
    mvi #10,r12
    srl r2,r12,r8
    mvi #63,r12
    and r8,r12,r8        ; ...echoing their seq...
{stale_reply}
    bra serve_poll       ; ...at MY term, so deposed senders step down
    nop
apply_set:
    mvi #10,r12
    srl r2,r12,r10
    mvi #63,r12
    and r10,r12,r10      ; s
    bgtu r10,r4,set_new
    nop
    add r10,#0,r8        ; duplicate: re-acknowledge, do not re-apply
    mvi #2,r11
    bra reply_cur
    nop
set_new:
    add r10,#0,r4
    lim #65535,r12
    and r8,r12,r5        ; the frame carries the full state
{ap_as}
    add r4,#0,r8
    mvi #2,r11           ; ACK — only after the log holds the apply
    bra reply_cur
    nop
apply_fin:
    mvi #10,r12
    srl r2,r12,r10
    mvi #63,r12
    and r10,r12,r10
    bgtu r10,r4,fin_new
    nop
    add r10,#0,r8
    mvi #4,r11
    bra reply_cur
    nop
fin_new:
    add r10,#0,r4
    lim #65535,r12
    and r8,r12,r5
{ap_af}
    add r4,#0,r8
    mvi #4,r11           ; FINACK — only after DONE is durable
    bra reply_cur
    nop
reply_cur:
{reply}
    bra loop             ; rescan: the print may now be due
    nop
vote_req:
    mvi #6,r10
    mvi #0,r8
{vote_reply}
    bra serve_poll
    nop

    ; ================= candidate =================
candidate:
    lim #61956,r2        ; broadcast ELECT at my term to both peers
    mvi #16,r12
    sll r2,r12,r2
    mvi #20,r12
    mvi #5,r10
    sll r10,r12,r10
    or r2,r10,r2
    or r2,r3,r2          ; w0: ELECT, seq 0, my term
    add r5,#0,r8
    mvi #0,r9
    add r2,r8,r10
    add r10,r9,r10
    mvi #{peer_a},r1
    trap #10             ; a full ring just delays the canvass
    mvi #{peer_b},r1
    trap #10
    trap #6
    add r1,#0,r13        ; canvass timer
cand_wait:
    trap #11
    bne r1,r15,cand_got
    nop
    trap #6
    sub r1,r7,r2
    mvi #{idle},r10
    bgtu r2,r10,idle_done
    nop
    trap #6
    sub r1,r13,r1
    bgt r1,#{to},loop    ; re-canvass by way of a fresh replay
    nop
    bra cand_wait
    nop
cand_got:
    add r2,r8,r12
    add r12,r9,r12
    bne r12,r10,cand_wait
    nop
    mvi #24,r12
    srl r2,r12,r12
    lim #242,r10
    bne r12,r10,cand_wait
    nop
    add r1,#0,r9
    trap #6
    add r1,#0,r7
    lim #1023,r10
    and r2,r10,r10
    bgtu r10,r3,cand_adopt
    nop
    bltu r10,r3,cand_stale
    nop
    mvi #20,r12
    srl r2,r12,r10
    and r10,#15,r10
    bne r10,#6,cand_wait ; only a VOTE at my term seats me
    nop
    mvi #1,r14
    bra loop
    nop
cand_adopt:
    add r10,#0,r3
    mvi #0,r4
{ap_ca}
    bra loop
    nop
cand_stale:
    mvi #20,r12
    srl r2,r12,r10
    and r10,#15,r10
    and r10,#1,r12
    beq r12,#0,cand_wait
    nop
    add r10,#1,r10
    mvi #10,r12
    srl r2,r12,r8
    mvi #63,r12
    and r8,r12,r8
{cand_reply}
    bra cand_wait
    nop

    ; ================= leader =================
lead:
    lim #4096,r11        ; retry budget across the whole drive step
ld_send:
    srl r4,#1,r8
    add r8,#1,r8         ; s = progress/2 + 1
    mvi #1,r10           ; SET...
    bne r8,#{fin_s},ld_typ
    nop
    mvi #3,r10           ; ...or the final FIN
ld_typ:
    lim #61956,r2
    mvi #16,r12
    sll r2,r12,r2
    mvi #20,r12
    sll r10,r12,r9
    or r2,r9,r2
    mvi #10,r12
    sll r8,r12,r9
    or r2,r9,r2
    or r2,r3,r2          ; w0
    bne r8,#{fin_s},ld_val
    nop
    mvi #{k},r8          ; w1: value = min(s, K) — pure function of seq
ld_val:
    mvi #0,r9
    add r2,r8,r10
    add r10,r9,r10       ; w3
    and r4,#1,r1
    bne r1,#0,ld_d1
    nop
    mvi #{peer_a},r1     ; even progress drives the first peer
    bra ld_go
    nop
ld_d1:
    mvi #{peer_b},r1     ; odd progress the second
ld_go:
    trap #10
    beq r1,r15,ld_miss   ; a full TX ring counts as a lost attempt
    nop
    trap #6
    add r1,#0,r13        ; t0
ld_wait:
    trap #11
    bne r1,r15,ld_got
    nop
    trap #6
    sub r1,r13,r1
    bgt r1,#{to},ld_miss ; acknowledgement overdue: resend
    nop
    bra ld_wait
    nop
ld_miss:
    sub r11,#1,r11
    bne r11,#0,ld_send
    nop
    bra giveup
    nop
ld_got:
    add r2,r8,r12
    add r12,r9,r12
    bne r12,r10,ld_wait
    nop
    mvi #24,r12
    srl r2,r12,r12
    lim #242,r10
    bne r12,r10,ld_wait
    nop
    add r1,#0,r9
    trap #6
    add r1,#0,r7
    lim #1023,r10
    and r2,r10,r10
    bgtu r10,r3,ld_adopt
    nop
    bltu r10,r3,ld_stale
    nop
    mvi #20,r12          ; my term: the ack the drive is waiting on?
    srl r2,r12,r10
    and r10,#15,r10
    srl r4,#1,r8
    add r8,#1,r8         ; current s again
    mvi #2,r12           ; expect ACK...
    bne r8,#{fin_s},ld_exp
    nop
    mvi #4,r12           ; ...or FINACK
ld_exp:
    bne r10,r12,ld_wait
    nop
    mvi #10,r12
    srl r2,r12,r10
    mvi #63,r12
    and r10,r12,r10
    bne r10,r8,ld_wait   ; stale seq echo
    nop
    and r4,#1,r12
    bne r12,#0,ld_c1
    nop
    mvi #{peer_a},r12
    bra ld_cmp
    nop
ld_c1:
    mvi #{peer_b},r12
ld_cmp:
    bne r9,r12,ld_wait   ; right ack, wrong node
    nop
    bne r8,#{fin_s},ld_vok
    nop
    mvi #{k},r8
ld_vok:
    add r8,#0,r5         ; acknowledged: adopt the driven value...
    add r4,#1,r4         ; ...advance...
    mvi #{pmax},r12
    beq r4,r12,ld_fin
    nop
{ap_lp}
    bra loop             ; ...and log the progress before the next step
    nop
ld_fin:
{ap_lf}
    bra loop             ; both backups hold DONE: log my own finish
    nop
ld_adopt:
    add r10,#0,r3        ; deposed: a newer term is in charge
    mvi #0,r4
{ap_la}
    bra loop
    nop
ld_stale:
    mvi #20,r12
    srl r2,r12,r10
    and r10,#15,r10
    and r10,#1,r12
    beq r12,#0,ld_wait
    nop
    add r10,#1,r10
    mvi #10,r12
    srl r2,r12,r8
    mvi #63,r12
    and r8,r12,r8
{lead_reply}
    bra ld_wait
    nop

idle_done:
    bne r11,#1,id_quit   ; long silence: the cluster is finished
    nop
    bne r6,#0,id_quit
    nop
    add r5,#0,r1         ; a restore clipped the print: redo it now
    trap #2
    mvi #10,r1
    trap #1
id_quit:
    mvi #0,r1
    trap #0
    halt
giveup:
    mvi #33,r1           ; '!': retries exhausted — the watchdog marker
    trap #1
    mvi #1,r1
    trap #0
    halt"
    )
}

/// The three-member failover cluster, every node running
/// [`member_src`].
///
/// # Errors
///
/// [`OsError`] if a member fails to assemble or spawn.
pub fn failover_kernels(engine: Engine) -> Result<Vec<Kernel>, OsError> {
    (0..FAILOVER_NODES)
        .map(|i| crate::workloads::boot(engine, i, &format!("member{i}"), &member_src(i, K)))
        .collect()
}

/// The fault-free failover output: every member prints the final
/// counter `K` exactly once.
pub fn failover_expected() -> Vec<u8> {
    let mut out = Vec::new();
    for node in 0..FAILOVER_NODES {
        out.extend_from_slice(format!("[node {node}]\n{K}\n").as_bytes());
    }
    out
}

/// The standard cluster configuration for the failover workload: the
/// default fabric and cadence, plus the durable WAL segment.
pub fn failover_cluster_config() -> ClusterConfig {
    ClusterConfig {
        wal: Some(wal::spec()),
        ..ClusterConfig::default()
    }
}

#[cfg(test)]
mod run_tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn clean_failover_run_prints_k_on_every_member() {
        for engine in [Engine::Reference, Engine::Fast] {
            let kernels = failover_kernels(engine).unwrap();
            let mut c = Cluster::new(&kernels, failover_cluster_config()).unwrap();
            let report = c.run_clean().unwrap();
            assert!(report.completed, "{engine:?} wedged: {report:?}");
            assert_eq!(report.output(), failover_expected(), "{engine:?}");
        }
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    #[test]
    fn frame2_fields_round_trip_and_any_bit_flip_is_caught() {
        let f = frame2::pack(frame2::FIN, 9, 777, 8);
        assert!(frame2::frame_ok(&f));
        assert_eq!(
            (
                frame2::typ(&f),
                frame2::seq(&f),
                frame2::term(&f),
                frame2::value(&f)
            ),
            (frame2::FIN, 9, 777, 8)
        );
        for word in 0..4 {
            for bit in 0..32 {
                let mut g = f;
                g[word] ^= 1 << bit;
                assert!(
                    !frame2::frame_ok(&g),
                    "flip of word {word} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn wal_replay_takes_the_last_valid_record_and_truncates_torn_tails() {
        let mut seg = vec![0u32; wal::WORDS as usize];
        assert_eq!(wal::latest(&seg), None, "empty log");
        let a = wal::record(3, 1, 1, false);
        let b = wal::record(3, 2, 2, false);
        seg[1..4].copy_from_slice(&a);
        seg[4..7].copy_from_slice(&b);
        seg[0] = 2;
        assert_eq!(wal::latest(&seg).unwrap().seq, 2);
        // Tear the second record: its words no longer sum. Replay
        // truncates to the first.
        seg[5] ^= 0x10;
        assert_eq!(wal::latest(&seg).unwrap().seq, 1);
        // Tear the first record too: the log replays as empty.
        seg[2] ^= 1;
        assert_eq!(wal::latest(&seg), None);
    }

    #[test]
    fn an_uncounted_append_is_invisible_until_the_count_lands() {
        let mut seg = vec![0u32; wal::WORDS as usize];
        let a = wal::record(0, 1, 1, false);
        seg[1..4].copy_from_slice(&a);
        assert_eq!(wal::latest(&seg), None, "count still zero");
        seg[0] = 1;
        assert_eq!(wal::latest(&seg).unwrap().value, 1);
    }
}
