//! The deterministic fabric: a virtual-time list schedule for frames.
//!
//! The fabric is the host-side "network" between guest machines. It
//! owns no randomness of its own beyond a seeded latency jitter: every
//! frame handed to [`Fabric::send`] is stamped with a due round and a
//! global sequence number, and [`Fabric::exchange`] delivers due
//! frames in `(due, seq)` order. Delivery order is therefore a pure
//! function of `(topology, seed, send order)` — two runs that post the
//! same frames in the same rounds observe byte-identical delivery
//! schedules, which is what makes distributed chaos campaigns
//! replayable.
//!
//! Three behaviours are modelled explicitly rather than emergently:
//!
//! * **Latency**: a frame sent in round `r` is due in round
//!   `r + latency (+ jitter)`, never earlier. Jitter, when enabled, is
//!   a deterministic hash of `(seed, seq)` — reordering without
//!   randomness.
//! * **Partitions**: a blocked `{a, b}` pair drops frames *at delivery
//!   time*, so frames in flight when the partition closes are lost
//!   too — the harsher and more realistic semantics.
//! * **Backpressure**: a delivery refused by a full RX ring is
//!   *retained* (due bumped one round, original sequence number kept),
//!   never dropped — mirroring the NIC's own no-silent-drop contract.

use mips_sim::Frame;
use std::collections::{BTreeMap, BTreeSet};

/// Fabric shape and timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of nodes; valid destinations are `0..nodes`.
    pub nodes: u32,
    /// Base delivery latency in rounds (minimum 1 is enforced — a
    /// frame is never delivered in the round it was sent).
    pub latency: u64,
    /// Seed for the deterministic latency jitter (unused when
    /// `jitter == 0`).
    pub seed: u64,
    /// Maximum extra rounds of seeded jitter per frame. Zero means
    /// fixed latency; larger values reorder deliveries determin-
    /// istically.
    pub jitter: u64,
    /// Per-link extra latency: `(a, b, extra)` adds `extra` rounds to
    /// every frame crossing the `{a, b}` pair, in either direction,
    /// on top of the base latency. Unlisted pairs cost nothing; the
    /// topology constructors ([`FabricConfig::ring`],
    /// [`FabricConfig::star`]) express shape purely through this
    /// field.
    pub links: Vec<(u32, u32, u64)>,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            nodes: 2,
            latency: 1,
            seed: 0,
            jitter: 0,
            links: Vec::new(),
        }
    }
}

impl FabricConfig {
    /// A ring of `nodes` nodes: each pair's extra latency is its hop
    /// distance around the ring minus one, so neighbours cost the
    /// base latency and antipodes cost the most. Deterministic for
    /// any N; meant for N > 3 where "everyone is one hop away" stops
    /// being a believable topology.
    pub fn ring(nodes: u32) -> FabricConfig {
        let mut links = Vec::new();
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                let fwd = b - a;
                let hops = fwd.min(nodes - fwd);
                if hops > 1 {
                    links.push((a, b, u64::from(hops) - 1));
                }
            }
        }
        FabricConfig {
            nodes,
            links,
            ..FabricConfig::default()
        }
    }

    /// A star with node 0 as the hub: hub↔spoke frames cost the base
    /// latency, spoke↔spoke frames pay one extra round (through the
    /// hub).
    pub fn star(nodes: u32) -> FabricConfig {
        let mut links = Vec::new();
        for a in 1..nodes {
            for b in (a + 1)..nodes {
                links.push((a, b, 1));
            }
        }
        FabricConfig {
            nodes,
            links,
            ..FabricConfig::default()
        }
    }

    /// The summed extra latency configured for the `{a, b}` pair
    /// (direction-insensitive).
    pub fn link_extra(&self, a: u32, b: u32) -> u64 {
        self.links
            .iter()
            .filter(|&&(x, y, _)| pair(x, y) == pair(a, b))
            .map(|&(_, _, extra)| extra)
            .sum()
    }
}

/// What to do with one frame — the seam fault injectors attach to.
/// The clean fabric treats every frame as [`FaultAction::Deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward unharmed.
    Deliver,
    /// Lose the frame entirely.
    Drop,
    /// Forward the frame twice (both copies fault-free).
    Duplicate,
    /// Flip one bit of one payload word, then forward.
    Corrupt {
        /// Payload word index (reduced modulo the payload length).
        word: usize,
        /// Bit to flip (reduced modulo 32).
        bit: u32,
    },
    /// Forward after this many extra rounds of latency.
    Delay(u64),
}

/// Fabric traffic counters, all monotone over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames accepted by [`Fabric::send`].
    pub sent: u64,
    /// Frames delivered into an RX ring.
    pub delivered: u64,
    /// Delivery attempts refused by a full RX ring and re-queued.
    pub retained: u64,
    /// Frames dropped at delivery time by an active partition.
    pub partition_dropped: u64,
}

/// The fabric itself. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    now: u64,
    seq: u64,
    /// In-flight frames keyed by `(due round, sequence number)` — the
    /// list schedule. `BTreeMap` iteration *is* the delivery order.
    in_flight: BTreeMap<(u64, u64), Frame>,
    /// Partitioned pairs, stored with the smaller node first.
    blocked: BTreeSet<(u32, u32)>,
    stats: FabricStats,
}

fn pair(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// SplitMix64 — the jitter hash. Deterministic, stateless, good
/// avalanche; the same function `mips-qc` seeds its generator with.
fn mix(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fabric {
    /// An empty fabric at round zero.
    pub fn new(cfg: FabricConfig) -> Fabric {
        Fabric {
            cfg,
            now: 0,
            seq: 0,
            in_flight: BTreeMap::new(),
            blocked: BTreeSet::new(),
            stats: FabricStats::default(),
        }
    }

    /// The current round (number of [`Fabric::exchange`] calls).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Blocks the `{a, b}` pair in both directions. Frames already in
    /// flight between them are dropped when they come due.
    pub fn partition(&mut self, a: u32, b: u32) {
        self.blocked.insert(pair(a, b));
    }

    /// Unblocks the `{a, b}` pair.
    pub fn heal(&mut self, a: u32, b: u32) {
        self.blocked.remove(&pair(a, b));
    }

    /// Unblocks every pair.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Whether `{a, b}` is currently partitioned.
    pub fn partitioned(&self, a: u32, b: u32) -> bool {
        self.blocked.contains(&pair(a, b))
    }

    /// Posts a frame; it comes due after the configured latency (base
    /// plus the link's extra, if any) plus seeded jitter. Destinations
    /// must name a real node.
    pub fn send(&mut self, frame: Frame) {
        self.send_delayed(frame, 0);
    }

    /// Like [`Fabric::send`] with `extra` additional rounds of latency
    /// — the [`FaultAction::Delay`] path.
    pub fn send_delayed(&mut self, frame: Frame, extra: u64) {
        debug_assert!(frame.dst < self.cfg.nodes, "destination out of range");
        let jitter = if self.cfg.jitter == 0 {
            0
        } else {
            mix(self.cfg.seed, self.seq) % (self.cfg.jitter + 1)
        };
        let link = self.cfg.link_extra(frame.src, frame.dst);
        let due = self.now + self.cfg.latency.max(1) + link + jitter + extra;
        self.in_flight.insert((due, self.seq), frame);
        self.seq += 1;
        self.stats.sent += 1;
    }

    /// Advances one round and delivers every due frame in `(due, seq)`
    /// order through `deliver`, which pushes into the destination
    /// node's RX ring. A refused delivery (`Err` — ring full) is
    /// retained with its due bumped one round and its sequence number
    /// kept, so retained frames stay ahead of younger traffic.
    pub fn exchange(&mut self, deliver: &mut dyn FnMut(u32, Frame) -> Result<(), Frame>) {
        self.now += 1;
        let mut retained = Vec::new();
        loop {
            let key = match self.in_flight.keys().next() {
                Some(&(due, seq)) if due <= self.now => (due, seq),
                _ => break,
            };
            let frame = self.in_flight.remove(&key).expect("key just observed");
            if self.partitioned(frame.src, frame.dst) {
                self.stats.partition_dropped += 1;
                continue;
            }
            match deliver(frame.dst, frame) {
                Ok(()) => self.stats.delivered += 1,
                Err(f) => {
                    self.stats.retained += 1;
                    retained.push((key.1, f));
                }
            }
        }
        for (seq, f) in retained {
            self.in_flight.insert((self.now + 1, seq), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: u32, dst: u32, word: u32) -> Frame {
        Frame {
            src,
            dst,
            payload: vec![word],
        }
    }

    fn drain(f: &mut Fabric, rounds: u64) -> Vec<(u32, u32)> {
        let mut seen = Vec::new();
        for _ in 0..rounds {
            f.exchange(&mut |dst, fr| {
                seen.push((dst, fr.payload[0]));
                Ok(())
            });
        }
        seen
    }

    #[test]
    fn delivery_follows_the_list_schedule() {
        let mut f = Fabric::new(FabricConfig {
            nodes: 3,
            latency: 2,
            ..FabricConfig::default()
        });
        f.send(frame(0, 1, 10));
        f.send(frame(0, 2, 11));
        assert_eq!(drain(&mut f, 1), vec![], "nothing before the latency");
        assert_eq!(
            drain(&mut f, 1),
            vec![(1, 10), (2, 11)],
            "same round delivers in send order"
        );
    }

    #[test]
    fn jitter_reorders_deterministically() {
        let run = |seed| {
            let mut f = Fabric::new(FabricConfig {
                nodes: 2,
                latency: 1,
                seed,
                jitter: 3,
                ..FabricConfig::default()
            });
            for i in 0..8 {
                f.send(frame(0, 1, i));
            }
            drain(&mut f, 8)
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "jitter actually depends on the seed");
    }

    #[test]
    fn partitions_drop_at_delivery_time_and_heal() {
        let mut f = Fabric::new(FabricConfig {
            nodes: 2,
            ..FabricConfig::default()
        });
        f.send(frame(0, 1, 1)); // in flight when the partition closes
        f.partition(0, 1);
        f.send(frame(1, 0, 2));
        assert_eq!(drain(&mut f, 3), vec![], "both directions blocked");
        assert_eq!(f.stats().partition_dropped, 2);
        f.heal(0, 1);
        f.send(frame(0, 1, 3));
        assert_eq!(drain(&mut f, 2), vec![(1, 3)], "traffic resumes");
    }

    #[test]
    fn per_link_latency_delays_exactly_the_configured_pair() {
        let mut f = Fabric::new(FabricConfig {
            nodes: 3,
            links: vec![(0, 2, 2)],
            ..FabricConfig::default()
        });
        f.send(frame(0, 1, 10)); // base latency: due round 1
        f.send(frame(0, 2, 20)); // +2 extra: due round 3
        f.send(frame(2, 0, 30)); // direction-insensitive: due round 3
        assert_eq!(drain(&mut f, 1), vec![(1, 10)]);
        assert_eq!(drain(&mut f, 1), vec![]);
        assert_eq!(drain(&mut f, 1), vec![(2, 20), (0, 30)]);
    }

    #[test]
    fn ring_delivery_order_is_pinned_by_hop_distance() {
        // 6-node ring, everything sent from node 0 in one round:
        // neighbours (1, 5) land first, then distance-2 (2, 4), then
        // the antipode (3). Ties break in send order (sequence).
        let run = || {
            let mut f = Fabric::new(FabricConfig::ring(6));
            for dst in 1..6 {
                f.send(frame(0, dst, dst));
            }
            drain(&mut f, 4)
        };
        let pinned = vec![(1, 1), (5, 5), (2, 2), (4, 4), (3, 3)];
        assert_eq!(run(), pinned, "ring schedule drifted");
        assert_eq!(run(), run(), "ring schedule not deterministic");
    }

    #[test]
    fn star_delivery_order_is_pinned_hub_first() {
        // 5-node star: spoke 1 sends to the hub and to every other
        // spoke in one round. The hub frame lands a round before the
        // spoke-to-spoke frames, which arrive together in send order.
        let run = || {
            let mut f = Fabric::new(FabricConfig::star(5));
            f.send(frame(1, 0, 100));
            for dst in 2..5 {
                f.send(frame(1, dst, dst));
            }
            drain(&mut f, 3)
        };
        let pinned = vec![(0, 100), (2, 2), (3, 3), (4, 4)];
        assert_eq!(run(), pinned, "star schedule drifted");
        assert_eq!(run(), run(), "star schedule not deterministic");
    }

    #[test]
    fn refused_deliveries_are_retained_ahead_of_younger_frames() {
        let mut f = Fabric::new(FabricConfig {
            nodes: 2,
            ..FabricConfig::default()
        });
        f.send(frame(0, 1, 1));
        // Refuse everything this round.
        f.exchange(&mut |_, fr| Err(fr));
        assert_eq!(f.stats().retained, 1);
        assert_eq!(f.in_flight(), 1);
        f.send(frame(0, 1, 2));
        // Both come due next round; the retained frame keeps its older
        // sequence number and goes first.
        let seen = drain(&mut f, 1);
        assert_eq!(seen, vec![(1, 1), (1, 2)]);
    }
}
