//! `net_gate` — the distributed-determinism CI gate.
//!
//! Runs the distributed workloads (ping/echo RPC, the replicated
//! counter, and the v2 failover members) as cluster jobs on the fleet
//! executor at several worker counts, on both engines, and demands:
//!
//! 1. every cluster's observable output equals the workload's
//!    expected constant (the protocols actually finish, with the
//!    right answers);
//! 2. outputs are **byte-identical across every fleet worker count**
//!    — host-side parallelism must never leak into guest-visible
//!    behaviour;
//! 3. the fast engine's outputs equal the reference engine's.
//!
//! Exit status: 0 when every check holds, 1 otherwise. The companion
//! distributed-chaos replay (`mips-chaos --net`) is a separate gate in
//! the same CI job.

use mips_net::failover::{failover_cluster_config, failover_expected, failover_kernels};
use mips_net::workloads::{
    ping_echo_expected, ping_echo_kernels, replicated_counter_expected, replicated_counter_kernels,
};
use mips_net::{Cluster, ClusterConfig};
use mips_sim::Engine;
use std::process::ExitCode;

#[derive(Clone, Copy)]
struct Job {
    engine: Engine,
    /// 0 = ping/echo; otherwise the counter cluster's replica count.
    replicas: u32,
    /// The v2 failover workload instead (replicas ignored).
    failover: bool,
}

impl Job {
    fn expected(self) -> Vec<u8> {
        if self.failover {
            failover_expected()
        } else if self.replicas == 0 {
            ping_echo_expected()
        } else {
            replicated_counter_expected(self.replicas)
        }
    }

    fn name(self) -> String {
        let engine = match self.engine {
            Engine::Reference => "reference",
            Engine::Fast => "fast",
        };
        if self.failover {
            format!("failover/{engine}")
        } else if self.replicas == 0 {
            format!("ping-echo/{engine}")
        } else {
            format!("counter-{}/{engine}", self.replicas)
        }
    }
}

impl mips_fleet::FleetWork for Job {
    type Out = Vec<u8>;
    fn execute(self) -> Vec<u8> {
        let kernels = if self.failover {
            failover_kernels(self.engine)
        } else if self.replicas == 0 {
            ping_echo_kernels(self.engine)
        } else {
            replicated_counter_kernels(self.engine, self.replicas)
        }
        .expect("workloads boot");
        let config = if self.failover {
            failover_cluster_config()
        } else {
            ClusterConfig::default()
        };
        let mut c = Cluster::new(&kernels, config).expect("cluster boots");
        let report = c.run_clean().expect("cluster runs");
        assert!(report.completed, "round budget exhausted");
        report.output()
    }
}

fn jobs() -> Vec<Job> {
    let mut out = Vec::new();
    for engine in [Engine::Reference, Engine::Fast] {
        for replicas in [0, 1, 2, 3] {
            out.push(Job {
                engine,
                replicas,
                failover: false,
            });
        }
        // Keep the failover job inside each engine's half so the
        // conformance split below stays shape-aligned.
        out.push(Job {
            engine,
            replicas: 0,
            failover: true,
        });
    }
    out
}

fn main() -> ExitCode {
    let mut failures = 0u32;
    let serial: Vec<Vec<u8>> = mips_fleet::run_ordered(jobs(), 1);

    for (job, out) in jobs().iter().zip(&serial) {
        if *out == job.expected() {
            println!(
                "net_gate: {:<22} output ok ({} bytes)",
                job.name(),
                out.len()
            );
        } else {
            failures += 1;
            eprintln!(
                "net_gate: FAIL {} expected {:?} got {:?}",
                job.name(),
                String::from_utf8_lossy(&job.expected()),
                String::from_utf8_lossy(out)
            );
        }
    }

    for threads in [2, 4, 8] {
        let fleet: Vec<Vec<u8>> = mips_fleet::run_ordered(jobs(), threads);
        if fleet == serial {
            println!("net_gate: {threads} fleet workers byte-identical to serial");
        } else {
            failures += 1;
            eprintln!("net_gate: FAIL {threads} fleet workers diverged from serial");
        }
    }

    // Engine conformance: the job list is reference-first then fast,
    // same shapes in the same order.
    let half = serial.len() / 2;
    if serial[..half] == serial[half..] {
        println!("net_gate: fast engine byte-identical to reference");
    } else {
        failures += 1;
        eprintln!("net_gate: FAIL fast engine diverged from reference");
    }

    if failures == 0 {
        println!("net_gate: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("net_gate: {failures} check(s) failed");
        ExitCode::FAILURE
    }
}
