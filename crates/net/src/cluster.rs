//! A cluster: N guest kernels round-robined against one fabric.
//!
//! Each node is a [`KernelRun`] booted with a NIC
//! ([`mips_os::KernelConfig::nic`]). A cluster *round* runs every live
//! node for one instruction slice, collects each node's TX ring in
//! node-id order, posts the frames to the fabric (optionally through a
//! fault hook), and exchanges: due frames land in destination RX rings
//! and raise delivery doorbells the guests take on their next user-
//! mode instruction. Everything is a pure function of the
//! configuration, so the observable cluster output is byte-identical
//! across hosts, thread counts, and engines.
//!
//! **Node-kill recovery**: every `checkpoint_every` rounds each node
//! refreshes a [`NodeCheckpoint`] (machine snapshot with NIC rings,
//! console high-water mark, host bookkeeping). [`Cluster::kill_node`]
//! rolls a node back to its last checkpoint — the distributed-chaos
//! model of a crash-and-restart. Guest protocols built on retry,
//! acknowledgement, and sequence-number dedup (see
//! [`crate::workloads`]) converge back to the fault-free observable
//! output.

use crate::fabric::{Fabric, FabricConfig, FabricStats, FaultAction};
use mips_os::{Kernel, KernelRun, NodeCheckpoint, OsError, RunReport};
use mips_sim::nic::Nic;
use mips_sim::{Frame, Shared};

/// A reserved guest-physical write-ahead-log segment the host
/// preserves across [`Cluster::kill_node`] restores. The guest
/// appends records inside it; the host snapshots the words right
/// before a restore and writes them back right after, independent of
/// the periodic checkpoint cadence — so a restored node replays its
/// *own* log to re-derive protocol state instead of depending on the
/// next frame it happens to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSpec {
    /// Guest-physical address of the first WAL word.
    pub base: u32,
    /// Segment length in words.
    pub words: u32,
}

/// Cluster scheduling knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Fabric shape and timing. `nodes` is overwritten with the actual
    /// node count at [`Cluster::new`].
    pub fabric: FabricConfig,
    /// Instructions each node runs per round.
    pub slice: u64,
    /// Rounds between checkpoint refreshes.
    pub checkpoint_every: u64,
    /// Round budget for [`Cluster::run`] — a liveness backstop, not a
    /// tuning knob; a healthy protocol finishes far below it.
    pub max_rounds: u64,
    /// Durable WAL segment, if the workload keeps one (see
    /// [`WalSpec`]). `None` means kills restore the whole machine
    /// verbatim, v1 behaviour.
    pub wal: Option<WalSpec>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            fabric: FabricConfig::default(),
            slice: 4096,
            checkpoint_every: 16,
            max_rounds: 5_000,
            wal: None,
        }
    }
}

struct Node {
    run: KernelRun,
    nic: Shared<Nic>,
    checkpoint: NodeCheckpoint,
}

/// The running cluster. Drive it with [`Cluster::step`] /
/// [`Cluster::run`]; inject partitions, frame faults, and node kills
/// from outside between rounds.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    fabric: Fabric,
    round: u64,
    restarts: Vec<u32>,
}

/// A finished (or round-budget-exhausted) cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// Per-node kernel reports, in node-id order.
    pub nodes: Vec<RunReport>,
    /// Rounds executed.
    pub rounds: u64,
    /// Checkpoint restores per node ([`Cluster::kill_node`] count).
    pub restarts: Vec<u32>,
    /// Fabric traffic counters.
    pub fabric: FabricStats,
    /// Whether every node ran to completion inside the round budget.
    pub completed: bool,
}

impl ClusterReport {
    /// The cluster's canonical observable output: every node's console
    /// bytes, framed per node. This is the byte string distributed
    /// chaos compares against the fault-free baseline.
    pub fn output(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, r) in self.nodes.iter().enumerate() {
            out.extend_from_slice(format!("[node {i}]\n").as_bytes());
            for p in &r.procs {
                out.extend_from_slice(&p.output);
            }
        }
        out
    }
}

impl Cluster {
    /// Boots one [`KernelRun`] per kernel and wires their NICs to a
    /// fresh fabric. Every kernel must have been configured with
    /// [`mips_os::KernelConfig::nic`]` = Some(i)` for its node id `i`.
    ///
    /// # Errors
    ///
    /// [`OsError`] if a node fails to boot.
    ///
    /// # Panics
    ///
    /// Panics when a kernel has no NIC or its node id does not match
    /// its position — configuration bugs, not runtime conditions.
    pub fn new(kernels: &[Kernel], mut cfg: ClusterConfig) -> Result<Cluster, OsError> {
        cfg.fabric.nodes = kernels.len() as u32;
        let mut nodes = Vec::with_capacity(kernels.len());
        for (i, k) in kernels.iter().enumerate() {
            let run = k.start()?;
            let nic = run
                .machine()
                .nic()
                .unwrap_or_else(|| panic!("cluster node {i}: KernelConfig::nic not set"));
            assert_eq!(
                nic.borrow().node(),
                i as u32,
                "cluster node {i}: NIC node id must equal its position"
            );
            let checkpoint = run.checkpoint().expect("cluster nodes run unsupervised");
            nodes.push(Node {
                run,
                nic,
                checkpoint,
            });
        }
        let restarts = vec![0; nodes.len()];
        Ok(Cluster {
            fabric: Fabric::new(cfg.fabric.clone()),
            cfg,
            nodes,
            round: 0,
            restarts,
        })
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether every node's kernel has finished.
    pub fn all_done(&self) -> bool {
        self.nodes.iter().all(|n| n.run.is_done())
    }

    /// Blocks the `{a, b}` pair (both directions) from the next
    /// exchange on.
    pub fn partition(&mut self, a: u32, b: u32) {
        self.fabric.partition(a, b);
    }

    /// Unblocks the `{a, b}` pair.
    pub fn heal(&mut self, a: u32, b: u32) {
        self.fabric.heal(a, b);
    }

    /// Unblocks every pair.
    pub fn heal_all(&mut self) {
        self.fabric.heal_all();
    }

    /// Rolls node `id` back to its last checkpoint — the crash-and-
    /// restart model. Frames already in flight toward the node stay in
    /// flight (the guest's sequence-number dedup absorbs them); frames
    /// the node sent since the checkpoint will be re-sent on replay
    /// (the receivers' dedup absorbs those).
    ///
    /// When the cluster has a [`WalSpec`], the WAL segment is
    /// snapshotted *at the moment of the kill* and written back over
    /// the restored image: a crash loses volatile state but never the
    /// log, exactly the durability contract a write-ahead log is for.
    ///
    /// # Errors
    ///
    /// [`OsError::Sim`] if the snapshot no longer fits the node —
    /// impossible unless the caller swapped machines underneath.
    pub fn kill_node(&mut self, id: usize) -> Result<(), OsError> {
        let wal = self.cfg.wal.map(|w| {
            let mem = self.nodes[id].run.machine().mem();
            (0..w.words)
                .map(|i| mem.peek(w.base + i))
                .collect::<Vec<u32>>()
        });
        let node = &mut self.nodes[id];
        node.run.restore(&node.checkpoint)?;
        if let (Some(w), Some(words)) = (self.cfg.wal, wal) {
            let mem = node.run.machine_mut().mem_mut();
            for (i, v) in words.into_iter().enumerate() {
                mem.poke(w.base + i as u32, v);
            }
        }
        self.restarts[id] += 1;
        Ok(())
    }

    /// Reads node `id`'s WAL segment (requires a configured
    /// [`WalSpec`]). Test and grading hook.
    pub fn wal(&self, id: usize) -> Option<Vec<u32>> {
        let w = self.cfg.wal?;
        let mem = self.nodes[id].run.machine().mem();
        Some((0..w.words).map(|i| mem.peek(w.base + i)).collect())
    }

    /// Overwrites one word of node `id`'s WAL segment — the torn-write
    /// test hook (requires a configured [`WalSpec`]).
    pub fn wal_poke(&mut self, id: usize, word: u32, value: u32) {
        let w = self.cfg.wal.expect("wal_poke needs a WalSpec");
        assert!(word < w.words, "wal_poke out of segment");
        self.nodes[id]
            .run
            .machine_mut()
            .mem_mut()
            .poke(w.base + word, value);
    }

    /// One round: run every live node for a slice, collect TX rings in
    /// node-id order through the fault hook, exchange the fabric, and
    /// refresh checkpoints on cadence. `faults` decides per frame; the
    /// clean run passes `&mut |_, _| FaultAction::Deliver`.
    ///
    /// # Errors
    ///
    /// [`OsError`] from the first node whose machine stops for a
    /// reason its kernel cannot handle.
    pub fn step(
        &mut self,
        faults: &mut dyn FnMut(u64, &Frame) -> FaultAction,
    ) -> Result<(), OsError> {
        for node in &mut self.nodes {
            if !node.run.is_done() {
                node.run.run_slice(self.cfg.slice, None)?;
            }
        }
        for node in &mut self.nodes {
            for frame in node.nic.borrow_mut().collect() {
                match faults(self.round, &frame) {
                    FaultAction::Deliver => self.fabric.send(frame),
                    FaultAction::Drop => {}
                    FaultAction::Duplicate => {
                        self.fabric.send(frame.clone());
                        self.fabric.send(frame);
                    }
                    FaultAction::Corrupt { word, bit } => {
                        let mut f = frame;
                        if !f.payload.is_empty() {
                            let w = word % f.payload.len();
                            f.payload[w] ^= 1 << (bit % 32);
                        }
                        self.fabric.send(f);
                    }
                    FaultAction::Delay(extra) => self.fabric.send_delayed(frame, extra),
                }
            }
        }
        let nodes = &mut self.nodes;
        self.fabric
            .exchange(&mut |dst, frame| nodes[dst as usize].nic.borrow_mut().deliver(frame));
        self.round += 1;
        if self.round.is_multiple_of(self.cfg.checkpoint_every) {
            for node in &mut self.nodes {
                if let Some(cp) = node.run.checkpoint() {
                    node.checkpoint = cp;
                }
            }
        }
        Ok(())
    }

    /// Steps until every node finishes or the round budget runs out,
    /// with no faults injected.
    ///
    /// # Errors
    ///
    /// Propagates the first [`OsError`] from [`Cluster::step`].
    pub fn run_clean(&mut self) -> Result<ClusterReport, OsError> {
        self.run(&mut |_, _| FaultAction::Deliver)
    }

    /// Steps until every node finishes or the round budget runs out,
    /// consulting `faults` for every frame.
    ///
    /// # Errors
    ///
    /// Propagates the first [`OsError`] from [`Cluster::step`].
    pub fn run(
        &mut self,
        faults: &mut dyn FnMut(u64, &Frame) -> FaultAction,
    ) -> Result<ClusterReport, OsError> {
        while !self.all_done() && self.round < self.cfg.max_rounds {
            self.step(faults)?;
        }
        Ok(self.report())
    }

    /// The cluster's results so far (final once [`Cluster::all_done`]).
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            nodes: self.nodes.iter().map(|n| n.run.report()).collect(),
            rounds: self.round,
            restarts: self.restarts.clone(),
            fabric: self.fabric.stats(),
            completed: self.all_done(),
        }
    }
}
