//! Distributed guest workloads, written in guest assembly.
//!
//! Two cluster programs exercise the whole stack — NIC, fabric,
//! kernel driver, syscalls — and are designed so their **observable
//! output is invariant under faults**: drops, duplicates, reorders,
//! corruption, partitions (healed), and node kills restored from
//! checkpoints all produce byte-identical console bytes, because every
//! protocol below is built on retry, acknowledgement, checksums, and
//! sequence-number dedup.
//!
//! * **Ping/echo RPC** ([`ping_echo_kernels`]): node 0 sends `K`
//!   pings carrying `value = seq`, node 1 echoes `value + 1`
//!   statelessly; the client sums the echoes and prints the total. A
//!   lost or corrupt message times out and is re-sent; a duplicate or
//!   stale reply fails the sequence check and is ignored. The server
//!   holds no protocol state, so a checkpoint rollback cannot lose
//!   any; it exits on an idle timeout, which also covers the case
//!   where its own final reply was the one in flight.
//! * **Replicated counter** ([`replicated_counter_kernels`]): node 0
//!   drives `K` increments to every replica, one `(seq, replica)`
//!   pair at a time. Crucially every `SET`/`FIN` carries the **full
//!   replica state** (`counter = value`), so a replica rolled back to
//!   an old checkpoint is completely re-synchronised by the next
//!   message it receives; stale sequence numbers are re-ACKed without
//!   applying. Replicas print the counter exactly once — at `FIN` or,
//!   if the `FIN` exchange was cut short, at the idle timeout.
//!
//! ## Message word format
//!
//! One 32-bit word per frame:
//!
//! ```text
//!   31      28 27     20 19         8 7        0
//!  +----------+---------+------------+----------+
//!  |   type   |   seq   |   value    | checksum |
//!  +----------+---------+------------+----------+
//! ```
//!
//! `checksum = (bits 15:8 + bits 23:16 + bits 31:24) & 0xff`, so any
//! single-bit corruption is detected and the frame discarded — a
//! corrupt frame behaves exactly like a dropped one, and the sender's
//! retry masks it.

use mips_os::{Kernel, KernelConfig, OsError};
use mips_sim::Engine;

/// Pings per run / increments per replica. Small enough that every
/// field fits its bit budget with room to spare.
pub const K: u32 = 8;

/// Resend timeout in guest clock ticks (comfortably above the
/// fabric's round-trip at the default latency).
pub const RESEND_TICKS: u32 = 8;

/// Server/replica idle-exit timeout in ticks. Must exceed the longest
/// partition window a chaos plan opens plus a full resend cycle, so a
/// quiet stretch is never mistaken for the end of the run.
pub const IDLE_TICKS: u32 = 240;

/// Timer period for cluster nodes: ~2 ticks per default cluster round,
/// so guest timeouts are measured at useful granularity.
pub const NODE_TIME_SLICE: u64 = 2_000;

/// Message-word packing and checking, host side. The guest assembly
/// below implements exactly this; tests and fault injectors use the
/// Rust form.
pub mod msg {
    /// Request type: ping (echo request).
    pub const PING: u32 = 1;
    /// Reply type: pong (echo reply, `value + 1`).
    pub const PONG: u32 = 2;
    /// Request type: set replica state to `value`.
    pub const SET: u32 = 3;
    /// Reply type: set acknowledged.
    pub const ACK: u32 = 4;
    /// Request type: finish — apply `value`, print once.
    pub const FIN: u32 = 5;
    /// Reply type: finish acknowledged.
    pub const FINACK: u32 = 6;

    /// Packs `(type, seq, value)` and stamps the checksum.
    pub fn pack(typ: u32, seq: u32, value: u32) -> u32 {
        let w = (typ & 0xf) << 28 | (seq & 0xff) << 20 | (value & 0xfff) << 8;
        w | checksum(w)
    }

    fn checksum(w: u32) -> u32 {
        ((w >> 8) + (w >> 16) + (w >> 24)) & 0xff
    }

    /// Whether the carried checksum matches the word's fields.
    pub fn checksum_ok(w: u32) -> bool {
        w & 0xff == checksum(w)
    }

    /// The type field.
    pub fn typ(w: u32) -> u32 {
        w >> 28
    }

    /// The sequence field.
    pub fn seq(w: u32) -> u32 {
        (w >> 20) & 0xff
    }

    /// The value field.
    pub fn value(w: u32) -> u32 {
        (w >> 8) & 0xfff
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fields_round_trip_and_any_bit_flip_is_caught() {
            let w = pack(PING, 200, 0xabc);
            assert_eq!((typ(w), seq(w), value(w)), (PING, 200, 0xabc));
            assert!(checksum_ok(w));
            for bit in 0..32 {
                assert!(!checksum_ok(w ^ (1 << bit)), "bit {bit} slipped through");
            }
        }
    }
}

// Shared assembly idioms, as guest source fragments. The ALU takes
// four-bit immediates only, so shift amounts above 15 and the 0xff
// mask travel through registers: r12 is the scratch shift amount, r13
// holds 255, r15 holds all-ones (the kernel's "nothing"/"full"
// sentinel). Registers r1/r2 are the syscall argument/return pair.

/// `{w}` := packed word from type in `{w}` (small constant), seq in
/// `{s}`, value in `{v}`; clobbers r10, r11, r12. Mirrors
/// [`msg::pack`].
fn asm_pack(w: &str, s: &str, v: &str) -> String {
    format!(
        "
    mvi #28,r12
    sll {w},r12,{w}
    mvi #20,r12
    sll {s},r12,r10
    or {w},r10,{w}
    sll {v},#8,r10
    or {w},r10,{w}
    srl {w},#8,r10
    mvi #16,r12
    srl {w},r12,r11
    add r10,r11,r10
    mvi #24,r12
    srl {w},r12,r11
    add r10,r11,r10
    and r10,r13,r10
    or {w},r10,{w}"
    )
}

/// Branches to `{bad}` unless the word in `{w}` carries a valid
/// checksum; clobbers r10, r11, r12. Mirrors [`msg::checksum_ok`].
fn asm_check(w: &str, bad: &str) -> String {
    format!(
        "
    srl {w},#8,r10
    mvi #16,r12
    srl {w},r12,r11
    add r10,r11,r10
    mvi #24,r12
    srl {w},r12,r11
    add r10,r11,r10
    and r10,r13,r10
    and {w},r13,r11
    bne r10,r11,{bad}
    nop"
    )
}

/// The ping client (node 0): `K` sequenced echo requests with resend
/// on timeout, then prints the sum of the echoed values.
pub fn ping_client_src(server: u32, k: u32) -> String {
    let pack = asm_pack("r8", "r4", "r4");
    let check = asm_check("r1", "wait");
    let to = RESEND_TICKS;
    format!(
        "
start:
    mvi #0,r15
    sub r15,#1,r15       ; r15 := all-ones (empty/full sentinel)
    mvi #255,r13         ; r13 := byte mask
    mvi #{k},r5          ; K
    mvi #0,r6            ; sum
    mvi #1,r4            ; seq
next:
    bgt r4,r5,report
    nop
    mvi #1,r8            ; PING
{pack}
    mvi #16,r9           ; retry budget 16<<8 = 4096
    sll r9,#8,r9
send:
    mvi #{server},r1
    add r8,#0,r2
    trap #7              ; send(server, word)
    beq r1,r15,backoff   ; TX ring full counts as a retry
    nop
    trap #6
    add r1,#0,r7         ; t0 := now
wait:
    trap #8              ; r1 := word, r2 := src (all-ones when empty)
    bne r2,r15,got
    nop
    trap #6
    sub r1,r7,r1
    bgt r1,#{to},backoff ; reply overdue: resend the same seq
    nop
    bra wait
    nop
backoff:
    sub r9,#1,r9
    bne r9,#0,send
    nop
    bra giveup
    nop
got:
{check}
    mvi #28,r12
    srl r1,r12,r10
    bne r10,#2,wait      ; not a PONG: ignore
    nop
    sll r1,#4,r10
    mvi #24,r12
    srl r10,r12,r10      ; reply seq
    bne r10,r4,wait      ; stale or duplicate reply: ignore
    nop
    sll r1,#12,r10
    mvi #20,r12
    srl r10,r12,r10      ; echoed value
    add r6,r10,r6
    add r4,#1,r4
    bra next
    nop
report:
    add r6,#0,r1
    trap #2              ; print the sum
    mvi #10,r1
    trap #1
    mvi #0,r1
    trap #0
    halt
giveup:
    mvi #33,r1           ; '!': retries exhausted
    trap #1
    mvi #1,r1
    trap #0
    halt"
    )
}

/// The echo server (node 1): stateless `value + 1` echo, exits with a
/// single `'E'` after [`IDLE_TICKS`] of silence.
pub fn echo_server_src() -> String {
    let check = asm_check("r4", "serve");
    let pack = asm_pack("r8", "r5", "r6");
    let idle = IDLE_TICKS;
    format!(
        "
start:
    mvi #0,r15
    sub r15,#1,r15
    mvi #255,r13
    mvi #{idle},r14      ; idle budget, ticks
    trap #6
    add r1,#0,r7         ; last-activity tick
serve:
    trap #8
    bne r2,r15,got
    nop
    trap #6
    sub r1,r7,r1
    bgtu r1,r14,done     ; silent too long: the run is over
    nop
    bra serve
    nop
got:
    add r1,#0,r4         ; w
    add r2,#0,r3         ; reply target
    trap #6
    add r1,#0,r7         ; refresh activity
{check}
    mvi #28,r12
    srl r4,r12,r10
    bne r10,#1,serve     ; not a PING: ignore
    nop
    sll r4,#4,r5
    mvi #24,r12
    srl r5,r12,r5        ; seq
    sll r4,#12,r6
    mvi #20,r12
    srl r6,r12,r6
    add r6,#1,r6         ; echoed value := value + 1
    mvi #2,r8            ; PONG
{pack}
reply:
    add r3,#0,r1
    add r8,#0,r2
    trap #7
    beq r1,r15,reply     ; TX full: spin until the ring drains
    nop
    bra serve
    nop
done:
    mvi #69,r1           ; 'E'
    trap #1
    mvi #0,r1
    trap #0
    halt"
    )
}

/// The counter coordinator (node 0): drives replicas `1..=last`
/// through `K` `SET`s and one `FIN` each, one `(seq, replica)` pair at
/// a time, with per-pair resend; prints `K` when every replica has
/// acknowledged the finish.
///
/// The `seq` loop runs to `K + 1`: the extra pass is the `FIN` round
/// (type 5 instead of 3), and a reply is valid iff its type is the
/// request's type plus one — the same wait loop serves both phases.
pub fn counter_coordinator_src(last: u32, k: u32) -> String {
    let pack = asm_pack("r8", "r4", "r6");
    let check = asm_check("r1", "wait");
    let to = RESEND_TICKS;
    format!(
        "
start:
    mvi #0,r15
    sub r15,#1,r15
    mvi #255,r13
    mvi #{k},r5          ; K
    mvi #{last},r14      ; last replica id
    mvi #1,r4            ; seq, 1..=K+1 (K+1 is the FIN round)
outer:
    add r5,#1,r10
    bgt r4,r10,finish
    nop
    mvi #1,r3            ; replica id
repl:
    bgt r3,r14,next_seq
    nop
    mvi #3,r8            ; SET ...
    ble r4,r5,have_type
    nop
    mvi #5,r8            ; ... or FIN on the extra pass
have_type:
    add r4,#0,r6         ; value := min(seq, K) — full state
    ble r6,r5,have_value
    nop
    add r5,#0,r6
have_value:
{pack}
    mvi #16,r9           ; retry budget 4096
    sll r9,#8,r9
send:
    add r3,#0,r1
    add r8,#0,r2
    trap #7
    beq r1,r15,backoff
    nop
    trap #6
    add r1,#0,r7
wait:
    trap #8
    bne r2,r15,got
    nop
    trap #6
    sub r1,r7,r1
    bgt r1,#{to},backoff
    nop
    bra wait
    nop
backoff:
    sub r9,#1,r9
    bne r9,#0,send
    nop
    bra giveup
    nop
got:
    bne r2,r3,wait       ; not the replica being driven: ignore
    nop
{check}
    mvi #28,r12
    srl r1,r12,r10       ; reply type
    srl r8,r12,r11       ; request type (top of the built word)
    add r11,#1,r11
    bne r10,r11,wait     ; must be request + 1 (ACK or FINACK)
    nop
    sll r1,#4,r10
    mvi #24,r12
    srl r10,r12,r10
    bne r10,r4,wait      ; stale ack: ignore
    nop
    add r3,#1,r3
    bra repl
    nop
next_seq:
    add r4,#1,r4
    bra outer
    nop
finish:
    add r5,#0,r1
    trap #2              ; print K
    mvi #10,r1
    trap #1
    mvi #0,r1
    trap #0
    halt
giveup:
    mvi #33,r1
    trap #1
    mvi #1,r1
    trap #0
    halt"
    )
}

/// A counter replica: applies `SET`/`FIN` when `seq >= expect`
/// (taking the carried value as its whole state), re-ACKs stale
/// sequence numbers without applying, prints the counter exactly once
/// (at `FIN`, or at the idle timeout if the finish was cut short).
pub fn counter_replica_src() -> String {
    let check = asm_check("r3", "serve");
    let pack = asm_pack("r8", "r10", "r5");
    let idle = IDLE_TICKS;
    format!(
        "
start:
    mvi #0,r15
    sub r15,#1,r15
    mvi #255,r13
    mvi #{idle},r14
    mvi #1,r4            ; expect: next fresh seq
    mvi #0,r5            ; counter
    mvi #0,r6            ; printed?
    trap #6
    add r1,#0,r7
serve:
    trap #8
    bne r2,r15,got
    nop
    trap #6
    sub r1,r7,r1
    bgtu r1,r14,done
    nop
    bra serve
    nop
got:
    add r1,#0,r3         ; w
    add r2,#0,r9         ; reply target
    trap #6
    add r1,#0,r7
{check}
    mvi #28,r12
    srl r3,r12,r8        ; type
    beq r8,#3,apply
    nop
    beq r8,#5,apply
    nop
    bra serve            ; not SET/FIN: ignore
    nop
apply:
    sll r3,#4,r10
    mvi #24,r12
    srl r10,r12,r10      ; seq
    sll r3,#12,r11
    mvi #20,r12
    srl r11,r12,r11      ; value
    blt r10,r4,build     ; stale: re-ACK, state unchanged
    nop
    add r11,#0,r5        ; counter := value (the full state)
    add r10,#1,r4        ; expect := seq + 1
build:
    add r8,#1,r8         ; reply type := request + 1
{pack}
reply:
    add r9,#0,r1
    add r8,#0,r2
    trap #7
    beq r1,r15,reply
    nop
    mvi #28,r12
    srl r8,r12,r10
    bne r10,#6,serve     ; only a FINACK triggers the print
    nop
    bne r6,#0,serve      ; already printed
    nop
    add r5,#0,r1
    trap #2
    mvi #10,r1
    trap #1
    mvi #1,r6
    bra serve
    nop
done:
    bne r6,#0,quit
    nop
    add r5,#0,r1         ; finish was cut short: print at idle
    trap #2
    mvi #10,r1
    trap #1
quit:
    mvi #0,r1
    trap #0
    halt"
    )
}

pub(crate) fn node_config(engine: Engine, node: u32) -> KernelConfig {
    KernelConfig {
        time_slice: NODE_TIME_SLICE,
        engine,
        nic: Some(node),
        ..KernelConfig::default()
    }
}

pub(crate) fn boot(engine: Engine, node: u32, name: &str, src: &str) -> Result<Kernel, OsError> {
    // The sources are generated right above; failing to assemble is a
    // bug in this module, not a runtime condition.
    let program = mips_asm::assemble(src).expect("workload source assembles");
    let mut k = Kernel::with_config(node_config(engine, node));
    k.spawn(name, program)?;
    Ok(k)
}

/// The two-node ping/echo cluster: node 0 the client, node 1 the echo
/// server.
///
/// # Errors
///
/// [`OsError`] if a workload fails to assemble or spawn.
pub fn ping_echo_kernels(engine: Engine) -> Result<Vec<Kernel>, OsError> {
    Ok(vec![
        boot(engine, 0, "ping", &ping_client_src(1, K))?,
        boot(engine, 1, "echo", &echo_server_src())?,
    ])
}

/// The fault-free ping/echo cluster output: the client's sum of `K`
/// echoed `value + 1` replies, the server's single `'E'`.
pub fn ping_echo_expected() -> Vec<u8> {
    let sum: u32 = (1..=K).map(|s| s + 1).sum();
    format!("[node 0]\n{sum}\n[node 1]\nE").into_bytes()
}

/// The replicated-counter cluster: node 0 the coordinator, nodes
/// `1..=replicas` the replicas.
///
/// # Errors
///
/// [`OsError`] if a workload fails to assemble or spawn.
pub fn replicated_counter_kernels(engine: Engine, replicas: u32) -> Result<Vec<Kernel>, OsError> {
    assert!(replicas >= 1, "a counter cluster needs a replica");
    let mut kernels = vec![boot(
        engine,
        0,
        "coord",
        &counter_coordinator_src(replicas, K),
    )?];
    for r in 1..=replicas {
        kernels.push(boot(engine, r, "replica", &counter_replica_src())?);
    }
    Ok(kernels)
}

/// The fault-free replicated-counter output: every node prints `K`.
pub fn replicated_counter_expected(replicas: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for node in 0..=replicas {
        out.extend_from_slice(format!("[node {node}]\n{K}\n").as_bytes());
    }
    out
}
