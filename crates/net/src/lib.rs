//! # mips-net — a deterministic network fabric for guest clusters
//!
//! The paper's theme is moving hardware guarantees into software this
//! machine can afford. This crate extends that to the *distributed*
//! setting: N simulated machines, each running the `mips-os` kernel
//! with a NIC, joined by a host-side fabric whose every delivery is a
//! pure function of `(topology, seed, send order)`. There is no wall
//! clock and no host-thread nondeterminism anywhere in the path — a
//! cluster run is as replayable as a single-machine run, which is what
//! lets distributed chaos campaigns assert **byte-identical cluster
//! output** between a fault-free baseline and a faulted, recovered
//! run.
//!
//! The pieces:
//!
//! * [`fabric`] — the virtual-time list schedule: latency, seeded
//!   jitter, delivery-time partitions, backpressure retention.
//! * [`cluster`] — N [`mips_os::KernelRun`]s round-robined against one
//!   fabric, with per-node checkpoints and [`Cluster::kill_node`]
//!   crash-restart.
//! * [`workloads`] — the distributed guest programs (ping/echo RPC,
//!   replicated counter) whose protocols make faulted output converge
//!   to the baseline.
//! * [`failover`] — the v2 workload: a Frame2-framed replicated
//!   counter with a guest write-ahead log and bully-style leader
//!   election, built to survive the kill of *any* node — the leader
//!   included — at *any* round.
//!
//! Fault *policy* (which frame to harm, when to partition, whom to
//! kill) lives in `mips-chaos`; this crate supplies the mechanism: the
//! per-frame [`FaultAction`] seam in [`Cluster::step`] and the
//! [`WalSpec`] durability contract in [`Cluster::kill_node`].

pub mod cluster;
pub mod fabric;
pub mod failover;
pub mod workloads;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, WalSpec};
pub use fabric::{Fabric, FabricConfig, FabricStats, FaultAction};
