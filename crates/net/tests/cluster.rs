//! End-to-end cluster runs: the distributed workloads, fault-free and
//! under faults, on both engines, serial and fleet-parallel — output
//! byte-identical throughout. The failover tests at the bottom drive
//! the v2 workload through its worst cases: torn log tails, leaders
//! killed mid-election, and two successive leaders dying in one run.

use mips_net::failover::{
    failover_cluster_config, failover_expected, failover_kernels, member_src, wal, FAILOVER_NODES,
};
use mips_net::workloads::{
    echo_server_src, msg, ping_client_src, ping_echo_expected, ping_echo_kernels,
    replicated_counter_expected, replicated_counter_kernels,
};
use mips_net::{Cluster, ClusterConfig, FaultAction};
use mips_os::Kernel;
use mips_sim::Engine;

fn clean_run(kernels: &[Kernel]) -> mips_net::ClusterReport {
    let mut c = Cluster::new(kernels, ClusterConfig::default()).unwrap();
    let report = c.run_clean().unwrap();
    assert!(report.completed, "round budget exhausted: {report:?}");
    report
}

#[test]
fn ping_echo_completes_with_the_expected_output() {
    let kernels = ping_echo_kernels(Engine::Reference).unwrap();
    let report = clean_run(&kernels);
    assert_eq!(report.output(), ping_echo_expected());
    assert!(report.fabric.delivered >= 16, "8 pings + 8 pongs at least");
    assert!(report.nodes[0].counters.sends >= 8);
    assert!(report.nodes[1].counters.recvs >= 8);
    assert!(report.nodes[1].counters.net_irqs >= 1);
}

#[test]
fn replicated_counter_completes_on_every_node() {
    let kernels = replicated_counter_kernels(Engine::Reference, 2).unwrap();
    let report = clean_run(&kernels);
    assert_eq!(report.output(), replicated_counter_expected(2));
}

#[test]
fn fast_engine_matches_the_reference_byte_for_byte() {
    let reference = clean_run(&ping_echo_kernels(Engine::Reference).unwrap());
    let fast = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    assert_eq!(reference.output(), fast.output());
    let reference = clean_run(&replicated_counter_kernels(Engine::Reference, 2).unwrap());
    let fast = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    assert_eq!(reference.output(), fast.output());
}

/// Drops, duplicates, corruption, and delays — the retry protocol
/// hides all of it; output matches the fault-free baseline.
#[test]
fn packet_faults_do_not_change_the_observable_output() {
    let baseline = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut n = 0u64;
    let report = c
        .run(&mut |_, _| {
            n += 1;
            match n % 5 {
                0 => FaultAction::Drop,
                1 => FaultAction::Duplicate,
                2 => FaultAction::Corrupt { word: 0, bit: 13 },
                3 => FaultAction::Delay(3),
                _ => FaultAction::Deliver,
            }
        })
        .unwrap();
    assert!(report.completed, "faulted run wedged: {report:?}");
    assert_eq!(report.output(), baseline.output());
}

/// A partition opens mid-run and heals: the client's sends time out
/// and are re-sent after the heal; nothing observable changes.
#[test]
fn partition_heal_recovers_the_baseline_output() {
    let baseline = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    while !c.all_done() {
        if c.round() == 8 {
            c.partition(0, 1);
        }
        if c.round() == 28 {
            c.heal(0, 1);
        }
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert!(report.fabric.partition_dropped > 0, "partition saw traffic");
    assert_eq!(report.output(), baseline.output());
}

/// A replica is killed (rolled back to its checkpoint) mid-run; the
/// coordinator's retries and the state-carrying SET protocol bring it
/// back; the cluster output is byte-identical to the baseline.
#[test]
fn node_kill_recovers_to_the_baseline_output() {
    let baseline = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    let kernels = replicated_counter_kernels(Engine::Fast, 2).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    while !c.all_done() {
        if c.round() == 20 {
            c.kill_node(1).unwrap();
        }
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert_eq!(report.restarts, vec![0, 1, 0]);
    assert_eq!(report.output(), baseline.output());
}

/// The NIC edge case the sim tests cannot see: a send to a partitioned
/// peer is committed locally (the NIC accepts it), lost in the fabric,
/// and the guest's timeout covers the loss once the partition heals.
#[test]
fn send_to_partitioned_peer_times_out_then_heals() {
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    c.partition(0, 1); // partitioned from the very first frame
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    for _ in 0..24 {
        c.step(&mut deliver).unwrap();
    }
    let mid = c.report();
    assert!(!mid.completed);
    assert!(mid.fabric.sent > 1, "client kept re-sending into the void");
    assert_eq!(mid.fabric.delivered, 0);
    assert!(mid.fabric.partition_dropped > 0);
    c.heal(0, 1);
    while !c.all_done() {
        c.step(&mut deliver).unwrap();
    }
    assert_eq!(c.report().output(), ping_echo_expected());
}

/// Same cluster configuration, run twice: bit-for-bit identical
/// reports (determinism of the whole stack, not just the output).
#[test]
fn cluster_runs_are_fully_deterministic() {
    let a = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    let b = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    assert_eq!(a, b);
}

/// Cluster runs scheduled through the fleet at several worker counts
/// produce byte-identical outputs in order — distributed runs compose
/// with host-side parallelism.
#[test]
fn fleet_parallel_cluster_runs_match_serial() {
    struct ClusterJob {
        replicas: u32,
    }
    impl mips_fleet::FleetWork for ClusterJob {
        type Out = Vec<u8>;
        fn execute(self) -> Vec<u8> {
            let kernels = if self.replicas == 0 {
                ping_echo_kernels(Engine::Fast).unwrap()
            } else {
                replicated_counter_kernels(Engine::Fast, self.replicas).unwrap()
            };
            let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
            c.run_clean().unwrap().output()
        }
    }
    let jobs = || (0..6u32).map(|r| ClusterJob { replicas: r % 3 }).collect();
    let serial: Vec<Vec<u8>> = mips_fleet::run_ordered(jobs(), 1);
    for threads in [2, 4, 8] {
        assert_eq!(mips_fleet::run_ordered(jobs(), threads), serial);
    }
}

/// The guest sources stay hazard-free: the strict verifier finds
/// nothing to say about any workload program.
#[test]
fn workload_sources_verify_clean() {
    for src in [
        ping_client_src(1, 8),
        echo_server_src(),
        mips_net::workloads::counter_coordinator_src(2, 8),
        mips_net::workloads::counter_replica_src(),
        member_src(0, 8),
        member_src(1, 8),
        member_src(2, 8),
    ] {
        let report = mips_verify::verify_source(&src).unwrap();
        assert!(!report.has_errors(), "errors in:\n{src}");
        assert_eq!(report.warnings().count(), 0, "warnings in:\n{src}");
    }
}

/// The corrupt fault really is detected by the guest checksum: flip
/// any bit of a packed word and `checksum_ok` fails.
#[test]
fn corruption_is_always_detected_by_the_checksum() {
    for seq in 0..16 {
        let w = msg::pack(msg::SET, seq, 3 * seq + 1);
        assert!(msg::checksum_ok(w));
        for bit in 0..32 {
            assert!(!msg::checksum_ok(w ^ (1 << bit)));
        }
    }
}

// ---------------------------------------------------------------- failover

fn failover_baseline() -> Vec<u8> {
    let kernels = failover_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, failover_cluster_config()).unwrap();
    let report = c.run_clean().unwrap();
    assert!(report.completed, "failover baseline wedged: {report:?}");
    assert_eq!(report.output(), failover_expected());
    report.output()
}

fn failover_cluster() -> Cluster {
    let kernels = failover_kernels(Engine::Fast).unwrap();
    Cluster::new(&kernels, failover_cluster_config()).unwrap()
}

/// The term of a member's newest durable record (0 = empty log).
fn wal_term(c: &Cluster, id: usize) -> u32 {
    wal::latest(&c.wal(id).unwrap()).map_or(0, |r| r.term)
}

/// A torn append — record words half-written, count not yet bumped,
/// exactly what a crash mid-append leaves behind — is invisible to
/// the replay scan, and the node killed on top of it still converges
/// to the baseline output.
#[test]
fn a_torn_wal_tail_is_truncated_on_replay_and_the_node_recovers() {
    let baseline = failover_baseline();
    let mut c = failover_cluster();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    // Run until node 1 has something durable to tear an append onto.
    while wal::latest(&c.wal(1).unwrap()).is_none() {
        assert!(c.round() < 200, "node 1 never appended");
        c.step(&mut deliver).unwrap();
    }
    let seg = c.wal(1).unwrap();
    let before = wal::latest(&seg).unwrap();
    let count = seg[0];
    assert!(count < wal::CAP, "log full this early would be a bug");
    // Half-write the next slot: plausible magic, no valid checksum,
    // count untouched — the widest torn window the store order allows.
    let slot = 1 + 3 * count;
    c.wal_poke(1, slot, wal::MAGIC << 16 | 5);
    c.wal_poke(1, slot + 1, 7);
    assert_eq!(
        wal::latest(&c.wal(1).unwrap()),
        Some(before),
        "the torn tail must be invisible to the replay scan"
    );
    c.kill_node(1).unwrap();
    while !c.all_done() {
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert!(report.completed, "torn-tail run wedged: {report:?}");
    assert_eq!(report.restarts, vec![0, 1, 0]);
    assert_eq!(report.output(), baseline);
}

/// Isolate the boot leader until a backup stakes a claim to a new
/// term, then kill the claimant at that exact moment — before it has
/// sent a single heartbeat of its reign. Its candidacy is already in
/// its WAL, so the restore replays it and the election completes.
#[test]
fn a_leader_killed_the_moment_it_claims_the_term_still_recovers() {
    let baseline = failover_baseline();
    let mut c = failover_cluster();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    for _ in 0..8 {
        c.step(&mut deliver).unwrap();
    }
    c.partition(0, 1);
    c.partition(0, 2);
    let claimant = loop {
        assert!(
            c.round() < 400,
            "isolating the leader never forced an election"
        );
        c.step(&mut deliver).unwrap();
        let (t1, t2) = (wal_term(&c, 1), wal_term(&c, 2));
        let t = t1.max(t2);
        if t > 0 {
            break (t % FAILOVER_NODES) as usize;
        }
    };
    assert_ne!(claimant, 0, "a new term always belongs to a backup here");
    c.kill_node(claimant).unwrap();
    c.heal_all();
    while !c.all_done() {
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert!(
        report.completed,
        "post-election-kill run wedged: {report:?}"
    );
    assert_eq!(report.restarts.iter().sum::<u32>(), 1);
    assert_eq!(report.output(), baseline);
}

/// Two successive leaders die in one run: first the sitting boot
/// leader (isolated, then killed while it still believes it leads),
/// then whichever backup wins the resulting election. The cluster
/// output is still byte-identical to the fault-free run.
#[test]
fn killing_two_successive_leaders_still_converges() {
    let baseline = failover_baseline();
    let mut c = failover_cluster();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    for _ in 0..8 {
        c.step(&mut deliver).unwrap();
    }
    c.partition(0, 1);
    c.partition(0, 2);
    for _ in 0..4 {
        c.step(&mut deliver).unwrap();
    }
    // First victim: the boot leader, by its own log still in charge.
    assert_eq!(wal_term(&c, 0) % FAILOVER_NODES, 0);
    c.kill_node(0).unwrap();
    // Second victim: the backup that takes over.
    let successor = loop {
        assert!(c.round() < 400, "no successor ever claimed the term");
        c.step(&mut deliver).unwrap();
        let t = wal_term(&c, 1).max(wal_term(&c, 2));
        if t > 0 {
            break (t % FAILOVER_NODES) as usize;
        }
    };
    c.kill_node(successor).unwrap();
    c.heal_all();
    while !c.all_done() {
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert!(
        report.completed,
        "double-leader-kill run wedged: {report:?}"
    );
    assert_eq!(report.restarts.iter().sum::<u32>(), 2);
    assert_eq!(report.output(), baseline);
}

/// There is no safe-harbour round: killing any member at sampled
/// points across the whole run — start, mid-drive, and deep into the
/// finish phase — always converges back to the baseline bytes.
#[test]
fn kills_sampled_across_the_entire_run_always_recover() {
    let baseline = failover_baseline();
    for node in 0..FAILOVER_NODES as usize {
        for at in [0u64, 45, 140] {
            let mut c = failover_cluster();
            let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
            let mut killed = false;
            while !c.all_done() {
                if c.round() == at {
                    c.kill_node(node).unwrap();
                    killed = true;
                }
                c.step(&mut deliver).unwrap();
            }
            let report = c.report();
            assert!(killed, "kill at round {at} never fired");
            assert!(
                report.completed,
                "node {node} killed at {at} wedged: {report:?}"
            );
            assert_eq!(
                report.output(),
                baseline,
                "node {node} killed at {at} diverged"
            );
        }
    }
}
