//! End-to-end cluster runs: both distributed workloads, fault-free and
//! under faults, on both engines, serial and fleet-parallel — output
//! byte-identical throughout.

use mips_net::workloads::{
    echo_server_src, msg, ping_client_src, ping_echo_expected, ping_echo_kernels,
    replicated_counter_expected, replicated_counter_kernels,
};
use mips_net::{Cluster, ClusterConfig, FaultAction};
use mips_os::Kernel;
use mips_sim::Engine;

fn clean_run(kernels: &[Kernel]) -> mips_net::ClusterReport {
    let mut c = Cluster::new(kernels, ClusterConfig::default()).unwrap();
    let report = c.run_clean().unwrap();
    assert!(report.completed, "round budget exhausted: {report:?}");
    report
}

#[test]
fn ping_echo_completes_with_the_expected_output() {
    let kernels = ping_echo_kernels(Engine::Reference).unwrap();
    let report = clean_run(&kernels);
    assert_eq!(report.output(), ping_echo_expected());
    assert!(report.fabric.delivered >= 16, "8 pings + 8 pongs at least");
    assert!(report.nodes[0].counters.sends >= 8);
    assert!(report.nodes[1].counters.recvs >= 8);
    assert!(report.nodes[1].counters.net_irqs >= 1);
}

#[test]
fn replicated_counter_completes_on_every_node() {
    let kernels = replicated_counter_kernels(Engine::Reference, 2).unwrap();
    let report = clean_run(&kernels);
    assert_eq!(report.output(), replicated_counter_expected(2));
}

#[test]
fn fast_engine_matches_the_reference_byte_for_byte() {
    let reference = clean_run(&ping_echo_kernels(Engine::Reference).unwrap());
    let fast = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    assert_eq!(reference.output(), fast.output());
    let reference = clean_run(&replicated_counter_kernels(Engine::Reference, 2).unwrap());
    let fast = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    assert_eq!(reference.output(), fast.output());
}

/// Drops, duplicates, corruption, and delays — the retry protocol
/// hides all of it; output matches the fault-free baseline.
#[test]
fn packet_faults_do_not_change_the_observable_output() {
    let baseline = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut n = 0u64;
    let report = c
        .run(&mut |_, _| {
            n += 1;
            match n % 5 {
                0 => FaultAction::Drop,
                1 => FaultAction::Duplicate,
                2 => FaultAction::Corrupt { word: 0, bit: 13 },
                3 => FaultAction::Delay(3),
                _ => FaultAction::Deliver,
            }
        })
        .unwrap();
    assert!(report.completed, "faulted run wedged: {report:?}");
    assert_eq!(report.output(), baseline.output());
}

/// A partition opens mid-run and heals: the client's sends time out
/// and are re-sent after the heal; nothing observable changes.
#[test]
fn partition_heal_recovers_the_baseline_output() {
    let baseline = clean_run(&ping_echo_kernels(Engine::Fast).unwrap());
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    while !c.all_done() {
        if c.round() == 8 {
            c.partition(0, 1);
        }
        if c.round() == 28 {
            c.heal(0, 1);
        }
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert!(report.fabric.partition_dropped > 0, "partition saw traffic");
    assert_eq!(report.output(), baseline.output());
}

/// A replica is killed (rolled back to its checkpoint) mid-run; the
/// coordinator's retries and the state-carrying SET protocol bring it
/// back; the cluster output is byte-identical to the baseline.
#[test]
fn node_kill_recovers_to_the_baseline_output() {
    let baseline = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    let kernels = replicated_counter_kernels(Engine::Fast, 2).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    while !c.all_done() {
        if c.round() == 20 {
            c.kill_node(1).unwrap();
        }
        c.step(&mut deliver).unwrap();
    }
    let report = c.report();
    assert_eq!(report.restarts, vec![0, 1, 0]);
    assert_eq!(report.output(), baseline.output());
}

/// The NIC edge case the sim tests cannot see: a send to a partitioned
/// peer is committed locally (the NIC accepts it), lost in the fabric,
/// and the guest's timeout covers the loss once the partition heals.
#[test]
fn send_to_partitioned_peer_times_out_then_heals() {
    let kernels = ping_echo_kernels(Engine::Fast).unwrap();
    let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
    c.partition(0, 1); // partitioned from the very first frame
    let mut deliver = |_: u64, _: &mips_sim::Frame| FaultAction::Deliver;
    for _ in 0..24 {
        c.step(&mut deliver).unwrap();
    }
    let mid = c.report();
    assert!(!mid.completed);
    assert!(mid.fabric.sent > 1, "client kept re-sending into the void");
    assert_eq!(mid.fabric.delivered, 0);
    assert!(mid.fabric.partition_dropped > 0);
    c.heal(0, 1);
    while !c.all_done() {
        c.step(&mut deliver).unwrap();
    }
    assert_eq!(c.report().output(), ping_echo_expected());
}

/// Same cluster configuration, run twice: bit-for-bit identical
/// reports (determinism of the whole stack, not just the output).
#[test]
fn cluster_runs_are_fully_deterministic() {
    let a = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    let b = clean_run(&replicated_counter_kernels(Engine::Fast, 2).unwrap());
    assert_eq!(a, b);
}

/// Cluster runs scheduled through the fleet at several worker counts
/// produce byte-identical outputs in order — distributed runs compose
/// with host-side parallelism.
#[test]
fn fleet_parallel_cluster_runs_match_serial() {
    struct ClusterJob {
        replicas: u32,
    }
    impl mips_fleet::FleetWork for ClusterJob {
        type Out = Vec<u8>;
        fn execute(self) -> Vec<u8> {
            let kernels = if self.replicas == 0 {
                ping_echo_kernels(Engine::Fast).unwrap()
            } else {
                replicated_counter_kernels(Engine::Fast, self.replicas).unwrap()
            };
            let mut c = Cluster::new(&kernels, ClusterConfig::default()).unwrap();
            c.run_clean().unwrap().output()
        }
    }
    let jobs = || (0..6u32).map(|r| ClusterJob { replicas: r % 3 }).collect();
    let serial: Vec<Vec<u8>> = mips_fleet::run_ordered(jobs(), 1);
    for threads in [2, 4, 8] {
        assert_eq!(mips_fleet::run_ordered(jobs(), threads), serial);
    }
}

/// The guest sources stay hazard-free: the strict verifier finds
/// nothing to say about any workload program.
#[test]
fn workload_sources_verify_clean() {
    for src in [
        ping_client_src(1, 8),
        echo_server_src(),
        mips_net::workloads::counter_coordinator_src(2, 8),
        mips_net::workloads::counter_replica_src(),
    ] {
        let report = mips_verify::verify_source(&src).unwrap();
        assert!(!report.has_errors(), "errors in:\n{src}");
        assert_eq!(report.warnings().count(), 0, "warnings in:\n{src}");
    }
}

/// The corrupt fault really is detected by the guest checksum: flip
/// any bit of a packed word and `checksum_ok` fails.
#[test]
fn corruption_is_always_detected_by_the_checksum() {
    for seq in 0..16 {
        let w = msg::pack(msg::SET, seq, 3 * seq + 1);
        assert!(msg::checksum_ok(w));
        for bit in 0..32 {
            assert!(!msg::checksum_ok(w ^ (1 << bit)));
        }
    }
}
