//! `mips-lint` — static machine-code lint over `.s` assembly files.
//!
//! ```text
//! usage: mips-lint [--strict] [--quiet] [--json] [--dataflow] FILE.s [FILE.s ...]
//!
//!   --strict    treat warnings as failures (info never fails)
//!   --quiet     print nothing for clean files
//!   --json      one JSON object per diagnostic line (rule id, name,
//!               severity, address, message, file) for CI and tooling
//!   --dataflow  also run the whole-program dataflow lints (the V3xx
//!               family: dead writes, provably out-of-range or
//!               misaligned memory accesses, statically decided
//!               branches, dataflow-unreachable code)
//! ```
//!
//! Exit status: 0 when every file is acceptable, 1 when any file has
//! findings at failing severity (an error, or with `--strict` a
//! warning), 2 on usage, I/O, or parse problems — a file that does not
//! assemble has no findings to report, which is a different failure
//! than findings. The codes are a stable CI contract.

use mips_verify::{verify_dataflow_source, verify_source, Severity};
use std::process::ExitCode;

const USAGE: &str =
    "usage: mips-lint [--strict] [--quiet] [--json] [--dataflow] FILE.s [FILE.s ...]";

fn main() -> ExitCode {
    let mut strict = false;
    let mut quiet = false;
    let mut json = false;
    let mut dataflow = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--quiet" => quiet = true,
            "--json" => json = true,
            "--dataflow" => dataflow = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mips-lint: unknown option '{arg}'");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut broken = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mips-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let run = if dataflow {
            verify_dataflow_source
        } else {
            verify_source
        };
        let report = match run(&source) {
            Ok(r) => r,
            Err(e) => {
                // Unparseable input is a usage-class failure (exit 2),
                // not a finding: there is no program to lint.
                eprintln!("{file}: assembly error: {e}");
                broken = true;
                continue;
            }
        };
        let bad = report.has_errors() || (strict && report.warnings().next().is_some());
        failed |= bad;
        if report.is_clean() {
            if !quiet && !json {
                println!("{file}: clean");
            }
            continue;
        }
        for d in report.diagnostics() {
            // Skip info-level notes under --quiet.
            if quiet && d.severity() == Severity::Info {
                continue;
            }
            if json {
                // One object per line; the file is appended as an extra
                // key so multi-file runs stay self-describing.
                let obj = d.to_json();
                let body = obj.strip_suffix('}').unwrap_or(&obj);
                let fname = file.replace('\\', "\\\\").replace('"', "\\\"");
                println!("{body},\"file\":\"{fname}\"}}");
            } else {
                println!("{file}:{d}");
            }
        }
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
