//! Forward constant / value-range propagation on the dataflow engine.
//!
//! The fact is one unsigned interval per register (`None` marks a node
//! no entry fact has reached yet — the lattice bottom). Joins take the
//! interval hull, then snap any bound that *grew* to a power-of-two
//! ladder (`2^k − 1` upward, `2^k` downward): diamond merges of nearby
//! constants stay tight, while loop-carried growth reaches a fixpoint
//! in at most 33 snaps per bound instead of one sweep per loop
//! iteration. Constants fold through [`mips_core::AluOp::eval`] itself,
//! so the abstract and concrete semantics cannot drift apart.
//!
//! Every entry point starts with all registers at ⊤ — exception
//! dispatch can reach the reset vector from *any* machine state, and
//! named entries trust their callers. An `rfe` can additionally resume
//! anywhere with handler-modified registers; program-wide facts are
//! therefore only **claims** (checked dynamically, or re-checked at
//! runtime by the certificate gate) on programs containing `rfe` —
//! see [`super::claims`] and [`super::cert`] for where that line is
//! drawn.

use super::{Analysis, Direction, Solution};
use crate::cfg::Cfg;
use mips_core::delay::BRANCH_DELAY;
use mips_core::{AluOp, AluPiece, Cond, Instr, MemPiece, Operand, Program, Reg, SpecialOp};

/// An unsigned interval `lo ..= hi` of possible register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value (inclusive).
    pub hi: u32,
}

impl Interval {
    /// The full range: nothing known.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    /// A single known value.
    pub fn singleton(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The value, when exactly one is possible.
    pub fn as_singleton(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True when every possible value is a non-negative `i32`.
    pub fn non_negative(self) -> bool {
        self.hi <= i32::MAX as u32
    }

    /// True when every possible value has the sign bit set.
    pub fn negative(self) -> bool {
        self.lo > i32::MAX as u32
    }
}

/// Smallest `2^k − 1` that is `≥ x` (all-ones smear of the MSB).
fn snap_up(x: u32) -> u32 {
    let mut v = x;
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v
}

/// Largest power of two `≤ x` (0 for 0).
fn snap_down(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        1 << (31 - x.leading_zeros())
    }
}

/// Hull join with ladder snapping; returns true when `into` changed.
fn join_interval(into: &mut Interval, from: Interval) -> bool {
    let mut changed = false;
    if from.lo < into.lo {
        into.lo = snap_down(from.lo);
        changed = true;
    }
    if from.hi > into.hi {
        into.hi = snap_up(from.hi);
        changed = true;
    }
    changed
}

/// One interval per register, or `None` while no path has reached the
/// node (the join identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegVals(pub Option<[Interval; 16]>);

impl RegVals {
    /// The interval for `reg` (⊤ at unreached nodes: no claim is ever
    /// derived from them, and ⊤ is sound everywhere).
    pub fn of(&self, reg: Reg) -> Interval {
        match &self.0 {
            Some(rs) => rs[reg.index()],
            None => Interval::TOP,
        }
    }

    /// The interval an operand evaluates into.
    pub fn operand(&self, o: Operand) -> Interval {
        match o {
            Operand::Reg(r) => self.of(r),
            Operand::Small(v) => Interval::singleton(v as u32),
        }
    }
}

/// Abstract evaluation of an ALU piece over operand intervals.
pub fn eval_alu(p: &AluPiece, vals: &RegVals) -> Interval {
    let a = vals.operand(p.a);
    let b = vals.operand(p.b);
    // `ic` reads the untracked `lo` byte selector: never a constant.
    if !p.op.reads_lo() {
        if let (Some(ca), Some(cb)) = (a.as_singleton(), b.as_singleton()) {
            // Fold through the concrete data path. On the trap-enabled
            // overflow path control leaves the node, so the successor
            // fact only describes the wrap-and-continue outcome — which
            // is exactly what `eval` returns.
            return Interval::singleton(p.op.eval(ca, cb, 0).0);
        }
    }
    interval_op(p.op, a, b)
}

/// Abstract interval arithmetic for one ALU operation (falls back to
/// [`Interval::TOP`] wherever wrap or sign makes bounds unsound).
pub fn interval_op(op: AluOp, a: Interval, b: Interval) -> Interval {
    match op {
        AluOp::Add => add_iv(a, b),
        AluOp::Sub => sub_iv(a, b),
        AluOp::Rsub => sub_iv(b, a),
        AluOp::And => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        AluOp::Or => Interval {
            lo: a.lo.max(b.lo),
            hi: snap_up(a.hi | b.hi),
        },
        AluOp::Xor => Interval {
            lo: 0,
            hi: snap_up(a.hi | b.hi),
        },
        AluOp::Bic => Interval { lo: 0, hi: a.hi },
        AluOp::Sll => shl_iv(a, b),
        AluOp::Rsll => shl_iv(b, a),
        AluOp::Srl => shr_iv(a, b),
        AluOp::Rsrl => shr_iv(b, a),
        AluOp::Sra => {
            if a.non_negative() {
                shr_iv(a, b)
            } else {
                Interval::TOP
            }
        }
        AluOp::Rsra => {
            if b.non_negative() {
                shr_iv(b, a)
            } else {
                Interval::TOP
            }
        }
        AluOp::Xc => Interval { lo: 0, hi: 0xff },
        AluOp::Ic => Interval::TOP,
        AluOp::Mul => {
            if let Some(hi) = a.hi.checked_mul(b.hi) {
                Interval {
                    lo: a.lo.wrapping_mul(b.lo),
                    hi,
                }
            } else {
                Interval::TOP
            }
        }
        AluOp::Div => {
            if a.non_negative() && b.non_negative() && b.lo >= 1 {
                Interval {
                    lo: a.lo / b.hi,
                    hi: a.hi / b.lo,
                }
            } else {
                Interval::TOP
            }
        }
        AluOp::Rem => {
            if a.non_negative() && b.non_negative() && b.lo >= 1 {
                Interval {
                    lo: 0,
                    hi: b.hi - 1,
                }
            } else {
                Interval::TOP
            }
        }
    }
}

/// Unsigned interval add, ⊤ on possible 32-bit wrap. (Signed overflow
/// with the trap enabled diverts control instead of continuing, so the
/// continuation value is still the plain sum.)
fn add_iv(a: Interval, b: Interval) -> Interval {
    match a.hi.checked_add(b.hi) {
        Some(hi) => Interval {
            lo: a.lo + b.lo,
            hi,
        },
        None => Interval::TOP,
    }
}

fn sub_iv(a: Interval, b: Interval) -> Interval {
    if a.lo >= b.hi {
        Interval {
            lo: a.lo - b.hi,
            hi: a.hi - b.lo,
        }
    } else {
        Interval::TOP
    }
}

fn shl_iv(a: Interval, by: Interval) -> Interval {
    match by.as_singleton() {
        Some(c) => {
            let c = c & 31;
            match a.hi.checked_shl(c) {
                // A left shift can discard high bits even without
                // u32::checked_shl failing; demand the value round-trips.
                Some(hi) if (hi >> c) == a.hi => Interval { lo: a.lo << c, hi },
                _ => Interval::TOP,
            }
        }
        None => Interval::TOP,
    }
}

fn shr_iv(a: Interval, by: Interval) -> Interval {
    match by.as_singleton() {
        Some(c) => {
            let c = c & 31;
            Interval {
                lo: a.lo >> c,
                hi: a.hi >> c,
            }
        }
        None => Interval { lo: 0, hi: a.hi },
    }
}

/// Decides a comparison over intervals: `Some(outcome)` when every
/// possible operand pair agrees, `None` otherwise.
pub fn cond_outcome(cond: Cond, a: Interval, b: Interval) -> Option<bool> {
    let disjoint = a.hi < b.lo || b.hi < a.lo;
    match cond {
        Cond::Never => Some(false),
        Cond::Always => Some(true),
        Cond::Eq => {
            if let (Some(ca), Some(cb)) = (a.as_singleton(), b.as_singleton()) {
                Some(ca == cb)
            } else if disjoint {
                Some(false)
            } else {
                None
            }
        }
        Cond::Ne => cond_outcome(Cond::Eq, a, b).map(|t| !t),
        Cond::Ltu => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        Cond::Leu => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        Cond::Gtu => cond_outcome(Cond::Leu, a, b).map(|t| !t),
        Cond::Geu => cond_outcome(Cond::Ltu, a, b).map(|t| !t),
        // Signed orders decide only when both sides stay on one side of
        // the sign boundary; non-negative × non-negative reduces to the
        // unsigned order.
        Cond::Lt => signed_order(a, b).map(|o| o == std::cmp::Ordering::Less),
        Cond::Ge => signed_order(a, b).map(|o| o != std::cmp::Ordering::Less),
        Cond::Gt => signed_order(a, b).map(|o| o == std::cmp::Ordering::Greater),
        Cond::Le => signed_order(a, b).map(|o| o != std::cmp::Ordering::Greater),
        Cond::Neg => {
            if a.non_negative() {
                Some(false)
            } else if a.negative() {
                Some(true)
            } else {
                None
            }
        }
        Cond::NotNeg => {
            if a.non_negative() {
                Some(true)
            } else if a.negative() {
                Some(false)
            } else {
                None
            }
        }
        Cond::MaskZero => {
            if a.hi == 0 || b.hi == 0 {
                Some(true)
            } else if let (Some(ca), Some(cb)) = (a.as_singleton(), b.as_singleton()) {
                Some(ca & cb == 0)
            } else {
                None
            }
        }
        Cond::MaskNonZero => cond_outcome(Cond::MaskZero, a, b).map(|t| !t),
    }
}

/// Decides the strict signed order of two intervals when possible.
fn signed_order(a: Interval, b: Interval) -> Option<std::cmp::Ordering> {
    if !(a.non_negative() || a.negative()) || !(b.non_negative() || b.negative()) {
        return None;
    }
    // Map to a signed key space where comparison is the unsigned order.
    let key = |v: u32| v as i32 as i64;
    let (alo, ahi) = (key(a.lo), key(a.hi));
    let (blo, bhi) = (key(b.lo), key(b.hi));
    if ahi < blo {
        Some(std::cmp::Ordering::Less)
    } else if alo > bhi {
        Some(std::cmp::Ordering::Greater)
    } else if ahi == blo && alo == bhi {
        Some(std::cmp::Ordering::Equal)
    } else {
        None
    }
}

/// The value-propagation problem for one program.
pub struct Values<'p> {
    program: &'p Program,
    entries: Vec<u32>,
}

impl<'p> Values<'p> {
    /// Builds the problem; every entry point receives all-⊤ registers.
    pub fn new(program: &'p Program) -> Values<'p> {
        Values {
            program,
            entries: program.entry_points(),
        }
    }
}

impl Analysis for Values<'_> {
    type Fact = RegVals;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn start(&self) -> RegVals {
        RegVals(None)
    }

    fn boundary(&self, pc: u32) -> Option<RegVals> {
        self.entries
            .contains(&pc)
            .then_some(RegVals(Some([Interval::TOP; 16])))
    }

    fn transfer(&self, pc: u32, fact: &RegVals) -> RegVals {
        let Some(pre) = fact.0 else {
            return RegVals(None);
        };
        let mut regs = pre;
        match &self.program[pc as usize] {
            Instr::Op { alu, mem } => {
                if let Some(m) = mem {
                    match *m {
                        MemPiece::LoadImm { value, dst } => {
                            regs[dst.index()] = Interval::singleton(value);
                        }
                        // A delayed load's destination goes to ⊤ at the
                        // load itself: ⊤ covers both the incoming value
                        // (observable for one more slot) and the loaded
                        // one, so the early kill is sound on any program.
                        MemPiece::Load { dst, .. } => regs[dst.index()] = Interval::TOP,
                        MemPiece::Store { .. } => {}
                    }
                }
                if let Some(a) = alu {
                    regs[a.dst.index()] = eval_alu(a, fact);
                }
                // An (illegal, V006) destination clash resolves in the
                // load's favor on the reference machine: keep ⊤ there.
                if let (Some(a), Some(m)) = (alu, mem) {
                    if m.is_delayed_load() && m.writes() == Some(a.dst) {
                        regs[a.dst.index()] = Interval::TOP;
                    }
                }
            }
            Instr::SetCond(p) => {
                let out = cond_outcome(p.cond, fact.operand(p.a), fact.operand(p.b));
                regs[p.dst.index()] = match out {
                    Some(t) => Interval::singleton(t as u32),
                    None => Interval { lo: 0, hi: 1 },
                };
            }
            Instr::Mvi(p) => regs[p.dst.index()] = Interval::singleton(p.imm as u32),
            Instr::Call(p) => {
                regs[p.link.index()] = Interval::singleton(pc + 1 + BRANCH_DELAY);
            }
            Instr::Lea { target, dst } => {
                regs[dst.index()] = match target.abs() {
                    Some(a) => Interval::singleton(a),
                    None => Interval::TOP,
                };
            }
            Instr::Special(SpecialOp::Read { dst, .. }) => {
                regs[dst.index()] = Interval::TOP;
            }
            // Branches, stores, traps (native services only touch the
            // output stream), rfe, and halt write no general register.
            Instr::CmpBranch(_)
            | Instr::Jump(_)
            | Instr::JumpInd(_)
            | Instr::Trap(_)
            | Instr::Special(_)
            | Instr::Halt => {}
        }
        RegVals(Some(regs))
    }

    fn join(&self, into: &mut RegVals, from: &RegVals) -> bool {
        let Some(fr) = &from.0 else {
            return false;
        };
        match &mut into.0 {
            None => {
                into.0 = Some(*fr);
                true
            }
            Some(to) => {
                let mut changed = false;
                for (t, f) in to.iter_mut().zip(fr.iter()) {
                    changed |= join_interval(t, *f);
                }
                changed
            }
        }
    }
}

/// Solves value propagation over the [`Cfg`]: `input[pc]` describes the
/// register file just before `pc` issues.
pub fn values(program: &Program, cfg: &Cfg) -> Solution<RegVals> {
    super::solve(&Values::new(program), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn solved(src: &str) -> (Program, Solution<RegVals>) {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        let s = values(&p, &cfg);
        (p, s)
    }

    #[test]
    fn constants_fold_through_alu() {
        let (_, s) = solved("mvi #5,r1\n add r1,#3,r2\n halt\n");
        assert_eq!(s.input[1].of(Reg::R1).as_singleton(), Some(5));
        assert_eq!(s.input[2].of(Reg::R2).as_singleton(), Some(8));
    }

    #[test]
    fn loads_are_top_and_entry_is_top() {
        let (_, s) = solved("ld @100,r1\n nop\n add r1,#0,r2\n halt\n");
        assert_eq!(s.input[2].of(Reg::R1), Interval::TOP);
        assert_eq!(s.input[0].of(Reg::R5), Interval::TOP);
    }

    #[test]
    fn diamond_merge_stays_tight() {
        // Built without the assembler: labels would become symbols,
        // i.e. entry points with all-⊤ boundaries at the merge.
        let p = crate::dataflow::testutil::diamond(1, 2);
        let (cfg, _) = Cfg::build(&p);
        let s = values(&p, &cfg);
        let merge = p.len() - 2;
        let iv = s.input[merge].of(Reg::R1);
        assert!(iv.lo >= 1 && iv.hi <= 3, "snapped hull of {{1,2}}: {iv:?}");
    }

    #[test]
    fn loop_counter_converges_to_a_fixpoint() {
        let (_, s) = solved("mvi #0,r1\ntop:\n add r1,#1,r1\n bne r1,#9,top\n nop\n halt\n");
        // Terminates (ladder widening) and stays sound (0 ∈ interval at
        // the loop head's entry).
        let iv = s.input[1].of(Reg::R1);
        assert!(iv.lo == 0 && iv.hi >= 9, "{iv:?}");
    }

    #[test]
    fn cond_outcomes_decide_constants() {
        let one = Interval::singleton(1);
        let two = Interval::singleton(2);
        assert_eq!(cond_outcome(Cond::Eq, one, one), Some(true));
        assert_eq!(cond_outcome(Cond::Eq, one, two), Some(false));
        assert_eq!(cond_outcome(Cond::Ltu, one, two), Some(true));
        assert_eq!(cond_outcome(Cond::Lt, two, one), Some(false));
        assert_eq!(
            cond_outcome(Cond::Never, Interval::TOP, Interval::TOP),
            Some(false)
        );
        assert_eq!(
            cond_outcome(Cond::Always, Interval::TOP, Interval::TOP),
            Some(true)
        );
        assert_eq!(cond_outcome(Cond::Eq, Interval::TOP, one), None);
        let neg = Interval::singleton(u32::MAX);
        assert_eq!(cond_outcome(Cond::Neg, neg, one), Some(true));
        assert_eq!(
            cond_outcome(Cond::Lt, neg, one),
            Some(true),
            "-1 < 1 signed"
        );
    }

    #[test]
    fn setcond_becomes_constant_when_decidable() {
        let (_, s) = solved("mvi #1,r1\n seq r1,#1,r2\n st r2,@100\n halt\n");
        assert_eq!(s.input[2].of(Reg::R2).as_singleton(), Some(1));
    }
}
