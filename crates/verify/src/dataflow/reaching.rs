//! Forward reaching definitions on the dataflow engine.
//!
//! The fact maps each register to the sorted set of instruction
//! addresses whose write may be the one observed (plus the sentinel
//! [`ENTRY_DEF`] for "defined before the program, or by a caller").
//! Join is per-register set union; an instruction's transfer replaces
//! the sets of everything it writes with its own address.
//!
//! A delayed load's definition is attributed to the **load's own
//! address** even though the machine commits it one slot later; on a
//! hazard-free program (no `V001`) the difference is unobservable — no
//! instruction reads the register inside the delay shadow — and the
//! soundness fuzzer checks exactly this attribution against a shadow
//! last-writer trace on the reference interpreter.

use super::{Analysis, Direction, Solution};
use crate::cfg::Cfg;
use mips_core::{Program, Reg};

/// Definition-site sentinel: the value was produced outside the program
/// (initial register file, or a caller at a named entry point).
pub const ENTRY_DEF: u32 = u32::MAX;

/// Per-register sorted definition sites.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Defs {
    sites: [Vec<u32>; 16],
}

impl Defs {
    /// Definition sites that may reach for `reg` (sorted, deduplicated).
    pub fn of(&self, reg: Reg) -> &[u32] {
        &self.sites[reg.index()]
    }

    fn insert(&mut self, reg: usize, site: u32) -> bool {
        match self.sites[reg].binary_search(&site) {
            Ok(_) => false,
            Err(at) => {
                self.sites[reg].insert(at, site);
                true
            }
        }
    }
}

/// The reaching-definitions problem for one program.
pub struct Reaching<'p> {
    program: &'p Program,
    entries: Vec<u32>,
}

impl<'p> Reaching<'p> {
    /// Builds the problem; every entry point gets [`ENTRY_DEF`] for all
    /// registers (exception dispatch makes the reset vector reachable
    /// with arbitrary register state, and named entries trust callers).
    pub fn new(program: &'p Program) -> Reaching<'p> {
        Reaching {
            program,
            entries: program.entry_points(),
        }
    }
}

impl Analysis for Reaching<'_> {
    type Fact = Defs;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn start(&self) -> Defs {
        Defs::default()
    }

    fn boundary(&self, pc: u32) -> Option<Defs> {
        if !self.entries.contains(&pc) {
            return None;
        }
        let mut d = Defs::default();
        for r in 0..16 {
            d.sites[r].push(ENTRY_DEF);
        }
        Some(d)
    }

    fn transfer(&self, pc: u32, fact: &Defs) -> Defs {
        let mut out = fact.clone();
        for r in self.program[pc as usize].writes() {
            out.sites[r.index()] = vec![pc];
        }
        out
    }

    fn join(&self, into: &mut Defs, from: &Defs) -> bool {
        let mut changed = false;
        for r in 0..16 {
            for &site in &from.sites[r] {
                changed |= into.insert(r, site);
            }
        }
        changed
    }
}

/// Solves reaching definitions over the [`Cfg`]: `input[pc]` holds the
/// definitions visible just before `pc` executes.
pub fn reaching(program: &Program, cfg: &Cfg) -> Solution<Defs> {
    super::solve(&Reaching::new(program), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn solved(src: &str) -> Solution<Defs> {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        reaching(&p, &cfg)
    }

    #[test]
    fn straight_line_defs_replace() {
        let s = solved("mvi #1,r1\n mvi #2,r1\n add r1,#1,r2\n halt\n");
        assert_eq!(s.input[1].of(mips_core::Reg::R1), &[0]);
        assert_eq!(s.input[2].of(mips_core::Reg::R1), &[1]);
        assert_eq!(s.input[0].of(mips_core::Reg::R1), &[ENTRY_DEF]);
    }

    #[test]
    fn merge_point_unions_both_defs() {
        // Built without the assembler: a labeled merge point would be a
        // symbol, i.e. an entry point contributing ENTRY_DEF as well.
        let p = crate::dataflow::testutil::diamond(1, 2);
        let (cfg, _) = Cfg::build(&p);
        let s = reaching(&p, &cfg);
        let merge = p.len() - 2;
        let defs = s.input[merge].of(mips_core::Reg::R1);
        assert_eq!(defs.len(), 2, "both arms reach: {defs:?}");
    }
}
