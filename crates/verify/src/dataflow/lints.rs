//! The `V3xx` lint family: findings derived from dataflow solutions
//! rather than from single-instruction pattern matching.
//!
//! * `V301` dead register write — a pure register-producing instruction
//!   whose result no path ever reads;
//! * `V302` memory range/alignment — an access whose effective address
//!   provably exceeds the 24-bit space (it would wrap unmapped, fault
//!   mapped) or, on byte-addressed programs, is provably word-misaligned;
//! * `V303` constant branch condition — a conditional branch the value
//!   analysis decides statically (always or never taken);
//! * `V304` dataflow-unreachable code — instructions only reachable
//!   through branch edges the value analysis proves never taken.
//!
//! Everything here is advisory (warnings): the code still executes
//! correctly, it just does provably useless or provably suspicious
//! work. All reports derive from deterministic solutions and iterate
//! in address order, so output is byte-stable.

use super::liveness::{self, RegSet};
use super::memory::{self, ea_align, ea_range};
use super::value::{self, cond_outcome};
use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Rule};
use mips_core::{Instr, MemPiece, Program, Width, MEM_WORDS};

/// Runs every dataflow lint over one program. The caller is expected to
/// have already run the structural passes (`V0xx`–`V2xx`); these lints
/// assume a well-formed program but do not require one.
pub fn dataflow_lints(program: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let live = liveness::live(program, cfg);
    let vals = value::values(program, cfg);
    let als = memory::aligns(program, cfg);
    dead_writes(program, cfg, &live.input, &mut out);
    mem_ranges(program, cfg, &vals.input, &als.input, &mut out);
    let decided = const_branches(program, cfg, &vals.input, &mut out);
    dataflow_unreachable(program, cfg, &decided, &mut out);
    out
}

/// `V301`: writes by pure register-producing instructions whose
/// destination is dead on every outgoing path.
///
/// Loads, calls and special reads are excluded: a load also observes
/// memory (and a device read has side effects), a call's link register
/// is conventionally written whether or not the callee uses it.
fn dead_writes(program: &Program, cfg: &Cfg, live_out: &[RegSet], out: &mut Vec<Diagnostic>) {
    for (pc, instr) in program.instrs().iter().enumerate() {
        if !cfg.is_reachable(pc as u32) {
            continue;
        }
        let pure = match instr {
            Instr::Op { mem, .. } => !matches!(mem, Some(m) if m.references_memory()),
            Instr::SetCond(_) | Instr::Mvi(_) | Instr::Lea { .. } => true,
            _ => false,
        };
        if !pure {
            continue;
        }
        for r in instr.writes() {
            if live_out[pc] & (1 << r.index()) == 0 {
                out.push(Diagnostic::new(
                    Rule::DeadWrite,
                    pc as u32,
                    format!("result in {r} is overwritten or unused on every path"),
                ));
            }
        }
    }
}

/// `V302`: effective addresses provably outside the 24-bit word space,
/// and — only on programs that use byte accesses, where register
/// addresses are byte-granular — word accesses provably not ≡ 0 (mod 4).
fn mem_ranges(
    program: &Program,
    cfg: &Cfg,
    vals: &[value::RegVals],
    als: &[memory::RegAligns],
    out: &mut Vec<Diagnostic>,
) {
    let byte_addressed = program.instrs().iter().any(|i| {
        matches!(
            i,
            Instr::Op {
                mem: Some(MemPiece::Load {
                    width: Width::Byte,
                    ..
                }) | Some(MemPiece::Store {
                    width: Width::Byte,
                    ..
                }),
                ..
            }
        )
    });
    for (pc, instr) in program.instrs().iter().enumerate() {
        if !cfg.is_reachable(pc as u32) {
            continue;
        }
        let Instr::Op { mem: Some(m), .. } = instr else {
            continue;
        };
        let (mode, width) = match m {
            MemPiece::Load { mode, width, .. } | MemPiece::Store { mode, width, .. } => {
                (mode, *width)
            }
            MemPiece::LoadImm { .. } => continue,
        };
        let range = ea_range(mode, &vals[pc]);
        if range.lo >= MEM_WORDS {
            out.push(Diagnostic::new(
                Rule::BadMemRange,
                pc as u32,
                format!(
                    "effective address is provably >= {MEM_WORDS:#x} \
                     (lo {:#x}): wraps unmapped, faults mapped",
                    range.lo
                ),
            ));
        }
        if byte_addressed && width == Width::Word {
            let a = ea_align(mode, &als[pc]);
            if a.not_multiple_of(2) {
                out.push(Diagnostic::new(
                    Rule::BadMemRange,
                    pc as u32,
                    format!(
                        "word access on a byte-addressed program is provably \
                         misaligned (address ≡ {} mod 4)",
                        a.rem & 3
                    ),
                ));
            }
        }
    }
}

/// `V303`: conditional branches whose outcome the value analysis
/// decides. Returns the decided `(pc, taken)` pairs for edge pruning.
fn const_branches(
    program: &Program,
    cfg: &Cfg,
    vals: &[value::RegVals],
    out: &mut Vec<Diagnostic>,
) -> Vec<(u32, bool)> {
    let mut decided = Vec::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        if !cfg.is_reachable(pc as u32) {
            continue;
        }
        let Instr::CmpBranch(p) = instr else {
            continue;
        };
        let v = &vals[pc];
        if let Some(taken) = cond_outcome(p.cond, v.operand(p.a), v.operand(p.b)) {
            decided.push((pc as u32, taken));
            out.push(Diagnostic::new(
                Rule::ConstBranch,
                pc as u32,
                format!(
                    "branch is {} taken: `{}` decided by value analysis",
                    if taken { "always" } else { "never" },
                    p.cond,
                ),
            ));
        }
    }
    decided
}

/// `V304`: code the `Cfg` considers reachable but that no path survives
/// once provably one-sided branch edges are removed.
///
/// An edge can only be pruned at the branch's shadow end, and only when
/// that slot carries exactly **one** deferred transfer — with two
/// overlapping shadows (itself a `V00x` error) attribution of the
/// outgoing edges is ambiguous and nothing is pruned.
fn dataflow_unreachable(
    program: &Program,
    cfg: &Cfg,
    decided: &[(u32, bool)],
    out: &mut Vec<Diagnostic>,
) {
    if decided.is_empty() {
        return;
    }
    let n = program.len();
    // How many transfer shadows end at each slot.
    let mut enders = vec![0u8; n];
    for (pc, instr) in program.instrs().iter().enumerate() {
        if instr.is_delayed_transfer() {
            let end = pc as u32 + instr.branch_delay();
            if (end as usize) < n {
                enders[end as usize] = enders[end as usize].saturating_add(1);
            }
        }
    }
    let mut succs: Vec<Vec<u32>> = (0..n as u32).map(|pc| cfg.succs(pc).to_vec()).collect();
    let mut pruned = false;
    for &(bpc, taken) in decided {
        let instr = &program[bpc as usize];
        let end = bpc + instr.branch_delay();
        if (end as usize) >= n || enders[end as usize] != 1 {
            continue;
        }
        let target = instr.target().and_then(|t| t.abs());
        let replacement = if taken {
            target
                .map(|t| vec![t])
                .unwrap_or_else(|| succs[end as usize].clone())
        } else {
            let fall = end + 1;
            if (fall as usize) < n {
                vec![fall]
            } else {
                Vec::new()
            }
        };
        succs[end as usize] = replacement;
        pruned = true;
    }
    if !pruned {
        return;
    }
    let mut seen = vec![false; n];
    let mut work: Vec<u32> = program.entry_points();
    for &e in &work {
        if (e as usize) < n {
            seen[e as usize] = true;
        }
    }
    while let Some(pc) = work.pop() {
        if (pc as usize) >= n {
            continue;
        }
        for &s in &succs[pc as usize] {
            if (s as usize) < n && !seen[s as usize] {
                seen[s as usize] = true;
                work.push(s);
            }
        }
    }
    for (pc, &was_seen) in seen.iter().enumerate() {
        if cfg.is_reachable(pc as u32) && !was_seen {
            out.push(Diagnostic::new(
                Rule::DataflowUnreachable,
                pc as u32,
                "reachable only through a branch direction the value \
                 analysis proves is never taken",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn lints(src: &str) -> Vec<Diagnostic> {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        dataflow_lints(&p, &cfg)
    }

    fn pcs(ds: &[Diagnostic], rule: Rule) -> Vec<u32> {
        ds.iter().filter(|d| d.rule == rule).map(|d| d.pc).collect()
    }

    #[test]
    fn dead_write_is_flagged_and_live_write_is_not() {
        let ds = lints("mvi #1,r1\n mvi #2,r1\n st r1,(r3)\n halt\n");
        assert_eq!(pcs(&ds, Rule::DeadWrite), vec![0]);
    }

    #[test]
    fn loads_and_calls_are_never_dead_writes() {
        let ds = lints("ld @100,r1\n nop\n halt\n");
        assert!(pcs(&ds, Rule::DeadWrite).is_empty(), "{ds:?}");
    }

    #[test]
    fn out_of_range_address_is_flagged() {
        // The largest long immediate plus a displacement walks off the
        // end of the 24-bit space.
        let ds = lints("lim #0xffffff,r1\n nop\n st r2,1(r1)\n halt\n");
        assert_eq!(pcs(&ds, Rule::BadMemRange), vec![2]);
    }

    #[test]
    fn misalignment_needs_a_byte_addressed_program() {
        // Same word store to an odd register value: silent on the
        // word-addressed program...
        let word = "sll r1,#2,r2\n add r2,#1,r3\n st r4,(r3)\n halt\n";
        assert!(pcs(&lints(word), Rule::BadMemRange).is_empty());
        // ...flagged once a byte access marks the program byte-addressed.
        let byt = "sll r1,#2,r2\n add r2,#1,r3\n st r4,(r3)\n ldb (r2),r5\n nop\n halt\n";
        assert_eq!(pcs(&lints(byt), Rule::BadMemRange), vec![2]);
    }

    #[test]
    fn constant_branch_and_pruned_code_are_flagged() {
        let src = "mvi #1,r1\n beq r1,#1,tgt\n nop\n mvi #9,r9\n st r9,(r2)\n\
                   tgt:\n halt\n";
        let ds = lints(src);
        assert_eq!(pcs(&ds, Rule::ConstBranch), vec![1]);
        // pcs 3 and 4 sit on the never-taken fall-through.
        assert_eq!(pcs(&ds, Rule::DataflowUnreachable), vec![3, 4]);
    }

    #[test]
    fn undecidable_branch_is_silent() {
        let ds = lints("beq r1,#0,t\n nop\n mvi #1,r2\nt:\n st r2,(r3)\n halt\n");
        assert!(pcs(&ds, Rule::ConstBranch).is_empty());
        assert!(pcs(&ds, Rule::DataflowUnreachable).is_empty());
    }
}
