//! Forward address congruence (alignment) analysis, plus the
//! effective-address helpers the `V302` lint and the certificate
//! builder share.
//!
//! The fact tracks, per register, a congruence `value ≡ rem (mod 2^bits)`
//! — `bits = 32` is a known constant, `bits = 0` knows nothing. Only
//! power-of-two moduli are used, so every fact survives the machine's
//! mod-2³² wraparound arithmetic unchanged (`2^bits` divides `2^32`),
//! and joins have a closed form: keep the bits on which both sides
//! agree. Low bits flow *exactly* through add, subtract, multiply and
//! the bitwise operations — the low `k` bits of a sum depend only on
//! the low `k` bits of the addends — which is what makes the lattice
//! cheap and still strong enough to prove word-alignment of based
//! references on byte-addressed programs.

use super::value::{interval_op, Interval, RegVals};
use super::{Analysis, Direction, Solution};
use crate::cfg::Cfg;
use mips_core::delay::BRANCH_DELAY;
use mips_core::{AluOp, AluPiece, Instr, MemMode, MemPiece, Operand, Program, Reg, SpecialOp};

/// A power-of-two congruence: the value is `≡ rem (mod 2^bits)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Align {
    /// How many low bits are known (0 = nothing, 32 = constant).
    pub bits: u8,
    /// The known low bits (always `< 2^bits`).
    pub rem: u32,
}

fn mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

impl Align {
    /// Nothing known.
    pub const TOP: Align = Align { bits: 0, rem: 0 };

    /// A fully known constant.
    pub fn constant(v: u32) -> Align {
        Align { bits: 32, rem: v }
    }

    /// The constant value, when all 32 bits are known.
    pub fn as_constant(self) -> Option<u32> {
        (self.bits == 32).then_some(self.rem)
    }

    /// True when the value is provably a multiple of `2^k`.
    pub fn multiple_of(self, k: u8) -> bool {
        self.bits >= k && self.rem & mask(k) == 0
    }

    /// True when the value provably is *not* a multiple of `2^k`.
    pub fn not_multiple_of(self, k: u8) -> bool {
        self.bits >= k && self.rem & mask(k) != 0
    }

    fn normalized(bits: u8, rem: u32) -> Align {
        Align {
            bits,
            rem: rem & mask(bits),
        }
    }

    /// The weakest congruence implied by both sides: agreement on the
    /// low bits where the remainders match.
    pub fn common(a: Align, b: Align) -> Align {
        let agree = (a.rem ^ b.rem).trailing_zeros().min(32) as u8;
        let bits = a.bits.min(b.bits).min(agree);
        Align::normalized(bits, a.rem)
    }
}

/// Congruence of `a op b` (exact low-bit transfer where sound, constant
/// folding through [`AluOp::eval`] when both sides are fully known).
pub fn align_op(op: AluOp, a: Align, b: Align) -> Align {
    if let (Some(ca), Some(cb)) = (a.as_constant(), b.as_constant()) {
        if !op.reads_lo() {
            return Align::constant(op.eval(ca, cb, 0).0);
        }
    }
    let low = a.bits.min(b.bits);
    match op {
        // The low k bits of these depend only on the low k bits of the
        // operands — exact through mod-2³² wrap.
        AluOp::Add => Align::normalized(low, a.rem.wrapping_add(b.rem)),
        AluOp::Sub => Align::normalized(low, a.rem.wrapping_sub(b.rem)),
        AluOp::Rsub => Align::normalized(low, b.rem.wrapping_sub(a.rem)),
        AluOp::Mul => Align::normalized(low, a.rem.wrapping_mul(b.rem)),
        AluOp::And => Align::normalized(low, a.rem & b.rem),
        AluOp::Or => Align::normalized(low, a.rem | b.rem),
        AluOp::Xor => Align::normalized(low, a.rem ^ b.rem),
        AluOp::Bic => Align::normalized(low, a.rem & !b.rem),
        // Shifts by a known amount move the known-bit window.
        AluOp::Sll => shl_align(a, b),
        AluOp::Rsll => shl_align(b, a),
        AluOp::Srl | AluOp::Sra => shr_align(a, b),
        AluOp::Rsrl | AluOp::Rsra => shr_align(b, a),
        // Division, remainder and byte inserts/extracts give no cheap
        // congruence (their constant cases folded above).
        AluOp::Div | AluOp::Rem | AluOp::Xc | AluOp::Ic => Align::TOP,
    }
}

fn shl_align(a: Align, by: Align) -> Align {
    match by.as_constant() {
        Some(c) => {
            let c = (c & 31) as u8;
            Align::normalized((a.bits + c).min(32), a.rem << (c & 31))
        }
        None => Align::TOP,
    }
}

fn shr_align(a: Align, by: Align) -> Align {
    match by.as_constant() {
        // Arithmetic and logical right shift agree on the surviving low
        // bits, so one rule covers `srl` and `sra`.
        Some(c) => {
            let c = (c & 31) as u8;
            Align::normalized(a.bits.saturating_sub(c), a.rem >> (c & 31))
        }
        None => Align::TOP,
    }
}

/// One congruence per register, or `None` while unreached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAligns(pub Option<[Align; 16]>);

impl RegAligns {
    /// The congruence for `reg` (⊤ at unreached nodes).
    pub fn of(&self, reg: Reg) -> Align {
        match &self.0 {
            Some(rs) => rs[reg.index()],
            None => Align::TOP,
        }
    }

    /// The congruence an operand evaluates into.
    pub fn operand(&self, o: Operand) -> Align {
        match o {
            Operand::Reg(r) => self.of(r),
            Operand::Small(v) => Align::constant(v as u32),
        }
    }
}

fn eval_alu(p: &AluPiece, vals: &RegAligns) -> Align {
    align_op(p.op, vals.operand(p.a), vals.operand(p.b))
}

/// Congruence of a memory reference's effective address under `vals`.
pub fn ea_align(mode: &MemMode, vals: &RegAligns) -> Align {
    match *mode {
        MemMode::Absolute(a) => Align::constant(a.value()),
        MemMode::Based { base, disp } => {
            align_op(AluOp::Add, vals.of(base), Align::constant(disp as u32))
        }
        MemMode::BasedIndexed { base, index } => {
            align_op(AluOp::Add, vals.of(base), vals.of(index))
        }
        MemMode::BaseShifted { base, shift } => {
            align_op(AluOp::Srl, vals.of(base), Align::constant(shift as u32))
        }
    }
}

/// Value range of a memory reference's effective address under `vals`
/// (from the [`super::value`] solution). `disp(base)` with a negative
/// displacement is a subtraction, so the bound survives only when the
/// base provably clears it.
pub fn ea_range(mode: &MemMode, vals: &RegVals) -> Interval {
    match *mode {
        MemMode::Absolute(a) => Interval::singleton(a.value()),
        MemMode::Based { base, disp } => {
            let b = vals.of(base);
            if disp >= 0 {
                interval_op(AluOp::Add, b, Interval::singleton(disp as u32))
            } else {
                interval_op(
                    AluOp::Sub,
                    b,
                    Interval::singleton((disp as u32).wrapping_neg()),
                )
            }
        }
        MemMode::BasedIndexed { base, index } => {
            interval_op(AluOp::Add, vals.of(base), vals.of(index))
        }
        MemMode::BaseShifted { base, shift } => {
            interval_op(AluOp::Srl, vals.of(base), Interval::singleton(shift as u32))
        }
    }
}

/// The congruence-propagation problem for one program.
pub struct Aligns<'p> {
    program: &'p Program,
    entries: Vec<u32>,
}

impl<'p> Aligns<'p> {
    /// Builds the problem; entry points know nothing about any register.
    pub fn new(program: &'p Program) -> Aligns<'p> {
        Aligns {
            program,
            entries: program.entry_points(),
        }
    }
}

impl Analysis for Aligns<'_> {
    type Fact = RegAligns;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn start(&self) -> RegAligns {
        RegAligns(None)
    }

    fn boundary(&self, pc: u32) -> Option<RegAligns> {
        self.entries
            .contains(&pc)
            .then_some(RegAligns(Some([Align::TOP; 16])))
    }

    fn transfer(&self, pc: u32, fact: &RegAligns) -> RegAligns {
        let Some(pre) = fact.0 else {
            return RegAligns(None);
        };
        let mut regs = pre;
        match &self.program[pc as usize] {
            Instr::Op { alu, mem } => {
                if let Some(m) = mem {
                    match *m {
                        MemPiece::LoadImm { value, dst } => {
                            regs[dst.index()] = Align::constant(value);
                        }
                        MemPiece::Load { dst, .. } => regs[dst.index()] = Align::TOP,
                        MemPiece::Store { .. } => {}
                    }
                }
                if let Some(a) = alu {
                    regs[a.dst.index()] = eval_alu(a, fact);
                }
                if let (Some(a), Some(m)) = (alu, mem) {
                    if m.is_delayed_load() && m.writes() == Some(a.dst) {
                        regs[a.dst.index()] = Align::TOP;
                    }
                }
            }
            Instr::SetCond(p) => regs[p.dst.index()] = Align::TOP,
            Instr::Mvi(p) => regs[p.dst.index()] = Align::constant(p.imm as u32),
            Instr::Call(p) => {
                regs[p.link.index()] = Align::constant(pc + 1 + BRANCH_DELAY);
            }
            Instr::Lea { target, dst } => {
                regs[dst.index()] = match target.abs() {
                    Some(a) => Align::constant(a),
                    None => Align::TOP,
                };
            }
            Instr::Special(SpecialOp::Read { dst, .. }) => {
                regs[dst.index()] = Align::TOP;
            }
            Instr::CmpBranch(_)
            | Instr::Jump(_)
            | Instr::JumpInd(_)
            | Instr::Trap(_)
            | Instr::Special(_)
            | Instr::Halt => {}
        }
        RegAligns(Some(regs))
    }

    fn join(&self, into: &mut RegAligns, from: &RegAligns) -> bool {
        let Some(fr) = &from.0 else {
            return false;
        };
        match &mut into.0 {
            None => {
                into.0 = Some(*fr);
                true
            }
            Some(to) => {
                let mut changed = false;
                for (t, f) in to.iter_mut().zip(fr.iter()) {
                    let j = Align::common(*t, *f);
                    if j != *t {
                        *t = j;
                        changed = true;
                    }
                }
                changed
            }
        }
    }
}

/// Solves congruence propagation over the [`Cfg`]: `input[pc]` holds
/// the register congruences just before `pc` issues.
pub fn aligns(program: &Program, cfg: &Cfg) -> Solution<RegAligns> {
    super::solve(&Aligns::new(program), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn solved(src: &str) -> (Program, Solution<RegAligns>) {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        let s = aligns(&p, &cfg);
        (p, s)
    }

    #[test]
    fn shifted_index_stays_word_aligned() {
        // r1 unknown; r1 << 2 is a multiple of 4; +8 preserves it.
        let (_, s) = solved("sll r1,#2,r2\n add r2,#8,r3\n st r3,(r4)\n halt\n");
        assert!(s.input[1].of(Reg::R2).multiple_of(2));
        assert!(s.input[2].of(Reg::R3).multiple_of(2));
    }

    #[test]
    fn odd_offset_is_provably_misaligned() {
        let (_, s) = solved("sll r1,#2,r2\n add r2,#5,r3\n st r3,(r4)\n halt\n");
        let a = s.input[2].of(Reg::R3);
        assert!(a.not_multiple_of(2), "≡1 (mod 4): {a:?}");
    }

    #[test]
    fn constants_fold_and_join_keeps_agreement() {
        // Built without the assembler so the merge point is not a
        // symbol (symbols are all-⊤ entry points).
        let p = crate::dataflow::testutil::diamond(4, 12);
        let (cfg, _) = Cfg::build(&p);
        let s = aligns(&p, &cfg);
        let merge = p.len() - 2;
        let a = s.input[merge].of(Reg::R1);
        // 4 and 12 agree on the low 3 bits (≡ 4 mod 8).
        assert!(a.bits >= 3 && a.rem & 7 == 4, "{a:?}");
        assert!(a.multiple_of(2));
    }

    #[test]
    fn loads_clear_knowledge() {
        let (_, s) = solved("mvi #8,r1\n ld (r1),r1\n nop\n st r2,(r1)\n halt\n");
        assert_eq!(s.input[3].of(Reg::R1), Align::TOP);
    }

    #[test]
    fn ea_helpers_combine_base_and_displacement() {
        let (_, s) = solved("sll r1,#2,r2\n st r3,4(r2)\n halt\n");
        let m = MemMode::Based {
            base: Reg::R2,
            disp: 4,
        };
        assert!(ea_align(&m, &s.input[1]).multiple_of(2));
        let odd = MemMode::Based {
            base: Reg::R2,
            disp: 3,
        };
        assert!(ea_align(&odd, &s.input[1]).not_multiple_of(2));
    }
}
