//! Per-basic-block safety certificates for the simulator's fast engine.
//!
//! A [`BlockCert`] is a static proof about a run of straight-line
//! instructions: *if* a short list of runtime preconditions holds when
//! the block is entered, then executing the whole block cannot raise an
//! exception, touch a device window, or perform a privileged operation —
//! so the fast engine may execute it without its per-instruction
//! bailout tests, and the result is bit-identical to the reference
//! interpreter at every observation point.
//!
//! The proof tracks each register **symbolically within the block** as
//! `entry value of rⱼ + offset` or a constant; every memory reference
//! then reduces to either a constant physical address (folded into
//! [`BlockCert::const_hi`]) or an entry-relative window
//! ([`RegWindow`]). Because the machine's address arithmetic is mod
//! 2³², the true effective address equals `(entry + offset) mod 2³²`
//! no matter how intermediate sums wrapped; the runtime gate evaluates
//! `entry + offset` in 64-bit arithmetic, and when it lands inside
//! `[0, device_floor)` the mod is the identity — the proof transfers
//! exactly to the concrete run.
//!
//! Certificates carry **no whole-program assumptions**: an `rfe` may
//! resume anywhere with handler-rewritten registers, but a certificate
//! only fires when the simulator's pc sits exactly on the block start,
//! and every register-dependent fact is re-checked against the live
//! register file at that moment. Unsound entry is therefore impossible
//! by construction, not by analysis.

use mips_core::{AluOp, Instr, MemMode, MemPiece, Operand, Program, Reg, Width, MEM_WORDS};

/// Minimum block length worth a certificate: below this the gate costs
/// as much as the checks it elides.
pub const MIN_LEN: u32 = 2;

/// An entry-relative effective-address window: every certified
/// reference through `reg` lands in `[entry(reg) + dmin, entry(reg) + dmax]`
/// (evaluated without wrap; the runtime gate checks the whole window
/// stays inside addressable non-device memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegWindow {
    /// The register whose *entry* value anchors the window.
    pub reg: Reg,
    /// Smallest offset from the entry value (words; may be negative).
    pub dmin: i64,
    /// Largest offset from the entry value.
    pub dmax: i64,
}

/// A proof about the block `[start, start + len)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCert {
    /// First instruction address of the block.
    pub start: u32,
    /// Number of instructions covered.
    pub len: u32,
    /// Whether any instruction can set the overflow flag (the block is
    /// then only certified while the overflow trap is disabled).
    pub can_ovf: bool,
    /// Whether the block references data memory at all.
    pub has_mem: bool,
    /// Highest constant physical address referenced (already masked to
    /// the word space exactly as `translate` masks it), if any.
    pub const_hi: Option<u32>,
    /// Entry-relative address windows, one per anchoring register,
    /// ordered by register index.
    pub windows: Vec<RegWindow>,
}

/// What the block knows about a register while scanning it.
#[derive(Clone, Copy)]
enum RegVal {
    /// Exactly this value.
    Const(u32),
    /// The block-entry value of `reg`, plus `off` (mod 2³²).
    Entry { reg: Reg, off: i64 },
    /// Anything (e.g. a loaded value).
    Unknown,
}

struct Builder {
    regs: [RegVal; 16],
    can_ovf: bool,
    has_mem: bool,
    const_hi: Option<u32>,
    /// Per-anchor-register offset windows (`None` = no refs through it).
    win: [Option<(i64, i64)>; 16],
}

impl Builder {
    fn new() -> Builder {
        let mut regs = [RegVal::Unknown; 16];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = RegVal::Entry {
                reg: Reg::from_index(i).expect("16 registers"),
                off: 0,
            };
        }
        Builder {
            regs,
            can_ovf: false,
            has_mem: false,
            const_hi: None,
            win: [None; 16],
        }
    }

    fn operand(&self, o: Operand) -> RegVal {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Small(v) => RegVal::Const(v as u32),
        }
    }

    /// Records a reference `off` words from the entry value of `anchor`.
    fn touch_window(&mut self, anchor: Reg, off: i64) {
        let w = &mut self.win[anchor.index()];
        *w = Some(match *w {
            None => (off, off),
            Some((lo, hi)) => (lo.min(off), hi.max(off)),
        });
    }

    /// Records a constant effective address, masked exactly as the
    /// unmapped `translate` masks it.
    fn touch_const(&mut self, ea: u32) {
        let pa = ea & (MEM_WORDS - 1);
        self.const_hi = Some(self.const_hi.map_or(pa, |h| h.max(pa)));
    }

    /// Folds one memory mode; returns false when the address cannot be
    /// reduced to a constant or an entry-relative window.
    fn fold_ref(&mut self, mode: &MemMode) -> bool {
        self.has_mem = true;
        match *mode {
            MemMode::Absolute(a) => {
                self.touch_const(a.value());
                true
            }
            MemMode::Based { base, disp } => match self.regs[base.index()] {
                RegVal::Const(c) => {
                    self.touch_const(c.wrapping_add(disp as u32));
                    true
                }
                RegVal::Entry { reg, off } => {
                    self.touch_window(reg, off + disp as i64);
                    true
                }
                RegVal::Unknown => false,
            },
            // Two-register and shifted modes would need relational
            // facts; the block ends instead.
            MemMode::BasedIndexed { .. } | MemMode::BaseShifted { .. } => false,
        }
    }

    /// Abstract ALU evaluation over block-symbolic values.
    fn eval_alu(&mut self, op: AluOp, a: Operand, b: Operand) -> RegVal {
        if matches!(
            op,
            AluOp::Add | AluOp::Sub | AluOp::Rsub | AluOp::Mul | AluOp::Div | AluOp::Rem
        ) {
            self.can_ovf = true;
        }
        let (va, vb) = (self.operand(a), self.operand(b));
        if let (RegVal::Const(ca), RegVal::Const(cb)) = (va, vb) {
            if !op.reads_lo() {
                // With the overflow trap excluded by `can_ovf`, the
                // continue-path value is the plain wrapped result.
                return RegVal::Const(op.eval(ca, cb, 0).0);
            }
        }
        match (op, va, vb) {
            (AluOp::Add, RegVal::Entry { reg, off }, RegVal::Const(c))
            | (AluOp::Add, RegVal::Const(c), RegVal::Entry { reg, off }) => RegVal::Entry {
                reg,
                off: off + c as i64,
            },
            (AluOp::Sub, RegVal::Entry { reg, off }, RegVal::Const(c))
            | (AluOp::Rsub, RegVal::Const(c), RegVal::Entry { reg, off }) => RegVal::Entry {
                reg,
                off: off - c as i64,
            },
            _ => RegVal::Unknown,
        }
    }

    /// Applies one certified instruction to the symbolic state.
    fn step(&mut self, pc: u32, instr: &Instr) {
        match instr {
            Instr::Op { alu, mem } => {
                let alu_out = alu.map(|p| (p.dst, self.eval_alu(p.op, p.a, p.b)));
                let mem_out = match mem {
                    Some(MemPiece::LoadImm { value, dst }) => Some((*dst, RegVal::Const(*value))),
                    Some(MemPiece::Load { mode, dst, .. }) => {
                        self.fold_ref(mode);
                        Some((*dst, RegVal::Unknown))
                    }
                    Some(MemPiece::Store { mode, .. }) => {
                        self.fold_ref(mode);
                        None
                    }
                    None => None,
                };
                if let Some((dst, v)) = alu_out {
                    self.regs[dst.index()] = v;
                }
                // The load's write lands after the ALU's on a (packed,
                // invalid) destination clash.
                if let Some((dst, v)) = mem_out {
                    self.regs[dst.index()] = v;
                }
            }
            Instr::SetCond(p) => self.regs[p.dst.index()] = RegVal::Unknown,
            Instr::Mvi(p) => self.regs[p.dst.index()] = RegVal::Const(p.imm as u32),
            Instr::Lea { target, dst } => {
                self.regs[dst.index()] = match target.abs() {
                    Some(a) => RegVal::Const(a),
                    None => RegVal::Unknown,
                };
            }
            // `certifiable` admits nothing else.
            _ => debug_assert!(false, "uncertifiable instruction at {pc}"),
        }
        let _ = pc;
    }

    fn finish(self, start: u32, len: u32) -> BlockCert {
        let windows = self
            .win
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                w.map(|(dmin, dmax)| RegWindow {
                    reg: Reg::from_index(i).expect("16 registers"),
                    dmin,
                    dmax,
                })
            })
            .collect();
        BlockCert {
            start,
            len,
            can_ovf: self.can_ovf,
            has_mem: self.has_mem,
            const_hi: self.const_hi,
            windows,
        }
    }
}

/// Whether one instruction can live inside a certified block.
///
/// Mirrors what the fast engine can execute without bailing out:
/// straight-line register/word-memory work through the absolute and
/// `disp(base)` modes. Control transfers, traps, privileged/special
/// ops, byte accesses, the two-register address modes, and the
/// long-immediate+ALU packing (which the fast decoder also refuses)
/// all end the block.
fn certifiable(instr: &Instr, after: Option<&Builder>) -> bool {
    let ok = match instr {
        Instr::Op { alu, mem } => match mem {
            None => true,
            Some(MemPiece::LoadImm { .. }) => alu.is_none(),
            Some(MemPiece::Load { mode, width, .. })
            | Some(MemPiece::Store { mode, width, .. }) => {
                *width == Width::Word
                    && matches!(mode, MemMode::Absolute(_) | MemMode::Based { .. })
            }
        },
        Instr::SetCond(_) | Instr::Mvi(_) => true,
        Instr::Lea { target, .. } => target.abs().is_some(),
        _ => false,
    };
    if !ok || !instr.is_valid() {
        return false;
    }
    // A based reference through a register the block has lost track of
    // has no provable window: end the block before it.
    if let (
        Some(b),
        Instr::Op {
            mem:
                Some(
                    MemPiece::Load {
                        mode: MemMode::Based { base, .. },
                        ..
                    }
                    | MemPiece::Store {
                        mode: MemMode::Based { base, .. },
                        ..
                    },
                ),
            ..
        },
    ) = (after, instr)
    {
        if matches!(b.regs[base.index()], RegVal::Unknown) {
            return false;
        }
    }
    true
}

/// Computes every block certificate for a program.
///
/// Blocks are split at **leaders** — entry points, address-taken
/// locations, and static branch targets — so a loop body entered every
/// iteration gets its own certificate rather than being buried
/// mid-block. Blocks never start inside a transfer's delay shadow
/// (the engine's pending queue is non-empty there, so the gate could
/// never pass). Deterministic: one linear scan in address order.
pub fn certify(program: &Program) -> Vec<BlockCert> {
    let n = program.len();
    let mut leader = vec![false; n];
    for e in program.entry_points() {
        leader[e as usize] = true;
    }
    for a in program.address_taken() {
        leader[a as usize] = true;
    }
    for instr in program.instrs() {
        if instr.is_delayed_transfer() {
            if let Some(t) = instr.target().and_then(|t| t.abs()) {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
        }
    }

    let mut certs = Vec::new();
    let mut pc = 0usize;
    while pc < n {
        let instr = &program[pc];
        if !certifiable(instr, None) {
            // Skip the instruction and, for a transfer, its shadow: a
            // block starting inside it could never pass the gate.
            pc += 1 + instr.branch_delay() as usize;
            continue;
        }
        let start = pc;
        let mut b = Builder::new();
        while pc < n && (pc == start || !leader[pc]) && certifiable(&program[pc], Some(&b)) {
            b.step(pc as u32, &program[pc]);
            pc += 1;
        }
        let len = (pc - start) as u32;
        if len >= MIN_LEN {
            certs.push(b.finish(start as u32, len));
        }
    }
    certs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn certs(src: &str) -> (Program, Vec<BlockCert>) {
        let p = assemble(src).unwrap();
        let cs = certify(&p);
        (p, cs)
    }

    #[test]
    fn straight_line_block_certifies_whole_run() {
        let (_, cs) = certs("mvi #1,r1\n add r1,#2,r2\n add r2,r2,r3\n halt\n");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!((c.start, c.len), (0, 3));
        assert!(c.can_ovf && !c.has_mem);
        assert!(c.windows.is_empty() && c.const_hi.is_none());
    }

    #[test]
    fn based_refs_become_entry_windows() {
        let (_, cs) = certs("ld 2(r1),r2\n add r1,#4,r1\n st r3,3(r1)\n st r3,@100\n halt\n");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.len, 4);
        assert!(c.has_mem);
        assert_eq!(c.const_hi, Some(100));
        // Refs at entry(r1)+2 and entry(r1)+4+3.
        assert_eq!(c.windows.len(), 1);
        let w = c.windows[0];
        assert_eq!((w.reg, w.dmin, w.dmax), (Reg::R1, 2, 7));
    }

    #[test]
    fn blocks_split_at_loop_heads() {
        let (p, cs) =
            certs("mvi #0,r1\ntop:\n add r1,#1,r1\n add r1,#0,r2\n bne r1,#9,top\n nop\n halt\n");
        // The loop head (pc 1) is a branch target: it must start its
        // own block so the cert fires every iteration.
        assert!(
            cs.iter().any(|c| c.start == 1 && c.len == 2),
            "{cs:?} {}",
            p.listing()
        );
    }

    #[test]
    fn untracked_base_and_byte_access_break_blocks() {
        let (_, cs) = certs("ld @100,r1\n nop\n st r2,(r1)\n halt\n");
        // r1 is loaded: the based store through it is uncertifiable.
        assert!(
            cs.iter().all(|c| !(c.start..c.start + c.len).contains(&2)),
            "{cs:?}"
        );
    }

    #[test]
    fn no_block_starts_in_a_delay_shadow() {
        let (_, cs) = certs("bra out\n mvi #1,r1\n mvi #2,r2\n mvi #3,r3\nout:\n halt\n");
        assert!(cs.iter().all(|c| c.start != 1), "{cs:?}");
    }

    #[test]
    fn lost_constant_address_still_masks_like_translate() {
        // lim #0xffffff then +1 displacement wraps to pa 0 exactly as
        // the unmapped translate does.
        let (_, cs) = certs("lim #0xffffff,r1\n st r2,1(r1)\n halt\n");
        let c = cs.iter().find(|c| c.start == 0).expect("cert");
        assert_eq!(c.const_hi, Some(0));
    }
}
