//! A generic worklist dataflow framework over the delayed-branch-aware
//! [`Cfg`].
//!
//! The paper's discipline — do the work once, ahead of time, in
//! software — applied to the analysis layer itself: one deterministic
//! fixpoint engine, many lattice instantiations. An [`Analysis`] supplies
//! the lattice (a starting fact that is the identity of [`Analysis::join`],
//! per-node boundary facts injected from outside the graph, a transfer
//! function) and the engine computes the unique fixpoint by round-robin
//! sweeps in a **fixed iteration order** (ascending pc forward, descending
//! pc backward), so every solution — and every report derived from one —
//! is byte-stable across runs.
//!
//! Instantiations in this module family:
//!
//! * [`liveness`] — backward register liveness (union lattice); also
//!   reused by `mips-reorg`'s scheduler through [`VecGraph`];
//! * [`reaching`] — forward reaching definitions (union of def sites);
//! * [`value`] — forward unsigned value-range propagation (interval
//!   lattice with widening);
//! * [`memory`] — forward address alignment/congruence analysis
//!   (power-of-two congruence lattice);
//! * the must-initialized-registers pass behind `V101` (intersection
//!   lattice) is the same engine, instantiated in `checks.rs`.
//!
//! On top of the solutions sit the `V3xx` lint family ([`lints`]), the
//! per-basic-block safety certificates consumed by the simulator's fast
//! engine ([`cert`]), and the machine-checkable claim stream the
//! soundness fuzzer replays against the reference interpreter
//! ([`claims`]).

pub mod cert;
pub mod claims;
pub mod lints;
pub mod liveness;
pub mod memory;
pub mod reaching;
pub mod value;

use crate::cfg::Cfg;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// The graph a dataflow problem runs over: one node per instruction
/// address. [`Cfg`] implements it directly; [`VecGraph`] adapts any
/// externally built successor relation (the reorganizer's scheduler
/// uses that to reuse the engine without constructing a full `Cfg`).
pub trait FlowGraph {
    /// Number of nodes (instruction count).
    fn len(&self) -> usize;
    /// True for an empty graph.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Successor addresses of `pc`.
    fn succs(&self, pc: u32) -> &[u32];
    /// Predecessor addresses of `pc`.
    fn preds(&self, pc: u32) -> &[u32];
}

impl FlowGraph for Cfg {
    fn len(&self) -> usize {
        Cfg::len(self)
    }
    fn succs(&self, pc: u32) -> &[u32] {
        Cfg::succs(self, pc)
    }
    fn preds(&self, pc: u32) -> &[u32] {
        Cfg::preds(self, pc)
    }
}

/// A [`FlowGraph`] built from an explicit successor relation.
/// Out-of-range successors are dropped at construction (an edge to a
/// node the graph does not contain carries no facts).
#[derive(Debug, Clone)]
pub struct VecGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl VecGraph {
    /// Builds the graph (and the inverse relation) from successor lists.
    pub fn from_succs(mut succs: Vec<Vec<u32>>) -> VecGraph {
        let n = succs.len();
        for ss in &mut succs {
            ss.retain(|&s| (s as usize) < n);
        }
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s as usize].push(i as u32);
            }
        }
        VecGraph { succs, preds }
    }
}

impl FlowGraph for VecGraph {
    fn len(&self) -> usize {
        self.succs.len()
    }
    fn succs(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }
    fn preds(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }
}

/// One dataflow problem: a join-semilattice of facts plus a transfer
/// function per instruction.
///
/// The engine maintains, per node, the fact on the *incoming* side of
/// the flow (program-entry side for forward problems, program-exit side
/// — "live-out" — for backward ones) and the transferred fact on the
/// outgoing side.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The neutral starting fact: the identity of [`Analysis::join`]
    /// (`∅` for union lattices, the full set for intersection lattices,
    /// an unreachable marker for value lattices).
    fn start(&self) -> Self::Fact;

    /// A fact injected at `pc` from outside the graph — entry-point
    /// assumptions for forward problems, conservative live-out (an
    /// `rfe` or trap whose continuation the graph cannot see) for
    /// backward ones. Joined into the node's incoming fact.
    fn boundary(&self, pc: u32) -> Option<Self::Fact>;

    /// The effect of executing the instruction at `pc` on a fact.
    fn transfer(&self, pc: u32, fact: &Self::Fact) -> Self::Fact;

    /// Joins `from` into `into`; returns true when `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// A solved dataflow problem.
///
/// `input[pc]` is the join of all facts flowing into `pc` (boundary
/// included): the program-point *before* the instruction for forward
/// problems, the live-out point *after* it for backward ones.
/// `output[pc] = transfer(pc, input[pc])`.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Incoming fact per node, in flow direction.
    pub input: Vec<F>,
    /// Transferred (outgoing) fact per node.
    pub output: Vec<F>,
}

/// Runs `analysis` to its fixpoint over `graph`.
///
/// Deterministic by construction: nodes are swept in a fixed order
/// (ascending pc for forward problems, descending for backward), edge
/// contributions join in the graph's stored edge order, and iteration
/// stops at the first full sweep that changes nothing. Monotone
/// transfer functions over finite-height lattices terminate; the
/// interval lattice keeps its height finite by widening inside
/// [`Analysis::join`].
pub fn solve<A: Analysis>(analysis: &A, graph: &impl FlowGraph) -> Solution<A::Fact> {
    let n = graph.len();
    let mut input: Vec<A::Fact> = (0..n as u32)
        .map(|pc| {
            let mut f = analysis.start();
            if let Some(b) = analysis.boundary(pc) {
                analysis.join(&mut f, &b);
            }
            f
        })
        .collect();
    let mut output: Vec<A::Fact> = input
        .iter()
        .enumerate()
        .map(|(pc, f)| analysis.transfer(pc as u32, f))
        .collect();
    if n == 0 {
        return Solution { input, output };
    }
    let backward = analysis.direction() == Direction::Backward;
    loop {
        let mut changed = false;
        for i in 0..n {
            let pc = if backward {
                (n - 1 - i) as u32
            } else {
                i as u32
            };
            let incoming: &[u32] = if backward {
                graph.succs(pc)
            } else {
                graph.preds(pc)
            };
            let mut grew = false;
            for &q in incoming {
                let from = output[q as usize].clone();
                grew |= analysis.join(&mut input[pc as usize], &from);
            }
            if grew {
                let out = analysis.transfer(pc, &input[pc as usize]);
                if out != output[pc as usize] {
                    output[pc as usize] = out;
                    changed = true;
                }
            }
        }
        if !changed {
            return Solution { input, output };
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use mips_core::{
        CmpBranchPiece, Cond, Instr, JumpPiece, MemMode, MemPiece, MviPiece, Program,
        ProgramBuilder, Reg, Target, Width, WordAddr,
    };

    /// A symbol-free diamond: both arms write `r1` (with `v1` on the
    /// fall-through arm, `v2` on the taken arm), merging into a store
    /// of `r1` then `halt`. Labels deliberately stay anonymous —
    /// assembler labels become symbols, and symbols are entry points
    /// with all-⊤ boundary facts.
    ///
    /// ```text
    /// 0: beq r9,#0 → 5    3: bra → 6       5: mvi v2,r1
    /// 1: nop (shadow)     4: nop (shadow)  6: st r1,@100
    /// 2: mvi v1,r1                         7: halt
    /// ```
    pub fn diamond(v1: u8, v2: u8) -> Program {
        let mut b = ProgramBuilder::new();
        let taken = b.fresh_label();
        let merge = b.fresh_label();
        b.push(Instr::CmpBranch(CmpBranchPiece::new(
            Cond::Eq,
            Reg::R9.into(),
            mips_core::Operand::Small(0),
            Target::Label(taken),
        )));
        b.push(Instr::NOP);
        b.push(Instr::Mvi(MviPiece {
            imm: v1,
            dst: Reg::R1,
        }));
        b.push(Instr::Jump(JumpPiece {
            target: Target::Label(merge),
        }));
        b.push(Instr::NOP);
        b.define(taken).unwrap();
        b.push(Instr::Mvi(MviPiece {
            imm: v2,
            dst: Reg::R1,
        }));
        b.define(merge).unwrap();
        b.push(Instr::Op {
            alu: None,
            mem: Some(MemPiece::Store {
                mode: MemMode::Absolute(WordAddr::new(100)),
                src: Reg::R1,
                width: Width::Word,
            }),
        });
        b.push(Instr::Halt);
        b.finish().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forward "reachable node count mod nothing" toy analysis: the
    /// fact is the set of entry nodes that reach a pc, as a bitmask.
    struct Reach {
        entries: Vec<u32>,
    }

    impl Analysis for Reach {
        type Fact = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn start(&self) -> u32 {
            0
        }
        fn boundary(&self, pc: u32) -> Option<u32> {
            self.entries.iter().position(|&e| e == pc).map(|i| 1 << i)
        }
        fn transfer(&self, _pc: u32, f: &u32) -> u32 {
            *f
        }
        fn join(&self, into: &mut u32, from: &u32) -> bool {
            let old = *into;
            *into |= from;
            *into != old
        }
    }

    #[test]
    fn forward_facts_propagate_and_merge() {
        // 0 → 1 → 3, 2 → 3; entries 0 and 2.
        let g = VecGraph::from_succs(vec![vec![1], vec![3], vec![3], vec![]]);
        let s = solve(
            &Reach {
                entries: vec![0, 2],
            },
            &g,
        );
        assert_eq!(s.input, vec![0b01, 0b01, 0b10, 0b11]);
    }

    #[test]
    fn out_of_range_edges_are_dropped() {
        let g = VecGraph::from_succs(vec![vec![9], vec![0]]);
        assert!(g.succs(0).is_empty());
        assert_eq!(g.preds(0), &[1]);
    }

    #[test]
    fn empty_graph_solves() {
        let g = VecGraph::from_succs(Vec::new());
        let s = solve(&Reach { entries: vec![] }, &g);
        assert!(s.input.is_empty() && s.output.is_empty());
    }

    #[test]
    fn cyclic_graph_reaches_fixpoint() {
        // 0 ⇄ 1 loop, entry at 0.
        let g = VecGraph::from_succs(vec![vec![1], vec![0]]);
        let s = solve(&Reach { entries: vec![0] }, &g);
        assert_eq!(s.input, vec![1, 1]);
    }
}
