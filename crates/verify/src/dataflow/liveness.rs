//! Backward register liveness on the dataflow engine.
//!
//! The fact is a 16-bit register mask; join is union; transfer is the
//! textbook `live_in = reads ∪ (live_out ∖ writes)` — but over the
//! delayed-branch-aware edge relation, where a transfer's redirect
//! leaves the *last shadow slot*, so a result computed in a delay slot
//! is correctly live on both the taken and fall-through paths.
//!
//! Conservatisms are expressed as boundary facts rather than special
//! cases in the solver: at an `rfe` (resumes at a location the graph
//! cannot see) and at a `trap` (the handler may read anything) all
//! registers are live-out. `mips-reorg`'s scheduler instantiates this
//! same analysis over its own successor relation (via
//! [`super::VecGraph`]); the verifier instantiates it over the [`Cfg`],
//! where indirect jumps resolve to the address-taken set instead of
//! "everything".

use super::{Analysis, Direction, Solution};
use crate::cfg::Cfg;
use mips_core::{Instr, Program, SpecialOp};

/// A register set as a 16-bit mask.
pub type RegSet = u16;

/// All sixteen registers.
pub const ALL_REGS: RegSet = 0xffff;

/// The registers an instruction reads, as a mask.
pub fn reads_mask(i: &Instr) -> RegSet {
    i.reads().iter().fold(0, |m, r| m | 1 << r.index())
}

/// The registers an instruction writes, as a mask.
pub fn writes_mask(i: &Instr) -> RegSet {
    i.writes().iter().fold(0, |m, r| m | 1 << r.index())
}

/// The liveness problem: per-pc read/write masks plus a conservative
/// live-out boundary mask (0 for "no external contribution").
pub struct Liveness {
    reads: Vec<RegSet>,
    writes: Vec<RegSet>,
    boundary: Vec<RegSet>,
}

impl Liveness {
    /// Builds the problem from explicit masks. All three slices must
    /// have one entry per graph node.
    pub fn new(reads: Vec<RegSet>, writes: Vec<RegSet>, boundary: Vec<RegSet>) -> Liveness {
        debug_assert_eq!(reads.len(), writes.len());
        debug_assert_eq!(reads.len(), boundary.len());
        Liveness {
            reads,
            writes,
            boundary,
        }
    }

    /// The standard instantiation for a resolved program: masks from
    /// [`Instr::reads`]/[`Instr::writes`], everything live-out at `rfe`
    /// and `trap`.
    pub fn of_program(program: &Program) -> Liveness {
        let instrs = program.instrs();
        Liveness {
            reads: instrs.iter().map(reads_mask).collect(),
            writes: instrs.iter().map(writes_mask).collect(),
            boundary: instrs
                .iter()
                .map(|i| match i {
                    Instr::Special(SpecialOp::Rfe) | Instr::Trap(_) => ALL_REGS,
                    _ => 0,
                })
                .collect(),
        }
    }
}

impl Analysis for Liveness {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn start(&self) -> RegSet {
        0
    }

    fn boundary(&self, pc: u32) -> Option<RegSet> {
        let m = self.boundary[pc as usize];
        (m != 0).then_some(m)
    }

    fn transfer(&self, pc: u32, live_out: &RegSet) -> RegSet {
        self.reads[pc as usize] | (live_out & !self.writes[pc as usize])
    }

    fn join(&self, into: &mut RegSet, from: &RegSet) -> bool {
        let old = *into;
        *into |= from;
        *into != old
    }
}

/// Solves liveness for a program over its [`Cfg`]. In the returned
/// [`Solution`], `input[pc]` is live-**out** and `output[pc]` is
/// live-**in**.
pub fn live(program: &Program, cfg: &Cfg) -> Solution<RegSet> {
    super::solve(&Liveness::of_program(program), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;
    use mips_core::Reg;

    fn live_of(src: &str) -> Solution<RegSet> {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        live(&p, &cfg)
    }

    fn has(m: RegSet, r: Reg) -> bool {
        m & (1 << r.index()) != 0
    }

    #[test]
    fn straight_line_liveness() {
        let s = live_of("mvi #1,r1\n add r1,#2,r2\n st r2,(r3)\n halt\n");
        assert!(!has(s.output[0], Reg::R1), "r1 defined at 0");
        assert!(has(s.output[1], Reg::R1));
        assert!(has(s.output[2], Reg::R2));
        assert!(has(s.output[0], Reg::R3), "r3 live from entry");
        assert!(!has(s.output[3], Reg::R2), "dead after last use");
    }

    #[test]
    fn branch_target_liveness_flows_through_the_shadow() {
        let s = live_of("beq r1,#0,tgt\n nop\n mvi #1,r4\n halt\ntgt:\n add r5,#1,r6\n halt\n");
        // r5 is read at the target; the shadow end (pc 1) carries it.
        assert!(has(s.output[1], Reg::R5));
        assert!(has(s.output[0], Reg::R5));
        assert!(!has(s.output[0], Reg::R4), "killed by its def");
    }

    #[test]
    fn trap_and_rfe_are_conservative() {
        let s = live_of("mvi #1,r9\n trap #1\n halt\n");
        assert!(has(s.output[1], Reg::R9), "handler may read anything");
        let s = live_of("mvi #1,r9\n nop\n rfe\n");
        assert!(has(s.input[2], Reg::R9), "rfe resumes anywhere");
    }

    #[test]
    fn dead_write_is_not_live_anywhere() {
        let s = live_of("mvi #1,r1\n mvi #2,r1\n st r1,(r3)\n halt\n");
        // The first write's value is never read: r1 not live-out at 0.
        assert!(!has(s.input[0], Reg::R1));
        assert!(has(s.input[1], Reg::R1));
    }
}
