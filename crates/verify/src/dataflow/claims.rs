//! Machine-checkable claims: the bridge between the static solutions
//! and the reference interpreter.
//!
//! Every lint and certificate ultimately rests on a small set of
//! per-instruction facts. This module exports those facts in a form a
//! fuzz harness can replay: step the reference machine, and at each
//! claimed pc compare what the analysis promised against what the
//! machine actually does. The soundness suite does exactly that over
//! hundreds of random programs — see `tests/soundness_fuzz.rs`.
//!
//! Claims are emitted only for programs that contain **no `rfe`**: an
//! `rfe` resumes execution at a dynamic address with handler-modified
//! registers, an edge no static graph models. (Exception *entry* needs
//! no guard — the vector is address 0, which every forward analysis
//! already treats as an all-⊤ entry point; without an `rfe` there is no
//! way back.) Claims about dead writes additionally hold only on
//! exception-free executions, since a handler may observe any register;
//! the harness runs with traps that never fire and asserts as much.

use super::liveness;
use super::memory::ea_range;
use super::reaching;
#[cfg(test)]
use super::reaching::ENTRY_DEF;
use super::value::{self, cond_outcome, Interval};
use crate::cfg::Cfg;
use mips_core::{Instr, MemPiece, Program, Reg, SpecialOp};

/// One verifiable promise about one instruction address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// The value written to `reg` at `pc` is never read afterwards
    /// (exception-free executions).
    DeadWrite {
        /// Writing instruction.
        pc: u32,
        /// Destination register.
        reg: Reg,
    },
    /// Whenever `pc` issues, the register it **reads** holds exactly
    /// `value`.
    ConstReg {
        /// Reading instruction.
        pc: u32,
        /// Source register.
        reg: Reg,
        /// Its only possible value at issue.
        value: u32,
    },
    /// The conditional branch at `pc` always resolves the same way.
    BranchOutcome {
        /// Branch address.
        pc: u32,
        /// Whether it is always (`true`) or never (`false`) taken.
        taken: bool,
    },
    /// The effective address of the reference at `pc` always lies in
    /// `lo..=hi`.
    MemBound {
        /// Referencing instruction.
        pc: u32,
        /// Lowest possible effective address.
        lo: u32,
        /// Highest possible effective address.
        hi: u32,
    },
    /// Whenever `pc` issues, the last writer of the register it reads
    /// is one of `defs` ([`reaching::ENTRY_DEF`] = "nothing in the
    /// program yet").
    DefOrigin {
        /// Reading instruction.
        pc: u32,
        /// Source register.
        reg: Reg,
        /// Possible definition sites, sorted.
        defs: Vec<u32>,
    },
}

/// Emits every claim the dataflow solutions support for `program`, in
/// address order. Returns an empty list for programs containing `rfe`.
pub fn claims(program: &Program, cfg: &Cfg) -> Vec<Claim> {
    if program
        .instrs()
        .iter()
        .any(|i| matches!(i, Instr::Special(SpecialOp::Rfe)))
    {
        return Vec::new();
    }
    let live = liveness::live(program, cfg);
    let vals = value::values(program, cfg);
    let reach = reaching::reaching(program, cfg);
    let mut out = Vec::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        if !cfg.is_reachable(pc as u32) {
            continue;
        }
        let upc = pc as u32;
        // Dead writes: same shape as the V301 lint.
        let pure = match instr {
            Instr::Op { mem, .. } => !matches!(mem, Some(m) if m.references_memory()),
            Instr::SetCond(_) | Instr::Mvi(_) | Instr::Lea { .. } => true,
            _ => false,
        };
        if pure {
            for r in instr.writes() {
                if live.input[pc] & (1 << r.index()) == 0 {
                    out.push(Claim::DeadWrite { pc: upc, reg: r });
                }
            }
        }
        // Constant reads and definition origins, per source register.
        for r in instr.reads() {
            if let Some(v) = vals.input[pc].of(r).as_singleton() {
                out.push(Claim::ConstReg {
                    pc: upc,
                    reg: r,
                    value: v,
                });
            }
            let defs = reach.input[pc].of(r);
            // An empty set would claim the pc is unreachable; the
            // harness cannot refute that by arriving (it would just
            // never check), so only emit populated sets.
            if !defs.is_empty() {
                out.push(Claim::DefOrigin {
                    pc: upc,
                    reg: r,
                    defs: defs.to_vec(),
                });
            }
        }
        // Decided branches.
        if let Instr::CmpBranch(p) = instr {
            let v = &vals.input[pc];
            if let Some(taken) = cond_outcome(p.cond, v.operand(p.a), v.operand(p.b)) {
                out.push(Claim::BranchOutcome { pc: upc, taken });
            }
        }
        // Non-trivial effective-address bounds.
        if let Instr::Op { mem: Some(m), .. } = instr {
            let mode = match m {
                MemPiece::Load { mode, .. } | MemPiece::Store { mode, .. } => Some(mode),
                MemPiece::LoadImm { .. } => None,
            };
            if let Some(mode) = mode {
                let r = ea_range(mode, &vals.input[pc]);
                if r != Interval::TOP {
                    out.push(Claim::MemBound {
                        pc: upc,
                        lo: r.lo,
                        hi: r.hi,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn of(src: &str) -> Vec<Claim> {
        let p = assemble(src).unwrap();
        let (cfg, _) = Cfg::build(&p);
        claims(&p, &cfg)
    }

    #[test]
    fn straight_line_program_yields_every_kind() {
        let cs = of("mvi #7,r1\n add r1,#1,r2\n st r2,2(r1)\n mvi #9,r3\n halt\n");
        assert!(cs.contains(&Claim::ConstReg {
            pc: 1,
            reg: Reg::R1,
            value: 7
        }));
        assert!(cs.contains(&Claim::DeadWrite {
            pc: 3,
            reg: Reg::R3
        }));
        assert!(cs.contains(&Claim::MemBound {
            pc: 2,
            lo: 9,
            hi: 9
        }));
        assert!(cs.contains(&Claim::DefOrigin {
            pc: 1,
            reg: Reg::R1,
            defs: vec![0]
        }));
    }

    #[test]
    fn entry_reads_trace_to_the_entry_def() {
        let cs = of("add r1,#1,r2\n st r2,(r1)\n halt\n");
        assert!(cs.contains(&Claim::DefOrigin {
            pc: 0,
            reg: Reg::R1,
            defs: vec![ENTRY_DEF],
        }));
    }

    #[test]
    fn rfe_suppresses_all_claims() {
        assert!(of("mvi #7,r1\n add r1,#1,r2\n nop\n rfe\n").is_empty());
    }

    #[test]
    fn decided_branch_is_claimed() {
        let cs = of("mvi #1,r1\n beq r1,#1,t\n nop\n mvi #2,r9\nt:\n halt\n");
        assert!(cs.contains(&Claim::BranchOutcome { pc: 1, taken: true }));
    }
}
