//! # mips-verify — static pipeline-interlock verifier
//!
//! MIPS has **no hardware interlocks** (paper §4.2.1): a program is
//! correct only if the reorganizer respected every software-enforced
//! delay — one slot after loads ([`mips_core::delay::LOAD_DELAY`]), one
//! after branches, two after indirect jumps. The simulator's dynamic
//! hazard checker (`mips_sim::HazardKind`) convicts violations on the
//! *executed* path; this crate proves their absence on **every static
//! path** without running the program:
//!
//! 1. build an instruction-level CFG honoring delayed-transfer semantics
//!    (the transfer edge leaves the last shadow slot; indirect jumps
//!    conservatively reach every address-taken location) — [`Cfg`];
//! 2. check, per CFG edge, that no instruction reads a register inside
//!    its load's delay shadow ([`Rule::LoadUse`]);
//! 3. check that no control transfer sits in another transfer's shadow
//!    ([`Rule::BranchInShadow`], [`Rule::IndirectShadow`]) and that
//!    shadows stay inside the program ([`Rule::ShadowTruncated`]);
//! 4. check packed-word structural legality ([`Rule::IllegalInstr`]);
//! 5. lint possibly-uninitialized reads, unreachable code, and
//!    privilege-sensitive instructions.
//!
//! The static and dynamic checkers share one taxonomy: the first three
//! rules are the same names `mips_sim`'s hazard recorder uses, so a
//! simulator conviction always has a static counterpart (and the static
//! checker also covers the paths the test input never took).
//!
//! ## Example
//!
//! ```
//! use mips_asm::assemble;
//! use mips_verify::{verify, Rule};
//!
//! // The branch-taken path hides a load-use hazard: the load issues in
//! // the delay slot, so on the taken path `target` reads `r1` while the
//! // load is still in flight. A test input that falls through never
//! // trips the dynamic checker; the verifier convicts the path anyway.
//! let p = assemble("
//!     beq r2,r3,target
//!     ld @100,r1        ; delay slot: issues on both paths
//!     halt
//! target:
//!     add r1,#1,r4      ; reads r1 one slot after the load
//!     halt
//! ").unwrap();
//! let report = verify(&p);
//! assert!(report.has_errors());
//! assert!(report.by_rule(Rule::LoadUse).any(|d| d.pc == 3));
//! ```
//!
//! The `mips-lint` binary wraps [`verify_source`] for `.s` files:
//! `mips-lint prog.s` exits nonzero if any error-severity rule fires.

mod cfg;
mod checks;
pub mod dataflow;
mod diag;

pub use cfg::Cfg;
pub use dataflow::cert::{certify, BlockCert, RegWindow};
pub use diag::{Diagnostic, Report, Rule, Severity};

use mips_core::Program;

/// Statically verifies a resolved program against every software-enforced
/// pipeline constraint; returns all findings.
pub fn verify(program: &Program) -> Report {
    let (cfg, mut diags) = Cfg::build(program);
    // Falling off the end is only an error where execution can actually
    // arrive; a dead trailing fragment is already covered by V102.
    diags.retain(|d| d.rule != Rule::FallsOffEnd || cfg.is_reachable(d.pc));
    checks::illegal_instrs(program, &mut diags);
    checks::load_use(program, &cfg, &mut diags);
    checks::uninit_reads(program, &cfg, &mut diags);
    checks::unreachable(program, &cfg, &mut diags);
    checks::privileged(program, &mut diags);
    Report::new(diags)
}

/// Like [`verify`], plus the whole-program dataflow lints (`V3xx`):
/// dead register writes, provably bad memory addresses, statically
/// decided branches, and dataflow-unreachable code.
pub fn verify_dataflow(program: &Program) -> Report {
    let (cfg, mut diags) = Cfg::build(program);
    diags.retain(|d| d.rule != Rule::FallsOffEnd || cfg.is_reachable(d.pc));
    checks::illegal_instrs(program, &mut diags);
    checks::load_use(program, &cfg, &mut diags);
    checks::uninit_reads(program, &cfg, &mut diags);
    checks::unreachable(program, &cfg, &mut diags);
    checks::privileged(program, &mut diags);
    diags.extend(dataflow::lints::dataflow_lints(program, &cfg));
    Report::new(diags)
}

/// Assembles `.s` source text and verifies the result (the `mips-lint`
/// entry point).
///
/// # Errors
///
/// Returns the assembler's error if the source does not assemble.
pub fn verify_source(source: &str) -> Result<Report, mips_asm::AsmError> {
    Ok(verify(&mips_asm::assemble(source)?))
}

/// Assembles `.s` source text and runs [`verify_dataflow`] on the
/// result (the `mips-lint --dataflow` entry point).
///
/// # Errors
///
/// Returns the assembler's error if the source does not assemble.
pub fn verify_dataflow_source(source: &str) -> Result<Report, mips_asm::AsmError> {
    Ok(verify_dataflow(&mips_asm::assemble(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_asm::assemble;

    fn rules(report: &Report) -> Vec<(Rule, u32)> {
        report
            .diagnostics()
            .iter()
            .map(|d| (d.rule, d.pc))
            .collect()
    }

    #[test]
    fn straight_line_hazard_is_flagged() {
        let p = assemble(
            "
            ld @100,r1
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::LoadUse, 1)));
    }

    #[test]
    fn interlock_nop_clears_the_hazard() {
        let p = assemble(
            "
            ld @100,r1
            nop
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn load_into_branch_target_is_a_cross_block_hazard() {
        // Taken path: ld(slot) → target reads r1 immediately.
        let p = assemble(
            "
            beq r2,r3,target
            ld @100,r1
            halt
        target:
            add r1,#1,r4
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::LoadUse, 3)));
    }

    #[test]
    fn branch_in_delay_slot_is_flagged() {
        let p = assemble(
            "
            bra a
            bra b
            nop
        a:
            halt
        b:
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::BranchInShadow, 1)));
    }

    #[test]
    fn control_in_indirect_shadow_is_flagged() {
        let p = assemble(
            "
            mvi #6,r15
            jmpi (r15)
            nop
            bra out
            nop
        out:
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::IndirectShadow, 3)), "{r}");
    }

    #[test]
    fn truncated_shadow_is_flagged() {
        use mips_core::{Instr, JumpPiece, Target};
        let p = Program::new(vec![
            Instr::NOP,
            Instr::Jump(JumpPiece {
                target: Target::Abs(0),
            }),
        ]);
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::ShadowTruncated, 1)));
    }

    #[test]
    fn falling_off_the_end_is_flagged() {
        let p = assemble(
            "
            nop
            nop
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::FallsOffEnd, 1)));
    }

    #[test]
    fn unreachable_trailing_code_does_not_fall_off_the_end() {
        // The dead no-op after halt can never be executed, so only the
        // unreachability warning fires, not V005.
        let p = assemble(
            "
            halt
            nop
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(!r.has_errors(), "{r}");
        assert!(rules(&r).contains(&(Rule::Unreachable, 1)));
    }

    #[test]
    fn bad_target_is_flagged() {
        use mips_core::{Instr, JumpPiece, Target};
        let p = Program::new(vec![
            Instr::Jump(JumpPiece {
                target: Target::Abs(99),
            }),
            Instr::NOP,
            Instr::Halt,
        ]);
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::BadTarget, 0)));
    }

    #[test]
    fn unreachable_code_is_a_warning_not_an_error() {
        let p = assemble(
            "
            halt
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(!r.has_errors(), "{r}");
        assert!(rules(&r).contains(&(Rule::Unreachable, 1)));
    }

    #[test]
    fn privileged_instructions_are_noted() {
        let p = assemble(
            "
            rsp surprise,r1
            nop
            rfe
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert_eq!(r.by_rule(Rule::Privileged).count(), 2);
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn uninit_read_from_reset_vector_is_flagged() {
        let p = assemble(
            "
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::UninitRead, 0)));
    }

    #[test]
    fn initialized_read_is_clean() {
        let p = assemble(
            "
            mvi #5,r1
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert_eq!(r.by_rule(Rule::UninitRead).count(), 0, "{r}");
    }

    #[test]
    fn jump_shadow_executes_then_leaves() {
        // The delay slot of an unconditional jump executes, then control
        // leaves: the instruction after the slot is unreachable and the
        // slot's load shadows the jump target.
        let p = assemble(
            "
            bra target
            ld @100,r1
            nop
        target:
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::LoadUse, 3)));
        assert!(rules(&r).contains(&(Rule::Unreachable, 2)));
    }

    #[test]
    fn conditional_fall_through_is_covered_too() {
        // Not-taken path: slot load shadows the fall-through instruction.
        let p = assemble(
            "
            beq r2,r3,target
            ld @100,r1
            add r1,#1,r4
            halt
        target:
            halt
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::LoadUse, 2)));
    }

    #[test]
    fn indirect_jump_reaches_address_taken_targets() {
        // The load in the second shadow slot of the return jump is still
        // in flight at the (address-taken) return point.
        let p = assemble(
            "
            call f,r15
            nop
            add r1,#1,r2    ; return point: reads r1
            halt
        f:
            jmpi (r15)
            nop
            ld @100,r1      ; second shadow slot: load lands here
        ",
        )
        .unwrap();
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::LoadUse, 2)), "{r}");
    }

    #[test]
    fn packed_destination_clash_is_flagged() {
        use mips_core::{AluOp, AluPiece, Instr, MemMode, MemPiece, Reg};
        let p = Program::new(vec![
            Instr::Op {
                alu: Some(AluPiece::new(
                    AluOp::Add,
                    Reg::R1.into(),
                    Reg::R2.into(),
                    Reg::R3,
                )),
                mem: Some(MemPiece::load(
                    MemMode::Based {
                        base: Reg::SP,
                        disp: 1,
                    },
                    Reg::R3,
                )),
            },
            Instr::Halt,
        ]);
        let r = verify(&p);
        assert!(rules(&r).contains(&(Rule::IllegalInstr, 0)));
    }

    #[test]
    fn empty_program_is_clean() {
        let p = Program::new(Vec::new());
        assert!(verify(&p).is_clean());
    }

    #[test]
    fn report_display_is_structured() {
        let p = assemble(
            "
            ld @100,r1
            add r1,#1,r2
            halt
        ",
        )
        .unwrap();
        let text = verify(&p).to_string();
        assert!(text.contains("V001"), "{text}");
        assert!(text.contains("error"), "{text}");
        assert!(text.contains("at 1"), "{text}");
    }
}
