//! The individual verification passes run over the [`Cfg`].

use crate::cfg::Cfg;
use crate::dataflow::{self, Analysis, Direction};
use crate::diag::{Diagnostic, Rule};
use mips_core::{Instr, Operand, Program, SpecialOp};

/// Structural legality of every instruction word: packed-pair rules
/// (distinct destinations, packable pieces) and operand constants that
/// fit their 4-bit encoding field.
pub fn illegal_instrs(program: &Program, diags: &mut Vec<Diagnostic>) {
    for (i, ins) in program.instrs().iter().enumerate() {
        if !ins.is_valid() {
            diags.push(Diagnostic::new(
                Rule::IllegalInstr,
                i as u32,
                format!("`{ins}` violates packed-word structure (destination clash or unpackable piece)"),
            ));
        }
        for op in operands(ins) {
            if let Operand::Small(v) = op {
                if v > Operand::SMALL_MAX {
                    diags.push(Diagnostic::new(
                        Rule::IllegalInstr,
                        i as u32,
                        format!(
                            "small constant #{v} exceeds the 4-bit operand field (max {})",
                            Operand::SMALL_MAX
                        ),
                    ));
                }
            }
        }
    }
}

/// Every operand field of an instruction (for range checks).
fn operands(ins: &Instr) -> Vec<Operand> {
    match ins {
        Instr::Op { alu, .. } => alu.iter().flat_map(|a| [a.a, a.b]).collect(),
        Instr::SetCond(p) => vec![p.a, p.b],
        Instr::CmpBranch(p) => vec![p.a, p.b],
        Instr::Special(SpecialOp::Write { src, .. }) => vec![*src],
        _ => Vec::new(),
    }
}

/// The load-delay theorem: on **no** edge `p → q` may `q` read the
/// register that `p`'s delayed load is still carrying. With
/// `LOAD_DELAY = 1` the shadow is exactly the set of immediate CFG
/// successors, so no fixpoint is needed — but unlike the simulator's
/// dynamic check, *every* static edge is covered, including branch
/// targets the test input never takes.
pub fn load_use(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for (p, q) in cfg.edges() {
        let Some(r) = program[p as usize].delayed_load_dst() else {
            continue;
        };
        let reader = &program[q as usize];
        if reader.reads().contains(&r) {
            diags.push(Diagnostic::new(
                Rule::LoadUse,
                q,
                format!(
                    "`{reader}` reads {r} inside the delay shadow of the load at {p} \
                     (`{}`); the stale value is observed",
                    program[p as usize]
                ),
            ));
        }
    }
}

/// Must-initialized registers as an intersection-lattice instantiation
/// of the dataflow engine: ⊤ (all bits) means "every register written,
/// or not yet visited"; transfer ORs in an instruction's writes; join
/// is AND over incoming paths.
struct MustInit<'p> {
    program: &'p Program,
    /// Entry points that start with *nothing* initialized — the reset
    /// vector, unless a named symbol also sits there.
    cold_entries: Vec<u32>,
}

impl MustInit<'_> {
    const TOP: u16 = u16::MAX;
}

impl Analysis for MustInit<'_> {
    type Fact = u16;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn start(&self) -> u16 {
        Self::TOP
    }

    fn boundary(&self, pc: u32) -> Option<u16> {
        // Named entries contribute ⊤ (the caller set up arguments,
        // stack, and link), which is the join identity — only the cold
        // reset path needs an explicit boundary fact.
        self.cold_entries.contains(&pc).then_some(0)
    }

    fn transfer(&self, pc: u32, fact: &u16) -> u16 {
        self.program[pc as usize]
            .writes()
            .iter()
            .fold(*fact, |m, r| m | 1 << r.index())
    }

    fn join(&self, into: &mut u16, from: &u16) -> bool {
        let old = *into;
        *into &= from;
        *into != old
    }
}

/// Must-initialized forward dataflow. A register counts as initialized
/// once any instruction on every path wrote it; reads outside that set
/// are flagged. Named entry points are assumed to receive a fully
/// initialized register file (calling convention), so the lint targets
/// the cold path from the reset vector and hand-written fragments.
pub fn uninit_reads(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    if program.is_empty() {
        return;
    }
    let symbol_entries: Vec<u32> = program.symbols().map(|(_, a)| a).collect();
    let cold_entries = program
        .entry_points()
        .into_iter()
        .filter(|e| !symbol_entries.contains(e))
        .collect();
    let sol = dataflow::solve(
        &MustInit {
            program,
            cold_entries,
        },
        cfg,
    );
    for (i, ins) in program.instrs().iter().enumerate() {
        if !cfg.is_reachable(i as u32) {
            continue;
        }
        // ⊤ input = only ⊤ paths lead here (a named entry): no finding.
        if sol.input[i] == MustInit::TOP {
            continue;
        }
        for r in ins.reads() {
            if sol.input[i] & (1 << r.index()) == 0 {
                diags.push(Diagnostic::new(
                    Rule::UninitRead,
                    i as u32,
                    format!("`{ins}` reads {r}, which no path from the entry has written"),
                ));
            }
        }
    }
}

/// Dead code: maximal runs of instructions no static path reaches.
pub fn unreachable(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < program.len() {
        if cfg.is_reachable(i as u32) {
            i += 1;
            continue;
        }
        let start = i;
        while i < program.len() && !cfg.is_reachable(i as u32) {
            i += 1;
        }
        diags.push(Diagnostic::new(
            Rule::Unreachable,
            start as u32,
            if i - start == 1 {
                format!("instruction {start} is unreachable from every entry point")
            } else {
                format!(
                    "instructions {start}..{} are unreachable from every entry point",
                    i - 1
                )
            },
        ));
    }
}

/// Privilege-sensitive instructions: `rfe` and supervisor special
/// registers fault when reached in user mode (paper §3.2). Informational
/// — legitimate in OS code, suspicious in user programs.
pub fn privileged(program: &Program, diags: &mut Vec<Diagnostic>) {
    for (i, ins) in program.instrs().iter().enumerate() {
        let finding = match ins {
            Instr::Special(SpecialOp::Rfe) => Some("rfe".to_string()),
            Instr::Special(SpecialOp::Read { sr, .. }) if sr.privileged() => {
                Some(format!("read of supervisor register {sr}"))
            }
            Instr::Special(SpecialOp::Write { sr, .. }) if sr.privileged() => {
                Some(format!("write of supervisor register {sr}"))
            }
            _ => None,
        };
        if let Some(what) = finding {
            diags.push(Diagnostic::new(
                Rule::Privileged,
                i as u32,
                format!("{what} requires supervisor privilege; faults in user mode"),
            ));
        }
    }
}
