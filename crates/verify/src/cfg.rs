//! Instruction-level control-flow graph honoring delayed-transfer
//! semantics.
//!
//! An edge `p → q` means "`q` can execute in the very next issue slot
//! after `p`" — exactly the relation the pipeline's one-slot load delay
//! cares about. Delayed branches make this different from the naive
//! textbook CFG: a transfer at `i` with delay `d` does **not** branch at
//! `i`; its shadow `i+1 ‥ i+d` executes first, and the transfer edge
//! leaves the *last shadow slot* `i+d`:
//!
//! ```text
//!   i   : beq r1,r2,T      edges: i → i+1
//!   i+1 : (delay slot)            i+1 → T        (taken)
//!   i+2 : …                       i+1 → i+2      (fall-through)
//! ```
//!
//! Indirect jumps (`jmpi`, delay 2) transfer out of slot `i+2`, to every
//! *address-taken* location: `lea` targets, named symbols, and call
//! return points ([`mips_core::Program::address_taken`]). That
//! over-approximation is what makes the dataflow sound across procedure
//! returns — a load sitting in the last slot of a return's shadow is
//! still in flight at every possible return point.
//!
//! Structural violations discovered while building (a transfer inside
//! another's shadow, shadows running off the program, bad targets) are
//! reported as diagnostics; construction still completes with
//! conservative edges so later analyses run on best-effort flow.

use crate::diag::{Diagnostic, Rule};
use mips_core::{Instr, Program, Target};

/// The control-flow graph: successor/predecessor lists per instruction
/// address, plus reachability from the program's entry points.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG for a resolved program. Returns the graph and any
    /// structural diagnostics found along the way.
    pub fn build(program: &Program) -> (Cfg, Vec<Diagnostic>) {
        let n = program.len();
        let mut diags = Vec::new();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];

        // Transfer obligations deferred to the last shadow slot:
        // (slot_pc, targets, unconditional).
        struct Deferred {
            targets: Vec<u32>,
            unconditional: bool,
        }
        let mut deferred: Vec<Vec<Deferred>> = (0..n).map(|_| Vec::new()).collect();

        let address_taken = program.address_taken();

        // First pass: classify each instruction, collect shadow structure.
        for (i, ins) in program.instrs().iter().enumerate() {
            let delay = ins.branch_delay() as usize;
            if delay == 0 {
                continue;
            }
            // The shadow i+1 ..= i+delay must exist …
            if i + delay >= n {
                diags.push(Diagnostic::new(
                    Rule::ShadowTruncated,
                    i as u32,
                    format!(
                        "`{ins}` needs {delay} delay slot(s) but the program ends at {}",
                        n as u32
                    ),
                ));
                continue;
            }
            // … and hold no other control transfer.
            let indirect = matches!(ins, Instr::JumpInd(_));
            for s in i + 1..=i + delay {
                let slot = &program[s];
                if slot.is_delayed_transfer() || !slot.falls_through() {
                    let rule = if indirect {
                        Rule::IndirectShadow
                    } else {
                        Rule::BranchInShadow
                    };
                    diags.push(Diagnostic::new(
                        rule,
                        s as u32,
                        format!(
                            "`{slot}` sits in the delay shadow of `{ins}` at {i}; \
                             delay slots must hold plain instructions"
                        ),
                    ));
                }
            }
            // Record where the transfer actually leaves from.
            let (targets, unconditional) = match ins {
                Instr::CmpBranch(p) => (resolve(p.target, i, n, &mut diags), false),
                Instr::Jump(p) => (resolve(p.target, i, n, &mut diags), true),
                // The return path re-enters at i + 1 + delay via the
                // callee's indirect jump; no direct fall-through edge.
                Instr::Call(p) => (resolve(p.target, i, n, &mut diags), true),
                Instr::JumpInd(_) => (address_taken.clone(), true),
                _ => unreachable!("branch_delay > 0 covers exactly the transfers"),
            };
            deferred[i + delay].push(Deferred {
                targets,
                unconditional,
            });
        }

        // Second pass: emit edges.
        for (i, ins) in program.instrs().iter().enumerate() {
            let here = &deferred[i];
            let transfers_out = here.iter().any(|d| d.unconditional);
            for d in here {
                for &t in &d.targets {
                    push_edge(&mut succs[i], t);
                }
            }
            // Straight-line successor: suppressed when an unconditional
            // transfer leaves this slot, or the instruction itself ends
            // the line (jump/jmpi handled via deferred; halt/rfe end it
            // here).
            let line_continues = if ins.is_delayed_transfer() {
                // The transfer's own slot always falls into its shadow.
                true
            } else {
                ins.falls_through()
            };
            if line_continues && !transfers_out {
                if i + 1 < n {
                    push_edge(&mut succs[i], (i + 1) as u32);
                } else {
                    diags.push(Diagnostic::new(
                        Rule::FallsOffEnd,
                        i as u32,
                        format!("execution continues past `{ins}` into the end of the program"),
                    ));
                }
            }
        }

        // Predecessors + reachability.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s as usize].push(i as u32);
            }
        }
        let mut reachable = vec![false; n];
        let mut work: Vec<u32> = program.entry_points();
        for &e in &work {
            reachable[e as usize] = true;
        }
        while let Some(pc) = work.pop() {
            for &s in &succs[pc as usize] {
                if !reachable[s as usize] {
                    reachable[s as usize] = true;
                    work.push(s);
                }
            }
        }

        (
            Cfg {
                succs,
                preds,
                reachable,
            },
            diags,
        )
    }

    /// Successor addresses of `pc`.
    pub fn succs(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }

    /// Predecessor addresses of `pc`.
    pub fn preds(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }

    /// Whether any static path from an entry point reaches `pc`.
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.reachable[pc as usize]
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Iterates `(pc, successor)` edge pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&s| (i as u32, s)))
    }
}

fn push_edge(v: &mut Vec<u32>, t: u32) {
    if !v.contains(&t) {
        v.push(t);
    }
}

/// Resolves a direct target to an in-range address list (empty + a
/// diagnostic otherwise).
fn resolve(t: Target, pc: usize, n: usize, diags: &mut Vec<Diagnostic>) -> Vec<u32> {
    match t {
        Target::Abs(a) if (a as usize) < n => vec![a],
        Target::Abs(a) => {
            diags.push(Diagnostic::new(
                Rule::BadTarget,
                pc as u32,
                format!("branch target {a} is outside the program (len {n})"),
            ));
            Vec::new()
        }
        Target::Label(l) => {
            diags.push(Diagnostic::new(
                Rule::BadTarget,
                pc as u32,
                format!("unresolved label {l} in a supposedly resolved program"),
            ));
            Vec::new()
        }
    }
}
