//! Structured diagnostics: rules, severities, and the report.
//!
//! Every finding carries a stable machine-readable rule id (`V0xx` for
//! correctness errors, `V1xx` for warnings, `V2xx` for informational
//! lints), the program counter it anchors to, and a human-readable
//! message. Tests assert on `(rule, pc)` pairs; humans read the
//! `Display` form.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: legal code that deserves a second look (e.g. privileged
    /// instructions that fault in user mode).
    Info,
    /// Suspicious but not provably wrong (possibly-uninitialized reads,
    /// unreachable code).
    Warning,
    /// A violated pipeline or encoding invariant: the program computes
    /// wrong values on some static path, on hardware with no interlocks.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// The verifier's rule taxonomy. The first three mirror the simulator's
/// dynamic `HazardKind`s exactly, so a program the dynamic checker
/// convicts on an executed path is convicted statically under the same
/// name — and vice versa, on paths the test input never reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A register is read inside its load's delay shadow on some static
    /// path: the read observes the stale value.
    LoadUse,
    /// A control transfer sits in a branch/jump/call delay slot.
    BranchInShadow,
    /// A control transfer sits inside an indirect jump's two-slot shadow.
    IndirectShadow,
    /// A transfer's delay shadow extends past the end of the program.
    ShadowTruncated,
    /// Straight-line execution can run off the end of the program.
    FallsOffEnd,
    /// A structurally illegal instruction word (packed-pair destination
    /// clash, unpackable piece, operand constant out of encoding range).
    IllegalInstr,
    /// A branch target outside the program.
    BadTarget,
    /// A register may be read before any instruction wrote it.
    UninitRead,
    /// Instructions no static path reaches.
    Unreachable,
    /// A privilege-sensitive instruction (`rfe`, supervisor special
    /// registers); faults if reached in user mode.
    Privileged,
    /// A pure register write whose result no path ever reads
    /// (dataflow lint).
    DeadWrite,
    /// A memory reference whose effective address is provably outside
    /// the 24-bit space, or provably misaligned on a byte-addressed
    /// program (dataflow lint).
    BadMemRange,
    /// A conditional branch whose outcome the value analysis decides
    /// statically (dataflow lint).
    ConstBranch,
    /// Code reachable only through a branch direction proven never
    /// taken (dataflow lint).
    DataflowUnreachable,
}

impl Rule {
    /// All rules, in id order.
    pub const ALL: [Rule; 14] = [
        Rule::LoadUse,
        Rule::BranchInShadow,
        Rule::IndirectShadow,
        Rule::ShadowTruncated,
        Rule::FallsOffEnd,
        Rule::IllegalInstr,
        Rule::BadTarget,
        Rule::UninitRead,
        Rule::Unreachable,
        Rule::Privileged,
        Rule::DeadWrite,
        Rule::BadMemRange,
        Rule::ConstBranch,
        Rule::DataflowUnreachable,
    ];

    /// Stable machine-readable id.
    pub fn id(self) -> &'static str {
        match self {
            Rule::LoadUse => "V001",
            Rule::BranchInShadow => "V002",
            Rule::IndirectShadow => "V003",
            Rule::ShadowTruncated => "V004",
            Rule::FallsOffEnd => "V005",
            Rule::IllegalInstr => "V006",
            Rule::BadTarget => "V007",
            Rule::UninitRead => "V101",
            Rule::Unreachable => "V102",
            Rule::Privileged => "V201",
            Rule::DeadWrite => "V301",
            Rule::BadMemRange => "V302",
            Rule::ConstBranch => "V303",
            Rule::DataflowUnreachable => "V304",
        }
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::LoadUse
            | Rule::BranchInShadow
            | Rule::IndirectShadow
            | Rule::ShadowTruncated
            | Rule::FallsOffEnd
            | Rule::IllegalInstr
            | Rule::BadTarget => Severity::Error,
            Rule::UninitRead
            | Rule::Unreachable
            | Rule::BadMemRange
            | Rule::ConstBranch
            | Rule::DataflowUnreachable => Severity::Warning,
            // Dead writes are an optimization observation, not a
            // defect: compiled code legitimately carries them (the
            // calling convention's stack-pointer pop before an epilogue
            // that reloads the pointer from the frame), so the rule
            // informs without failing `--strict`.
            Rule::Privileged | Rule::DeadWrite => Severity::Info,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction address the finding anchors to.
    pub pc: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(rule: Rule, pc: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pc,
            rule,
            message: message.into(),
        }
    }

    /// Severity (fixed per rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl Diagnostic {
    /// One-line JSON object for machine consumers (`mips-lint --json`):
    /// stable keys `rule`, `name`, `severity`, `pc`, `message`. No
    /// external serializer is used; the message is escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","name":"{}","severity":"{}","pc":{},"message":"{}"}}"#,
            self.rule.id(),
            rule_name(self.rule),
            self.severity(),
            self.pc,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] at {}: {}",
            self.severity(),
            self.rule.id(),
            rule_name(self.rule),
            self.pc,
            self.message
        )
    }
}

fn rule_name(r: Rule) -> &'static str {
    match r {
        Rule::LoadUse => "load-use",
        Rule::BranchInShadow => "branch-in-shadow",
        Rule::IndirectShadow => "indirect-shadow",
        Rule::ShadowTruncated => "shadow-truncated",
        Rule::FallsOffEnd => "falls-off-end",
        Rule::IllegalInstr => "illegal-instr",
        Rule::BadTarget => "bad-target",
        Rule::UninitRead => "uninit-read",
        Rule::Unreachable => "unreachable",
        Rule::Privileged => "privileged",
        Rule::DeadWrite => "dead-write",
        Rule::BadMemRange => "mem-out-of-range",
        Rule::ConstBranch => "const-branch",
        Rule::DataflowUnreachable => "dataflow-unreachable",
    }
}

/// The verifier's full output: all findings, sorted by address then rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps and sorts a finding list.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics.sort_by_key(|d| (d.pc, d.rule));
        diagnostics.dedup();
        Report { diagnostics }
    }

    /// All findings.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True when any error-severity finding exists: the program violates
    /// a pipeline invariant on some static path.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings for one rule (test convenience).
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let infos = self.diagnostics.len() - errors - warnings;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{errors} error(s), {warnings} warning(s), {infos} note(s)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_json_shape() {
        let d = Diagnostic::new(Rule::LoadUse, 7, "reads r1 in a \"shadow\"\n");
        assert_eq!(
            d.to_json(),
            r#"{"rule":"V001","name":"load-use","severity":"error","pc":7,"message":"reads r1 in a \"shadow\"\n"}"#
        );
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\u{1}b\\"), "a\\u0001b\\\\");
    }
}
