//! The dataflow lints hold the codebase's own artifacts to the bar CI
//! enforces: the OS kernel and every compiled corpus workload must be
//! free of V3xx findings at failing severity — including warnings,
//! since the CI job runs `mips-lint --dataflow --strict`. A V3xx
//! warning on real generated code is either a compiler bug worth
//! fixing or a lint miscalibration worth demoting; both should fail
//! here first. (Pre-existing rule families are outside this gate:
//! their calibration on compiled code is whatever it was before
//! `--dataflow` existed, and enabling the flag must not change it.)

use mips_hll::{compile_mips, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use mips_verify::{verify_dataflow, Severity};

/// V3xx findings that `--strict` would fail on: errors and warnings.
fn strict_failures(program: &mips_core::Program) -> Vec<String> {
    verify_dataflow(program)
        .diagnostics()
        .iter()
        .filter(|d| d.rule.id().starts_with("V3") && d.severity() >= Severity::Warning)
        .map(|d| format!("{d}"))
        .collect()
}

#[test]
fn kernel_is_dataflow_clean() {
    let src = include_str!("../../os/src/asm/kernel.s");
    let p = mips_asm::assemble(src).expect("kernel assembles");
    let bad = strict_failures(&p);
    assert!(
        bad.is_empty(),
        "kernel V3xx/strict findings:\n{}",
        bad.join("\n")
    );
}

#[test]
fn corpus_is_dataflow_clean_at_every_reorg_level() {
    for w in mips_workloads::corpus() {
        let lc = compile_mips(w.source, &CodegenOptions::standard()).expect("corpus compiles");
        for (level, opts) in [("none", ReorgOptions::NONE), ("full", ReorgOptions::FULL)] {
            let out = reorganize(&lc, opts).expect("reorganizes");
            let bad = strict_failures(&out.program);
            assert!(
                bad.is_empty(),
                "{}/{level} V3xx/strict findings:\n{}",
                w.name,
                bad.join("\n")
            );
        }
    }
}
