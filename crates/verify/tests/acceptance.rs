//! End-to-end acceptance: the verifier passes everything the toolchain
//! produces, and catches what the dynamic checker structurally cannot.

use mips_asm::assemble;
use mips_hll::{compile_mips, CodegenOptions};
use mips_reorg::{reorganize, ReorgOptions};
use mips_sim::{Machine, MachineConfig};
use mips_verify::{verify, Rule};
use mips_workloads::corpus;

/// Every workload, compiled and reorganized at every option level
/// (including NONE), verifies with zero errors.
#[test]
fn all_workloads_all_levels_verify_clean() {
    for w in corpus() {
        let lc = compile_mips(w.source, &CodegenOptions::standard()).expect("compiles");
        for (level, opts) in ReorgOptions::LEVELS {
            let out = reorganize(&lc, opts).expect("reorganizes");
            let report = verify(&out.program);
            assert!(
                !report.has_errors(),
                "{} at level '{level}' fails verification:\n{report}",
                w.name
            );
        }
    }
}

/// The headline case for a *static* checker: a load-use hazard on the
/// branch-taken path of a branch the test input never takes. The
/// simulator — hazard checking on — executes the program and records
/// nothing, because the hazardous path is cold. The verifier convicts it
/// anyway.
#[test]
fn static_checker_catches_hazard_the_dynamic_checker_misses() {
    let p = assemble(
        "
        mvi #1,r2
        mvi #2,r3
        beq r2,r3,target    ; never taken at runtime (1 != 2)
        ld @100,r1          ; delay slot: the load issues on BOTH paths
        nop
        halt
    target:
        add r1,#1,r4        ; taken path reads r1 inside the load shadow
        halt
    ",
    )
    .unwrap();

    // Dynamic: the executed (fall-through) path is hazard-free.
    let mut m = Machine::with_config(
        p.clone(),
        MachineConfig {
            check_hazards: true,
            ..MachineConfig::default()
        },
    );
    m.run().unwrap();
    assert!(
        m.hazards().is_empty(),
        "dynamic checker should see nothing on the executed path: {:?}",
        m.hazards()
    );

    // Static: the taken path's load-use hazard is flagged.
    let report = verify(&p);
    assert!(report.has_errors(), "{report}");
    assert!(
        report.by_rule(Rule::LoadUse).any(|d| d.pc == 6),
        "expected V001 at the branch target:\n{report}"
    );
}

/// The converse sanity check: when the hazardous path *is* executed,
/// the dynamic and static checkers agree (same taxonomy, same pc).
#[test]
fn dynamic_and_static_checkers_agree_on_hot_paths() {
    let p = assemble(
        "
        ld @100,r1
        add r1,#1,r2        ; reads r1 in the load shadow
        halt
    ",
    )
    .unwrap();

    let mut m = Machine::with_config(
        p.clone(),
        MachineConfig {
            check_hazards: true,
            ..MachineConfig::default()
        },
    );
    m.run().unwrap();
    assert_eq!(m.hazards().len(), 1);
    assert_eq!(m.hazards()[0].pc, 1);

    let report = verify(&p);
    assert!(report.by_rule(Rule::LoadUse).any(|d| d.pc == 1));
}
